// Micro-benchmarks for the WebFountain platform substrate: data store
// put/get, inverted-index build and queries, the multi-term spotter, and
// Vinci-bus round trips (experiment E9 in DESIGN.md).

#include <benchmark/benchmark.h>

#include "common/logging.h"

#include "corpus/datasets.h"
#include "platform/cluster.h"
#include "platform/data_store.h"
#include "platform/indexer.h"
#include "platform/vinci.h"
#include "spot/spotter.h"
#include "text/tokenizer.h"

namespace {

using namespace wf;

const std::vector<corpus::GeneratedDoc>& SampleDocs() {
  static const auto* kDocs = [] {
    corpus::ReviewDataset ds = corpus::BuildCameraDataset(7);
    return new std::vector<corpus::GeneratedDoc>(ds.d_plus);
  }();
  return *kDocs;
}

void BM_DataStorePut(benchmark::State& state) {
  const auto& docs = SampleDocs();
  for (auto _ : state) {
    platform::DataStore store;
    for (const auto& d : docs) {
      platform::Entity e(d.id, "bench");
      e.SetBody(d.body);
      WF_CHECK_OK(store.Upsert(std::move(e)));
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(docs.size()));
}
BENCHMARK(BM_DataStorePut);

void BM_DataStoreGet(benchmark::State& state) {
  const auto& docs = SampleDocs();
  platform::DataStore store;
  for (const auto& d : docs) {
    platform::Entity e(d.id, "bench");
    e.SetBody(d.body);
    WF_CHECK_OK(store.Upsert(std::move(e)));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto e = store.Get(docs[i % docs.size()].id);
    benchmark::DoNotOptimize(e);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DataStoreGet);

void BM_IndexBuild(benchmark::State& state) {
  const auto& docs = SampleDocs();
  for (auto _ : state) {
    platform::InvertedIndex index;
    for (const auto& d : docs) {
      platform::Entity e(d.id, "bench");
      e.SetBody(d.body);
      index.IndexEntity(e);
    }
    benchmark::DoNotOptimize(index.document_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(docs.size()));
}
BENCHMARK(BM_IndexBuild);

platform::InvertedIndex& BuiltIndex() {
  static auto* kIndex = [] {
    auto* index = new platform::InvertedIndex();
    for (const auto& d : SampleDocs()) {
      platform::Entity e(d.id, "bench");
      e.SetBody(d.body);
      index->IndexEntity(e);
    }
    return index;
  }();
  return *kIndex;
}

void BM_IndexTermQuery(benchmark::State& state) {
  platform::InvertedIndex& index = BuiltIndex();
  for (auto _ : state) {
    auto docs = index.Term("battery");
    benchmark::DoNotOptimize(docs);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IndexTermQuery);

void BM_IndexPhraseQuery(benchmark::State& state) {
  platform::InvertedIndex& index = BuiltIndex();
  for (auto _ : state) {
    auto docs = index.Phrase({"picture", "quality"});
    benchmark::DoNotOptimize(docs);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IndexPhraseQuery);

void BM_IndexBooleanAnd(benchmark::State& state) {
  platform::InvertedIndex& index = BuiltIndex();
  for (auto _ : state) {
    auto docs = index.And({"battery", "flash", "lens"});
    benchmark::DoNotOptimize(docs);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IndexBooleanAnd);

void BM_Spotter(benchmark::State& state) {
  const corpus::DomainVocab& domain = corpus::CameraDomain();
  spot::Spotter spotter;
  int id = 0;
  for (const corpus::Product& p : domain.products) {
    spot::SynonymSet set;
    set.id = id++;
    set.canonical = p.name;
    set.variants = p.variants;
    spotter.AddSynonymSet(set);
  }
  for (const std::string& f : domain.features) {
    spot::SynonymSet set;
    set.id = id++;
    set.canonical = f;
    spotter.AddSynonymSet(set);
  }
  text::Tokenizer tokenizer;
  text::TokenStream tokens = tokenizer.Tokenize(SampleDocs()[0].body);
  for (auto _ : state) {
    auto spots = spotter.Spot(tokens);
    benchmark::DoNotOptimize(spots);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tokens.size()));
}
BENCHMARK(BM_Spotter);

void BM_VinciRoundTrip(benchmark::State& state) {
  platform::VinciBus bus;
  WF_CHECK_OK(bus.RegisterService("echo", [](const std::string& request) {
    return request;
  }));
  std::string request = platform::EncodeMessage(
      {{"term", "battery"}, {"mode", "term"}});
  for (auto _ : state) {
    auto response = bus.Call("echo", request);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_VinciRoundTrip);

}  // namespace

BENCHMARK_MAIN();
