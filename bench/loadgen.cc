#include "bench/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <queue>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "obs/timer.h"

namespace wf::bench {

namespace {

// Exponential inter-event sample with the given mean (the arrival process
// primitive for both think times and Poisson schedules).
uint64_t ExpSampleUs(common::Rng& rng, uint64_t mean_us) {
  if (mean_us == 0) return 0;
  const double u = rng.Double();  // in [0, 1), so log(1 - u) is finite
  return static_cast<uint64_t>(-static_cast<double>(mean_us) *
                               std::log(1.0 - u));
}

// One virtual user. A session is only ever touched by the worker that
// popped it from the schedule heap, so it needs no lock of its own.
struct Session {
  size_t id = 0;
  bool open_loop = false;
  common::Rng rng;
  size_t remaining = 0;
  size_t issued = 0;
  uint64_t sched_us = 0;  // open-loop schedule cursor (absolute)
  std::string tenant;
  serve::Priority priority = serve::Priority::kInteractive;

  explicit Session(uint64_t seed) : rng(seed) {}
};

// Min-heap entry: when a session's next request is due.
struct Due {
  uint64_t due_us = 0;
  size_t session = 0;
  bool operator>(const Due& other) const { return due_us > other.due_us; }
};

// Per-worker accumulator, merged single-threaded after join.
struct WorkerLocal {
  size_t requests = 0, ok = 0, shed = 0, errors = 0;
  size_t cache_hits = 0, coalesced = 0;
  size_t shed_queue_full = 0, shed_quota = 0, shed_deadline = 0;
  std::vector<uint64_t> latencies_us;
};

serve::QueryRequest MakeRequest(Session& session,
                                const LoadGenWorkload& workload) {
  serve::QueryRequest request;
  const bool has_subjects = !workload.subjects.empty();
  if (has_subjects && session.rng.Bernoulli(workload.cold_fraction)) {
    request.subject = "cold-" + std::to_string(session.id) + "-" +
                      std::to_string(session.issued);
  } else if (has_subjects && session.rng.Bernoulli(workload.hot_fraction)) {
    const size_t hot =
        std::max<size_t>(1, std::min(workload.hot_count,
                                     workload.subjects.size()));
    request.subject = workload.subjects[session.rng.Index(hot)];
  } else if (has_subjects) {
    request.subject = workload.subjects[session.rng.Index(
        workload.subjects.size())];
  } else {
    request.subject = "cold-" + std::to_string(session.id) + "-" +
                      std::to_string(session.issued);
  }
  request.tenant = session.tenant;
  request.priority = session.priority;
  request.budget_us = workload.budget_us;
  return request;
}

}  // namespace

uint64_t LoadGenStats::PercentileUs(double q) const {
  if (latencies_us.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const size_t rank =
      static_cast<size_t>(q * static_cast<double>(latencies_us.size()));
  return latencies_us[std::min(rank, latencies_us.size() - 1)];
}

double LoadGenStats::GoodputPerSec() const {
  if (wall_us == 0) return 0.0;
  return static_cast<double>(ok) / (static_cast<double>(wall_us) / 1e6);
}

LoadGenStats RunLoadGen(const LoadGenOptions& options,
                        const LoadGenWorkload& workload, const QueryFn& fn) {
  WF_CHECK(fn != nullptr);
  const size_t total = options.sessions;
  const size_t open_count = static_cast<size_t>(
      std::clamp(options.open_loop_fraction, 0.0, 1.0) *
      static_cast<double>(total));

  LoadGenStats stats;
  stats.sessions = total;
  stats.open_sessions = open_count;
  stats.closed_sessions = total - open_count;
  if (total == 0 || options.requests_per_session == 0) return stats;

  const uint64_t start_us = obs::MonotonicNowUs();
  std::vector<Session> sessions;
  sessions.reserve(total);
  std::priority_queue<Due, std::vector<Due>, std::greater<Due>> heap;
  for (size_t i = 0; i < total; ++i) {
    Session session(common::HashCombine(options.seed, i));
    session.id = i;
    // Bresenham spread: exactly open_count open-loop sessions, evenly
    // interleaved among the closed ones instead of clumped at one end.
    session.open_loop =
        (i * open_count) / total != ((i + 1) * open_count) / total;
    session.remaining = options.requests_per_session;
    if (workload.tenants > 0) {
      session.tenant = "tenant-" + std::to_string(i % workload.tenants);
    }
    if (workload.batch_every > 0 && i % workload.batch_every ==
                                        workload.batch_every - 1) {
      session.priority = serve::Priority::kBatch;
    }
    uint64_t first_due;
    if (session.open_loop) {
      session.sched_us =
          start_us + ExpSampleUs(session.rng, options.mean_interarrival_us);
      first_due = session.sched_us;
    } else {
      first_due = start_us + ExpSampleUs(session.rng, options.mean_think_us);
    }
    sessions.push_back(std::move(session));
    heap.push({first_due, i});
  }

  common::Mutex mu;
  std::condition_variable_any cv;
  size_t retired = 0;
  constexpr uint64_t kWaitChunkUs = 10000;

  const size_t workers = std::max<size_t>(1, options.workers);
  std::vector<WorkerLocal> locals(workers);
  auto worker = [&](size_t w) {
    WorkerLocal& local = locals[w];
    std::unique_lock<common::Mutex> lock(mu);
    for (;;) {
      if (retired == total) break;
      const uint64_t now = obs::MonotonicNowUs();
      if (heap.empty() || heap.top().due_us > now) {
        uint64_t wait_us = kWaitChunkUs;
        if (!heap.empty()) {
          wait_us = std::min(kWaitChunkUs, heap.top().due_us - now);
        }
        cv.wait_for(lock, std::chrono::microseconds(wait_us));
        continue;
      }
      const size_t idx = heap.top().session;
      heap.pop();
      lock.unlock();

      Session& session = sessions[idx];
      const serve::QueryRequest request = MakeRequest(session, workload);
      const uint64_t t0 = obs::MonotonicNowUs();
      const serve::QueryReply reply = fn(request);
      const uint64_t t1 = obs::MonotonicNowUs();
      ++session.issued;
      --session.remaining;

      ++local.requests;
      local.latencies_us.push_back(t1 - t0);
      if (reply.status.ok()) ++local.ok;
      if (reply.cache_hit) ++local.cache_hits;
      if (reply.coalesced) ++local.coalesced;
      switch (reply.shed_reason) {
        case serve::ShedReason::kNone:
          if (!reply.status.ok()) ++local.errors;
          break;
        case serve::ShedReason::kQueueFull:
          ++local.shed;
          ++local.shed_queue_full;
          break;
        case serve::ShedReason::kQuotaExceeded:
          ++local.shed;
          ++local.shed_quota;
          break;
        case serve::ShedReason::kDeadlineBeforeExecute:
          ++local.shed;
          ++local.shed_deadline;
          break;
      }

      lock.lock();
      if (session.remaining > 0) {
        uint64_t due;
        if (session.open_loop) {
          // The schedule never waits for replies: a cursor behind "now"
          // means the session is backlogged and fires immediately.
          session.sched_us +=
              ExpSampleUs(session.rng, options.mean_interarrival_us);
          due = session.sched_us;
        } else {
          due = t1 + ExpSampleUs(session.rng, options.mean_think_us);
        }
        heap.push({due, idx});
        cv.notify_one();
      } else {
        ++retired;
        if (retired == total) cv.notify_all();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (std::thread& t : pool) t.join();
  stats.wall_us = obs::MonotonicNowUs() - start_us;

  for (WorkerLocal& local : locals) {
    stats.requests += local.requests;
    stats.ok += local.ok;
    stats.shed += local.shed;
    stats.errors += local.errors;
    stats.cache_hits += local.cache_hits;
    stats.coalesced += local.coalesced;
    stats.shed_queue_full += local.shed_queue_full;
    stats.shed_quota += local.shed_quota;
    stats.shed_deadline += local.shed_deadline;
    stats.latencies_us.insert(stats.latencies_us.end(),
                              local.latencies_us.begin(),
                              local.latencies_us.end());
  }
  std::sort(stats.latencies_us.begin(), stats.latencies_us.end());
  return stats;
}

}  // namespace wf::bench
