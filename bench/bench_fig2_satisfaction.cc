// Reproduces the Figure 2 inset chart, "Digital Camera Customer
// Satisfaction": for each product, the percentage of its review pages that
// contain a positive sentiment about picture quality, battery, and flash —
// the end-user analytics view the reputation application renders.

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/miner.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "spot/spotter.h"
#include "text/tokenizer.h"

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();
  corpus::ReviewDataset camera = corpus::BuildCameraDataset(seed);
  const corpus::DomainVocab& domain = *camera.domain;

  const std::vector<std::string> kFeatures = {"picture quality", "battery",
                                              "flash"};

  lexicon::SentimentLexicon lex = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  core::SentimentMiner::Config config;
  config.record_neutral = false;
  core::SentimentMiner miner(&lex, &patterns, config);
  int id = 0;
  for (const std::string& f : kFeatures) {
    spot::SynonymSet set;
    set.id = id++;
    set.canonical = f;
    if (f.find(' ') == std::string::npos) set.variants.push_back(f + "s");
    miner.AddSubject(set);
  }

  // Which product each review page is about (by spotting product names).
  spot::Spotter product_spotter;
  std::map<int, std::string> product_of_set;
  int pid = 0;
  for (const corpus::Product& p : domain.products) {
    spot::SynonymSet set;
    set.id = pid;
    set.canonical = p.name;
    set.variants = p.variants;
    product_of_set[pid] = p.name;
    product_spotter.AddSynonymSet(set);
    ++pid;
  }

  text::Tokenizer tokenizer;
  // product -> (pages, pages with positive mention of feature f)
  std::map<std::string, size_t> pages;
  std::map<std::string, std::map<std::string, size_t>> positive_pages;

  core::SentimentStore store;
  std::map<std::string, std::string> doc_product;
  for (const corpus::GeneratedDoc& doc : camera.d_plus) {
    text::TokenStream tokens = tokenizer.Tokenize(doc.body);
    std::vector<spot::SubjectSpot> spots = product_spotter.Spot(tokens);
    if (spots.empty()) continue;
    const std::string& product = product_of_set[spots[0].synset_id];
    doc_product[doc.id] = product;
    ++pages[product];
    miner.ProcessDocument(doc.id, doc.body, &store);
  }
  std::set<std::string> seen;  // one count per (product, feature, page)
  for (const std::string& f : kFeatures) {
    for (const core::SentimentMention* m :
         store.Find(f, lexicon::Polarity::kPositive)) {
      auto it = doc_product.find(m->doc_id);
      if (it == doc_product.end()) continue;
      std::string key = it->second + "|" + f + "|" + m->doc_id;
      if (seen.insert(key).second) ++positive_pages[it->second][f];
    }
  }

  std::printf("%s", eval::Banner("Figure 2 — digital camera customer "
                                 "satisfaction (% pages with positive "
                                 "sentiment)")
                        .c_str());
  eval::TablePrinter table(
      {"Product", "Pages", "picture quality", "battery", "flash"});
  int masked = 1;
  for (const auto& [product, n] : pages) {
    std::vector<std::string> row;
    row.push_back(common::StrFormat("Product %d", masked++));
    row.push_back(std::to_string(n));
    for (const std::string& f : kFeatures) {
      size_t pos = positive_pages[product][f];
      row.push_back(common::StrFormat(
          "%5.1f%%", 100.0 * static_cast<double>(pos) /
                         static_cast<double>(n)));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("(Product names masked as in the paper's figures.)\n");
  return 0;
}
