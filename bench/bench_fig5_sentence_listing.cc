// Reproduces Figure 5: the Web interface listing sentiment-bearing
// sentences for a given product, served by the hosted sentiment query
// service over the cluster's sentiment index (Mode B pipeline of Figure 3:
// ingest -> mine offline -> index conceptual tokens -> query).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();
  corpus::WebDataset pharma = corpus::BuildPharmaWebDataset(seed + 2);

  lexicon::SentimentLexicon lex = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();

  platform::Cluster cluster(4);
  std::vector<std::pair<std::string, std::string>> docs;
  docs.reserve(pharma.docs.size());
  for (const corpus::GeneratedDoc& d : pharma.docs) {
    docs.emplace_back(d.id, d.body);
  }
  platform::BatchIngestor ingestor("pharma-web", std::move(docs));
  size_t stored = platform::IngestAll(ingestor, cluster);

  cluster.DeployMiner([&lex, &patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lex,
                                                                 &patterns);
  });
  cluster.MineAndIndexAll();

  platform::SentimentQueryService service(&cluster);
  WF_CHECK_OK(service.RegisterService());

  std::printf("%s", eval::Banner("Figure 5 — sentiment-bearing sentences "
                                 "for a given product (query service)")
                        .c_str());
  std::printf("Ingested %zu pages across %zu nodes; sentiment index built "
              "offline by the Mode-B miner.\n\n",
              stored, cluster.node_count());

  int masked = 1;
  for (const corpus::Product& product : pharma.domain->products) {
    platform::SentimentQueryResult result =
        service.Query(product.name, /*max_hits=*/6);
    std::printf("Product %d  (+%zu pages / -%zu pages)\n", masked,
                result.positive_docs, result.negative_docs);
    int shown = 0;
    for (const platform::SentimentHit& hit : result.hits) {
      if (shown >= 4) break;
      // Mask the product name like the paper's post-processed screenshots.
      std::string sentence = common::ReplaceAll(
          hit.sentence, product.name,
          common::StrFormat("Product %d", masked));
      std::printf("  [%s] %s\n",
                  hit.polarity == lexicon::Polarity::kPositive ? "+" : "-",
                  sentence.c_str());
      ++shown;
    }
    ++masked;
    std::printf("\n");
  }
  return 0;
}
