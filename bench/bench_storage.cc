// Storage engine sweep (DESIGN.md §13, EXPERIMENTS.md E15): ingest, point
// read, sorted scan, and compaction behavior of the LSM segment store at
// 1x / 10x / 100x the seed corpus, under a fixed memtable ceiling. The
// point of the exercise is the out-of-RAM story: throughput should stay
// flat-ish while the resident delta tier stays bounded no matter how big
// the shard grows.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "eval/report.h"
#include "obs/metrics.h"
#include "platform/data_store.h"
#include "platform/entity.h"

int main() {
  using namespace wf;
  using Clock = std::chrono::steady_clock;
  const uint64_t seed = bench::BenchSeed();

  const std::string dir = "/tmp/wf_bench_storage";

  std::printf("%s", eval::Banner("Storage engine — LSM segment store at "
                                 "1x/10x/100x corpus scale")
                        .c_str());
  std::printf("Memtable ceiling fixed at 64 KiB: everything past it lives "
              "in immutable segment files, so the 100x shard runs with the "
              "same RAM budget as the 1x shard.\n\n");
  eval::TablePrinter table({"Scale", "Entities", "Ingest k/s", "Get k/s",
                            "Scan k/s", "Flushes", "Compactions", "Segments",
                            "Memtable KiB"});
  bench::BenchJsonWriter json("storage");

  // ~600 entities is the seed corpus's order of magnitude (E1).
  for (size_t scale : {1, 10, 100}) {
    const size_t entities = 600 * scale;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    obs::MetricsRegistry metrics;
    platform::DataStore ds;
    ds.AttachMetrics(&metrics);
    store::LsmOptions opts;
    opts.memtable_ceiling_bytes = 64 << 10;
    WF_CHECK_OK(ds.EnableSegments(dir, "shard", opts));

    // Ingest: synthetic review bodies, ids hashed off the seed so the
    // sweep is reproducible.
    auto t0 = Clock::now();
    for (size_t i = 0; i < entities; ++i) {
      platform::Entity e(
          common::StrFormat("doc-%llu-%zu",
                            static_cast<unsigned long long>(seed), i),
          "bench");
      e.SetBody(common::StrFormat(
          "review %zu: the battery life is %s and the screen %s", i,
          i % 3 == 0 ? "great" : "poor", i % 2 == 0 ? "shines" : "glares"));
      WF_CHECK_OK(ds.Upsert(std::move(e)));
    }
    auto t1 = Clock::now();

    // Point reads: a strided sweep touching every tier.
    size_t reads = 0;
    auto t2 = Clock::now();
    for (size_t i = 0; i < entities; i += 3) {
      auto got = ds.Get(common::StrFormat(
          "doc-%llu-%zu", static_cast<unsigned long long>(seed), i));
      WF_CHECK_OK(got.status());
      ++reads;
    }
    auto t3 = Clock::now();

    // Sorted scan: the merged sweep mining runs on.
    size_t scanned = 0;
    auto t4 = Clock::now();
    ds.ForEach([&scanned](const platform::Entity&) { ++scanned; });
    auto t5 = Clock::now();
    WF_CHECK(scanned == entities);

    const double ingest_s = std::chrono::duration<double>(t1 - t0).count();
    const double get_s = std::chrono::duration<double>(t3 - t2).count();
    const double scan_s = std::chrono::duration<double>(t5 - t4).count();
    const double ingest_kps = entities / ingest_s / 1000.0;
    const double get_kps = reads / get_s / 1000.0;
    const double scan_kps = scanned / scan_s / 1000.0;

    table.AddRow({common::StrFormat("%zux", scale),
                  std::to_string(entities),
                  common::StrFormat("%.1f", ingest_kps),
                  common::StrFormat("%.1f", get_kps),
                  common::StrFormat("%.1f", scan_kps),
                  std::to_string(ds.flushes()),
                  std::to_string(ds.compactions()),
                  std::to_string(ds.segment_count()),
                  common::StrFormat("%.1f", ds.memtable_bytes() / 1024.0)});
    json.AddRow(
        "scale_sweep",
        {bench::Int("scale", scale), bench::Int("entities", entities),
         bench::Num("ingest_kps", ingest_kps), bench::Num("get_kps", get_kps),
         bench::Num("scan_kps", scan_kps), bench::Int("flushes", ds.flushes()),
         bench::Int("compactions", ds.compactions()),
         bench::Int("segments", ds.segment_count()),
         bench::Int("memtable_bytes", ds.memtable_bytes()),
         bench::Int("memtable_ceiling_bytes", opts.memtable_ceiling_bytes)});
    json.AddSnapshot("metrics", metrics.Snapshot());
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf("Flushes grow with the corpus while the memtable stays under "
              "its ceiling; compaction keeps the segment count sublinear in "
              "the flush count (size-tiered merging).\n");
  const std::string path = json.WriteFile();
  if (!path.empty()) std::printf("JSON: %s\n", path.c_str());
  std::filesystem::remove_all(dir);
  return 0;
}
