// Reproduces Table 4: performance comparison of sentiment extraction
// algorithms on the product review datasets (digital cameras + music).
// Paper reference values: SM P=87% R=56% Acc=85.6%; Collocation P=18%
// R=70%; ReviewSeer Acc=88.4% (document-level).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baseline/reviewseer.h"
#include "bench/bench_util.h"
#include "corpus/datasets.h"
#include "eval/evaluator.h"
#include "eval/report.h"

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();

  corpus::ReviewDataset camera = corpus::BuildCameraDataset(seed);
  corpus::ReviewDataset music = corpus::BuildMusicDataset(seed + 100);
  std::vector<corpus::GeneratedDoc> reviews = camera.d_plus;
  reviews.insert(reviews.end(), music.d_plus.begin(), music.d_plus.end());

  eval::GoldEvaluator evaluator;
  eval::EvalOptions options;

  eval::ClassBreakdown breakdown;
  eval::Confusion sm = evaluator.EvaluateMiner(reviews, options, &breakdown);
  eval::Confusion colloc = evaluator.EvaluateCollocation(reviews, options);

  baseline::ReviewSeerClassifier reviewseer;
  for (const corpus::GeneratedDoc& d : camera.train) {
    reviewseer.AddTrainingDocument(d.body, d.doc_polarity);
  }
  for (const corpus::GeneratedDoc& d : music.train) {
    reviewseer.AddTrainingDocument(d.body, d.doc_polarity);
  }
  reviewseer.Train();
  eval::Confusion rs =
      evaluator.EvaluateReviewSeerDocuments(reviewseer, reviews);

  std::printf("%s", eval::Banner("Table 4 — product review datasets "
                                 "(cameras + music)")
                        .c_str());
  std::printf("Test cases: %zu gold (subject, sentence) points over %zu "
              "reviews; ReviewSeer scored per document (%zu docs, trained "
              "on %zu held-out reviews).\n\n",
              sm.total(), reviews.size(), reviews.size(),
              camera.train.size() + music.train.size());

  eval::TablePrinter table(
      {"System", "Precision", "Recall", "Accuracy", "Paper P/R/Acc"});
  table.AddRow({"Sentiment Miner", eval::Pct(sm.precision()),
                eval::Pct(sm.recall()), eval::Pct(sm.accuracy()),
                "87 / 56 / 85.6"});
  table.AddRow({"Collocation", eval::Pct(colloc.precision()),
                eval::Pct(colloc.recall()), eval::Pct(colloc.accuracy()),
                "18 / 70 / n/a"});
  table.AddRow({"ReviewSeer (doc-level)", "n/a", "n/a",
                eval::Pct(rs.accuracy()), "n/a / n/a / 88.4"});
  std::printf("%s\n", table.ToString().c_str());

  bench::BenchJsonWriter json("table4_product_reviews");
  json.AddRow("systems", {bench::Str("system", "sentiment_miner"),
                          bench::Num("precision", sm.precision()),
                          bench::Num("recall", sm.recall()),
                          bench::Num("accuracy", sm.accuracy())});
  json.AddRow("systems", {bench::Str("system", "collocation"),
                          bench::Num("precision", colloc.precision()),
                          bench::Num("recall", colloc.recall()),
                          bench::Num("accuracy", colloc.accuracy())});
  json.AddRow("systems", {bench::Str("system", "reviewseer_doc"),
                          bench::Num("accuracy", rs.accuracy())});

  std::printf("Per-class diagnostics (A=extractable, B=missed-by-design, "
              "C=neutral, D=trap):\n");
  eval::TablePrinter diag({"Class", "Cases", "Extracted", "Recall", "Acc"});
  for (const auto& [clazz, conf] : breakdown.by_class) {
    diag.AddRow({std::string(1, clazz),
                 std::to_string(conf.total()),
                 std::to_string(conf.extracted()),
                 eval::Pct(conf.recall()), eval::Pct(conf.accuracy())});
    json.AddRow("by_class", {bench::Str("class", std::string(1, clazz)),
                             bench::Int("cases", conf.total()),
                             bench::Int("extracted", conf.extracted()),
                             bench::Num("recall", conf.recall()),
                             bench::Num("accuracy", conf.accuracy())});
  }
  std::printf("%s", diag.ToString().c_str());

  std::string json_path = json.WriteFile();
  if (!json_path.empty()) {
    std::printf("\nMachine-readable results: %s\n", json_path.c_str());
  }
  return 0;
}
