// Reproduces Table 3: product-name vs feature-term reference counts over
// the digital camera D+ collection. Paper reference: 15 products with 2474
// references vs 55 feature terms with 30616 references — feature terms are
// referenced an order of magnitude (~13x) more often, which is why
// aspect-level sentiment matters.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "spot/spotter.h"
#include "text/tokenizer.h"

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();
  corpus::ReviewDataset camera = corpus::BuildCameraDataset(seed);
  const corpus::DomainVocab& domain = *camera.domain;

  // Two spotters: products (brand-level roll-up, as in the paper's table)
  // and feature terms.
  spot::Spotter product_spotter;
  std::map<int, std::string> product_names;
  int next_id = 0;
  for (const corpus::Product& p : domain.products) {
    spot::SynonymSet set;
    set.id = next_id;
    set.canonical = p.name;
    set.variants = p.variants;
    product_names[next_id] = p.brand;
    product_spotter.AddSynonymSet(set);
    ++next_id;
  }
  spot::Spotter feature_spotter;
  std::map<int, std::string> feature_names;
  next_id = 0;
  for (const std::string& f : domain.features) {
    spot::SynonymSet set;
    set.id = next_id;
    set.canonical = f;
    // Plural variant so "batteries" counts toward "battery".
    if (f.find(' ') == std::string::npos && f.back() != 's') {
      set.variants.push_back(f + "s");
    }
    feature_names[next_id] = f;
    feature_spotter.AddSynonymSet(set);
    ++next_id;
  }

  std::map<std::string, size_t> product_counts;  // by brand
  std::map<std::string, size_t> feature_counts;
  text::Tokenizer tokenizer;
  for (const corpus::GeneratedDoc& doc : camera.d_plus) {
    text::TokenStream tokens = tokenizer.Tokenize(doc.body);
    for (const spot::SubjectSpot& s : product_spotter.Spot(tokens)) {
      ++product_counts[product_names[s.synset_id]];
    }
    for (const spot::SubjectSpot& s : feature_spotter.Spot(tokens)) {
      ++feature_counts[feature_names[s.synset_id]];
    }
  }

  auto sorted_desc = [](const std::map<std::string, size_t>& m) {
    std::vector<std::pair<std::string, size_t>> v(m.begin(), m.end());
    std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    return v;
  };
  auto products = sorted_desc(product_counts);
  auto features = sorted_desc(feature_counts);
  size_t product_total = 0, feature_total = 0;
  for (const auto& [k, v] : products) product_total += v;
  for (const auto& [k, v] : features) feature_total += v;

  std::printf("%s", eval::Banner("Table 3 — product vs feature references "
                                 "(camera D+)")
                        .c_str());
  eval::TablePrinter table(
      {"Brand", "# refs", "Feature term", "# refs"});
  size_t rows = std::max(products.size(), std::min<size_t>(7, features.size()));
  rows = std::max<size_t>(rows, 7);
  for (size_t i = 0; i < rows; ++i) {
    std::string b = i < products.size() ? products[i].first : "";
    std::string bc = i < products.size()
                         ? std::to_string(products[i].second)
                         : "";
    std::string f = i < features.size() ? features[i].first : "";
    std::string fc = i < features.size()
                         ? std::to_string(features[i].second)
                         : "";
    table.AddRow({b, bc, f, fc});
  }
  table.AddRule();
  table.AddRow({common::StrFormat("%zu products", domain.products.size()),
                std::to_string(product_total),
                common::StrFormat("%zu features", features.size()),
                std::to_string(feature_total)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Feature terms are referenced %.1fx more often than product "
              "names (paper: 12.4x).\n",
              static_cast<double>(feature_total) /
                  static_cast<double>(product_total));
  return 0;
}
