// Reproduces Table 5: sentiment miner vs ReviewSeer on general web
// documents and news articles. Paper reference values:
//   SM (Petroleum, Web)      P=86%  Acc=90%
//   SM (Pharmaceutical, Web) P=91%  Acc=93%
//   SM (Petroleum, News)     P=88%  Acc=91%
//   ReviewSeer (Web)         Acc=38%, 68% without the difficult "I class".

#include <cstdio>
#include <vector>

#include "baseline/reviewseer.h"
#include "bench/bench_util.h"
#include "corpus/datasets.h"
#include "eval/evaluator.h"
#include "eval/report.h"

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();

  corpus::WebDataset petro_web = corpus::BuildPetroleumWebDataset(seed + 1);
  corpus::WebDataset pharma_web = corpus::BuildPharmaWebDataset(seed + 2);
  corpus::WebDataset petro_news =
      corpus::BuildPetroleumNewsDataset(seed + 3);

  eval::GoldEvaluator evaluator;
  eval::EvalOptions options;

  eval::Confusion sm_pw = evaluator.EvaluateMiner(petro_web.docs, options);
  eval::Confusion sm_fw = evaluator.EvaluateMiner(pharma_web.docs, options);
  eval::Confusion sm_pn = evaluator.EvaluateMiner(petro_news.docs, options);

  // ReviewSeer is trained on reviews (its home domain), then applied to the
  // sentiment-bearing candidate sentences of the web corpora — the paper's
  // protocol.
  corpus::ReviewDataset camera = corpus::BuildCameraDataset(seed);
  corpus::ReviewDataset music = corpus::BuildMusicDataset(seed + 100);
  baseline::ReviewSeerClassifier reviewseer;
  for (const corpus::GeneratedDoc& d : camera.train) {
    reviewseer.AddTrainingDocument(d.body, d.doc_polarity);
  }
  for (const corpus::GeneratedDoc& d : music.train) {
    reviewseer.AddTrainingDocument(d.body, d.doc_polarity);
  }
  reviewseer.Train();

  std::vector<corpus::GeneratedDoc> web = petro_web.docs;
  web.insert(web.end(), pharma_web.docs.begin(), pharma_web.docs.end());

  eval::EvalOptions candidates;
  candidates.only_sentiment_candidates = true;
  eval::Confusion rs_web = evaluator.EvaluateReviewSeerSentences(
      reviewseer, web, /*binary=*/true, candidates);

  eval::EvalOptions no_i = candidates;
  no_i.skip_i_class = true;
  eval::Confusion rs_web_no_i = evaluator.EvaluateReviewSeerSentences(
      reviewseer, web, /*binary=*/true, no_i);

  std::printf("%s",
              eval::Banner("Table 5 — general web documents and news "
                           "articles")
                  .c_str());
  eval::TablePrinter table(
      {"System (domain, source)", "Precision", "Accuracy", "Paper P/Acc"});
  table.AddRow({"SM (Petroleum, Web)", eval::Pct(sm_pw.precision()),
                eval::Pct(sm_pw.accuracy()), "86 / 90"});
  table.AddRow({"SM (Pharmaceutical, Web)", eval::Pct(sm_fw.precision()),
                eval::Pct(sm_fw.accuracy()), "91 / 93"});
  table.AddRow({"SM (Petroleum, News)", eval::Pct(sm_pn.precision()),
                eval::Pct(sm_pn.accuracy()), "88 / 91"});
  table.AddRule();
  table.AddRow({"ReviewSeer (Web)", "n/a", eval::Pct(rs_web.accuracy()),
                "n/a / 38"});
  table.AddRow({"ReviewSeer (Web, w/o I class)", "n/a",
                eval::Pct(rs_web_no_i.accuracy()), "n/a / 68"});
  std::printf("%s\n", table.ToString().c_str());

  size_t i_cases = rs_web.total() - rs_web_no_i.total();
  std::printf("I-class (ambiguous / off-target / no-sentiment) cases: %zu "
              "of %zu sentiment-bearing candidates (%.0f%%; the paper "
              "reports 60-90%% depending on domain).\n",
              i_cases, rs_web.total(),
              100.0 * static_cast<double>(i_cases) /
                  static_cast<double>(rs_web.total()));
  return 0;
}
