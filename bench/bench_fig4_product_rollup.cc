// Reproduces Figure 4: the GUI roll-up of sentiment mining results on
// general web pages of the pharmaceutical domain — per product, how many
// pages carry positive vs negative sentiment (product names masked, as the
// paper's screenshots mask them).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/miner.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();
  corpus::WebDataset pharma = corpus::BuildPharmaWebDataset(seed + 2);

  lexicon::SentimentLexicon lex = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  core::SentimentMiner::Config config;
  config.record_neutral = false;
  core::SentimentMiner miner(&lex, &patterns, config);
  int id = 0;
  for (const corpus::Product& p : pharma.domain->products) {
    spot::SynonymSet set;
    set.id = id++;
    set.canonical = p.name;
    set.variants = p.variants;
    miner.AddSubject(set);
  }

  core::SentimentStore store;
  for (const corpus::GeneratedDoc& doc : pharma.docs) {
    miner.ProcessDocument(doc.id, doc.body, &store);
  }

  std::printf("%s", eval::Banner("Figure 4 — per-product sentiment roll-up "
                                 "(pharmaceutical web pages)")
                        .c_str());
  eval::TablePrinter table({"Product", "Pages w/ sentiment", "Positive",
                            "Negative", "Positive share"});
  int masked = 1;
  for (const std::string& subject : store.Subjects()) {
    core::SentimentStore::PageAggregate pages =
        store.PagesForSubject(subject);
    core::SentimentAggregate agg = store.ForSubject(subject);
    std::string bar;
    int width = static_cast<int>(agg.PositiveShare() * 20.0);
    for (int i = 0; i < 20; ++i) bar += (i < width) ? '#' : '.';
    table.AddRow({common::StrFormat("Product %d", masked++),
                  std::to_string(pages.pages),
                  std::to_string(pages.pages_positive),
                  std::to_string(pages.pages_negative),
                  common::StrFormat("%s %.0f%%", bar.c_str(),
                                    agg.PositiveShare() * 100.0)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("(Product names masked as in the paper's screenshots.)\n");
  return 0;
}
