// Reproduces §4.1's model-selection claim: "The best performing candidate
// feature term extraction heuristic and the feature term selection
// algorithm combination was the likelihood ratio test on terms extracted
// with the bBNP heuristic." Sweeps all heuristic x selection combinations
// on the camera dataset and reports precision against the gold feature
// vocabulary.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "feature/feature_extractor.h"
#include "text/inflection.h"

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();
  corpus::ReviewDataset camera = corpus::BuildCameraDataset(seed);

  std::set<std::string> gold;
  for (const std::string& f : camera.domain->features) {
    gold.insert(f);
    gold.insert(text::SingularizeNoun(f));
  }

  std::printf("%s", eval::Banner("Feature extraction: heuristic x "
                                 "selection sweep (camera reviews)")
                        .c_str());
  eval::TablePrinter table({"Heuristic", "Selection", "Extracted",
                            "Correct", "Precision"});

  double best_precision = -1.0;
  std::string best_combo;
  for (feature::CandidateHeuristic heuristic :
       {feature::CandidateHeuristic::kBNP,
        feature::CandidateHeuristic::kDBNP,
        feature::CandidateHeuristic::kBBNP}) {
    for (feature::SelectionMethod selection :
         {feature::SelectionMethod::kLikelihoodRatio,
          feature::SelectionMethod::kMutualInformation,
          feature::SelectionMethod::kChiSquare}) {
      feature::FeatureExtractor::Options options;
      options.heuristic = heuristic;
      options.selection = selection;
      options.top_n = 40;  // common budget across combos
      feature::FeatureExtractor extractor(options);
      for (const corpus::GeneratedDoc& d : camera.d_plus) {
        extractor.AddDocument(d.body, true);
      }
      for (const corpus::GeneratedDoc& d : camera.d_minus) {
        extractor.AddDocument(d.body, false);
      }
      std::vector<feature::FeatureTerm> terms = extractor.Extract();
      size_t correct = 0;
      for (const feature::FeatureTerm& t : terms) {
        if (gold.count(t.phrase) > 0) ++correct;
      }
      double precision =
          terms.empty() ? 0.0
                        : static_cast<double>(correct) / terms.size();
      std::string h(feature::CandidateHeuristicName(heuristic));
      std::string s(feature::SelectionMethodName(selection));
      table.AddRow({h, s, std::to_string(terms.size()),
                    std::to_string(correct), eval::Pct(precision)});
      // The paper's winner must win (ties broken toward bBNP-L).
      if (precision > best_precision) {
        best_precision = precision;
        best_combo = h + " + " + s;
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Best combination: %s (paper: bBNP + likelihood-ratio).\n",
              best_combo.c_str());
  return 0;
}
