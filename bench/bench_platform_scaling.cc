// Exercises the architecture of Figures 1-3: the full
// ingest -> store -> mine -> index -> query pipeline on the simulated
// shared-nothing cluster, sweeping the node count. The paper's platform
// scales by full parallelism over shards; the same shape (near-linear
// mining speed-up with nodes, flat scatter/gather query latency) should
// hold in the simulation.

#include <chrono>
#include <filesystem>
#include <thread>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"
#include "platform/fault.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"

int main() {
  using namespace wf;
  using Clock = std::chrono::steady_clock;
  const uint64_t seed = bench::BenchSeed();

  // A mixed crawl: petroleum + pharma web pages.
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(seed + 1);
  corpus::WebDataset pharma = corpus::BuildPharmaWebDataset(seed + 2);
  std::vector<std::pair<std::string, std::string>> docs;
  for (const corpus::GeneratedDoc& d : petro.docs) {
    docs.emplace_back(d.id, d.body);
  }
  for (const corpus::GeneratedDoc& d : pharma.docs) {
    docs.emplace_back(d.id, d.body);
  }

  lexicon::SentimentLexicon lex = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();

  std::printf("%s", eval::Banner("Platform scaling — ingest/mine/index/"
                                 "query vs node count")
                        .c_str());
  std::printf("Hardware threads available: %u — mining speed-up is bounded "
              "by this; on a single-core host the sweep measures sharding "
              "overhead instead (expect ~flat mine times and query latency "
              "growing mildly with the scatter width).\n\n",
              std::thread::hardware_concurrency());
  eval::TablePrinter table({"Nodes", "Entities", "Ingest ms", "Mine+index ms",
                            "Speed-up", "Query us (avg of 64)"});
  bench::BenchJsonWriter json("platform_scaling");

  double base_mine_ms = 0.0;
  for (size_t nodes : {1, 2, 4, 8}) {
    platform::Cluster cluster(nodes);
    // Model a ~200us network round trip per service call, as on the real
    // cluster; scatter/gather latency then scales with fan-out.
    cluster.bus().SetSimulatedLatency(200);

    auto t0 = Clock::now();
    platform::BatchIngestor ingestor("crawl", docs);
    size_t stored = platform::IngestAll(ingestor, cluster);
    auto t1 = Clock::now();

    cluster.DeployMiner([&lex, &patterns] {
      return std::make_unique<platform::AdHocSentimentMinerPlugin>(
          &lex, &patterns);
    });
    cluster.MineAndIndexAll();
    auto t2 = Clock::now();

    platform::SentimentQueryService service(&cluster);
    WF_CHECK_OK(service.RegisterService());
    // Scatter/gather query latency over the bus.
    auto t3 = Clock::now();
    size_t total_hits = 0;
    const auto& products = pharma.domain->products;
    for (int i = 0; i < 64; ++i) {
      platform::SentimentQueryResult r = service.Query(
          products[static_cast<size_t>(i) % products.size()].name, 4);
      total_hits += r.positive_docs + r.negative_docs;
    }
    auto t4 = Clock::now();

    double ingest_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double mine_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    double query_us =
        std::chrono::duration<double, std::micro>(t4 - t3).count() / 64.0;
    if (nodes == 1) base_mine_ms = mine_ms;
    table.AddRow({std::to_string(nodes), std::to_string(stored),
                  common::StrFormat("%.1f", ingest_ms),
                  common::StrFormat("%.1f", mine_ms),
                  common::StrFormat("%.2fx", base_mine_ms / mine_ms),
                  common::StrFormat("%.0f", query_us)});
    json.AddRow("scaling",
                {bench::Int("nodes", nodes), bench::Int("entities", stored),
                 bench::Num("ingest_ms", ingest_ms),
                 bench::Num("mine_ms", mine_ms),
                 bench::Num("speedup", base_mine_ms / mine_ms),
                 bench::Num("query_us", query_us)});
    (void)total_hits;
  }
  std::printf("%s", table.ToString().c_str());

  // --- Resilience: the same query mix on a degraded 4-node cluster ---------
  // Chaos costs latency (retries, backoff) but never correctness: queries
  // complete with honest coverage, and after healing the answers return to
  // the fault-free shape.
  std::printf("%s", eval::Banner("Resilience — query latency and coverage "
                                 "under injected faults (4 nodes)")
                        .c_str());
  platform::Cluster cluster(4);
  cluster.bus().SetSimulatedLatency(200);
  platform::BatchIngestor ingestor("crawl", docs);
  (void)platform::IngestAll(ingestor, cluster);
  cluster.DeployMiner([&lex, &patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lex,
                                                                 &patterns);
  });
  cluster.MineAndIndexAll();
  platform::SentimentQueryService service(&cluster);
  WF_CHECK_OK(service.RegisterService());

  platform::FaultInjector injector(seed + 3);
  cluster.bus().AttachFaultInjector(&injector);

  eval::TablePrinter rtable({"Scenario", "Query us (avg of 32)",
                             "Nodes responded", "Fetch failures"});
  auto measure = [&](const std::string& label) {
    const auto& products = petro.domain->products;
    size_t responded = 0, total = 0, fetch_failures = 0;
    auto t0 = Clock::now();
    for (int i = 0; i < 32; ++i) {
      platform::SentimentQueryResult r = service.Query(
          products[static_cast<size_t>(i) % products.size()].name, 4);
      responded += r.nodes_responded;
      total += r.nodes_total;
      fetch_failures += r.fetch_failures;
    }
    auto t1 = Clock::now();
    double query_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / 32.0;
    rtable.AddRow({label, common::StrFormat("%.0f", query_us),
                   common::StrFormat("%zu/%zu", responded, total),
                   std::to_string(fetch_failures)});
    json.AddRow("resilience",
                {bench::Str("scenario", label), bench::Num("query_us", query_us),
                 bench::Int("nodes_responded", responded),
                 bench::Int("nodes_total", total),
                 bench::Int("fetch_failures", fetch_failures)});
  };

  measure("fault-free");
  platform::FaultPolicy flaky;
  flaky.fail_probability = 0.2;
  injector.SetPolicy("node/", flaky);
  measure("20% call failures");
  injector.Partition("node/1/");
  measure("+ node 1 partitioned");
  injector.HealAll();
  injector.ClearAllPolicies();
  cluster.bus().ResetBreakers();
  measure("healed, breakers reset");
  std::printf("%s", rtable.ToString().c_str());

  // --- Recovery: durability tax and crash/restart cost (4 nodes) -----------
  // The WAL append barrier prices every ingest; checkpoints amortise replay;
  // a crashed node restarts from its newest snapshot plus the WAL tail.
  std::printf("%s", eval::Banner("Recovery — WAL ingest, checkpoint, and "
                                 "crash/restart cost (4 nodes)")
                        .c_str());
  const std::string dur_dir =
      "/tmp/wf_bench_recovery_" + std::to_string(seed % 100000);
  std::filesystem::remove_all(dur_dir);
  std::filesystem::create_directories(dur_dir);
  {
    platform::Cluster durable(4);
    WF_CHECK_OK(durable.EnableDurability({dur_dir, 0}));
    durable.DeployMiner([&lex, &patterns] {
      return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lex,
                                                                   &patterns);
    });

    auto t0 = Clock::now();
    platform::BatchIngestor dur_ingestor("crawl", docs);
    size_t stored = platform::IngestAll(dur_ingestor, durable);
    auto t1 = Clock::now();
    durable.MineAndIndexAll();

    auto t2 = Clock::now();
    WF_CHECK_OK(durable.CheckpointAll());
    auto t3 = Clock::now();

    // Land a slice of fresh writes after the checkpoint so the restarted
    // node has a WAL tail to replay, then kill and restart it.
    std::vector<std::pair<std::string, std::string>> tail_docs;
    for (size_t i = 0; i < docs.size() / 4; ++i) {
      tail_docs.emplace_back("tail-" + std::to_string(i), docs[i].second);
    }
    platform::BatchIngestor tail_ingestor("crawl", tail_docs);
    (void)platform::IngestAll(tail_ingestor, durable);

    const size_t victim = 1;
    auto t4 = Clock::now();
    WF_CHECK_OK(durable.CrashNode(victim));
    WF_CHECK_OK(durable.RestartNode(victim));
    auto t5 = Clock::now();

    double ingest_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double checkpoint_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    double restart_ms =
        std::chrono::duration<double, std::milli>(t5 - t4).count();
    platform::ClusterStats dur_stats = durable.CollectStats();
    uint64_t replayed =
        dur_stats.merged.CounterValue("wal/replayed_records_total");

    eval::TablePrinter dtable({"Entities", "Durable ingest ms",
                               "Checkpoint ms", "Crash+restart ms",
                               "Records replayed"});
    dtable.AddRow({std::to_string(stored),
                   common::StrFormat("%.1f", ingest_ms),
                   common::StrFormat("%.1f", checkpoint_ms),
                   common::StrFormat("%.1f", restart_ms),
                   std::to_string(replayed)});
    std::printf("%s", dtable.ToString().c_str());
    json.AddRow("recovery",
                {bench::Int("entities", stored),
                 bench::Num("durable_ingest_ms", ingest_ms),
                 bench::Num("checkpoint_ms", checkpoint_ms),
                 bench::Num("crash_restart_ms", restart_ms),
                 bench::Int("replayed_records", replayed)});
  }
  std::filesystem::remove_all(dur_dir);

  // Cluster-wide wf_obs roll-up (call/retry/breaker counters, latency
  // histograms) rides along in the JSON for post-hoc analysis.
  platform::ClusterStats stats = cluster.CollectStats();
  json.AddSnapshot("metrics", stats.merged);
  std::string json_path = json.WriteFile();
  if (!json_path.empty()) {
    std::printf("\nMachine-readable results: %s\n", json_path.c_str());
  }
  return 0;
}
