// Exercises the architecture of Figures 1-3: the full
// ingest -> store -> mine -> index -> query pipeline on the simulated
// shared-nothing cluster, sweeping the node count. The paper's platform
// scales by full parallelism over shards; the same shape (near-linear
// mining speed-up with nodes, flat scatter/gather query latency) should
// hold in the simulation.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <new>
#include <thread>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "corpus/domain.h"
#include "corpus/web_gen.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "obs/metrics.h"
#include "core/analysis.h"
#include "platform/cluster.h"
#include "platform/fault.h"
#include "platform/ingest.h"
#include "platform/mine_executor.h"
#include "platform/miner_framework.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"

// This TU replaces operator new with a malloc-backed counting allocator;
// GCC's inliner then sees malloc'd pointers reach the (replaced,
// free-backed) delete and flags a mismatch that is not one.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// Counting global allocator so the mining sweep can report allocations per
// analyzed document alongside throughput — the number the arena/interner
// front half is supposed to hold down (tests/alloc_gate_test.cc gates it;
// this bench trends it). One relaxed atomic increment per allocation is
// noise next to malloc itself.
static std::atomic<uint64_t> g_new_calls{0};

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

int main() {
  using namespace wf;
  using Clock = std::chrono::steady_clock;
  const uint64_t seed = bench::BenchSeed();

  // A mixed crawl: petroleum + pharma web pages.
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(seed + 1);
  corpus::WebDataset pharma = corpus::BuildPharmaWebDataset(seed + 2);
  std::vector<std::pair<std::string, std::string>> docs;
  for (const corpus::GeneratedDoc& d : petro.docs) {
    docs.emplace_back(d.id, d.body);
  }
  for (const corpus::GeneratedDoc& d : pharma.docs) {
    docs.emplace_back(d.id, d.body);
  }

  lexicon::SentimentLexicon lex = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();

  std::printf("%s", eval::Banner("Platform scaling — ingest/mine/index/"
                                 "query vs node count")
                        .c_str());
  std::printf("Hardware threads available: %u — mining speed-up is bounded "
              "by this; on a single-core host the sweep measures sharding "
              "overhead instead (expect ~flat mine times and query latency "
              "growing mildly with the scatter width).\n\n",
              std::thread::hardware_concurrency());
  eval::TablePrinter table({"Nodes", "Entities", "Ingest ms", "Mine+index ms",
                            "Speed-up", "Query us (avg of 64)"});
  bench::BenchJsonWriter json("platform_scaling");

  double base_mine_ms = 0.0;
  for (size_t nodes : {1, 2, 4, 8}) {
    platform::Cluster cluster(nodes);
    // Model a ~200us network round trip per service call, as on the real
    // cluster; scatter/gather latency then scales with fan-out.
    cluster.bus().SetSimulatedLatency(200);

    auto t0 = Clock::now();
    platform::BatchIngestor ingestor("crawl", docs);
    size_t stored = platform::IngestAll(ingestor, cluster);
    auto t1 = Clock::now();

    cluster.DeployMiner([&lex, &patterns] {
      return std::make_unique<platform::AdHocSentimentMinerPlugin>(
          &lex, &patterns);
    });
    cluster.MineAndIndexAll();
    auto t2 = Clock::now();

    platform::SentimentQueryService service(&cluster);
    WF_CHECK_OK(service.RegisterService());
    // Scatter/gather query latency over the bus.
    auto t3 = Clock::now();
    size_t total_hits = 0;
    const auto& products = pharma.domain->products;
    for (int i = 0; i < 64; ++i) {
      platform::SentimentQueryResult r = service.Query(
          products[static_cast<size_t>(i) % products.size()].name, 4);
      total_hits += r.positive_docs + r.negative_docs;
    }
    auto t4 = Clock::now();

    double ingest_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double mine_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    double query_us =
        std::chrono::duration<double, std::micro>(t4 - t3).count() / 64.0;
    if (nodes == 1) base_mine_ms = mine_ms;
    table.AddRow({std::to_string(nodes), std::to_string(stored),
                  common::StrFormat("%.1f", ingest_ms),
                  common::StrFormat("%.1f", mine_ms),
                  common::StrFormat("%.2fx", base_mine_ms / mine_ms),
                  common::StrFormat("%.0f", query_us)});
    json.AddRow("scaling",
                {bench::Int("nodes", nodes), bench::Int("entities", stored),
                 bench::Num("ingest_ms", ingest_ms),
                 bench::Num("mine_ms", mine_ms),
                 bench::Num("speedup", base_mine_ms / mine_ms),
                 bench::Num("query_us", query_us)});
    (void)total_hits;
  }
  std::printf("%s", table.ToString().c_str());

  // --- Mining: executor thread sweep + analysis-cache warmth (1 shard) -----
  // Isolates the two tentpole effects on a single shard's mining sweep
  // (MinerPipeline::ProcessStore — no indexing or query in the timed
  // region): the MineExecutor's worker count (cold, recomputing every
  // artifact) and the shared analysis cache (the identical sweep over a
  // fresh store with every tokenize/tag/parse a cache hit). Cold and warm
  // each sweep their own freshly filled store: re-mining the *same* store
  // would append duplicate annotation layers and bloat the entity copies,
  // confounding the comparison. Thread speed-up is bounded by the hardware
  // counter printed above — on a single-core host expect ~flat cold times;
  // the warm/cold ratio is algorithmic and holds everywhere.
  std::printf("%s", eval::Banner("Mining — executor threads and analysis "
                                 "cache, one shard")
                        .c_str());
  // 100x the cluster sweep's corpus: 60k+ entities, so the sweep runs long
  // enough that per-document costs (allocations, cache probes) dominate
  // fixed setup and the thread sweep measures steady-state throughput.
  // WF_BENCH_SMALL=1 falls back to the small corpus for quick iteration.
  std::vector<std::pair<std::string, std::string>> mine_docs;
  if (::getenv("WF_BENCH_SMALL") != nullptr) {
    mine_docs = docs;
  } else {
    for (const corpus::GeneratedDoc& d : corpus::GenerateWebDocs(
             corpus::PetroleumDomain(), 30500, seed + 3,
             corpus::WebGenOptions{})) {
      mine_docs.emplace_back(d.id, d.body);
    }
    for (const corpus::GeneratedDoc& d : corpus::GenerateWebDocs(
             corpus::PharmaDomain(), 30500, seed + 4,
             corpus::WebGenOptions{})) {
      mine_docs.emplace_back("ph-" + d.id, d.body);
    }
  }
  std::printf("Mining corpus: %zu entities\n\n", mine_docs.size());
  eval::TablePrinter mtable({"Threads", "Entities", "Cold mine ms",
                             "Warm mine ms", "Cold ents/s", "Warm ents/s",
                             "Warm speed-up", "Allocs/doc"});
  bench::BenchJsonWriter json_mining("mining");
  auto fill_store = [&mine_docs](platform::DataStore& store) {
    for (const auto& [id, body] : mine_docs) {
      platform::Entity e(id, "crawl");
      e.SetBody(body);
      (void)store.Put(std::move(e));
    }
  };
  auto make_pipeline = [&lex, &patterns](core::AnalysisCache* cache) {
    auto p = std::make_unique<platform::MinerPipeline>();
    p->AddMiner(std::make_unique<platform::AdHocSentimentMinerPlugin>(
        &lex, &patterns));
    p->SetAnalysisProvider(cache);
    return p;
  };
  double base_cold_ms = 0.0;
  for (size_t threads : {1, 2, 4, 8}) {
    platform::MineExecutor executor(
        platform::MineExecutorOptions{.threads = threads});

    obs::MetricsRegistry cold_metrics;
    core::AnalysisCache cold_cache(
        core::AnalysisCacheOptions{.max_entries = mine_docs.size()});
    cold_cache.AttachMetrics(&cold_metrics);
    platform::DataStore cold_store;
    fill_store(cold_store);
    auto cold_pipeline = make_pipeline(&cold_cache);
    const uint64_t allocs_before =
        g_new_calls.load(std::memory_order_relaxed);
    auto m0 = Clock::now();
    cold_pipeline->ProcessStore(cold_store, &executor);
    auto m1 = Clock::now();
    const uint64_t cold_allocs =
        g_new_calls.load(std::memory_order_relaxed) - allocs_before;

    // Identical sweep, but the cache already holds every artifact: mining
    // pays NER + lexicon matching only, not tokenize/tag/parse. Sized to
    // keep the whole corpus resident, else the prewarm evicts itself.
    obs::MetricsRegistry warm_metrics;
    core::AnalysisCache warm_cache(
        core::AnalysisCacheOptions{.max_entries = mine_docs.size()});
    warm_cache.AttachMetrics(&warm_metrics);
    platform::DataStore warm_store;
    fill_store(warm_store);
    for (const auto& [id, body] : mine_docs) warm_cache.Analyze(id, body);
    auto warm_pipeline = make_pipeline(&warm_cache);
    auto m2 = Clock::now();
    warm_pipeline->ProcessStore(warm_store, &executor);
    auto m3 = Clock::now();

    size_t stored = cold_store.size();
    double cold_ms =
        std::chrono::duration<double, std::milli>(m1 - m0).count();
    double warm_ms =
        std::chrono::duration<double, std::milli>(m3 - m2).count();
    if (threads == 1) base_cold_ms = cold_ms;
    double cold_eps = cold_ms > 0 ? 1000.0 * stored / cold_ms : 0.0;
    double warm_eps = warm_ms > 0 ? 1000.0 * stored / warm_ms : 0.0;
    const uint64_t allocs_per_doc =
        stored > 0 ? cold_allocs / stored : cold_allocs;
    mtable.AddRow({std::to_string(threads), std::to_string(stored),
                   common::StrFormat("%.1f", cold_ms),
                   common::StrFormat("%.1f", warm_ms),
                   common::StrFormat("%.0f", cold_eps),
                   common::StrFormat("%.0f", warm_eps),
                   common::StrFormat("%.2fx", warm_ms > 0 ? cold_ms / warm_ms
                                                          : 0.0),
                   std::to_string(allocs_per_doc)});
    json_mining.AddRow(
        "mining",
        {bench::Int("threads", threads), bench::Int("entities", stored),
         bench::Num("cold_mine_ms", cold_ms),
         bench::Num("warm_mine_ms", warm_ms),
         bench::Num("entities_per_sec_cold", cold_eps),
         bench::Num("entities_per_sec_warm", warm_eps),
         bench::Num("warm_speedup", warm_ms > 0 ? cold_ms / warm_ms : 0.0),
         bench::Num("thread_speedup_cold",
                    cold_ms > 0 ? base_cold_ms / cold_ms : 0.0),
         bench::Int("allocs_per_doc_cold", allocs_per_doc)});
    // Counter check on the two regimes: the cold sweep misses once per
    // entity; the warm sweep's timed region should be all hits (its misses
    // were paid during untimed pre-warming).
    obs::MetricsSnapshot cold_snap = cold_metrics.Snapshot();
    obs::MetricsSnapshot warm_snap = warm_metrics.Snapshot();
    json_mining.AddRow(
        "mining_cache",
        {bench::Int("threads", threads),
         bench::Int("cold_hits",
                    cold_snap.CounterValue("analysis_cache/hits_total")),
         bench::Int("cold_misses",
                    cold_snap.CounterValue("analysis_cache/misses_total")),
         bench::Int("warm_hits",
                    warm_snap.CounterValue("analysis_cache/hits_total")),
         bench::Int("warm_misses",
                    warm_snap.CounterValue("analysis_cache/misses_total"))});

    // End-to-end context: the same corpus through a 1-node cluster's full
    // MineAndIndexAll (mining + shared-artifact indexing + commit), cold
    // cache. Indexing and store commit dilute the cache's mining win here.
    platform::Cluster e2e(1);
    e2e.ConfigureMining(platform::MineExecutorOptions{.threads = threads});
    platform::BatchIngestor e2e_ingest("crawl", mine_docs);
    platform::IngestAll(e2e_ingest, e2e);
    e2e.DeployMiner([&lex, &patterns] {
      return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lex,
                                                                   &patterns);
    });
    auto e0 = Clock::now();
    e2e.MineAndIndexAll();
    auto e1 = Clock::now();
    double e2e_ms = std::chrono::duration<double, std::milli>(e1 - e0).count();
    json_mining.AddRow(
        "mine_and_index_e2e",
        {bench::Int("threads", threads), bench::Int("entities", stored),
         bench::Num("mine_index_ms", e2e_ms),
         bench::Num("entities_per_sec",
                    e2e_ms > 0 ? 1000.0 * stored / e2e_ms : 0.0)});
  }
  std::printf("%s", mtable.ToString().c_str());
  std::string mining_json_path = json_mining.WriteFile();
  if (!mining_json_path.empty()) {
    std::printf("Machine-readable mining results: %s\n",
                mining_json_path.c_str());
  }

  // --- Resilience: the same query mix on a degraded 4-node cluster ---------
  // Chaos costs latency (retries, backoff) but never correctness: queries
  // complete with honest coverage, and after healing the answers return to
  // the fault-free shape.
  std::printf("%s", eval::Banner("Resilience — query latency and coverage "
                                 "under injected faults (4 nodes)")
                        .c_str());
  platform::Cluster cluster(4);
  cluster.bus().SetSimulatedLatency(200);
  platform::BatchIngestor ingestor("crawl", docs);
  (void)platform::IngestAll(ingestor, cluster);
  cluster.DeployMiner([&lex, &patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lex,
                                                                 &patterns);
  });
  cluster.MineAndIndexAll();
  platform::SentimentQueryService service(&cluster);
  WF_CHECK_OK(service.RegisterService());

  platform::FaultInjector injector(seed + 3);
  cluster.bus().AttachFaultInjector(&injector);

  eval::TablePrinter rtable({"Scenario", "Query us (avg of 32)",
                             "Nodes responded", "Fetch failures"});
  auto measure = [&](const std::string& label) {
    const auto& products = petro.domain->products;
    size_t responded = 0, total = 0, fetch_failures = 0;
    auto t0 = Clock::now();
    for (int i = 0; i < 32; ++i) {
      platform::SentimentQueryResult r = service.Query(
          products[static_cast<size_t>(i) % products.size()].name, 4);
      responded += r.nodes_responded;
      total += r.nodes_total;
      fetch_failures += r.fetch_failures;
    }
    auto t1 = Clock::now();
    double query_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / 32.0;
    rtable.AddRow({label, common::StrFormat("%.0f", query_us),
                   common::StrFormat("%zu/%zu", responded, total),
                   std::to_string(fetch_failures)});
    json.AddRow("resilience",
                {bench::Str("scenario", label), bench::Num("query_us", query_us),
                 bench::Int("nodes_responded", responded),
                 bench::Int("nodes_total", total),
                 bench::Int("fetch_failures", fetch_failures)});
  };

  measure("fault-free");
  platform::FaultPolicy flaky;
  flaky.fail_probability = 0.2;
  injector.SetPolicy("node/", flaky);
  measure("20% call failures");
  injector.Partition("node/1/");
  measure("+ node 1 partitioned");
  injector.HealAll();
  injector.ClearAllPolicies();
  cluster.bus().ResetBreakers();
  measure("healed, breakers reset");
  std::printf("%s", rtable.ToString().c_str());

  // --- Recovery: durability tax and crash/restart cost (4 nodes) -----------
  // The WAL append barrier prices every ingest; checkpoints amortise replay;
  // a crashed node restarts from its newest snapshot plus the WAL tail.
  std::printf("%s", eval::Banner("Recovery — WAL ingest, checkpoint, and "
                                 "crash/restart cost (4 nodes)")
                        .c_str());
  const std::string dur_dir =
      "/tmp/wf_bench_recovery_" + std::to_string(seed % 100000);
  std::filesystem::remove_all(dur_dir);
  std::filesystem::create_directories(dur_dir);
  {
    platform::Cluster durable(4);
    WF_CHECK_OK(durable.EnableDurability({dur_dir, 0}));
    durable.DeployMiner([&lex, &patterns] {
      return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lex,
                                                                   &patterns);
    });

    auto t0 = Clock::now();
    platform::BatchIngestor dur_ingestor("crawl", docs);
    size_t stored = platform::IngestAll(dur_ingestor, durable);
    auto t1 = Clock::now();
    durable.MineAndIndexAll();

    auto t2 = Clock::now();
    WF_CHECK_OK(durable.CheckpointAll());
    auto t3 = Clock::now();

    // Land a slice of fresh writes after the checkpoint so the restarted
    // node has a WAL tail to replay, then kill and restart it.
    std::vector<std::pair<std::string, std::string>> tail_docs;
    for (size_t i = 0; i < docs.size() / 4; ++i) {
      tail_docs.emplace_back("tail-" + std::to_string(i), docs[i].second);
    }
    platform::BatchIngestor tail_ingestor("crawl", tail_docs);
    (void)platform::IngestAll(tail_ingestor, durable);

    const size_t victim = 1;
    auto t4 = Clock::now();
    WF_CHECK_OK(durable.CrashNode(victim));
    WF_CHECK_OK(durable.RestartNode(victim));
    auto t5 = Clock::now();

    double ingest_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    double checkpoint_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    double restart_ms =
        std::chrono::duration<double, std::milli>(t5 - t4).count();
    platform::ClusterStats dur_stats = durable.CollectStats();
    uint64_t replayed =
        dur_stats.merged.CounterValue("wal/replayed_records_total");

    eval::TablePrinter dtable({"Entities", "Durable ingest ms",
                               "Checkpoint ms", "Crash+restart ms",
                               "Records replayed"});
    dtable.AddRow({std::to_string(stored),
                   common::StrFormat("%.1f", ingest_ms),
                   common::StrFormat("%.1f", checkpoint_ms),
                   common::StrFormat("%.1f", restart_ms),
                   std::to_string(replayed)});
    std::printf("%s", dtable.ToString().c_str());
    json.AddRow("recovery",
                {bench::Int("entities", stored),
                 bench::Num("durable_ingest_ms", ingest_ms),
                 bench::Num("checkpoint_ms", checkpoint_ms),
                 bench::Num("crash_restart_ms", restart_ms),
                 bench::Int("replayed_records", replayed)});
  }
  std::filesystem::remove_all(dur_dir);

  // Cluster-wide wf_obs roll-up (call/retry/breaker counters, latency
  // histograms) rides along in the JSON for post-hoc analysis.
  platform::ClusterStats stats = cluster.CollectStats();
  json.AddSnapshot("metrics", stats.merged);
  std::string json_path = json.WriteFile();
  if (!json_path.empty()) {
    std::printf("\nMachine-readable results: %s\n", json_path.c_str());
  }
  return 0;
}
