// Serving-layer overload sweep, driven by the kilo-user load generator
// (bench/loadgen.h): ~2,000+ virtual user sessions (closed + open loop,
// seeded arrival processes) push the query front door at ~1x, ~3x and ~10x
// its measured capacity, then 10x again with 20% injected faults, and 10x
// with faults plus one gray-failing slow node. Hedged scatter, the AIMD
// concurrency controller, and the health scoreboard are all live; each
// phase reports latency percentiles, goodput, shed mix, hedge activity,
// AIMD decisions, and health verdicts. The machine-readable mirror lands
// in BENCH_serving.json — one SLO row per phase.
//
// What the sweep demonstrates: at 1x the door is invisible; past
// saturation goodput holds near capacity while the excess is shed early
// and honestly; under the slow node the hedge/abandon machinery keeps
// scatter tails bounded instead of riding out the straggler; and the AIMD
// limit visibly dips under overload and recovers after. Throughout,
// vinci/deadline_expired_handler_runs_total stays zero.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bench/loadgen.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "obs/metrics.h"
#include "platform/cluster.h"
#include "platform/fault.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"
#include "serve/front_door.h"

namespace {

struct PhaseRow {
  std::string name;
  wf::bench::LoadGenStats stats;
  uint64_t hedges = 0, hedge_wins = 0, hedge_abandoned = 0;
  uint64_t aimd_increase = 0, aimd_decrease = 0;
  int64_t limit_end = 0;
  uint64_t node_calls = 0;
  uint64_t fleet_p95_us = 0;
  size_t suspects = 0;
  uint64_t expired_handler_runs = 0;
};

}  // namespace

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();

  // Corpus and subjects: the two web datasets the other platform benches
  // use, with product names as the "hot" query mix.
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(seed + 1);
  corpus::WebDataset pharma = corpus::BuildPharmaWebDataset(seed + 2);
  std::vector<std::pair<std::string, std::string>> docs;
  std::vector<std::string> subjects;
  for (const auto* ds : {&petro, &pharma}) {
    for (const corpus::GeneratedDoc& d : ds->docs) {
      docs.emplace_back(d.id, d.body);
    }
    for (const corpus::Product& p : ds->domain->products) {
      subjects.push_back(p.name);
    }
  }

  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  platform::Cluster cluster(4);
  platform::BatchIngestor ingestor("web", std::move(docs));
  size_t stored = platform::IngestAll(ingestor, cluster);
  cluster.DeployMiner([&lexicon, &patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lexicon,
                                                                 &patterns);
  });
  cluster.MineAndIndexAll();

  // Tail-tolerance machinery on: hedged scatter with health-informed
  // timing, and the AIMD controller steering the door's slot limit.
  platform::HedgeOptions hedge;
  hedge.default_delay_us = 3000;
  hedge.max_delay_us = 20000;
  cluster.EnableHedging(hedge);

  platform::SentimentQueryService service(&cluster);
  serve::FrontDoorOptions options;
  options.max_concurrent = 4;
  options.interactive_queue_limit = 8;
  options.batch_queue_limit = 2;
  options.default_budget_us = 50000;
  options.aimd.enabled = true;
  options.aimd.target_p99_us = 40000;
  options.aimd.window = 16;
  serve::FrontDoor door(&service, &cluster, options);
  door.AttachMetrics(&cluster.metrics());

  // Every bus round trip costs a little simulated network so saturation is
  // reached by concurrency, not by CPU luck.
  cluster.bus().SetSimulatedLatency(500);

  std::printf("%s",
              eval::Banner("Serving under overload: hedging + AIMD").c_str());
  std::printf("Corpus: %zu pages on %zu nodes; AIMD ceiling=%zu, "
              "queues=%zu+%zu, budget=%llu us, hedging on.\n\n",
              stored, cluster.node_count(), options.max_concurrent,
              options.interactive_queue_limit, options.batch_queue_limit,
              static_cast<unsigned long long>(options.default_budget_us));

  platform::FaultInjector injector(seed + 7);
  platform::FaultPolicy flaky;
  flaky.fail_probability = 0.2;
  injector.SetPolicy("node/", flaky);
  injector.SetPolicy("node/2/",
                     platform::SlowNodePolicy(2000, 1000, 80000, 500));

  bench::QueryFn query = [&door](const serve::QueryRequest& request) {
    return door.Query(request);
  };

  // One phase = one load-generator scenario. Offered load is set by the
  // arrival processes: the open-loop half fires a fixed Poisson schedule
  // at load_x times measured capacity; the closed-loop half thinks at a
  // matching rate but self-throttles when replies slow down.
  size_t sessions_total = 0;
  auto run_phase = [&](const std::string& name, size_t sessions,
                       double offered_qps, bool chaos) {
    door.InvalidateAll();  // each phase measures a cold cache
    if (chaos) cluster.bus().AttachFaultInjector(&injector);

    obs::MetricsSnapshot before = cluster.metrics().Snapshot();
    bench::LoadGenOptions gen;
    gen.sessions = sessions;
    gen.open_loop_fraction = 0.5;
    gen.requests_per_session = 3;
    gen.workers = 16;
    gen.seed = common::HashCombine(seed, common::Fnv1a64(name));
    // Split the offered rate across the two halves: rate-per-session =
    // half-rate / half-population, inverted to a mean gap in microseconds.
    const double half_rate = std::max(offered_qps / 2.0, 1e-9);
    const double half_pop =
        std::max(static_cast<double>(sessions) / 2.0, 1.0);
    gen.mean_interarrival_us =
        static_cast<uint64_t>(half_pop / half_rate * 1e6);
    gen.mean_think_us = gen.mean_interarrival_us;

    bench::LoadGenWorkload workload;
    workload.subjects = subjects;
    workload.budget_us = options.default_budget_us;

    bench::LoadGenStats stats = bench::RunLoadGen(gen, workload, query);
    sessions_total += stats.sessions;

    if (chaos) {
      cluster.bus().AttachFaultInjector(nullptr);
      cluster.bus().ResetBreakers();
    }
    cluster.CollectStats();  // publishes health/* gauges (hedging is on)
    obs::MetricsSnapshot after = cluster.metrics().Snapshot();
    auto delta = [&](const char* counter) {
      return after.CounterValue(counter) - before.CounterValue(counter);
    };

    PhaseRow row;
    row.name = name;
    row.stats = std::move(stats);
    row.hedges = delta("vinci/hedges_total");
    row.hedge_wins = delta("vinci/hedge_wins_total");
    row.hedge_abandoned = delta("vinci/hedge_abandoned_total");
    row.aimd_increase = delta("serve/aimd_increase_total");
    row.aimd_decrease = delta("serve/aimd_decrease_total");
    row.limit_end = after.GaugeValue("serve/concurrency_limit");
    // Primary scatter volume: every vinci/calls/node/* counter (the
    // scatter targets all node services, GatherSearch filters to /search).
    row.node_calls = 0;
    for (const auto& [name, value] : after.counters) {
      if (name.rfind("vinci/calls/node/", 0) == 0) {
        row.node_calls += value - before.CounterValue(name);
      }
    }
    row.fleet_p95_us = cluster.health().FleetLatencyQuantileUs(0.95, 0);
    for (const std::string& svc : cluster.health().Services()) {
      if (cluster.health().Suspect(svc)) ++row.suspects;
    }
    row.expired_handler_runs =
        after.CounterValue("vinci/deadline_expired_handler_runs_total");
    return row;
  };

  // Capacity probe: a small all-closed-loop population with zero think
  // time — the denominator for the load multiples below.
  {
    bench::LoadGenOptions gen;
    gen.sessions = options.max_concurrent;
    gen.open_loop_fraction = 0.0;
    gen.requests_per_session = 40;
    gen.mean_think_us = 0;
    gen.workers = options.max_concurrent;
    gen.seed = seed;
    bench::LoadGenWorkload workload;
    workload.subjects = subjects;
    workload.budget_us = options.default_budget_us;
    bench::LoadGenStats probe = bench::RunLoadGen(gen, workload, query);
    sessions_total += probe.sessions;
    const double capacity_qps = probe.GoodputPerSec();
    std::printf("Capacity probe: %.0f queries/s served closed-loop "
                "(p50 %llu us).\n\n",
                capacity_qps,
                static_cast<unsigned long long>(probe.PercentileUs(0.5)));

    struct PhasePlan {
      const char* name;
      double load_x;
      bool chaos;
    };
    // The slow node rides along with the fault injector (both policies are
    // installed), so "chaos" phases exercise faults AND the gray-failing
    // node the hedge/abandon machinery exists for.
    const std::vector<PhasePlan> plan = {{"1x", 1, false},
                                         {"3x", 3, false},
                                         {"10x", 10, false},
                                         {"10x_faults", 10, true},
                                         {"10x_faults_slow", 10, true}};

    bench::BenchJsonWriter json("serving");
    json.AddRow("config",
                {bench::Int("max_concurrent", options.max_concurrent),
                 bench::Int("aimd_target_p99_us", options.aimd.target_p99_us),
                 bench::Int("interactive_queue_limit",
                            options.interactive_queue_limit),
                 bench::Int("batch_queue_limit", options.batch_queue_limit),
                 bench::Int("default_budget_us", options.default_budget_us),
                 bench::Int("hedge_default_delay_us", hedge.default_delay_us),
                 bench::Num("capacity_qps", capacity_qps),
                 bench::Int("pages", stored),
                 bench::Int("nodes", cluster.node_count())});

    eval::TablePrinter table({"Phase", "Sess", "Req", "OK", "Shed",
                              "p50 us", "p99 us", "Good/s", "Hedge%",
                              "HWin", "Aband", "AIMD-", "Limit", "Susp"});
    for (const PhasePlan& p : plan) {
      PhaseRow row = run_phase(p.name, 420, p.load_x * capacity_qps,
                               p.chaos);
      const bench::LoadGenStats& s = row.stats;
      const double denom = std::max<double>(1, s.requests);
      // vinci/calls counts hedge attempts too; the rate reports hedges
      // per primary call (the "extra call" overhead hedging adds).
      const double hedge_rate =
          static_cast<double>(row.hedges) /
          std::max<double>(1, static_cast<double>(row.node_calls) -
                                  static_cast<double>(row.hedges));
      table.AddRow(
          {row.name, common::StrFormat("%zu", s.sessions),
           common::StrFormat("%zu", s.requests),
           common::StrFormat("%zu", s.ok),
           common::StrFormat("%zu", s.shed),
           common::StrFormat("%llu", static_cast<unsigned long long>(
                                         s.PercentileUs(0.5))),
           common::StrFormat("%llu", static_cast<unsigned long long>(
                                         s.PercentileUs(0.99))),
           common::StrFormat("%.0f", s.GoodputPerSec()),
           common::StrFormat("%.1f%%", hedge_rate * 100.0),
           common::StrFormat("%llu",
                             static_cast<unsigned long long>(row.hedge_wins)),
           common::StrFormat("%llu", static_cast<unsigned long long>(
                                         row.hedge_abandoned)),
           common::StrFormat("%llu", static_cast<unsigned long long>(
                                         row.aimd_decrease)),
           common::StrFormat("%lld", static_cast<long long>(row.limit_end)),
           common::StrFormat("%zu", row.suspects)});
      json.AddRow(
          "phases",
          {bench::Str("phase", row.name),
           bench::Int("sessions", s.sessions),
           bench::Int("open_sessions", s.open_sessions),
           bench::Int("closed_sessions", s.closed_sessions),
           bench::Int("requests", s.requests), bench::Int("ok", s.ok),
           bench::Int("shed", s.shed),
           bench::Int("shed_queue_full", s.shed_queue_full),
           bench::Int("shed_quota", s.shed_quota),
           bench::Int("shed_deadline", s.shed_deadline),
           bench::Int("errors", s.errors),
           bench::Int("coalesced", s.coalesced),
           bench::Int("cache_hits", s.cache_hits),
           bench::Int("p50_us", s.PercentileUs(0.5)),
           bench::Int("p95_us", s.PercentileUs(0.95)),
           bench::Int("p99_us", s.PercentileUs(0.99)),
           bench::Num("wall_s", static_cast<double>(s.wall_us) / 1e6),
           bench::Num("goodput_qps", s.GoodputPerSec()),
           bench::Num("shed_rate", static_cast<double>(s.shed) / denom),
           bench::Int("hedges", row.hedges),
           bench::Int("hedge_wins", row.hedge_wins),
           bench::Int("hedge_abandoned", row.hedge_abandoned),
           bench::Num("hedge_rate", hedge_rate),
           bench::Int("aimd_increase", row.aimd_increase),
           bench::Int("aimd_decrease", row.aimd_decrease),
           bench::Int("concurrency_limit_end", static_cast<uint64_t>(
                          std::max<int64_t>(0, row.limit_end))),
           bench::Int("health_fleet_p95_us", row.fleet_p95_us),
           bench::Int("health_suspects", row.suspects),
           bench::Int("deadline_expired_handler_runs",
                      row.expired_handler_runs)});
      // The invariant the whole deadline chain exists for: even at 10x
      // with faults and hedging, no node handler ever executed past its
      // caller's budget.
      WF_CHECK(row.expired_handler_runs == 0)
          << "deadline-expired handler run detected under overload";
    }
    std::printf("%s\n", table.ToString().c_str());
    WF_CHECK(sessions_total >= 2000)
        << "bench must simulate at least 2000 user sessions";
    json.AddRow("totals", {bench::Int("sessions_total", sessions_total)});
    json.AddSnapshot("metrics", cluster.metrics().Snapshot());

    std::string path = json.WriteFile();
    std::printf(
        "Drove %zu virtual user sessions. Past 1x the excess is shed with "
        "retry-after instead of queueing without bound; under the slow "
        "node, hedges and straggler abandons keep scatter tails near the "
        "healthy baseline, the AIMD limit dips and recovers, and "
        "vinci/deadline_expired_handler_runs_total stayed 0 throughout.\n",
        sessions_total);
    if (!path.empty()) std::printf("JSON: %s\n", path.c_str());
  }
  return 0;
}
