// Serving-layer overload sweep: drives the query front door at ~1x, ~3x
// and ~10x its configured capacity (and 10x again with 20% injected faults
// plus one gray-failing slow node), and reports per-phase latency
// percentiles, goodput, shed rate, and coalesce/cache hit rates. The
// machine-readable mirror lands in BENCH_serving.json — each phase is one
// SLO row.
//
// What the sweep demonstrates: at 1x the door is invisible (no sheds, flat
// latency); past saturation goodput holds near capacity while the excess
// is shed early and honestly (bounded p99, retry-after on every refusal,
// zero deadline-expired handler runs downstream).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "platform/cluster.h"
#include "platform/fault.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"
#include "serve/front_door.h"

namespace {

uint64_t Percentile(std::vector<uint64_t>* samples, double q) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples->size()));
  return (*samples)[std::min(rank, samples->size() - 1)];
}

struct PhaseStats {
  std::string name;
  size_t threads = 0;
  size_t requests = 0;
  size_t ok = 0;
  size_t shed = 0;
  double wall_s = 0.0;
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
  uint64_t coalesced = 0, cache_hits = 0;
  uint64_t shed_queue_full = 0, shed_quota = 0, shed_deadline = 0;
  uint64_t expired_handler_runs = 0;
};

}  // namespace

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();

  // Corpus and subjects: the two web datasets the other platform benches
  // use, with product names as the "hot" query mix.
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(seed + 1);
  corpus::WebDataset pharma = corpus::BuildPharmaWebDataset(seed + 2);
  std::vector<std::pair<std::string, std::string>> docs;
  std::vector<std::string> subjects;
  for (const auto* ds : {&petro, &pharma}) {
    for (const corpus::GeneratedDoc& d : ds->docs) {
      docs.emplace_back(d.id, d.body);
    }
    for (const corpus::Product& p : ds->domain->products) {
      subjects.push_back(p.name);
    }
  }

  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  platform::Cluster cluster(4);
  platform::BatchIngestor ingestor("web", std::move(docs));
  size_t stored = platform::IngestAll(ingestor, cluster);
  cluster.DeployMiner([&lexicon, &patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lexicon,
                                                                 &patterns);
  });
  cluster.MineAndIndexAll();

  platform::SentimentQueryService service(&cluster);
  serve::FrontDoorOptions options;
  options.max_concurrent = 2;
  options.interactive_queue_limit = 4;
  options.batch_queue_limit = 2;
  options.default_budget_us = 50000;
  serve::FrontDoor door(&service, &cluster, options);
  door.AttachMetrics(&cluster.metrics());

  // Every bus round trip costs a little simulated network so saturation is
  // reached by concurrency, not by CPU luck.
  cluster.bus().SetSimulatedLatency(500);

  std::printf("%s",
              eval::Banner("Serving front door under overload").c_str());
  std::printf("Corpus: %zu pages on %zu nodes; capacity knob: "
              "max_concurrent=%zu, queues=%zu+%zu, budget=%llu us.\n\n",
              stored, cluster.node_count(), options.max_concurrent,
              options.interactive_queue_limit, options.batch_queue_limit,
              static_cast<unsigned long long>(options.default_budget_us));

  platform::FaultInjector injector(seed + 7);
  platform::FaultPolicy flaky;
  flaky.fail_probability = 0.2;
  injector.SetPolicy("node/", flaky);
  injector.SetPolicy("node/2/",
                     platform::SlowNodePolicy(2000, 1000, 80000, 500));

  // One phase: `threads` closed-loop callers each replaying `per_thread`
  // single-query user sessions back to back — offered load scales with the
  // caller count, so threads >> max_concurrent approximates an open loop at
  // that multiple, and the sweep pushes thousands of simulated users
  // through the door overall.
  auto run_phase = [&](const std::string& name, size_t threads,
                       size_t per_thread, bool chaos) {
    door.InvalidateAll();  // each phase measures a cold cache
    if (chaos) cluster.bus().AttachFaultInjector(&injector);

    obs::MetricsSnapshot before = cluster.metrics().Snapshot();
    std::vector<std::vector<uint64_t>> latencies(threads);
    std::vector<std::vector<serve::QueryReply>> replies(threads);
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        // Seeded per phase+thread: the mix is 70% hot subjects (coalesce
        // and cache territory) and 30% cold uncacheable one-offs.
        std::mt19937_64 rng(seed * 1315423911u + t * 2654435761u +
                            threads * 97u);
        std::uniform_int_distribution<size_t> pick(0, subjects.size() - 1);
        std::uniform_int_distribution<int> pct(0, 99);
        while (!go.load()) std::this_thread::yield();
        for (size_t i = 0; i < per_thread; ++i) {
          serve::QueryRequest request;
          if (pct(rng) < 70) {
            request.subject = subjects[pick(rng)];
          } else {
            request.subject = "cold-" + std::to_string(t) + "-" +
                              std::to_string(i);
          }
          request.tenant = "tenant-" + std::to_string(t % 4);
          request.priority = t % 5 == 4 ? serve::Priority::kBatch
                                        : serve::Priority::kInteractive;
          const uint64_t start = obs::MonotonicNowUs();
          serve::QueryReply reply = door.Query(request);
          latencies[t].push_back(obs::MonotonicNowUs() - start);
          replies[t].push_back(std::move(reply));
        }
      });
    }
    const uint64_t wall_start = obs::MonotonicNowUs();
    go.store(true);
    for (std::thread& th : pool) th.join();
    const uint64_t wall_us = obs::MonotonicNowUs() - wall_start;
    if (chaos) {
      cluster.bus().AttachFaultInjector(nullptr);
      cluster.bus().ResetBreakers();
    }
    obs::MetricsSnapshot after = cluster.metrics().Snapshot();
    auto delta = [&](const char* counter) {
      return after.CounterValue(counter) - before.CounterValue(counter);
    };

    PhaseStats stats;
    stats.name = name;
    stats.threads = threads;
    std::vector<uint64_t> all;
    for (size_t t = 0; t < threads; ++t) {
      all.insert(all.end(), latencies[t].begin(), latencies[t].end());
      for (const serve::QueryReply& reply : replies[t]) {
        ++stats.requests;
        if (reply.status.ok()) ++stats.ok;
        if (reply.shed_reason != serve::ShedReason::kNone) ++stats.shed;
      }
    }
    stats.wall_s = static_cast<double>(wall_us) / 1e6;
    stats.p50_us = Percentile(&all, 0.50);
    stats.p95_us = Percentile(&all, 0.95);
    stats.p99_us = Percentile(&all, 0.99);
    stats.coalesced = delta("serve/coalesced_total");
    stats.cache_hits = delta("serve/cache_hits_total");
    stats.shed_queue_full = delta("serve/shed_queue_full_total");
    stats.shed_quota = delta("serve/shed_quota_total");
    stats.shed_deadline = delta("serve/shed_deadline_total");
    stats.expired_handler_runs =
        after.CounterValue("vinci/deadline_expired_handler_runs_total");
    return stats;
  };

  // Capacity probe: max_concurrent callers, no queueing, no chaos — the
  // denominator for the load multiples below.
  PhaseStats probe = run_phase("capacity_probe", options.max_concurrent, 40,
                               /*chaos=*/false);
  const double capacity_qps =
      static_cast<double>(probe.ok) / std::max(probe.wall_s, 1e-9);
  std::printf("Capacity probe: %.0f queries/s served at max_concurrent "
              "(p50 %llu us).\n\n",
              capacity_qps, static_cast<unsigned long long>(probe.p50_us));

  struct PhasePlan {
    const char* name;
    size_t load_x;
    bool chaos;
  };
  const std::vector<PhasePlan> plan = {
      {"1x", 1, false}, {"3x", 3, false}, {"10x", 10, false},
      {"10x_faults", 10, true}};

  bench::BenchJsonWriter json("serving");
  json.AddRow("config",
              {bench::Int("max_concurrent", options.max_concurrent),
               bench::Int("interactive_queue_limit",
                          options.interactive_queue_limit),
               bench::Int("batch_queue_limit", options.batch_queue_limit),
               bench::Int("default_budget_us", options.default_budget_us),
               bench::Num("capacity_qps", capacity_qps),
               bench::Int("pages", stored),
               bench::Int("nodes", cluster.node_count())});

  eval::TablePrinter table({"Phase", "Threads", "Req", "OK", "Shed",
                            "p50 us", "p95 us", "p99 us", "Goodput/s",
                            "Coalesce%", "Cache%"});
  for (const PhasePlan& p : plan) {
    const size_t threads = p.load_x * options.max_concurrent;
    PhaseStats stats = run_phase(p.name, threads, 60, p.chaos);
    const double goodput =
        static_cast<double>(stats.ok) / std::max(stats.wall_s, 1e-9);
    const double denom = std::max<double>(1, stats.requests);
    const double shed_rate = static_cast<double>(stats.shed) / denom;
    const double coalesce_rate =
        static_cast<double>(stats.coalesced) / denom;
    const double cache_rate =
        static_cast<double>(stats.cache_hits) / denom;
    table.AddRow(
        {stats.name, common::StrFormat("%zu", stats.threads),
         common::StrFormat("%zu", stats.requests),
         common::StrFormat("%zu", stats.ok),
         common::StrFormat("%zu", stats.shed),
         common::StrFormat("%llu",
                           static_cast<unsigned long long>(stats.p50_us)),
         common::StrFormat("%llu",
                           static_cast<unsigned long long>(stats.p95_us)),
         common::StrFormat("%llu",
                           static_cast<unsigned long long>(stats.p99_us)),
         common::StrFormat("%.0f", goodput),
         common::StrFormat("%.0f%%", coalesce_rate * 100.0),
         common::StrFormat("%.0f%%", cache_rate * 100.0)});
    json.AddRow(
        "phases",
        {bench::Str("phase", stats.name),
         bench::Int("threads", stats.threads),
         bench::Int("requests", stats.requests),
         bench::Int("ok", stats.ok), bench::Int("shed", stats.shed),
         bench::Int("shed_queue_full", stats.shed_queue_full),
         bench::Int("shed_quota", stats.shed_quota),
         bench::Int("shed_deadline", stats.shed_deadline),
         bench::Int("coalesced", stats.coalesced),
         bench::Int("cache_hits", stats.cache_hits),
         bench::Int("p50_us", stats.p50_us),
         bench::Int("p95_us", stats.p95_us),
         bench::Int("p99_us", stats.p99_us),
         bench::Num("wall_s", stats.wall_s),
         bench::Num("goodput_qps", goodput),
         bench::Num("shed_rate", shed_rate),
         bench::Num("coalesce_rate", coalesce_rate),
         bench::Num("cache_hit_rate", cache_rate),
         bench::Int("deadline_expired_handler_runs",
                    stats.expired_handler_runs)});
    // The invariant the whole deadline chain exists for: even at 10x with
    // faults, no node handler ever executed past its caller's budget.
    WF_CHECK(stats.expired_handler_runs == 0)
        << "deadline-expired handler run detected under overload";
  }
  std::printf("%s\n", table.ToString().c_str());
  json.AddSnapshot("metrics", cluster.metrics().Snapshot());

  std::string path = json.WriteFile();
  std::printf("Past 1x the excess is shed with retry-after instead of "
              "queueing without bound: goodput holds near the capacity "
              "probe while p99 stays within the budget's order of "
              "magnitude, and vinci/deadline_expired_handler_runs_total "
              "stayed 0 across every phase.\n");
  if (!path.empty()) std::printf("JSON: %s\n", path.c_str());
  return 0;
}
