// Quantifies the architectural claim of §3: answering ad-hoc sentiment
// queries by running the NLP analysis at query time "is too slow for most
// users expecting real time response", while mining the corpus offline and
// indexing conceptual tokens gives fast lookups. Both implementations are
// first-class here; this bench measures the trade-off and checks that
// their answers agree.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"
#include "platform/ingest.h"
#include "platform/query_service.h"
#include "platform/sentiment_miner_plugin.h"

int main() {
  using namespace wf;
  using Clock = std::chrono::steady_clock;
  const uint64_t seed = bench::BenchSeed();

  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(seed + 1);
  corpus::WebDataset pharma = corpus::BuildPharmaWebDataset(seed + 2);
  std::vector<std::pair<std::string, std::string>> docs;
  for (const auto* ds : {&petro, &pharma}) {
    for (const corpus::GeneratedDoc& d : ds->docs) {
      docs.emplace_back(d.id, d.body);
    }
  }

  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();

  platform::Cluster cluster(4);
  platform::BatchIngestor ingestor("web", std::move(docs));
  size_t stored = platform::IngestAll(ingestor, cluster);

  // Offline pass (one-time cost, amortized over every future query).
  auto t0 = Clock::now();
  cluster.DeployMiner([&lexicon, &patterns] {
    return std::make_unique<platform::AdHocSentimentMinerPlugin>(&lexicon,
                                                                 &patterns);
  });
  cluster.MineAndIndexAll();
  auto t1 = Clock::now();
  double offline_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  platform::SentimentQueryService offline(&cluster);
  WF_CHECK_OK(offline.RegisterService());
  platform::RuntimeSentimentQueryService runtime(&cluster, &lexicon,
                                                 &patterns);

  std::printf("%s", eval::Banner("Mode B: offline index vs query-time "
                                 "analysis (§3)")
                        .c_str());
  std::printf("Corpus: %zu pages on %zu nodes; offline mine+index pass: "
              "%.0f ms (one-time).\n\n",
              stored, cluster.node_count(), offline_ms);

  eval::TablePrinter table({"Subject", "Offline us", "Runtime us",
                            "Slowdown", "Agree"});
  double total_off = 0.0, total_run = 0.0;
  size_t queries = 0;
  for (const corpus::Product& p : pharma.domain->products) {
    auto q0 = Clock::now();
    platform::SentimentQueryResult a = offline.Query(p.name, 8);
    auto q1 = Clock::now();
    platform::SentimentQueryResult b = runtime.Query(p.name, 8);
    auto q2 = Clock::now();
    double off_us =
        std::chrono::duration<double, std::micro>(q1 - q0).count();
    double run_us =
        std::chrono::duration<double, std::micro>(q2 - q1).count();
    total_off += off_us;
    total_run += run_us;
    ++queries;
    bool agree = a.positive_docs == b.positive_docs &&
                 a.negative_docs == b.negative_docs;
    table.AddRow({p.name, common::StrFormat("%.0f", off_us),
                  common::StrFormat("%.0f", run_us),
                  common::StrFormat("%.0fx", run_us / off_us),
                  agree ? "yes" : "counts differ"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Average: offline %.0f us vs runtime %.0f us per query "
              "(%.0fx slower at query time) — on the paper's multi-billion-"
              "document corpora the runtime path is infeasible, which is "
              "why Figure 3 mines offline and indexes conceptual tokens.\n",
              total_off / queries, total_run / queries,
              total_run / total_off);
  return 0;
}
