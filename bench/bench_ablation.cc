// Ablation study over the sentiment miner's design choices (DESIGN.md
// experiment E10): negation handling, the contrastive-PP rule, the local-NP
// fallback, an aggressive whole-sentence fallback, and sweeps over pattern
// database and sentiment lexicon size. Run on the Table 4 review workload.

#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"

namespace {

using namespace wf;

// First `fraction` of the non-comment lines of `text`.
std::string TruncateLines(const char* text, double fraction) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::string_view sv = common::StripWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    lines.emplace_back(sv);
  }
  size_t keep = static_cast<size_t>(lines.size() * fraction);
  std::string out;
  for (size_t i = 0; i < keep; ++i) out += lines[i] + "\n";
  return out;
}

}  // namespace

int main() {
  const uint64_t seed = bench::BenchSeed();
  corpus::ReviewDataset camera = corpus::BuildCameraDataset(seed);
  corpus::ReviewDataset music = corpus::BuildMusicDataset(seed + 100);
  std::vector<corpus::GeneratedDoc> reviews = camera.d_plus;
  reviews.insert(reviews.end(), music.d_plus.begin(), music.d_plus.end());

  std::printf("%s", eval::Banner("Ablation — analyzer feature switches "
                                 "(review workload)")
                        .c_str());
  eval::TablePrinter table(
      {"Configuration", "Precision", "Recall", "Accuracy"});

  eval::GoldEvaluator evaluator;
  auto run = [&](const char* name, const core::AnalyzerOptions& opts) {
    eval::EvalOptions options;
    options.analyzer = opts;
    eval::Confusion c = evaluator.EvaluateMiner(reviews, options);
    table.AddRow({name, eval::Pct(c.precision()), eval::Pct(c.recall()),
                  eval::Pct(c.accuracy())});
  };

  core::AnalyzerOptions base;
  run("full analyzer (default)", base);

  core::AnalyzerOptions no_negation = base;
  no_negation.handle_negation = false;
  run("- negation handling", no_negation);

  core::AnalyzerOptions no_contrastive = base;
  no_contrastive.contrastive_pp = false;
  run("- contrastive-PP rule", no_contrastive);

  core::AnalyzerOptions no_local = base;
  no_local.local_np_fallback = false;
  run("- local-NP fallback", no_local);

  core::AnalyzerOptions with_sentence = base;
  with_sentence.sentence_fallback = true;
  run("+ whole-sentence fallback (collocation-like)", with_sentence);

  std::printf("%s\n", table.ToString().c_str());

  // Pattern-database size sweep.
  std::printf("Pattern database size sweep:\n");
  eval::TablePrinter sweep({"Patterns kept", "Count", "Precision", "Recall",
                            "Accuracy"});
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    lexicon::PatternDatabase db;
    WF_CHECK_OK(db.LoadText(
        TruncateLines(lexicon::EmbeddedPatternDatabaseText(), frac)));
    size_t count = db.size();
    eval::GoldEvaluator ev(lexicon::SentimentLexicon::Embedded(),
                           std::move(db));
    eval::EvalOptions options;
    eval::Confusion c = ev.EvaluateMiner(reviews, options);
    sweep.AddRow({common::StrFormat("%.0f%%", frac * 100.0),
                  std::to_string(count), eval::Pct(c.precision()),
                  eval::Pct(c.recall()), eval::Pct(c.accuracy())});
  }
  std::printf("%s\n", sweep.ToString().c_str());

  // Sentiment lexicon size sweep.
  std::printf("Sentiment lexicon size sweep:\n");
  eval::TablePrinter lsweep({"Lexicon kept", "Entries", "Precision",
                             "Recall", "Accuracy"});
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    lexicon::SentimentLexicon lex;
    WF_CHECK_OK(lex.LoadText(
        TruncateLines(lexicon::EmbeddedSentimentLexiconText(), frac)));
    size_t entries = lex.size();
    eval::GoldEvaluator ev(std::move(lex),
                           lexicon::PatternDatabase::Embedded());
    eval::EvalOptions options;
    eval::Confusion c = ev.EvaluateMiner(reviews, options);
    lsweep.AddRow({common::StrFormat("%.0f%%", frac * 100.0),
                   std::to_string(entries), eval::Pct(c.precision()),
                   eval::Pct(c.recall()), eval::Pct(c.accuracy())});
  }
  std::printf("%s", lsweep.ToString().c_str());
  return 0;
}
