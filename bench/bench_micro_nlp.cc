// Micro-benchmarks for the NLP substrate: tokenizer, sentence splitter,
// POS tagger, chunker, clause analysis, and the full per-sentence sentiment
// analysis — the per-document costs that bound platform throughput
// (experiment E9 in DESIGN.md).

#include <benchmark/benchmark.h>

#include "baseline/reviewseer.h"
#include "core/analyzer.h"
#include "feature/feature_extractor.h"
#include "ner/named_entity_spotter.h"
#include "spot/disambiguator.h"
#include "corpus/datasets.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "parse/sentence_structure.h"
#include "pos/tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace {

using namespace wf;

// A realistic document body reused across iterations.
const std::string& SampleBody() {
  static const std::string* kBody = [] {
    corpus::ReviewDataset ds = corpus::BuildCameraDataset(7);
    std::string all;
    for (size_t i = 0; i < 8; ++i) all += ds.d_plus[i].body + " ";
    return new std::string(all);
  }();
  return *kBody;
}

void BM_Tokenize(benchmark::State& state) {
  text::Tokenizer tokenizer;
  const std::string& body = SampleBody();
  size_t bytes = 0;
  for (auto _ : state) {
    text::TokenStream tokens = tokenizer.Tokenize(body);
    benchmark::DoNotOptimize(tokens);
    bytes += body.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Tokenize);

void BM_SentenceSplit(benchmark::State& state) {
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter;
  text::TokenStream tokens = tokenizer.Tokenize(SampleBody());
  for (auto _ : state) {
    auto spans = splitter.Split(tokens);
    benchmark::DoNotOptimize(spans);
  }
}
BENCHMARK(BM_SentenceSplit);

void BM_PosTag(benchmark::State& state) {
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter;
  pos::PosTagger tagger;
  text::TokenStream tokens = tokenizer.Tokenize(SampleBody());
  auto spans = splitter.Split(tokens);
  size_t tagged = 0;
  for (auto _ : state) {
    auto tags = tagger.Tag(tokens, spans);
    benchmark::DoNotOptimize(tags);
    tagged += tokens.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(tagged));
}
BENCHMARK(BM_PosTag);

void BM_ChunkAndParse(benchmark::State& state) {
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter;
  pos::PosTagger tagger;
  parse::SentenceAnalyzer analyzer;
  text::TokenStream tokens = tokenizer.Tokenize(SampleBody());
  auto spans = splitter.Split(tokens);
  common::Arena arena;
  common::StringInterner interner(&arena);
  size_t parsed = 0;
  for (auto _ : state) {
    for (const auto& span : spans) {
      auto tags = tagger.TagSentence(tokens, span);
      auto parse = analyzer.Analyze(tokens, span, tags, &interner);
      benchmark::DoNotOptimize(parse);
      ++parsed;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(parsed));
}
BENCHMARK(BM_ChunkAndParse);

void BM_FullSentimentAnalysis(benchmark::State& state) {
  static const auto* kLexicon =
      new lexicon::SentimentLexicon(lexicon::SentimentLexicon::Embedded());
  static const auto* kPatterns =
      new lexicon::PatternDatabase(lexicon::PatternDatabase::Embedded());
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter;
  pos::PosTagger tagger;
  parse::SentenceAnalyzer sentence_analyzer;
  core::SentimentAnalyzer analyzer(kLexicon, kPatterns);
  text::TokenStream tokens = tokenizer.Tokenize(SampleBody());
  auto spans = splitter.Split(tokens);
  common::Arena arena;
  common::StringInterner interner(&arena);
  size_t analyzed = 0;
  for (auto _ : state) {
    for (const auto& span : spans) {
      auto tags = tagger.TagSentence(tokens, span);
      auto parse = sentence_analyzer.Analyze(tokens, span, tags, &interner);
      // Analyze the first NP as the subject.
      for (const parse::Chunk& c : parse.chunks) {
        if (c.type == parse::ChunkType::kNP) {
          auto verdict =
              analyzer.AnalyzeSubject(tokens, parse, c.begin, c.end);
          benchmark::DoNotOptimize(verdict);
          break;
        }
      }
      ++analyzed;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(analyzed));
}
BENCHMARK(BM_FullSentimentAnalysis);

void BM_NamedEntitySpotting(benchmark::State& state) {
  text::Tokenizer tokenizer;
  text::SentenceSplitter splitter;
  ner::NamedEntitySpotter spotter;
  text::TokenStream tokens = tokenizer.Tokenize(SampleBody());
  auto spans = splitter.Split(tokens);
  for (auto _ : state) {
    auto entities = spotter.Spot(tokens, spans);
    benchmark::DoNotOptimize(entities);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tokens.size()));
}
BENCHMARK(BM_NamedEntitySpotting);

void BM_FeatureExtraction(benchmark::State& state) {
  corpus::ReviewDataset ds = corpus::BuildCameraDataset(7);
  for (auto _ : state) {
    feature::FeatureExtractor extractor;
    for (size_t i = 0; i < 40; ++i) {
      extractor.AddDocument(ds.d_plus[i].body, true);
      extractor.AddDocument(ds.d_minus[i].body, false);
    }
    auto terms = extractor.Extract();
    benchmark::DoNotOptimize(terms);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 80);
}
BENCHMARK(BM_FeatureExtraction);

void BM_ReviewSeerClassify(benchmark::State& state) {
  static const baseline::ReviewSeerClassifier* kClassifier = [] {
    corpus::ReviewDataset ds = corpus::BuildCameraDataset(7);
    auto* c = new baseline::ReviewSeerClassifier();
    for (size_t i = 0; i < 100; ++i) {
      c->AddTrainingDocument(ds.train[i].body, ds.train[i].doc_polarity);
    }
    c->Train();
    return c;
  }();
  const std::string& body = SampleBody();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kClassifier->LogOdds(body));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(body.size()));
}
BENCHMARK(BM_ReviewSeerClassify);

void BM_Disambiguation(benchmark::State& state) {
  spot::CorpusStats stats;
  stats.AddDocument({"oil", "barrel", "weather", "sky", "the", "a"});
  spot::Disambiguator disambiguator;
  spot::TopicTermSet topic;
  topic.synset_id = 1;
  topic.on_topic = {"oil", "barrel", "crude oil"};
  topic.off_topic = {"weather", "sky"};
  disambiguator.AddTopic(topic);
  spot::Spotter spotter;
  spotter.AddSynonymSet({1, "SUN", {"Sun", "sun"}});
  text::Tokenizer tokenizer;
  text::TokenStream tokens = tokenizer.Tokenize(
      "SUN shipped oil this quarter. The sun was out and every barrel "
      "moved. Crude oil analysts liked the sun and the barrel counts.");
  auto spots = spotter.Spot(tokens);
  for (auto _ : state) {
    auto results = disambiguator.Evaluate(tokens, spots, stats);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(spots.size()));
}
BENCHMARK(BM_Disambiguation);

}  // namespace

BENCHMARK_MAIN();
