// Exercises the corpus-level miners §2 names — duplicate detection,
// aggregate statistics, trending — plus the geographic-context entity
// miner, on a dated synthetic crawl with injected near-duplicates. Also
// demonstrates the range/regex query types of the indexer.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"
#include "platform/corpus_miners.h"
#include "platform/geo_miner.h"
#include "platform/sentiment_miner_plugin.h"

int main() {
  using namespace wf;
  const uint64_t seed = bench::BenchSeed();
  corpus::WebDataset petro = corpus::BuildPetroleumWebDataset(seed + 1);

  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();

  // One store (a single shard view): dated pages, with every 20th page
  // duplicated near-verbatim (a syndicated copy) and a geographic lead-in.
  platform::DataStore store;
  static const char* kMonths[] = {"2004-01", "2004-02", "2004-03",
                                  "2004-04", "2004-05", "2004-06"};
  size_t injected_dups = 0;
  for (size_t i = 0; i < petro.docs.size(); ++i) {
    platform::Entity e(petro.docs[i].id, "web");
    std::string body = petro.docs[i].body;
    if (i % 7 == 0) {
      body = "Crews in the Gulf of Mexico filed this report. " + body;
    }
    e.SetBody(body);
    // Later months skew negative: reuse the gold counts to place the
    // crisis-heavy pages late (presentation only; no miner sees golds).
    size_t negatives = 0;
    for (const corpus::SpotGold& g : petro.docs[i].golds) {
      if (g.polarity == lexicon::Polarity::kNegative) ++negatives;
    }
    size_t month = std::min<size_t>(5, (i % 3) + (negatives >= 2 ? 3 : 0));
    e.SetField("date", kMonths[month]);
    WF_CHECK_OK(store.Put(e));
    if (i % 20 == 0) {
      platform::Entity dup(petro.docs[i].id + "-syndicated", "mirror");
      dup.SetBody(body + " Reprinted with permission.");
      dup.SetField("date", kMonths[month]);
      WF_CHECK_OK(store.Put(dup));
      ++injected_dups;
    }
  }

  // Entity-level passes: sentiment + geo.
  platform::MinerPipeline pipeline;
  pipeline.AddMiner(std::make_unique<platform::AdHocSentimentMinerPlugin>(
      &lexicon, &patterns));
  pipeline.AddMiner(std::make_unique<platform::GeoContextMiner>());
  pipeline.ProcessStore(store);

  std::printf("%s", eval::Banner("Corpus-level miners (§2): duplicates, "
                                 "aggregate stats, trending")
                        .c_str());

  // Duplicate detection.
  platform::DuplicateDetectionMiner dups;
  WF_CHECK_OK(dups.Run(store));
  std::printf("Duplicate detection: injected %zu syndicated copies, "
              "flagged %zu (MinHash, 32 hashes, 8 bands, J >= 0.85).\n",
              injected_dups, dups.duplicates().size());

  // Aggregate statistics.
  platform::AggregateStatsMiner stats;
  WF_CHECK_OK(stats.Run(store));
  std::printf("Aggregate stats: %zu docs, %zu tokens (%.1f/doc), "
              "vocabulary %zu.\n\n",
              stats.stats().documents, stats.stats().tokens,
              stats.stats().avg_tokens_per_doc, stats.stats().vocabulary);

  // Trending.
  platform::TrendingMiner trending;
  WF_CHECK_OK(trending.Run(store));
  const std::string subject =
      common::ToLower(petro.domain->products[0].name);
  std::printf("Sentiment trend for \"%s\" (market-trend tracking):\n",
              subject.c_str());
  eval::TablePrinter trend({"Month", "Positive", "Negative", "Net"});
  for (const platform::TrendingMiner::Bucket& b :
       trending.TrendFor(subject)) {
    std::string bar;
    int net = static_cast<int>(b.positive) - static_cast<int>(b.negative);
    for (int k = 0; k < std::abs(net) && k < 20; ++k) {
      bar += net >= 0 ? '+' : '-';
    }
    trend.AddRow({b.month, std::to_string(b.positive),
                  std::to_string(b.negative), bar});
  }
  std::printf("%s\n", trend.ToString().c_str());

  // Index the mined entities and show the remaining §2 query types.
  platform::InvertedIndex index;
  store.ForEach([&index](const platform::Entity& e) {
    index.IndexEntity(e);
  });
  std::printf("Range query date in [2004-04, 2004-06]: %zu docs\n",
              index.Range("date", 20040401, 20040631).size());
  std::printf("Regex query 'sent/\\-/.*' (any negative sentiment): %zu "
              "docs\n",
              index.MatchRegex("sent/-/.*").size());
  std::printf("Geo concept 'geo/gulf_of_mexico': %zu docs\n",
              index.Term("geo/gulf_of_mexico").size());
  return 0;
}
