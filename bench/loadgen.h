#ifndef WF_BENCH_LOADGEN_H_
#define WF_BENCH_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/front_door.h"

namespace wf::bench {

// Kilo-user load generator for the serving stack (DESIGN.md §14). A small
// pool of worker threads multiplexes thousands of virtual user sessions,
// each with its own seeded arrival process, so a bench can drive realistic
// open-system overload without spawning a thread per user.
//
// Two session kinds, mixed by `open_loop_fraction`:
//   * closed-loop: issue → wait for the reply → think (exponential with
//     mean `mean_think_us`) → issue again. Offered load self-throttles
//     when the system slows down — the classic benchmark trap the open
//     sessions exist to avoid.
//   * open-loop: arrival times are a Poisson process (exponential
//     inter-arrivals, mean `mean_interarrival_us`) fixed when the session
//     is created; arrivals do not wait for earlier replies, so a slow
//     system faces a growing backlog exactly like a real user population.
//
// Determinism: every session owns common::Rng(HashCombine(seed, id)), so
// the subject sequence and the arrival schedule per session are functions
// of the seed alone; only the interleaving (and therefore wall-clock
// latencies) varies run to run.
struct LoadGenOptions {
  // Virtual user sessions to simulate (the bench sums these across phases
  // to satisfy the >= 2000 sessions acceptance bar).
  size_t sessions = 2000;
  // Fraction of sessions that are open-loop (rest closed-loop).
  double open_loop_fraction = 0.5;
  // Queries each session issues before retiring.
  size_t requests_per_session = 4;
  // Mean think time between a closed-loop session's requests.
  uint64_t mean_think_us = 20000;
  // Mean inter-arrival time within one open-loop session's schedule.
  uint64_t mean_interarrival_us = 20000;
  // OS threads multiplexing the sessions (bench-side concurrency cap).
  size_t workers = 8;
  uint64_t seed = 42;
};

// What the virtual users ask for. Subjects are drawn per request from the
// session's Rng: with `hot_fraction` probability one of the first
// `hot_count` subjects (coalesce/cache territory), otherwise a uniform
// pick over the full list; `cold_fraction` of those picks are replaced by
// unique never-repeating subjects that defeat the cache entirely.
struct LoadGenWorkload {
  std::vector<std::string> subjects;
  double hot_fraction = 0.7;
  size_t hot_count = 2;
  double cold_fraction = 0.15;
  // Tenants are assigned round-robin by session id over this many names
  // ("tenant-0" .. "tenant-N-1"); 0 means every session is anonymous.
  size_t tenants = 4;
  // Every Nth session issues batch-priority traffic; 0 disables.
  size_t batch_every = 5;
  // Per-request budget forwarded in QueryRequest (0 = door default).
  uint64_t budget_us = 0;
};

// Aggregated outcome of one generator run. Latencies are door round-trip
// times (queue wait included) and arrive sorted.
struct LoadGenStats {
  size_t sessions = 0;
  size_t closed_sessions = 0;
  size_t open_sessions = 0;
  size_t requests = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t errors = 0;  // non-ok, non-shed replies
  size_t cache_hits = 0;
  size_t coalesced = 0;
  size_t shed_queue_full = 0;
  size_t shed_quota = 0;
  size_t shed_deadline = 0;
  uint64_t wall_us = 0;
  std::vector<uint64_t> latencies_us;  // sorted ascending

  uint64_t PercentileUs(double q) const;
  double GoodputPerSec() const;
};

// The system under test: anything that answers a front-door query. Must be
// thread-safe (called from `workers` threads concurrently).
using QueryFn = std::function<serve::QueryReply(const serve::QueryRequest&)>;

// Runs the full scenario to completion (every session retires) and returns
// the aggregate. Blocks the calling thread; spawns `workers` threads.
LoadGenStats RunLoadGen(const LoadGenOptions& options,
                        const LoadGenWorkload& workload, const QueryFn& fn);

}  // namespace wf::bench

#endif  // WF_BENCH_LOADGEN_H_
