// Reproduces Table 2 and the §4.1 feature-extraction experiment: top-20
// feature terms per domain from the bBNP heuristic + likelihood-ratio test
// (bBNP-L), plus extraction precision against the gold feature vocabulary.
// Paper reference: precision 97% (digital cameras), 100% (music).

#include <cstdio>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "eval/metrics.h"
#include "corpus/datasets.h"
#include "eval/report.h"
#include "feature/feature_extractor.h"
#include "text/inflection.h"

namespace {

using namespace wf;

struct DomainResult {
  std::vector<feature::FeatureTerm> top;
  double precision = 0.0;
  size_t extracted = 0;
};

DomainResult RunDomain(const corpus::ReviewDataset& dataset) {
  feature::FeatureExtractor::Options options;
  options.top_n = 0;  // threshold only
  feature::FeatureExtractor extractor(options);
  for (const corpus::GeneratedDoc& d : dataset.d_plus) {
    extractor.AddDocument(d.body, /*on_topic=*/true);
  }
  for (const corpus::GeneratedDoc& d : dataset.d_minus) {
    extractor.AddDocument(d.body, /*on_topic=*/false);
  }
  std::vector<feature::FeatureTerm> terms = extractor.Extract();

  // Gold vocabulary, head-singularized like the extractor output.
  std::set<std::string> gold;
  for (const std::string& f : dataset.domain->features) {
    gold.insert(f);
    gold.insert(text::SingularizeNoun(f));
  }
  size_t correct = 0;
  for (const feature::FeatureTerm& t : terms) {
    if (gold.count(t.phrase) > 0) ++correct;
  }
  DomainResult out;
  out.extracted = terms.size();
  out.precision = terms.empty()
                      ? 0.0
                      : static_cast<double>(correct) / terms.size();
  terms.resize(std::min<size_t>(terms.size(), 20));
  out.top = std::move(terms);
  return out;
}

}  // namespace

int main() {
  const uint64_t seed = bench::BenchSeed();
  corpus::ReviewDataset camera = corpus::BuildCameraDataset(seed);
  corpus::ReviewDataset music = corpus::BuildMusicDataset(seed + 100);

  DomainResult cam = RunDomain(camera);
  DomainResult mus = RunDomain(music);

  std::printf("%s", eval::Banner("Table 2 — top feature terms by bBNP-L "
                                 "(rank order)")
                        .c_str());
  eval::TablePrinter table({"Rank", "Digital Camera", "-2logL", "Music",
                            "-2logL"});
  for (size_t i = 0; i < 20; ++i) {
    std::string c_term = i < cam.top.size() ? cam.top[i].phrase : "";
    std::string c_score =
        i < cam.top.size()
            ? common::StrFormat("%.1f", cam.top[i].score)
            : "";
    std::string m_term = i < mus.top.size() ? mus.top[i].phrase : "";
    std::string m_score =
        i < mus.top.size()
            ? common::StrFormat("%.1f", mus.top[i].score)
            : "";
    table.AddRow({std::to_string(i + 1), c_term, c_score, m_term, m_score});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("Feature-extraction precision (human-gold vocabulary):\n");
  eval::TablePrinter prec({"Domain", "Extracted", "Precision", "Paper"});
  prec.AddRow({"Digital camera", std::to_string(cam.extracted),
               eval::Pct(cam.precision), "97"});
  prec.AddRow({"Music", std::to_string(mus.extracted),
               eval::Pct(mus.precision), "100"});
  std::printf("%s", prec.ToString().c_str());
  return 0;
}
