#ifndef WF_BENCH_BENCH_UTIL_H_
#define WF_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace wf::bench {

// Shared fixed seed so every bench reproduces the numbers recorded in
// EXPERIMENTS.md. Override with WF_BENCH_SEED in the environment.
inline uint64_t BenchSeed() {
  const char* env = ::getenv("WF_BENCH_SEED");
  if (env == nullptr) return 42;
  return static_cast<uint64_t>(::strtoull(env, nullptr, 10));
}

// One key/value in a bench JSON row; `rendered` is already-valid JSON value
// text (use the Num/Int/Str factories).
struct JsonField {
  std::string key;
  std::string rendered;
};

inline JsonField Num(const std::string& key, double value) {
  return {key, common::StrFormat("%.3f", value)};
}
inline JsonField Int(const std::string& key, uint64_t value) {
  return {key, common::StrFormat("%llu",
                                 static_cast<unsigned long long>(value))};
}
inline JsonField Str(const std::string& key, const std::string& value) {
  return {key, "\"" + obs::JsonEscape(value) + "\""};
}

// Machine-readable mirror of a bench's tables: rows accumulate per section
// and WriteFile() emits BENCH_<name>.json next to the human-readable output
// (into $WF_BENCH_JSON_DIR when set, the working directory otherwise), so
// sweeps can be diffed and plotted without scraping stdout. Registry
// snapshots embed via AddSnapshot, which is the bench-side outlet for
// wf_obs metrics.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string name) : name_(std::move(name)) {}

  void AddRow(const std::string& section, std::vector<JsonField> fields) {
    std::string row = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) row += ',';
      row += "\"" + obs::JsonEscape(fields[i].key) +
             "\":" + fields[i].rendered;
    }
    row += "}";
    sections_[section].push_back(std::move(row));
  }

  // Embeds a full metrics snapshot as one row of `section` (timing
  // histograms included by default — wall-clock numbers are the point of a
  // bench).
  void AddSnapshot(const std::string& section,
                   const obs::MetricsSnapshot& snapshot,
                   const obs::ExportOptions& options = {}) {
    sections_[section].push_back(snapshot.ExportJson(options));
  }

  std::string ToJson() const {
    std::string out = "{\"bench\":\"" + obs::JsonEscape(name_) + "\"";
    out += common::StrFormat(
        ",\"seed\":%llu", static_cast<unsigned long long>(BenchSeed()));
    out += ",\"sections\":{";
    bool first_section = true;
    for (const auto& [section, rows] : sections_) {
      if (!first_section) out += ',';
      first_section = false;
      out += "\"" + obs::JsonEscape(section) + "\":[";
      for (size_t i = 0; i < rows.size(); ++i) {
        if (i > 0) out += ',';
        out += rows[i];
      }
      out += "]";
    }
    out += "}}";
    return out;
  }

  // Writes BENCH_<name>.json; returns the path written to, or "" on error
  // (a bench must still print its tables when the directory is read-only).
  std::string WriteFile() const {
    const char* dir = ::getenv("WF_BENCH_JSON_DIR");
    std::string path = std::string(dir != nullptr ? dir : ".") + "/BENCH_" +
                       name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    std::string json = ToJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    bool ok = written == json.size() && std::fputc('\n', f) != EOF;
    ok = std::fclose(f) == 0 && ok;
    return ok ? path : "";
  }

 private:
  std::string name_;
  std::map<std::string, std::vector<std::string>> sections_;  // sorted keys
};

}  // namespace wf::bench

#endif  // WF_BENCH_BENCH_UTIL_H_
