#ifndef WF_BENCH_BENCH_UTIL_H_
#define WF_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdlib>

// Shared fixed seed so every bench reproduces the numbers recorded in
// EXPERIMENTS.md. Override with WF_BENCH_SEED in the environment.
namespace wf::bench {

inline uint64_t BenchSeed() {
  const char* env = ::getenv("WF_BENCH_SEED");
  if (env == nullptr) return 42;
  return static_cast<uint64_t>(::strtoull(env, nullptr, 10));
}

}  // namespace wf::bench

#endif  // WF_BENCH_BENCH_UTIL_H_
