# Empty dependencies file for wf_corpus.
# This may be replaced when dependencies are built.
