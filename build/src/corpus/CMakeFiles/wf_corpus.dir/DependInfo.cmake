
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/datasets.cc" "src/corpus/CMakeFiles/wf_corpus.dir/datasets.cc.o" "gcc" "src/corpus/CMakeFiles/wf_corpus.dir/datasets.cc.o.d"
  "/root/repo/src/corpus/domain_data.cc" "src/corpus/CMakeFiles/wf_corpus.dir/domain_data.cc.o" "gcc" "src/corpus/CMakeFiles/wf_corpus.dir/domain_data.cc.o.d"
  "/root/repo/src/corpus/review_gen.cc" "src/corpus/CMakeFiles/wf_corpus.dir/review_gen.cc.o" "gcc" "src/corpus/CMakeFiles/wf_corpus.dir/review_gen.cc.o.d"
  "/root/repo/src/corpus/sentence_templates.cc" "src/corpus/CMakeFiles/wf_corpus.dir/sentence_templates.cc.o" "gcc" "src/corpus/CMakeFiles/wf_corpus.dir/sentence_templates.cc.o.d"
  "/root/repo/src/corpus/web_gen.cc" "src/corpus/CMakeFiles/wf_corpus.dir/web_gen.cc.o" "gcc" "src/corpus/CMakeFiles/wf_corpus.dir/web_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lexicon/CMakeFiles/wf_lexicon.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/wf_pos.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wf_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
