file(REMOVE_RECURSE
  "CMakeFiles/wf_corpus.dir/datasets.cc.o"
  "CMakeFiles/wf_corpus.dir/datasets.cc.o.d"
  "CMakeFiles/wf_corpus.dir/domain_data.cc.o"
  "CMakeFiles/wf_corpus.dir/domain_data.cc.o.d"
  "CMakeFiles/wf_corpus.dir/review_gen.cc.o"
  "CMakeFiles/wf_corpus.dir/review_gen.cc.o.d"
  "CMakeFiles/wf_corpus.dir/sentence_templates.cc.o"
  "CMakeFiles/wf_corpus.dir/sentence_templates.cc.o.d"
  "CMakeFiles/wf_corpus.dir/web_gen.cc.o"
  "CMakeFiles/wf_corpus.dir/web_gen.cc.o.d"
  "libwf_corpus.a"
  "libwf_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
