file(REMOVE_RECURSE
  "libwf_corpus.a"
)
