file(REMOVE_RECURSE
  "CMakeFiles/wf_common.dir/logging.cc.o"
  "CMakeFiles/wf_common.dir/logging.cc.o.d"
  "CMakeFiles/wf_common.dir/rng.cc.o"
  "CMakeFiles/wf_common.dir/rng.cc.o.d"
  "CMakeFiles/wf_common.dir/status.cc.o"
  "CMakeFiles/wf_common.dir/status.cc.o.d"
  "CMakeFiles/wf_common.dir/string_util.cc.o"
  "CMakeFiles/wf_common.dir/string_util.cc.o.d"
  "libwf_common.a"
  "libwf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
