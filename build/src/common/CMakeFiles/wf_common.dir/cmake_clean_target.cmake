file(REMOVE_RECURSE
  "libwf_common.a"
)
