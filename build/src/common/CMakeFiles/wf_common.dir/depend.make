# Empty dependencies file for wf_common.
# This may be replaced when dependencies are built.
