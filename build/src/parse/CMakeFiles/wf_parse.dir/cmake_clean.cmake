file(REMOVE_RECURSE
  "CMakeFiles/wf_parse.dir/chunker.cc.o"
  "CMakeFiles/wf_parse.dir/chunker.cc.o.d"
  "CMakeFiles/wf_parse.dir/clause_splitter.cc.o"
  "CMakeFiles/wf_parse.dir/clause_splitter.cc.o.d"
  "CMakeFiles/wf_parse.dir/sentence_structure.cc.o"
  "CMakeFiles/wf_parse.dir/sentence_structure.cc.o.d"
  "libwf_parse.a"
  "libwf_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
