
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parse/chunker.cc" "src/parse/CMakeFiles/wf_parse.dir/chunker.cc.o" "gcc" "src/parse/CMakeFiles/wf_parse.dir/chunker.cc.o.d"
  "/root/repo/src/parse/clause_splitter.cc" "src/parse/CMakeFiles/wf_parse.dir/clause_splitter.cc.o" "gcc" "src/parse/CMakeFiles/wf_parse.dir/clause_splitter.cc.o.d"
  "/root/repo/src/parse/sentence_structure.cc" "src/parse/CMakeFiles/wf_parse.dir/sentence_structure.cc.o" "gcc" "src/parse/CMakeFiles/wf_parse.dir/sentence_structure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/wf_pos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
