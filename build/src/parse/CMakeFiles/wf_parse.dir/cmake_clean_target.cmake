file(REMOVE_RECURSE
  "libwf_parse.a"
)
