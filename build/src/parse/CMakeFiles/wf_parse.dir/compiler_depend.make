# Empty compiler generated dependencies file for wf_parse.
# This may be replaced when dependencies are built.
