# Empty compiler generated dependencies file for wf_core.
# This may be replaced when dependencies are built.
