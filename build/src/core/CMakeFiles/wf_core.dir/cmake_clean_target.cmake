file(REMOVE_RECURSE
  "libwf_core.a"
)
