file(REMOVE_RECURSE
  "CMakeFiles/wf_core.dir/analyzer.cc.o"
  "CMakeFiles/wf_core.dir/analyzer.cc.o.d"
  "CMakeFiles/wf_core.dir/context.cc.o"
  "CMakeFiles/wf_core.dir/context.cc.o.d"
  "CMakeFiles/wf_core.dir/miner.cc.o"
  "CMakeFiles/wf_core.dir/miner.cc.o.d"
  "CMakeFiles/wf_core.dir/phrase_sentiment.cc.o"
  "CMakeFiles/wf_core.dir/phrase_sentiment.cc.o.d"
  "CMakeFiles/wf_core.dir/sentiment_store.cc.o"
  "CMakeFiles/wf_core.dir/sentiment_store.cc.o.d"
  "libwf_core.a"
  "libwf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
