
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cc" "src/core/CMakeFiles/wf_core.dir/analyzer.cc.o" "gcc" "src/core/CMakeFiles/wf_core.dir/analyzer.cc.o.d"
  "/root/repo/src/core/context.cc" "src/core/CMakeFiles/wf_core.dir/context.cc.o" "gcc" "src/core/CMakeFiles/wf_core.dir/context.cc.o.d"
  "/root/repo/src/core/miner.cc" "src/core/CMakeFiles/wf_core.dir/miner.cc.o" "gcc" "src/core/CMakeFiles/wf_core.dir/miner.cc.o.d"
  "/root/repo/src/core/phrase_sentiment.cc" "src/core/CMakeFiles/wf_core.dir/phrase_sentiment.cc.o" "gcc" "src/core/CMakeFiles/wf_core.dir/phrase_sentiment.cc.o.d"
  "/root/repo/src/core/sentiment_store.cc" "src/core/CMakeFiles/wf_core.dir/sentiment_store.cc.o" "gcc" "src/core/CMakeFiles/wf_core.dir/sentiment_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/wf_pos.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/wf_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/lexicon/CMakeFiles/wf_lexicon.dir/DependInfo.cmake"
  "/root/repo/build/src/ner/CMakeFiles/wf_ner.dir/DependInfo.cmake"
  "/root/repo/build/src/spot/CMakeFiles/wf_spot.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
