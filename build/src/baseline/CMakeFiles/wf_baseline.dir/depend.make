# Empty dependencies file for wf_baseline.
# This may be replaced when dependencies are built.
