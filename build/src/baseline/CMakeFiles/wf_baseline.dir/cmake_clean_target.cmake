file(REMOVE_RECURSE
  "libwf_baseline.a"
)
