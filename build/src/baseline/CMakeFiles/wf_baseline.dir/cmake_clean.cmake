file(REMOVE_RECURSE
  "CMakeFiles/wf_baseline.dir/collocation.cc.o"
  "CMakeFiles/wf_baseline.dir/collocation.cc.o.d"
  "CMakeFiles/wf_baseline.dir/reviewseer.cc.o"
  "CMakeFiles/wf_baseline.dir/reviewseer.cc.o.d"
  "libwf_baseline.a"
  "libwf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
