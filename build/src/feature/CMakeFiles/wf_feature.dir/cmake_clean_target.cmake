file(REMOVE_RECURSE
  "libwf_feature.a"
)
