
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feature/bbnp.cc" "src/feature/CMakeFiles/wf_feature.dir/bbnp.cc.o" "gcc" "src/feature/CMakeFiles/wf_feature.dir/bbnp.cc.o.d"
  "/root/repo/src/feature/feature_extractor.cc" "src/feature/CMakeFiles/wf_feature.dir/feature_extractor.cc.o" "gcc" "src/feature/CMakeFiles/wf_feature.dir/feature_extractor.cc.o.d"
  "/root/repo/src/feature/likelihood_ratio.cc" "src/feature/CMakeFiles/wf_feature.dir/likelihood_ratio.cc.o" "gcc" "src/feature/CMakeFiles/wf_feature.dir/likelihood_ratio.cc.o.d"
  "/root/repo/src/feature/selection.cc" "src/feature/CMakeFiles/wf_feature.dir/selection.cc.o" "gcc" "src/feature/CMakeFiles/wf_feature.dir/selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/wf_pos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
