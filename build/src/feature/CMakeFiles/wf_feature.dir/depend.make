# Empty dependencies file for wf_feature.
# This may be replaced when dependencies are built.
