file(REMOVE_RECURSE
  "CMakeFiles/wf_feature.dir/bbnp.cc.o"
  "CMakeFiles/wf_feature.dir/bbnp.cc.o.d"
  "CMakeFiles/wf_feature.dir/feature_extractor.cc.o"
  "CMakeFiles/wf_feature.dir/feature_extractor.cc.o.d"
  "CMakeFiles/wf_feature.dir/likelihood_ratio.cc.o"
  "CMakeFiles/wf_feature.dir/likelihood_ratio.cc.o.d"
  "CMakeFiles/wf_feature.dir/selection.cc.o"
  "CMakeFiles/wf_feature.dir/selection.cc.o.d"
  "libwf_feature.a"
  "libwf_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
