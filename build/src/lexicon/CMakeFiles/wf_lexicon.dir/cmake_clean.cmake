file(REMOVE_RECURSE
  "CMakeFiles/wf_lexicon.dir/pattern_db.cc.o"
  "CMakeFiles/wf_lexicon.dir/pattern_db.cc.o.d"
  "CMakeFiles/wf_lexicon.dir/pattern_db_data.cc.o"
  "CMakeFiles/wf_lexicon.dir/pattern_db_data.cc.o.d"
  "CMakeFiles/wf_lexicon.dir/sentiment_lexicon.cc.o"
  "CMakeFiles/wf_lexicon.dir/sentiment_lexicon.cc.o.d"
  "CMakeFiles/wf_lexicon.dir/sentiment_lexicon_data.cc.o"
  "CMakeFiles/wf_lexicon.dir/sentiment_lexicon_data.cc.o.d"
  "libwf_lexicon.a"
  "libwf_lexicon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_lexicon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
