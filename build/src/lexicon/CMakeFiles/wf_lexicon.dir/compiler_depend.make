# Empty compiler generated dependencies file for wf_lexicon.
# This may be replaced when dependencies are built.
