
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lexicon/pattern_db.cc" "src/lexicon/CMakeFiles/wf_lexicon.dir/pattern_db.cc.o" "gcc" "src/lexicon/CMakeFiles/wf_lexicon.dir/pattern_db.cc.o.d"
  "/root/repo/src/lexicon/pattern_db_data.cc" "src/lexicon/CMakeFiles/wf_lexicon.dir/pattern_db_data.cc.o" "gcc" "src/lexicon/CMakeFiles/wf_lexicon.dir/pattern_db_data.cc.o.d"
  "/root/repo/src/lexicon/sentiment_lexicon.cc" "src/lexicon/CMakeFiles/wf_lexicon.dir/sentiment_lexicon.cc.o" "gcc" "src/lexicon/CMakeFiles/wf_lexicon.dir/sentiment_lexicon.cc.o.d"
  "/root/repo/src/lexicon/sentiment_lexicon_data.cc" "src/lexicon/CMakeFiles/wf_lexicon.dir/sentiment_lexicon_data.cc.o" "gcc" "src/lexicon/CMakeFiles/wf_lexicon.dir/sentiment_lexicon_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/wf_pos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
