file(REMOVE_RECURSE
  "libwf_lexicon.a"
)
