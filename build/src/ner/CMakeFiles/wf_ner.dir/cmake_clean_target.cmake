file(REMOVE_RECURSE
  "libwf_ner.a"
)
