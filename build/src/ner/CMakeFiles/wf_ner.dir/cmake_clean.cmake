file(REMOVE_RECURSE
  "CMakeFiles/wf_ner.dir/named_entity_spotter.cc.o"
  "CMakeFiles/wf_ner.dir/named_entity_spotter.cc.o.d"
  "libwf_ner.a"
  "libwf_ner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_ner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
