# Empty compiler generated dependencies file for wf_ner.
# This may be replaced when dependencies are built.
