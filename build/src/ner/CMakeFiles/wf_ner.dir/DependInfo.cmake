
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ner/named_entity_spotter.cc" "src/ner/CMakeFiles/wf_ner.dir/named_entity_spotter.cc.o" "gcc" "src/ner/CMakeFiles/wf_ner.dir/named_entity_spotter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wf_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
