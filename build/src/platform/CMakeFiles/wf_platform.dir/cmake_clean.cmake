file(REMOVE_RECURSE
  "CMakeFiles/wf_platform.dir/cluster.cc.o"
  "CMakeFiles/wf_platform.dir/cluster.cc.o.d"
  "CMakeFiles/wf_platform.dir/corpus_miners.cc.o"
  "CMakeFiles/wf_platform.dir/corpus_miners.cc.o.d"
  "CMakeFiles/wf_platform.dir/data_store.cc.o"
  "CMakeFiles/wf_platform.dir/data_store.cc.o.d"
  "CMakeFiles/wf_platform.dir/entity.cc.o"
  "CMakeFiles/wf_platform.dir/entity.cc.o.d"
  "CMakeFiles/wf_platform.dir/geo_miner.cc.o"
  "CMakeFiles/wf_platform.dir/geo_miner.cc.o.d"
  "CMakeFiles/wf_platform.dir/indexer.cc.o"
  "CMakeFiles/wf_platform.dir/indexer.cc.o.d"
  "CMakeFiles/wf_platform.dir/ingest.cc.o"
  "CMakeFiles/wf_platform.dir/ingest.cc.o.d"
  "CMakeFiles/wf_platform.dir/miner_framework.cc.o"
  "CMakeFiles/wf_platform.dir/miner_framework.cc.o.d"
  "CMakeFiles/wf_platform.dir/query_service.cc.o"
  "CMakeFiles/wf_platform.dir/query_service.cc.o.d"
  "CMakeFiles/wf_platform.dir/sentiment_miner_plugin.cc.o"
  "CMakeFiles/wf_platform.dir/sentiment_miner_plugin.cc.o.d"
  "CMakeFiles/wf_platform.dir/vinci.cc.o"
  "CMakeFiles/wf_platform.dir/vinci.cc.o.d"
  "libwf_platform.a"
  "libwf_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
