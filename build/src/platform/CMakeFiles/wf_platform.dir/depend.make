# Empty dependencies file for wf_platform.
# This may be replaced when dependencies are built.
