
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cluster.cc" "src/platform/CMakeFiles/wf_platform.dir/cluster.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/cluster.cc.o.d"
  "/root/repo/src/platform/corpus_miners.cc" "src/platform/CMakeFiles/wf_platform.dir/corpus_miners.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/corpus_miners.cc.o.d"
  "/root/repo/src/platform/data_store.cc" "src/platform/CMakeFiles/wf_platform.dir/data_store.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/data_store.cc.o.d"
  "/root/repo/src/platform/entity.cc" "src/platform/CMakeFiles/wf_platform.dir/entity.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/entity.cc.o.d"
  "/root/repo/src/platform/geo_miner.cc" "src/platform/CMakeFiles/wf_platform.dir/geo_miner.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/geo_miner.cc.o.d"
  "/root/repo/src/platform/indexer.cc" "src/platform/CMakeFiles/wf_platform.dir/indexer.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/indexer.cc.o.d"
  "/root/repo/src/platform/ingest.cc" "src/platform/CMakeFiles/wf_platform.dir/ingest.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/ingest.cc.o.d"
  "/root/repo/src/platform/miner_framework.cc" "src/platform/CMakeFiles/wf_platform.dir/miner_framework.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/miner_framework.cc.o.d"
  "/root/repo/src/platform/query_service.cc" "src/platform/CMakeFiles/wf_platform.dir/query_service.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/query_service.cc.o.d"
  "/root/repo/src/platform/sentiment_miner_plugin.cc" "src/platform/CMakeFiles/wf_platform.dir/sentiment_miner_plugin.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/sentiment_miner_plugin.cc.o.d"
  "/root/repo/src/platform/vinci.cc" "src/platform/CMakeFiles/wf_platform.dir/vinci.cc.o" "gcc" "src/platform/CMakeFiles/wf_platform.dir/vinci.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/wf_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/lexicon/CMakeFiles/wf_lexicon.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/wf_pos.dir/DependInfo.cmake"
  "/root/repo/build/src/ner/CMakeFiles/wf_ner.dir/DependInfo.cmake"
  "/root/repo/build/src/spot/CMakeFiles/wf_spot.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
