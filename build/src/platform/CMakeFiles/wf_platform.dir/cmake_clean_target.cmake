file(REMOVE_RECURSE
  "libwf_platform.a"
)
