# Empty compiler generated dependencies file for wf_spot.
# This may be replaced when dependencies are built.
