file(REMOVE_RECURSE
  "libwf_spot.a"
)
