file(REMOVE_RECURSE
  "CMakeFiles/wf_spot.dir/disambiguator.cc.o"
  "CMakeFiles/wf_spot.dir/disambiguator.cc.o.d"
  "CMakeFiles/wf_spot.dir/spotter.cc.o"
  "CMakeFiles/wf_spot.dir/spotter.cc.o.d"
  "CMakeFiles/wf_spot.dir/tfidf.cc.o"
  "CMakeFiles/wf_spot.dir/tfidf.cc.o.d"
  "libwf_spot.a"
  "libwf_spot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_spot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
