# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("text")
subdirs("pos")
subdirs("parse")
subdirs("lexicon")
subdirs("ner")
subdirs("spot")
subdirs("feature")
subdirs("core")
subdirs("baseline")
subdirs("platform")
subdirs("corpus")
subdirs("eval")
subdirs("tools")
