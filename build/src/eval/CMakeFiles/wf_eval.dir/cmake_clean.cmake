file(REMOVE_RECURSE
  "CMakeFiles/wf_eval.dir/evaluator.cc.o"
  "CMakeFiles/wf_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/wf_eval.dir/metrics.cc.o"
  "CMakeFiles/wf_eval.dir/metrics.cc.o.d"
  "CMakeFiles/wf_eval.dir/report.cc.o"
  "CMakeFiles/wf_eval.dir/report.cc.o.d"
  "libwf_eval.a"
  "libwf_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
