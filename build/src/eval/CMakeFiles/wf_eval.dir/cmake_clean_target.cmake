file(REMOVE_RECURSE
  "libwf_eval.a"
)
