# Empty dependencies file for wf_eval.
# This may be replaced when dependencies are built.
