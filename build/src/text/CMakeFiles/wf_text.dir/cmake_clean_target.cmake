file(REMOVE_RECURSE
  "libwf_text.a"
)
