# Empty dependencies file for wf_text.
# This may be replaced when dependencies are built.
