file(REMOVE_RECURSE
  "CMakeFiles/wf_text.dir/inflection.cc.o"
  "CMakeFiles/wf_text.dir/inflection.cc.o.d"
  "CMakeFiles/wf_text.dir/sentence_splitter.cc.o"
  "CMakeFiles/wf_text.dir/sentence_splitter.cc.o.d"
  "CMakeFiles/wf_text.dir/tokenizer.cc.o"
  "CMakeFiles/wf_text.dir/tokenizer.cc.o.d"
  "libwf_text.a"
  "libwf_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
