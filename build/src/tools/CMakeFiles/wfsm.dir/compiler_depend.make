# Empty compiler generated dependencies file for wfsm.
# This may be replaced when dependencies are built.
