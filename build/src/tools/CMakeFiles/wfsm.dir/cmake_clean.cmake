file(REMOVE_RECURSE
  "CMakeFiles/wfsm.dir/wfsm_main.cc.o"
  "CMakeFiles/wfsm.dir/wfsm_main.cc.o.d"
  "wfsm"
  "wfsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
