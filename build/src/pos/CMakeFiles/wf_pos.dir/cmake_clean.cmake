file(REMOVE_RECURSE
  "CMakeFiles/wf_pos.dir/tag_lexicon_data.cc.o"
  "CMakeFiles/wf_pos.dir/tag_lexicon_data.cc.o.d"
  "CMakeFiles/wf_pos.dir/tagger.cc.o"
  "CMakeFiles/wf_pos.dir/tagger.cc.o.d"
  "CMakeFiles/wf_pos.dir/tagset.cc.o"
  "CMakeFiles/wf_pos.dir/tagset.cc.o.d"
  "libwf_pos.a"
  "libwf_pos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wf_pos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
