file(REMOVE_RECURSE
  "libwf_pos.a"
)
