# Empty dependencies file for wf_pos.
# This may be replaced when dependencies are built.
