file(REMOVE_RECURSE
  "CMakeFiles/auto_reputation.dir/auto_reputation.cpp.o"
  "CMakeFiles/auto_reputation.dir/auto_reputation.cpp.o.d"
  "auto_reputation"
  "auto_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
