# Empty compiler generated dependencies file for auto_reputation.
# This may be replaced when dependencies are built.
