file(REMOVE_RECURSE
  "CMakeFiles/reputation_dashboard.dir/reputation_dashboard.cpp.o"
  "CMakeFiles/reputation_dashboard.dir/reputation_dashboard.cpp.o.d"
  "reputation_dashboard"
  "reputation_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reputation_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
