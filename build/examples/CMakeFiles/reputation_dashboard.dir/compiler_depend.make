# Empty compiler generated dependencies file for reputation_dashboard.
# This may be replaced when dependencies are built.
