# Empty compiler generated dependencies file for adhoc_query.
# This may be replaced when dependencies are built.
