file(REMOVE_RECURSE
  "CMakeFiles/adhoc_query.dir/adhoc_query.cpp.o"
  "CMakeFiles/adhoc_query.dir/adhoc_query.cpp.o.d"
  "adhoc_query"
  "adhoc_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
