# Empty dependencies file for crawl_to_insight.
# This may be replaced when dependencies are built.
