
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/crawl_to_insight.cpp" "examples/CMakeFiles/crawl_to_insight.dir/crawl_to_insight.cpp.o" "gcc" "examples/CMakeFiles/crawl_to_insight.dir/crawl_to_insight.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/wf_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/wf_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/wf_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/ner/CMakeFiles/wf_ner.dir/DependInfo.cmake"
  "/root/repo/build/src/spot/CMakeFiles/wf_spot.dir/DependInfo.cmake"
  "/root/repo/build/src/lexicon/CMakeFiles/wf_lexicon.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/wf_pos.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
