file(REMOVE_RECURSE
  "CMakeFiles/crawl_to_insight.dir/crawl_to_insight.cpp.o"
  "CMakeFiles/crawl_to_insight.dir/crawl_to_insight.cpp.o.d"
  "crawl_to_insight"
  "crawl_to_insight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_to_insight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
