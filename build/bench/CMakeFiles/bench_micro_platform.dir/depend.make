# Empty dependencies file for bench_micro_platform.
# This may be replaced when dependencies are built.
