file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_platform.dir/bench_micro_platform.cc.o"
  "CMakeFiles/bench_micro_platform.dir/bench_micro_platform.cc.o.d"
  "bench_micro_platform"
  "bench_micro_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
