# Empty dependencies file for bench_table4_product_reviews.
# This may be replaced when dependencies are built.
