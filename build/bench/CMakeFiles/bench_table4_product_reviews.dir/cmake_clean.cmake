file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_product_reviews.dir/bench_table4_product_reviews.cc.o"
  "CMakeFiles/bench_table4_product_reviews.dir/bench_table4_product_reviews.cc.o.d"
  "bench_table4_product_reviews"
  "bench_table4_product_reviews.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_product_reviews.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
