file(REMOVE_RECURSE
  "CMakeFiles/bench_modeb_latency.dir/bench_modeb_latency.cc.o"
  "CMakeFiles/bench_modeb_latency.dir/bench_modeb_latency.cc.o.d"
  "bench_modeb_latency"
  "bench_modeb_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_modeb_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
