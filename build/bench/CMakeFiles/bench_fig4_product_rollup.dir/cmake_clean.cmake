file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_product_rollup.dir/bench_fig4_product_rollup.cc.o"
  "CMakeFiles/bench_fig4_product_rollup.dir/bench_fig4_product_rollup.cc.o.d"
  "bench_fig4_product_rollup"
  "bench_fig4_product_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_product_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
