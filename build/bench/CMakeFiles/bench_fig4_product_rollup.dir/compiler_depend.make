# Empty compiler generated dependencies file for bench_fig4_product_rollup.
# This may be replaced when dependencies are built.
