file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_nlp.dir/bench_micro_nlp.cc.o"
  "CMakeFiles/bench_micro_nlp.dir/bench_micro_nlp.cc.o.d"
  "bench_micro_nlp"
  "bench_micro_nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
