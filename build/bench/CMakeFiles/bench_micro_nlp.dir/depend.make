# Empty dependencies file for bench_micro_nlp.
# This may be replaced when dependencies are built.
