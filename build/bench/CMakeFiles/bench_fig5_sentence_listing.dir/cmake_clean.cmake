file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sentence_listing.dir/bench_fig5_sentence_listing.cc.o"
  "CMakeFiles/bench_fig5_sentence_listing.dir/bench_fig5_sentence_listing.cc.o.d"
  "bench_fig5_sentence_listing"
  "bench_fig5_sentence_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sentence_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
