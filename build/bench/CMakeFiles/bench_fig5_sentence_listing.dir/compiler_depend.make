# Empty compiler generated dependencies file for bench_fig5_sentence_listing.
# This may be replaced when dependencies are built.
