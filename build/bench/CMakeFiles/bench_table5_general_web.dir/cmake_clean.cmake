file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_general_web.dir/bench_table5_general_web.cc.o"
  "CMakeFiles/bench_table5_general_web.dir/bench_table5_general_web.cc.o.d"
  "bench_table5_general_web"
  "bench_table5_general_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_general_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
