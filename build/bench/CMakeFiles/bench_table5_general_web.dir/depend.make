# Empty dependencies file for bench_table5_general_web.
# This may be replaced when dependencies are built.
