file(REMOVE_RECURSE
  "CMakeFiles/bench_platform_scaling.dir/bench_platform_scaling.cc.o"
  "CMakeFiles/bench_platform_scaling.dir/bench_platform_scaling.cc.o.d"
  "bench_platform_scaling"
  "bench_platform_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_platform_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
