# Empty compiler generated dependencies file for bench_platform_scaling.
# This may be replaced when dependencies are built.
