# Empty dependencies file for bench_fig2_satisfaction.
# This may be replaced when dependencies are built.
