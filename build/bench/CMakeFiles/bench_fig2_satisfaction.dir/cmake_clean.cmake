file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_satisfaction.dir/bench_fig2_satisfaction.cc.o"
  "CMakeFiles/bench_fig2_satisfaction.dir/bench_fig2_satisfaction.cc.o.d"
  "bench_fig2_satisfaction"
  "bench_fig2_satisfaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_satisfaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
