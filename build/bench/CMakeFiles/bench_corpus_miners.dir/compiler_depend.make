# Empty compiler generated dependencies file for bench_corpus_miners.
# This may be replaced when dependencies are built.
