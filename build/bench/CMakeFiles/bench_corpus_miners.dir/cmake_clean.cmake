file(REMOVE_RECURSE
  "CMakeFiles/bench_corpus_miners.dir/bench_corpus_miners.cc.o"
  "CMakeFiles/bench_corpus_miners.dir/bench_corpus_miners.cc.o.d"
  "bench_corpus_miners"
  "bench_corpus_miners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corpus_miners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
