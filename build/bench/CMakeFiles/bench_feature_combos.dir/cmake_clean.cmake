file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_combos.dir/bench_feature_combos.cc.o"
  "CMakeFiles/bench_feature_combos.dir/bench_feature_combos.cc.o.d"
  "bench_feature_combos"
  "bench_feature_combos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_combos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
