# Empty dependencies file for bench_feature_combos.
# This may be replaced when dependencies are built.
