file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_feature_terms.dir/bench_table2_feature_terms.cc.o"
  "CMakeFiles/bench_table2_feature_terms.dir/bench_table2_feature_terms.cc.o.d"
  "bench_table2_feature_terms"
  "bench_table2_feature_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_feature_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
