# Empty dependencies file for bench_table3_reference_counts.
# This may be replaced when dependencies are built.
