file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_reference_counts.dir/bench_table3_reference_counts.cc.o"
  "CMakeFiles/bench_table3_reference_counts.dir/bench_table3_reference_counts.cc.o.d"
  "bench_table3_reference_counts"
  "bench_table3_reference_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_reference_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
