# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/pos_test[1]_include.cmake")
include("/root/repo/build/tests/parse_test[1]_include.cmake")
include("/root/repo/build/tests/lexicon_test[1]_include.cmake")
include("/root/repo/build/tests/ner_test[1]_include.cmake")
include("/root/repo/build/tests/spot_test[1]_include.cmake")
include("/root/repo/build/tests/feature_test[1]_include.cmake")
include("/root/repo/build/tests/core_analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/core_miner_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/platform_miners_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/agreement_test[1]_include.cmake")
