# Empty compiler generated dependencies file for lexicon_test.
# This may be replaced when dependencies are built.
