file(REMOVE_RECURSE
  "CMakeFiles/lexicon_test.dir/lexicon_test.cc.o"
  "CMakeFiles/lexicon_test.dir/lexicon_test.cc.o.d"
  "lexicon_test"
  "lexicon_test.pdb"
  "lexicon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lexicon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
