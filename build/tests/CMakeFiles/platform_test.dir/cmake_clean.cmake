file(REMOVE_RECURSE
  "CMakeFiles/platform_test.dir/platform_test.cc.o"
  "CMakeFiles/platform_test.dir/platform_test.cc.o.d"
  "platform_test"
  "platform_test.pdb"
  "platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
