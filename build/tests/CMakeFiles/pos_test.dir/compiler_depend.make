# Empty compiler generated dependencies file for pos_test.
# This may be replaced when dependencies are built.
