# Empty compiler generated dependencies file for spot_test.
# This may be replaced when dependencies are built.
