file(REMOVE_RECURSE
  "CMakeFiles/spot_test.dir/spot_test.cc.o"
  "CMakeFiles/spot_test.dir/spot_test.cc.o.d"
  "spot_test"
  "spot_test.pdb"
  "spot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
