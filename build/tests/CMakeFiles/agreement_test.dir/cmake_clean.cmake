file(REMOVE_RECURSE
  "CMakeFiles/agreement_test.dir/agreement_test.cc.o"
  "CMakeFiles/agreement_test.dir/agreement_test.cc.o.d"
  "agreement_test"
  "agreement_test.pdb"
  "agreement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
