# Empty dependencies file for agreement_test.
# This may be replaced when dependencies are built.
