file(REMOVE_RECURSE
  "CMakeFiles/core_miner_test.dir/core_miner_test.cc.o"
  "CMakeFiles/core_miner_test.dir/core_miner_test.cc.o.d"
  "core_miner_test"
  "core_miner_test.pdb"
  "core_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
