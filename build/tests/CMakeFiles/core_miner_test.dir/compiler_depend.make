# Empty compiler generated dependencies file for core_miner_test.
# This may be replaced when dependencies are built.
