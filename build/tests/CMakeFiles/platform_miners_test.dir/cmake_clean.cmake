file(REMOVE_RECURSE
  "CMakeFiles/platform_miners_test.dir/platform_miners_test.cc.o"
  "CMakeFiles/platform_miners_test.dir/platform_miners_test.cc.o.d"
  "platform_miners_test"
  "platform_miners_test.pdb"
  "platform_miners_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_miners_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
