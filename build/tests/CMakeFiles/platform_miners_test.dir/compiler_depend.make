# Empty compiler generated dependencies file for platform_miners_test.
# This may be replaced when dependencies are built.
