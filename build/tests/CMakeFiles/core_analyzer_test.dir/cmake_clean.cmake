file(REMOVE_RECURSE
  "CMakeFiles/core_analyzer_test.dir/core_analyzer_test.cc.o"
  "CMakeFiles/core_analyzer_test.dir/core_analyzer_test.cc.o.d"
  "core_analyzer_test"
  "core_analyzer_test.pdb"
  "core_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
