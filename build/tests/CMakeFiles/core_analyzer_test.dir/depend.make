# Empty dependencies file for core_analyzer_test.
# This may be replaced when dependencies are built.
