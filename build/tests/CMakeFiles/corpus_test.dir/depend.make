# Empty dependencies file for corpus_test.
# This may be replaced when dependencies are built.
