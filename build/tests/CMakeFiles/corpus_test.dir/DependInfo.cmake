
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/corpus_test.cc" "tests/CMakeFiles/corpus_test.dir/corpus_test.cc.o" "gcc" "tests/CMakeFiles/corpus_test.dir/corpus_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/wf_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/wf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/lexicon/CMakeFiles/wf_lexicon.dir/DependInfo.cmake"
  "/root/repo/build/src/pos/CMakeFiles/wf_pos.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
