# Empty dependencies file for ner_test.
# This may be replaced when dependencies are built.
