#!/usr/bin/env bash
# One-command correctness gate: tier-1 build + tests, the wflint static
# pass, and an ASan+UBSan test sweep. Mirrors what CI should run.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 + wflint only (skip sanitizers)
#   WF_CHECK_TSAN=1 scripts/check.sh   # additionally run TSan over the
#                                      # threaded platform suites
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${ROOT}"
JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: configure + build (default preset, -Werror)"
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

step "tier-1: ctest"
ctest --test-dir build --output-on-failure -j "${JOBS}"

# Allocation-count regression gate: the counting-operator-new test only
# registers in plain builds (sanitizers own operator new), and the full
# tier-1 ctest above already ran it — this re-run surfaces the per-document
# numbers in the check.sh log where they are easy to compare across PRs.
step "alloc gate: per-document allocation budget"
./build/tests/alloc_gate_test

step "wflint: src/ + tests/"
./build/src/tools/wflint --report build/wflint-report.tsv src tests

# Thread-safety annotation check: the WF_GUARDED_BY/WF_REQUIRES macros
# (src/common/thread_annotations.h) only expand under Clang, so this pass
# is gated on a clang++ probe — on gcc-only hosts wflint's guarded-by rule
# remains the (approximate) backstop.
if command -v clang++ >/dev/null 2>&1; then
  step "clang -Wthread-safety: build (clang-tsafety preset)"
  cmake --preset clang-tsafety >/dev/null
  cmake --build --preset clang-tsafety -j "${JOBS}"
else
  echo "clang++ not found: skipping -Wthread-safety pass (wflint guarded-by rule still ran)"
fi

if [[ "${FAST}" == "1" ]]; then
  echo "--fast: skipping sanitizer passes"
  exit 0
fi

step "ASan+UBSan: build + full suite (ctest -L sanitize)"
cmake -B build-asan -S . -DWF_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L sanitize

if [[ "${WF_CHECK_TSAN:-0}" == "1" ]]; then
  step "TSan: build + threaded platform suites"
  cmake -B build-tsan -S . -DWF_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}"
  # Run the threaded suites' binaries directly: ctest -R matches individual
  # gtest test names, not test-binary names, so a binary-name regex there
  # would silently select nothing.
  # obs_test is in the list deliberately: the lock-striped MetricsRegistry
  # and the tracer's concurrent span recording are the newest threaded code,
  # and its JSON checker doubles as the malformed-wfstats-export gate.
  # durability_test exercises the WAL/checkpoint layer under the node
  # mutex from the chaos harness's concurrent paths. parallel_mining_test
  # drives the MineExecutor pool and the lock-striped analysis cache from
  # many workers at once — the suite the determinism contract lives in.
  # serving_test hammers the front door's admission queue, coalescing
  # flights, and striped result cache from concurrent open-loop callers —
  # and now the hedged scatter, whose cancel-by-ignore stragglers are
  # exactly the lifetime hazard TSan exists to catch.
  # storage_test drives the LSM tree's single mutex from crash fuzz and
  # the 100x-corpus sweep — the newest lock the data path takes.
  # loadgen_test runs the kilo-user generator's worker pool against fake
  # doors, the scheduling heap's lock being its one shared structure.
  # arena_identity_test re-mines the seeded corpus at 1/2/4/8 workers and
  # compares byte fingerprints — racing the arena-backed artifacts across
  # the pool is precisely where a stale-view or unsynchronized-publish bug
  # in the new allocation scheme would surface.
  for t in obs_test platform_test platform_miners_test property_test \
           robustness_test chaos_test durability_test storage_test \
           agreement_test integration_test parallel_mining_test \
           serving_test loadgen_test arena_identity_test common_test; do
    step "TSan: ${t}"
    "./build-tsan/tests/${t}"
  done
fi

echo
echo "check.sh: all passes green"
