#ifndef WF_BASELINE_REVIEWSEER_H_
#define WF_BASELINE_REVIEWSEER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "lexicon/sentiment_lexicon.h"

namespace wf::baseline {

// A ReviewSeer-style statistical opinion classifier (Dave, Lawrence &
// Pennock 2003): a Naive Bayes model over unigram + bigram features with
// add-k smoothing and a frequency cutoff, trained on labeled review
// documents. Like the original, it classifies a span of text as a whole —
// it has no notion of which subject the sentiment is about, which is
// exactly the weakness the paper's evaluation (Tables 4 & 5) exposes: high
// accuracy on single-subject review documents, sharp degradation on
// general-web sentences where the sentiment may be absent, ambiguous, or
// about something else.
class ReviewSeerClassifier {
 public:
  struct Options {
    double smoothing = 0.25;  // add-k
    bool use_bigrams = true;
    size_t min_feature_count = 2;  // rarer features are dropped
    // |log-odds| below this margin classifies as neutral.
    double neutral_margin = 0.4;
  };

  ReviewSeerClassifier() : ReviewSeerClassifier(Options{}) {}
  explicit ReviewSeerClassifier(const Options& options);

  // One labeled training document (positive or negative review).
  void AddTrainingDocument(const std::string& text,
                           lexicon::Polarity label);

  // Finalizes counts into the model. Must be called after training docs
  // are added and before classification.
  void Train();

  // Classifies a document or a single sentence.
  lexicon::Polarity Classify(const std::string& text) const;

  // Positive-vs-negative log-odds (positive value = positive class).
  double LogOdds(const std::string& text) const;

  size_t vocabulary_size() const { return feature_log_ratio_.size(); }
  bool trained() const { return trained_; }

 private:
  std::vector<std::string> Featurize(const std::string& text) const;

  Options options_;
  bool trained_ = false;

  // Raw counts accumulated during training.
  std::unordered_map<std::string, size_t> pos_counts_;
  std::unordered_map<std::string, size_t> neg_counts_;
  size_t pos_total_ = 0;
  size_t neg_total_ = 0;
  size_t pos_docs_ = 0;
  size_t neg_docs_ = 0;

  // Model: per-feature log P(f|+) - log P(f|-), plus class prior log-odds.
  std::unordered_map<std::string, double> feature_log_ratio_;
  double prior_log_odds_ = 0.0;
};

}  // namespace wf::baseline

#endif  // WF_BASELINE_REVIEWSEER_H_
