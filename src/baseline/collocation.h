#ifndef WF_BASELINE_COLLOCATION_H_
#define WF_BASELINE_COLLOCATION_H_

#include "lexicon/sentiment_lexicon.h"
#include "parse/sentence_structure.h"
#include "text/token.h"

namespace wf::baseline {

// The collocation baseline of §4.2's evaluation: "assigns the polarity of a
// sentiment term to a subject term in the same sentence. If positive and
// negative sentiment terms co-exist, the polarity with more counts is
// selected." No grammar, no association — exactly the behaviour the paper
// shows to have high recall but very low precision.
class CollocationAnalyzer {
 public:
  // `lexicon` must outlive the analyzer.
  explicit CollocationAnalyzer(const lexicon::SentimentLexicon* lexicon)
      : lexicon_(lexicon) {}

  // Polarity co-occurring with the subject at [subject_begin, subject_end)
  // inside the parsed sentence. The subject's own tokens are excluded.
  lexicon::Polarity AnalyzeSubject(const text::TokenStream& tokens,
                                   const parse::SentenceParse& parse,
                                   size_t subject_begin,
                                   size_t subject_end) const;

 private:
  const lexicon::SentimentLexicon* lexicon_;
};

}  // namespace wf::baseline

#endif  // WF_BASELINE_COLLOCATION_H_
