#include "baseline/collocation.h"

namespace wf::baseline {

using ::wf::lexicon::Polarity;

lexicon::Polarity CollocationAnalyzer::AnalyzeSubject(
    const text::TokenStream& tokens, const parse::SentenceParse& parse,
    size_t subject_begin, size_t subject_end) const {
  int positive = 0;
  int negative = 0;
  for (size_t i = parse.span.begin_token; i < parse.span.end_token; ++i) {
    if (i >= subject_begin && i < subject_end) continue;
    if (tokens[i].kind != text::TokenKind::kWord) continue;
    auto hit = lexicon_->Lookup(tokens[i].text, parse.TagAt(i));
    if (!hit.has_value()) continue;
    if (*hit == Polarity::kPositive) ++positive;
    if (*hit == Polarity::kNegative) ++negative;
  }
  if (positive > negative) return Polarity::kPositive;
  if (negative > positive) return Polarity::kNegative;
  return Polarity::kNeutral;
}

}  // namespace wf::baseline
