#include "baseline/reviewseer.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace wf::baseline {

using ::wf::common::ToLower;
using ::wf::lexicon::Polarity;

ReviewSeerClassifier::ReviewSeerClassifier(const Options& options)
    : options_(options) {}

std::vector<std::string> ReviewSeerClassifier::Featurize(
    const std::string& text) const {
  text::Tokenizer tokenizer;
  text::TokenStream tokens = tokenizer.Tokenize(text);
  std::vector<std::string> words;
  words.reserve(tokens.size());
  for (const text::Token& t : tokens) {
    if (t.kind == text::TokenKind::kWord) {
      words.push_back(ToLower(t.text));
    } else {
      words.push_back("");  // bigrams never cross punctuation
    }
  }
  std::vector<std::string> features;
  features.reserve(words.size() * 2);
  for (size_t i = 0; i < words.size(); ++i) {
    if (words[i].empty()) continue;
    features.push_back(words[i]);
    if (options_.use_bigrams && i + 1 < words.size() &&
        !words[i + 1].empty()) {
      features.push_back(words[i] + "_" + words[i + 1]);
    }
  }
  return features;
}

void ReviewSeerClassifier::AddTrainingDocument(const std::string& text,
                                               lexicon::Polarity label) {
  WF_CHECK(!trained_) << "AddTrainingDocument after Train()";
  WF_CHECK(label != Polarity::kNeutral)
      << "training labels must be positive or negative";
  auto& counts = (label == Polarity::kPositive) ? pos_counts_ : neg_counts_;
  auto& total = (label == Polarity::kPositive) ? pos_total_ : neg_total_;
  for (const std::string& f : Featurize(text)) {
    ++counts[f];
    ++total;
  }
  if (label == Polarity::kPositive) {
    ++pos_docs_;
  } else {
    ++neg_docs_;
  }
}

void ReviewSeerClassifier::Train() {
  WF_CHECK(!trained_);
  WF_CHECK(pos_docs_ > 0 && neg_docs_ > 0)
      << "need positive and negative training documents";

  // Vocabulary: features above the count cutoff in either class.
  std::unordered_map<std::string, std::pair<size_t, size_t>> merged;
  for (const auto& [f, c] : pos_counts_) merged[f].first = c;
  for (const auto& [f, c] : neg_counts_) merged[f].second = c;

  size_t vocab = 0;
  for (const auto& [f, c] : merged) {
    if (c.first + c.second >= options_.min_feature_count) ++vocab;
  }
  WF_CHECK(vocab > 0) << "no features survived the frequency cutoff";

  const double k = options_.smoothing;
  const double pos_denom = static_cast<double>(pos_total_) + k * vocab;
  const double neg_denom = static_cast<double>(neg_total_) + k * vocab;
  for (const auto& [f, c] : merged) {
    if (c.first + c.second < options_.min_feature_count) continue;
    double lp = std::log((c.first + k) / pos_denom);
    double ln = std::log((c.second + k) / neg_denom);
    feature_log_ratio_[f] = lp - ln;
  }
  prior_log_odds_ = std::log(static_cast<double>(pos_docs_)) -
                    std::log(static_cast<double>(neg_docs_));
  trained_ = true;

  // Free training counts.
  pos_counts_.clear();
  neg_counts_.clear();
}

double ReviewSeerClassifier::LogOdds(const std::string& text) const {
  WF_CHECK(trained_) << "Classify before Train()";
  double score = prior_log_odds_;
  for (const std::string& f : Featurize(text)) {
    auto it = feature_log_ratio_.find(f);
    if (it != feature_log_ratio_.end()) score += it->second;
  }
  return score;
}

lexicon::Polarity ReviewSeerClassifier::Classify(
    const std::string& text) const {
  double odds = LogOdds(text);
  if (odds > options_.neutral_margin) return Polarity::kPositive;
  if (odds < -options_.neutral_margin) return Polarity::kNegative;
  return Polarity::kNeutral;
}

}  // namespace wf::baseline
