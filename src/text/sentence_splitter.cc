#include "text/sentence_splitter.h"

namespace wf::text {
namespace {

bool IsTerminator(const Token& t) {
  if (t.kind != TokenKind::kPunct || t.text.empty()) return false;
  char c = t.text[0];
  return c == '.' || c == '!' || c == '?';
}

bool IsTrailingCloser(const Token& t) {
  if (t.text.size() != 1) return false;
  char c = t.text[0];
  return c == '"' || c == '\'' || c == ')' || c == ']' || c == '}';
}

}  // namespace

std::vector<SentenceSpan> SentenceSplitter::Split(
    const TokenStream& tokens) const {
  std::vector<SentenceSpan> out;
  out.reserve(tokens.size() / 16 + 1);  // ~16 tokens per sentence in reviews
  size_t start = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsTerminator(tokens[i])) continue;
    size_t end = i + 1;
    while (end < tokens.size() && IsTrailingCloser(tokens[end])) ++end;
    if (end > start) out.push_back(SentenceSpan{start, end});
    start = end;
    i = end - 1;
  }
  if (start < tokens.size()) {
    out.push_back(SentenceSpan{start, tokens.size()});
  }
  return out;
}

}  // namespace wf::text
