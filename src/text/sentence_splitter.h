#ifndef WF_TEXT_SENTENCE_SPLITTER_H_
#define WF_TEXT_SENTENCE_SPLITTER_H_

#include <vector>

#include "text/token.h"

namespace wf::text {

// Splits a token stream into sentences (the preprocessing step of §4.2:
// "we extract sentences from input documents").
//
// A sentence ends at '.', '!', '?', '...' or at a hard break implied by the
// stream ending. Closing quotes/brackets immediately after the terminator
// are folded into the sentence. Abbreviations never end a sentence because
// the tokenizer keeps their period inside the word token.
class SentenceSplitter {
 public:
  std::vector<SentenceSpan> Split(const TokenStream& tokens) const;
};

}  // namespace wf::text

#endif  // WF_TEXT_SENTENCE_SPLITTER_H_
