#ifndef WF_TEXT_TOKENIZER_H_
#define WF_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>

#include "text/token.h"

namespace wf::text {

struct TokenizerOptions {
  // Split Penn-Treebank-style clitics: "don't" -> "do"+"n't",
  // "camera's" -> "camera"+"'s".
  bool split_clitics = true;
  // Keep known abbreviations ("Dr.", "U.S.", "e.g.") as single tokens,
  // including their trailing period.
  bool keep_abbreviations = true;
};

// Rule-based English tokenizer (the WebFountain "Tokenizer" entity-level
// miner). Deterministic, whitespace- and character-class driven:
//   - words may contain internal hyphens and apostrophes
//   - numbers may contain decimal points, commas and leading signs
//   - each punctuation/symbol character is its own token
//   - abbreviations from a built-in list keep their period
// Offsets in the returned tokens always cover the source slice the token
// came from, so downstream spans map back to the document.
//
// Zero-copy: every returned Token::text is a view into `input` — the
// tokenizer allocates nothing per token. The caller must keep the input
// bytes alive for as long as it reads the tokens (LinguisticAnalysis does
// this by copying the body into its arena before tokenizing).
class Tokenizer {
 public:
  Tokenizer() : Tokenizer(TokenizerOptions{}) {}
  explicit Tokenizer(const TokenizerOptions& options);

  TokenStream Tokenize(std::string_view input) const;

  // True when `word` (with trailing period) is a known abbreviation,
  // case-insensitively ("Dr.", "e.g.").
  static bool IsAbbreviation(std::string_view word_with_period);

 private:
  TokenizerOptions options_;
};

}  // namespace wf::text

#endif  // WF_TEXT_TOKENIZER_H_
