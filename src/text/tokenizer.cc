#include "text/tokenizer.h"

#include <array>

#include "common/string_util.h"

namespace wf::text {
namespace {

using ::wf::common::EqualsIgnoreCase;
using ::wf::common::IsAsciiAlpha;
using ::wf::common::IsAsciiDigit;
using ::wf::common::IsAsciiSpace;

constexpr std::array<std::string_view, 28> kAbbreviations = {
    "mr.",  "mrs.",  "ms.",   "dr.",   "prof.", "sr.",   "jr.",
    "st.",  "gen.",  "rep.",  "sen.",  "gov.",  "capt.", "lt.",
    "col.", "sgt.",  "inc.",  "corp.", "co.",   "ltd.",  "vs.",
    "etc.", "e.g.",  "i.e.",  "u.s.",  "u.k.",  "no.",   "fig."};

bool IsWordChar(char c) { return IsAsciiAlpha(c) || IsAsciiDigit(c); }

// Clitic suffixes split per Penn Treebank conventions, longest first.
constexpr std::array<std::string_view, 7> kClitics = {
    "n't", "'re", "'ve", "'ll", "'s", "'d", "'m"};

}  // namespace

Tokenizer::Tokenizer(const TokenizerOptions& options) : options_(options) {}

bool Tokenizer::IsAbbreviation(std::string_view word_with_period) {
  for (std::string_view abbr : kAbbreviations) {
    if (EqualsIgnoreCase(word_with_period, abbr)) return true;
  }
  // Single letter followed by a period ("J.") or dotted acronym ("U.S.A.").
  if (word_with_period.size() >= 2 && word_with_period.back() == '.') {
    bool dotted = true;
    for (size_t i = 0; i < word_with_period.size(); ++i) {
      bool expect_alpha = (i % 2 == 0);
      char c = word_with_period[i];
      if (expect_alpha ? !IsAsciiAlpha(c) : c != '.') {
        dotted = false;
        break;
      }
    }
    if (dotted && word_with_period.size() % 2 == 0) return true;
  }
  return false;
}

TokenStream Tokenizer::Tokenize(std::string_view input) const {
  TokenStream out;
  out.reserve(input.size() / 5 + 1);  // ~5 bytes per token in review text
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (IsAsciiSpace(c)) {
      ++i;
      continue;
    }

    // Number: optional sign only when followed by a digit; digits with
    // internal '.' or ',' followed by more digits.
    if (IsAsciiDigit(c) ||
        ((c == '-' || c == '+') && i + 1 < n && IsAsciiDigit(input[i + 1]))) {
      size_t start = i;
      if (c == '-' || c == '+') ++i;
      while (i < n) {
        if (IsAsciiDigit(input[i])) {
          ++i;
        } else if ((input[i] == '.' || input[i] == ',') && i + 1 < n &&
                   IsAsciiDigit(input[i + 1])) {
          i += 2;
        } else {
          break;
        }
      }
      out.push_back(
          Token{input.substr(start, i - start), start, i, TokenKind::kNumber});
      continue;
    }

    if (IsAsciiAlpha(c)) {
      // Word: letters/digits with internal hyphens and apostrophes.
      size_t start = i;
      ++i;
      while (i < n) {
        if (IsWordChar(input[i])) {
          ++i;
        } else if ((input[i] == '-' || input[i] == '\'') && i + 1 < n &&
                   IsWordChar(input[i + 1])) {
          i += 2;
        } else {
          break;
        }
      }
      size_t end = i;
      // Abbreviation check: absorb a trailing period when the result is a
      // known abbreviation or dotted acronym.
      if (options_.keep_abbreviations && i < n && input[i] == '.') {
        // Dotted acronyms tokenize letter-by-letter above, so re-scan the
        // candidate including interior periods: extend over alternating
        // letter/period runs.
        size_t j = i;
        while (j + 1 < n && input[j] == '.' && IsAsciiAlpha(input[j + 1]) &&
               (j + 2 >= n || input[j + 2] == '.')) {
          j += 2;
        }
        if (j < n && input[j] == '.') ++j;
        std::string_view with_period = input.substr(start, j - start);
        if (with_period.back() == '.' && IsAbbreviation(with_period)) {
          end = j;
          i = j;
        }
      }
      std::string_view surface = input.substr(start, end - start);
      // Clitic splitting ("don't" -> "do" + "n't"): the split point is a
      // source byte boundary, so both halves stay zero-copy slices.
      if (options_.split_clitics &&
          surface.find('\'') != std::string_view::npos) {
        for (std::string_view clitic : kClitics) {
          if (surface.size() > clitic.size() &&
              EqualsIgnoreCase(surface.substr(surface.size() - clitic.size()),
                               clitic)) {
            size_t split = surface.size() - clitic.size();
            out.push_back(Token{surface.substr(0, split), start, start + split,
                                TokenKind::kWord});
            out.push_back(Token{surface.substr(split), start + split, end,
                                TokenKind::kWord});
            surface = std::string_view();
            break;
          }
        }
      }
      if (!surface.empty()) {
        out.push_back(Token{surface, start, end, TokenKind::kWord});
      }
      continue;
    }

    // Punctuation / symbol: one character per token, except runs of the same
    // sentence-final mark ("..." / "!!") and "--" which group.
    size_t start = i;
    char p = c;
    ++i;
    if (p == '.' || p == '!' || p == '?' || p == '-') {
      while (i < n && input[i] == p) ++i;
    }
    TokenKind kind = TokenKind::kSymbol;
    switch (p) {
      case '.':
      case ',':
      case ';':
      case ':':
      case '!':
      case '?':
      case '"':
      case '\'':
      case '(':
      case ')':
      case '[':
      case ']':
      case '{':
      case '}':
      case '-':
        kind = TokenKind::kPunct;
        break;
      default:
        kind = TokenKind::kSymbol;
        break;
    }
    out.push_back(Token{input.substr(start, i - start), start, i, kind});
  }
  return out;
}

}  // namespace wf::text
