#ifndef WF_TEXT_TOKEN_H_
#define WF_TEXT_TOKEN_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace wf::text {

enum class TokenKind : uint8_t {
  kWord = 0,   // alphabetic (may contain internal hyphens/apostrophes)
  kNumber,     // 12, 3.5, 1,024
  kPunct,      // . , ; : ! ? " ( ) ...
  kSymbol,     // $, %, &, etc.
};

// One token of the input text. Offsets are byte offsets into the original
// document, so every annotation downstream can be mapped back to the source
// (end is exclusive). `text` is a zero-copy view of the surface form,
// slicing the tokenized input: even clitics split per Penn Treebank
// conventions ("don't" -> "do" + "n't") split at a source byte boundary, so
// both halves remain exact slices. Tokens are therefore only valid while
// the tokenized buffer lives — LinguisticAnalysis roots that buffer in its
// arena (DESIGN.md §15); transient callers keep the input in scope.
struct Token {
  std::string_view text;
  size_t begin = 0;
  size_t end = 0;
  TokenKind kind = TokenKind::kWord;

  bool IsWord() const { return kind == TokenKind::kWord; }
  bool IsPunct() const { return kind == TokenKind::kPunct; }

  friend bool operator==(const Token& a, const Token& b) {
    return a.text == b.text && a.begin == b.begin && a.end == b.end &&
           a.kind == b.kind;
  }
};

using TokenStream = std::vector<Token>;

// Half-open token range [begin, end) identifying a sentence within a
// TokenStream.
struct SentenceSpan {
  size_t begin_token = 0;
  size_t end_token = 0;

  size_t size() const { return end_token - begin_token; }
  bool empty() const { return end_token <= begin_token; }

  friend bool operator==(const SentenceSpan& a, const SentenceSpan& b) {
    return a.begin_token == b.begin_token && a.end_token == b.end_token;
  }
};

}  // namespace wf::text

#endif  // WF_TEXT_TOKEN_H_
