#include "text/inflection.h"

#include <unordered_map>

#include "common/string_util.h"

namespace wf::text {
namespace {

using ::wf::common::EndsWith;

const std::unordered_map<std::string, std::string>& IrregularNouns() {
  static const auto* kMap = new std::unordered_map<std::string, std::string>{
      {"men", "man"},         {"women", "woman"},     {"children", "child"},
      {"feet", "foot"},       {"teeth", "tooth"},     {"mice", "mouse"},
      {"geese", "goose"},     {"people", "person"},   {"lenses", "lens"},
      {"media", "medium"},    {"criteria", "criterion"},
      {"phenomena", "phenomenon"},                    {"lives", "life"},
      {"knives", "knife"},    {"shelves", "shelf"},   {"wives", "wife"},
      {"leaves", "leaf"},     {"halves", "half"},
  };
  return *kMap;
}

// Words that look plural but are not ("lens", "series", ...), so the -s
// stripping rules must leave them alone.
bool IsPluralLookingSingular(std::string_view w) {
  static const auto* kSet = new std::unordered_map<std::string, bool>{
      {"lens", true},   {"series", true}, {"species", true},
      {"news", true},   {"bus", true},    {"gas", true},
      {"class", true},  {"glass", true},  {"pros", true},
      {"cons", true},   {"chaos", true},  {"basis", true},
      {"analysis", true},
  };
  return kSet->count(std::string(w)) > 0;
}

const std::unordered_map<std::string, std::string>& IrregularVerbs() {
  static const auto* kMap = new std::unordered_map<std::string, std::string>{
      {"is", "be"},        {"am", "be"},       {"are", "be"},
      {"was", "be"},       {"were", "be"},     {"been", "be"},
      {"being", "be"},     {"'s", "be"},       {"'re", "be"},
      {"'m", "be"},        {"has", "have"},    {"had", "have"},
      {"having", "have"},  {"'ve", "have"},    {"does", "do"},
      {"did", "do"},       {"done", "do"},     {"doing", "do"},
      {"goes", "go"},      {"went", "go"},     {"gone", "go"},
      {"took", "take"},    {"taken", "take"},  {"takes", "take"},
      {"taking", "take"},  {"gave", "give"},   {"given", "give"},
      {"made", "make"},    {"making", "make"}, {"bought", "buy"},
      {"got", "get"},      {"gotten", "get"},  {"getting", "get"},
      {"came", "come"},    {"coming", "come"}, {"said", "say"},
      {"saw", "see"},      {"seen", "see"},    {"found", "find"},
      {"felt", "feel"},    {"left", "leave"},  {"kept", "keep"},
      {"held", "hold"},    {"told", "tell"},   {"sold", "sell"},
      {"built", "build"},  {"sent", "send"},   {"spent", "spend"},
      {"lost", "lose"},    {"met", "meet"},    {"paid", "pay"},
      {"put", "put"},      {"let", "let"},     {"set", "set"},
      {"cost", "cost"},    {"cut", "cut"},     {"hit", "hit"},
      {"beat", "beat"},    {"broke", "break"}, {"broken", "break"},
      {"chose", "choose"}, {"chosen", "choose"},
      {"fell", "fall"},    {"fallen", "fall"}, {"grew", "grow"},
      {"grown", "grow"},   {"knew", "know"},   {"known", "know"},
      {"ran", "run"},      {"running", "run"}, {"thought", "think"},
      {"wrote", "write"},  {"written", "write"},
      {"wore", "wear"},    {"worn", "wear"},   {"won", "win"},
      {"outdid", "outdo"}, {"outdoes", "outdo"},
      {"exceeded", "exceed"},                  {"underwent", "undergo"},
      {"shot", "shoot"},   {"shook", "shake"}, {"shaken", "shake"},
      {"stood", "stand"},  {"understood", "understand"},
      {"brought", "bring"},{"caught", "catch"},{"taught", "teach"},
      {"led", "lead"},     {"read", "read"},   {"heard", "hear"},
      {"meant", "mean"},   {"became", "become"},
      {"began", "begin"},  {"begun", "begin"}, {"ate", "eat"},
      {"eaten", "eat"},    {"drove", "drive"}, {"driven", "drive"},
      {"rose", "rise"},    {"risen", "rise"},  {"fled", "flee"},
  };
  return *kMap;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

// Words ending in -e that drop it before -ing/-ed are restored by this
// heuristic: restore 'e' when the stem ends consonant+consonant that usually
// requires it (e.g. "impress+ed" vs "improve+d"). We approximate with a
// small rule set validated by the tagger tests.
std::string StripVerbSuffix(std::string_view w) {
  // `word` exists only for the exact-match tables; every slice below cuts
  // the string_view and materializes once at the return.
  std::string word(w);
  auto ends = [&](std::string_view s) { return EndsWith(w, s); };

  // Base forms that merely *look* inflected must pass through: -eed verbs
  // ("need", "exceed", "succeed"), -ing-final bases ("bring", "spring"),
  // and -ed-final bases ("shed", "embed").
  if (ends("eed")) return word;
  static const auto* kIngBases = new std::unordered_map<std::string, bool>{
      {"bring", true},  {"spring", true}, {"string", true},
      {"swing", true},  {"sting", true},  {"cling", true},
      {"fling", true},  {"sling", true},  {"wring", true},
      {"sing", true},   {"ring", true},   {"king", true},
      {"thing", true},  {"wing", true},   {"evening", true},
      {"morning", true}, {"nothing", true}, {"something", true},
      {"everything", true}, {"anything", true},
  };
  if (kIngBases->count(word) > 0) return word;
  static const auto* kEdBases = new std::unordered_map<std::string, bool>{
      {"shed", true}, {"embed", true}, {"wed", true}, {"sled", true},
      {"shred", true},
  };
  if (kEdBases->count(word) > 0) return word;

  if (ends("ies") && w.size() > 4) {
    // "carries" -> "carry"
    return std::string(w.substr(0, w.size() - 3)) + "y";
  }
  if (ends("ied") && w.size() > 4) {
    // "satisfied" -> "satisfy"
    return std::string(w.substr(0, w.size() - 3)) + "y";
  }
  if ((ends("ches") || ends("shes") || ends("sses") || ends("xes") ||
       ends("zes")) &&
      w.size() > 4) {
    // "watches" -> "watch", "passes" -> "pass"
    return std::string(w.substr(0, w.size() - 2));
  }
  if (ends("es") && w.size() > 3 && w[w.size() - 3] == 'o') {
    // "goes" handled as irregular; "echoes" -> "echo"
    return std::string(w.substr(0, w.size() - 2));
  }
  if (ends("s") && !ends("ss") && !ends("us") && !ends("is") &&
      w.size() > 2) {
    return std::string(w.substr(0, w.size() - 1));
  }

  auto strip_ed_ing = [&](size_t suffix_len) -> std::string {
    std::string_view stem = w.substr(0, w.size() - suffix_len);
    if (stem.size() >= 2) {
      char last = stem[stem.size() - 1];
      char prev = stem[stem.size() - 2];
      // Consonant doubling: "stopped" -> "stop", "planning" -> "plan".
      // Stems legitimately ending in a double consonant ("call", "impress",
      // "fill") keep it and take no restored 'e'.
      if (last == prev && !IsVowel(last)) {
        if (last != 'l' && last != 's' && stem.size() >= 3) {
          return std::string(stem.substr(0, stem.size() - 1));
        }
        return std::string(stem);
      }
      // Silent-e restoration: "loved" -> "love", "amazing" -> "amaze".
      // Applies when the stem ends with consonant preceded by vowel and the
      // consonant typically requires -e (approximation: c,g,s,v,z or
      // two-consonant clusters like "dl" do not; we restore for
      // v,z,c,g,s,u and single-consonant after long vowel patterns).
      if (!IsVowel(last)) {
        if (last == 'v' || last == 'z' || last == 'c' || last == 'g' ||
            last == 's' || last == 'u') {
          return std::string(stem) + "e";
        }
        static const char* kERestore[] = {"at", "it", "ot", "ut", "ik",
                                          "ok", "ir", "ar", "or", "ur",
                                          "in", "im", "iz", "as"};
        if (stem.size() >= 2) {
          std::string_view tail = stem.substr(stem.size() - 2);
          for (const char* t : kERestore) {
            if (tail == t && stem.size() > 3) return std::string(stem) + "e";
          }
        }
      }
    }
    return std::string(stem);
  };

  if (ends("ing") && w.size() > 4) return strip_ed_ing(3);
  if (ends("ed") && w.size() > 3) return strip_ed_ing(2);
  return word;
}

}  // namespace

std::string SingularizeNoun(std::string_view word) {
  std::string w(word);  // exact-match tables only; slices cut the view
  auto it = IrregularNouns().find(w);
  if (it != IrregularNouns().end()) return it->second;
  if (IsPluralLookingSingular(word)) return w;
  if (EndsWith(word, "ies") && word.size() > 4) {
    return std::string(word.substr(0, word.size() - 3)) + "y";
  }
  if ((EndsWith(word, "ches") || EndsWith(word, "shes") ||
       EndsWith(word, "sses") || EndsWith(word, "xes") ||
       EndsWith(word, "zes")) &&
      word.size() > 4) {
    return std::string(word.substr(0, word.size() - 2));
  }
  if (EndsWith(word, "oes") && word.size() > 4) {
    return std::string(word.substr(0, word.size() - 2));
  }
  if (EndsWith(word, "s") && !EndsWith(word, "ss") && !EndsWith(word, "us") &&
      !EndsWith(word, "is") && word.size() > 2) {
    return std::string(word.substr(0, word.size() - 1));
  }
  return w;
}

std::string VerbLemma(std::string_view word) {
  std::string w(word);
  auto it = IrregularVerbs().find(w);
  if (it != IrregularVerbs().end()) return it->second;
  return StripVerbSuffix(w);
}

std::string AdjectiveBase(std::string_view word) {
  std::string w(word);  // exact-match table only; slices cut the view
  static const auto* kIrregular =
      new std::unordered_map<std::string, std::string>{
          {"better", "good"}, {"best", "good"},  {"worse", "bad"},
          {"worst", "bad"},   {"less", "little"}, {"least", "little"},
          {"more", "much"},   {"most", "much"},   {"further", "far"},
      };
  auto it = kIrregular->find(w);
  if (it != kIrregular->end()) return it->second;

  auto strip = [&](size_t n) -> std::string {
    std::string_view stem = word.substr(0, word.size() - n);
    if (stem.size() >= 2) {
      char last = stem[stem.size() - 1];
      char prev = stem[stem.size() - 2];
      if (last == prev && !IsVowel(last)) {
        return std::string(stem.substr(0, stem.size() - 1));  // bigger -> big
      }
      if (last == 'i') {
        // happier -> happy
        return std::string(stem.substr(0, stem.size() - 1)) + "y";
      }
      // nicer -> nice: restore e when the stem ends in a consonant that
      // would otherwise leave an un-word ("nic").
      if (!IsVowel(last) && (last == 'c' || last == 'g' || last == 'v' ||
                             last == 's' || last == 'z')) {
        return std::string(stem) + "e";
      }
    }
    return std::string(stem);
  };

  if (EndsWith(word, "est") && word.size() > 4) return strip(3);
  if (EndsWith(word, "er") && word.size() > 3) return strip(2);
  return w;
}

bool IsNegationWord(std::string_view word) {
  static const auto* kSet = new std::unordered_map<std::string, bool>{
      {"not", true},    {"n't", true},    {"no", true},
      {"never", true},  {"hardly", true}, {"seldom", true},
      {"rarely", true}, {"barely", true}, {"scarcely", true},
      {"little", true}, {"neither", true}, {"nor", true},
      {"without", true},
  };
  std::string w = common::ToLower(word);
  return kSet->count(w) > 0;
}

}  // namespace wf::text
