#include "text/inflection.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace wf::text {
namespace {

using ::wf::common::EndsWith;
using ::wf::common::ToLowerAscii;

// All tables key and value by string_view over static literals: lookups
// never allocate and table hits are stable storage, so the interner-based
// helpers can return them without copying.
using ViewMap = std::unordered_map<std::string_view, std::string_view>;
using ViewSet = std::unordered_set<std::string_view>;

const ViewMap& IrregularNouns() {
  static const auto* kMap = new ViewMap{
      {"men", "man"},         {"women", "woman"},     {"children", "child"},
      {"feet", "foot"},       {"teeth", "tooth"},     {"mice", "mouse"},
      {"geese", "goose"},     {"people", "person"},   {"lenses", "lens"},
      {"media", "medium"},    {"criteria", "criterion"},
      {"phenomena", "phenomenon"},                    {"lives", "life"},
      {"knives", "knife"},    {"shelves", "shelf"},   {"wives", "wife"},
      {"leaves", "leaf"},     {"halves", "half"},
  };
  return *kMap;
}

// Words that look plural but are not ("lens", "series", ...), so the -s
// stripping rules must leave them alone.
bool IsPluralLookingSingular(std::string_view w) {
  static const auto* kSet = new ViewSet{
      "lens",  "series", "species", "news",  "bus",   "gas",   "class",
      "glass", "pros",   "cons",    "chaos", "basis", "analysis",
  };
  return kSet->count(w) > 0;
}

const ViewMap& IrregularVerbs() {
  static const auto* kMap = new ViewMap{
      {"is", "be"},        {"am", "be"},       {"are", "be"},
      {"was", "be"},       {"were", "be"},     {"been", "be"},
      {"being", "be"},     {"'s", "be"},       {"'re", "be"},
      {"'m", "be"},        {"has", "have"},    {"had", "have"},
      {"having", "have"},  {"'ve", "have"},    {"does", "do"},
      {"did", "do"},       {"done", "do"},     {"doing", "do"},
      {"goes", "go"},      {"went", "go"},     {"gone", "go"},
      {"took", "take"},    {"taken", "take"},  {"takes", "take"},
      {"taking", "take"},  {"gave", "give"},   {"given", "give"},
      {"made", "make"},    {"making", "make"}, {"bought", "buy"},
      {"got", "get"},      {"gotten", "get"},  {"getting", "get"},
      {"came", "come"},    {"coming", "come"}, {"said", "say"},
      {"saw", "see"},      {"seen", "see"},    {"found", "find"},
      {"felt", "feel"},    {"left", "leave"},  {"kept", "keep"},
      {"held", "hold"},    {"told", "tell"},   {"sold", "sell"},
      {"built", "build"},  {"sent", "send"},   {"spent", "spend"},
      {"lost", "lose"},    {"met", "meet"},    {"paid", "pay"},
      {"put", "put"},      {"let", "let"},     {"set", "set"},
      {"cost", "cost"},    {"cut", "cut"},     {"hit", "hit"},
      {"beat", "beat"},    {"broke", "break"}, {"broken", "break"},
      {"chose", "choose"}, {"chosen", "choose"},
      {"fell", "fall"},    {"fallen", "fall"}, {"grew", "grow"},
      {"grown", "grow"},   {"knew", "know"},   {"known", "know"},
      {"ran", "run"},      {"running", "run"}, {"thought", "think"},
      {"wrote", "write"},  {"written", "write"},
      {"wore", "wear"},    {"worn", "wear"},   {"won", "win"},
      {"outdid", "outdo"}, {"outdoes", "outdo"},
      {"exceeded", "exceed"},                  {"underwent", "undergo"},
      {"shot", "shoot"},   {"shook", "shake"}, {"shaken", "shake"},
      {"stood", "stand"},  {"understood", "understand"},
      {"brought", "bring"},{"caught", "catch"},{"taught", "teach"},
      {"led", "lead"},     {"read", "read"},   {"heard", "hear"},
      {"meant", "mean"},   {"became", "become"},
      {"began", "begin"},  {"begun", "begin"}, {"ate", "eat"},
      {"eaten", "eat"},    {"drove", "drive"}, {"driven", "drive"},
      {"rose", "rise"},    {"risen", "rise"},  {"fled", "flee"},
  };
  return *kMap;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

// Core rule engines. Each returns a view of the input (no rule applied), of
// static storage (irregular table hit), or of *scratch (a derived form was
// built). `scratch` is cleared on entry, so a non-empty scratch on return
// means exactly "the result is in scratch".

// Builds "<stem><suffix>" into scratch.
std::string_view Derive(std::string_view stem, std::string_view suffix,
                        std::string* scratch) {
  scratch->assign(stem);
  scratch->append(suffix);
  return *scratch;
}

// Words ending in -e that drop it before -ing/-ed are restored by this
// heuristic: restore 'e' when the stem ends consonant+consonant that usually
// requires it (e.g. "impress+ed" vs "improve+d"). We approximate with a
// small rule set validated by the tagger tests.
std::string_view StripVerbSuffix(std::string_view w, std::string* scratch) {
  auto ends = [&](std::string_view s) { return EndsWith(w, s); };

  // Base forms that merely *look* inflected must pass through: -eed verbs
  // ("need", "exceed", "succeed"), -ing-final bases ("bring", "spring"),
  // and -ed-final bases ("shed", "embed").
  if (ends("eed")) return w;
  static const auto* kIngBases = new ViewSet{
      "bring",   "spring",  "string",  "swing",      "sting",
      "cling",   "fling",   "sling",   "wring",      "sing",
      "ring",    "king",    "thing",   "wing",       "evening",
      "morning", "nothing", "something", "everything", "anything",
  };
  if (kIngBases->count(w) > 0) return w;
  static const auto* kEdBases = new ViewSet{
      "shed", "embed", "wed", "sled", "shred",
  };
  if (kEdBases->count(w) > 0) return w;

  if (ends("ies") && w.size() > 4) {
    // "carries" -> "carry"
    return Derive(w.substr(0, w.size() - 3), "y", scratch);
  }
  if (ends("ied") && w.size() > 4) {
    // "satisfied" -> "satisfy"
    return Derive(w.substr(0, w.size() - 3), "y", scratch);
  }
  if ((ends("ches") || ends("shes") || ends("sses") || ends("xes") ||
       ends("zes")) &&
      w.size() > 4) {
    // "watches" -> "watch", "passes" -> "pass"
    return w.substr(0, w.size() - 2);
  }
  if (ends("es") && w.size() > 3 && w[w.size() - 3] == 'o') {
    // "goes" handled as irregular; "echoes" -> "echo"
    return w.substr(0, w.size() - 2);
  }
  if (ends("s") && !ends("ss") && !ends("us") && !ends("is") &&
      w.size() > 2) {
    return w.substr(0, w.size() - 1);
  }

  auto strip_ed_ing = [&](size_t suffix_len) -> std::string_view {
    std::string_view stem = w.substr(0, w.size() - suffix_len);
    if (stem.size() >= 2) {
      char last = stem[stem.size() - 1];
      char prev = stem[stem.size() - 2];
      // Consonant doubling: "stopped" -> "stop", "planning" -> "plan".
      // Stems legitimately ending in a double consonant ("call", "impress",
      // "fill") keep it and take no restored 'e'.
      if (last == prev && !IsVowel(last)) {
        if (last != 'l' && last != 's' && stem.size() >= 3) {
          return stem.substr(0, stem.size() - 1);
        }
        return stem;
      }
      // Silent-e restoration: "loved" -> "love", "amazing" -> "amaze".
      // Applies when the stem ends with consonant preceded by vowel and the
      // consonant typically requires -e (approximation: c,g,s,v,z or
      // two-consonant clusters like "dl" do not; we restore for
      // v,z,c,g,s,u and single-consonant after long vowel patterns).
      if (!IsVowel(last)) {
        if (last == 'v' || last == 'z' || last == 'c' || last == 'g' ||
            last == 's' || last == 'u') {
          return Derive(stem, "e", scratch);
        }
        static const char* kERestore[] = {"at", "it", "ot", "ut", "ik",
                                          "ok", "ir", "ar", "or", "ur",
                                          "in", "im", "iz", "as"};
        if (stem.size() >= 2) {
          std::string_view tail = stem.substr(stem.size() - 2);
          for (const char* t : kERestore) {
            if (tail == t && stem.size() > 3) return Derive(stem, "e", scratch);
          }
        }
      }
    }
    return stem;
  };

  if (ends("ing") && w.size() > 4) return strip_ed_ing(3);
  if (ends("ed") && w.size() > 3) return strip_ed_ing(2);
  return w;
}

std::string_view SingularizeNounCore(std::string_view word,
                                     std::string* scratch) {
  scratch->clear();
  auto it = IrregularNouns().find(word);
  if (it != IrregularNouns().end()) return it->second;
  if (IsPluralLookingSingular(word)) return word;
  if (EndsWith(word, "ies") && word.size() > 4) {
    return Derive(word.substr(0, word.size() - 3), "y", scratch);
  }
  if ((EndsWith(word, "ches") || EndsWith(word, "shes") ||
       EndsWith(word, "sses") || EndsWith(word, "xes") ||
       EndsWith(word, "zes")) &&
      word.size() > 4) {
    return word.substr(0, word.size() - 2);
  }
  if (EndsWith(word, "oes") && word.size() > 4) {
    return word.substr(0, word.size() - 2);
  }
  if (EndsWith(word, "s") && !EndsWith(word, "ss") && !EndsWith(word, "us") &&
      !EndsWith(word, "is") && word.size() > 2) {
    return word.substr(0, word.size() - 1);
  }
  return word;
}

std::string_view VerbLemmaCore(std::string_view word, std::string* scratch) {
  scratch->clear();
  auto it = IrregularVerbs().find(word);
  if (it != IrregularVerbs().end()) return it->second;
  return StripVerbSuffix(word, scratch);
}

std::string_view AdjectiveBaseCore(std::string_view word,
                                   std::string* scratch) {
  scratch->clear();
  static const auto* kIrregular = new ViewMap{
      {"better", "good"}, {"best", "good"},   {"worse", "bad"},
      {"worst", "bad"},   {"less", "little"}, {"least", "little"},
      {"more", "much"},   {"most", "much"},   {"further", "far"},
  };
  auto it = kIrregular->find(word);
  if (it != kIrregular->end()) return it->second;

  auto strip = [&](size_t n) -> std::string_view {
    std::string_view stem = word.substr(0, word.size() - n);
    if (stem.size() >= 2) {
      char last = stem[stem.size() - 1];
      char prev = stem[stem.size() - 2];
      if (last == prev && !IsVowel(last)) {
        return stem.substr(0, stem.size() - 1);  // bigger -> big
      }
      if (last == 'i') {
        // happier -> happy
        return Derive(stem.substr(0, stem.size() - 1), "y", scratch);
      }
      // nicer -> nice: restore e when the stem ends in a consonant that
      // would otherwise leave an un-word ("nic").
      if (!IsVowel(last) && (last == 'c' || last == 'g' || last == 'v' ||
                             last == 's' || last == 'z')) {
        return Derive(stem, "e", scratch);
      }
    }
    return stem;
  };

  if (EndsWith(word, "est") && word.size() > 4) return strip(3);
  if (EndsWith(word, "er") && word.size() > 3) return strip(2);
  return word;
}

// Interner adapter: derived forms (living in `scratch`) are interned into
// the arena; views of the input or of static tables pass through untouched.
std::string_view InternIfDerived(std::string_view result,
                                 const std::string& scratch,
                                 common::StringInterner* interner) {
  if (!scratch.empty() && result.data() == scratch.data()) {
    return interner->Intern(result);
  }
  return result;
}

}  // namespace

std::string SingularizeNoun(std::string_view word) {
  std::string scratch;
  return std::string(SingularizeNounCore(word, &scratch));
}

std::string_view SingularizeNoun(std::string_view word, std::string* scratch) {
  return SingularizeNounCore(word, scratch);
}

std::string_view SingularizeNoun(std::string_view word,
                                 common::StringInterner* interner) {
  std::string scratch;
  return InternIfDerived(SingularizeNounCore(word, &scratch), scratch,
                         interner);
}

std::string VerbLemma(std::string_view word) {
  std::string scratch;
  return std::string(VerbLemmaCore(word, &scratch));
}

std::string_view VerbLemma(std::string_view word, std::string* scratch) {
  return VerbLemmaCore(word, scratch);
}

std::string_view VerbLemma(std::string_view word,
                           common::StringInterner* interner) {
  std::string scratch;
  return InternIfDerived(VerbLemmaCore(word, &scratch), scratch, interner);
}

std::string AdjectiveBase(std::string_view word) {
  std::string scratch;
  return std::string(AdjectiveBaseCore(word, &scratch));
}

std::string_view AdjectiveBase(std::string_view word, std::string* scratch) {
  return AdjectiveBaseCore(word, scratch);
}

std::string_view AdjectiveBase(std::string_view word,
                               common::StringInterner* interner) {
  std::string scratch;
  return InternIfDerived(AdjectiveBaseCore(word, &scratch), scratch, interner);
}

bool IsNegationWord(std::string_view word) {
  static const auto* kSet = new ViewSet{
      "not",    "n't",    "no",       "never",  "hardly",
      "seldom", "rarely", "barely",   "scarcely", "little",
      "neither", "nor",   "without",
  };
  char buf[16];
  if (word.size() > sizeof(buf)) return false;  // longer than any entry
  for (size_t i = 0; i < word.size(); ++i) buf[i] = ToLowerAscii(word[i]);
  return kSet->count(std::string_view(buf, word.size())) > 0;
}

}  // namespace wf::text
