#ifndef WF_TEXT_INFLECTION_H_
#define WF_TEXT_INFLECTION_H_

#include <string>
#include <string_view>

namespace wf::text {

// English morphology used throughout the NLP stack: lexicon lookup,
// predicate-lemma matching for the sentiment pattern database, and the POS
// tagger's suffix guesser. All functions expect lowercase ASCII input and
// return the input unchanged when no rule applies.

// "batteries" -> "battery", "lenses" -> "lens", "children" -> "child".
std::string SingularizeNoun(std::string_view word);

// Base (dictionary) form of a verb: "takes"/"took"/"taking"/"taken" ->
// "take", "is"/"was"/"are" -> "be". Handles the common irregulars plus
// regular -s/-es/-ed/-ing with consonant doubling and silent-e restoration.
std::string VerbLemma(std::string_view word);

// "bigger"/"biggest" -> "big", "happier" -> "happy". Returns input for
// non-comparative forms.
std::string AdjectiveBase(std::string_view word);

// True for "not", "n't", "no", "never", "hardly", "seldom", "rarely",
// "barely", "scarcely", "little" — the negative adverbs §4.2 lists as
// reversing phrase polarity.
bool IsNegationWord(std::string_view word);

}  // namespace wf::text

#endif  // WF_TEXT_INFLECTION_H_
