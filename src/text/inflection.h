#ifndef WF_TEXT_INFLECTION_H_
#define WF_TEXT_INFLECTION_H_

#include <string>
#include <string_view>

#include "common/arena.h"

namespace wf::text {

// English morphology used throughout the NLP stack: lexicon lookup,
// predicate-lemma matching for the sentiment pattern database, and the POS
// tagger's suffix guesser. All functions expect lowercase ASCII input and
// return the input unchanged when no rule applies.
//
// Three forms of each helper:
//   - the std::string form materializes the result (convenient for
//     offline/eval code);
//   - the scratch form returns a view of the input (no rule applied), of
//     static storage (irregular table hit), or of *scratch (derived form
//     built in the caller-hoisted buffer) — valid until scratch is next
//     modified. SSO makes typical words allocation-free;
//   - the interner form additionally interns derived forms into an arena,
//     yielding a view that outlives the scratch buffer.
// Both view forms require the *input* view to be stable for as long as the
// result is used whenever no rule applies (interned token surfaces and
// arena-backed lowercase forms qualify).

// "batteries" -> "battery", "lenses" -> "lens", "children" -> "child".
std::string SingularizeNoun(std::string_view word);
std::string_view SingularizeNoun(std::string_view word, std::string* scratch);
std::string_view SingularizeNoun(std::string_view word,
                                 common::StringInterner* interner);

// Base (dictionary) form of a verb: "takes"/"took"/"taking"/"taken" ->
// "take", "is"/"was"/"are" -> "be". Handles the common irregulars plus
// regular -s/-es/-ed/-ing with consonant doubling and silent-e restoration.
std::string VerbLemma(std::string_view word);
std::string_view VerbLemma(std::string_view word, std::string* scratch);
std::string_view VerbLemma(std::string_view word,
                           common::StringInterner* interner);

// "bigger"/"biggest" -> "big", "happier" -> "happy". Returns input for
// non-comparative forms.
std::string AdjectiveBase(std::string_view word);
std::string_view AdjectiveBase(std::string_view word, std::string* scratch);
std::string_view AdjectiveBase(std::string_view word,
                               common::StringInterner* interner);

// True for "not", "n't", "no", "never", "hardly", "seldom", "rarely",
// "barely", "scarcely", "little" — the negative adverbs §4.2 lists as
// reversing phrase polarity. Case-insensitive, allocation-free.
bool IsNegationWord(std::string_view word);

}  // namespace wf::text

#endif  // WF_TEXT_INFLECTION_H_
