#ifndef WF_EVAL_METRICS_H_
#define WF_EVAL_METRICS_H_

#include <cstddef>
#include <string>

#include "lexicon/sentiment_lexicon.h"

namespace wf::eval {

// 3x3 confusion counts over {negative, neutral, positive} with the metric
// definitions of §4.2's evaluation:
//   precision — of the non-neutral extractions, the fraction whose gold is
//               the same polarity;
//   recall    — of the gold-polar cases, the fraction extracted with the
//               correct polarity;
//   accuracy  — exact three-way agreement over all cases (neutral golds
//               included, as the paper does for comparability with
//               ReviewSeer).
class Confusion {
 public:
  void Add(lexicon::Polarity gold, lexicon::Polarity predicted);

  size_t total() const;
  size_t gold_polar() const;
  size_t extracted() const;
  size_t correct_polar() const;
  size_t count(lexicon::Polarity gold, lexicon::Polarity predicted) const;

  double precision() const;
  double recall() const;
  double accuracy() const;
  double f1() const;

  // Merges another confusion into this one.
  void Merge(const Confusion& other);

  std::string ToString() const;

 private:
  static int Idx(lexicon::Polarity p) {
    return static_cast<int>(p) + 1;  // -1..1 -> 0..2
  }
  size_t counts_[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
};

// "87.3" style percentage formatting (one decimal, no % sign).
std::string Pct(double fraction);

}  // namespace wf::eval

#endif  // WF_EVAL_METRICS_H_
