#include "eval/evaluator.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "text/inflection.h"

namespace wf::eval {

using ::wf::common::EqualsIgnoreCase;
using ::wf::corpus::GeneratedDoc;
using ::wf::corpus::SpotGold;
using ::wf::lexicon::Polarity;

GoldEvaluator::GoldEvaluator()
    : lexicon_(lexicon::SentimentLexicon::Embedded()),
      patterns_(lexicon::PatternDatabase::Embedded()) {}

bool GoldEvaluator::LocateSubject(const text::TokenStream& tokens,
                                  const text::SentenceSpan& span,
                                  const std::string& subject, size_t* begin,
                                  size_t* end) const {
  text::TokenStream subj = tokenizer_.Tokenize(subject);
  if (subj.empty()) return false;
  for (size_t i = span.begin_token; i + subj.size() <= span.end_token; ++i) {
    bool match = true;
    for (size_t k = 0; k < subj.size(); ++k) {
      if (!EqualsIgnoreCase(tokens[i + k].text, subj[k].text)) {
        match = false;
        break;
      }
    }
    if (match) {
      *begin = i;
      *end = i + subj.size();
      return true;
    }
  }
  // Plural surface ("batteries" for gold subject "battery").
  if (subj.size() == 1) {
    for (size_t i = span.begin_token; i < span.end_token; ++i) {
      std::string lower = common::ToLower(tokens[i].text);
      if (text::SingularizeNoun(lower) ==
          common::ToLower(subj[0].text)) {
        *begin = i;
        *end = i + 1;
        return true;
      }
    }
  }
  return false;
}

Confusion GoldEvaluator::EvaluateMiner(const std::vector<GeneratedDoc>& docs,
                                       const EvalOptions& options,
                                       ClassBreakdown* breakdown) const {
  core::SentimentAnalyzer analyzer(&lexicon_, &patterns_, options.analyzer);
  Confusion confusion;
  for (const GeneratedDoc& doc : docs) {
    text::TokenStream tokens = tokenizer_.Tokenize(doc.body);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
    // Clause parses are cached per sentence. Their interned strings live in
    // a per-document arena declared ahead of `parses` so the views outlive
    // the parse objects.
    common::Arena arena;
    common::StringInterner interner(&arena);
    std::vector<int> cached(spans.size(), -1);
    std::vector<std::vector<parse::SentenceParse>> parses;
    for (const SpotGold& gold : doc.golds) {
      if (options.skip_i_class && gold.i_class) continue;
      if (gold.sentence_index >= spans.size()) continue;
      const text::SentenceSpan& span = spans[gold.sentence_index];
      size_t begin = 0, end = 0;
      if (!LocateSubject(tokens, span, gold.subject, &begin, &end)) continue;
      int& slot = cached[gold.sentence_index];
      if (slot < 0) {
        std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens, span);
        parses.push_back(
            sentence_analyzer_.AnalyzeClauses(tokens, span, tags, &interner));
        slot = static_cast<int>(parses.size()) - 1;
      }
      const auto& clauses = parses[static_cast<size_t>(slot)];
      const parse::SentenceParse* clause = &clauses.front();
      for (const parse::SentenceParse& c : clauses) {
        if (begin >= c.span.begin_token && begin < c.span.end_token) {
          clause = &c;
          break;
        }
      }
      core::SubjectSentiment verdict =
          analyzer.AnalyzeSubject(tokens, *clause, begin, end);
      confusion.Add(gold.polarity, verdict.polarity);
      if (breakdown != nullptr) {
        breakdown->by_class[gold.template_class].Add(gold.polarity,
                                                     verdict.polarity);
      }
    }
  }
  return confusion;
}

Confusion GoldEvaluator::EvaluateCollocation(
    const std::vector<GeneratedDoc>& docs, const EvalOptions& options) const {
  baseline::CollocationAnalyzer colloc(&lexicon_);
  Confusion confusion;
  for (const GeneratedDoc& doc : docs) {
    text::TokenStream tokens = tokenizer_.Tokenize(doc.body);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
    common::Arena arena;
    common::StringInterner interner(&arena);
    std::vector<int> cached(spans.size(), -1);
    std::vector<parse::SentenceParse> parses;
    for (const SpotGold& gold : doc.golds) {
      if (options.skip_i_class && gold.i_class) continue;
      if (gold.sentence_index >= spans.size()) continue;
      const text::SentenceSpan& span = spans[gold.sentence_index];
      size_t begin = 0, end = 0;
      if (!LocateSubject(tokens, span, gold.subject, &begin, &end)) continue;
      int& slot = cached[gold.sentence_index];
      if (slot < 0) {
        std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens, span);
        parses.push_back(
            sentence_analyzer_.Analyze(tokens, span, tags, &interner));
        slot = static_cast<int>(parses.size()) - 1;
      }
      Polarity verdict = colloc.AnalyzeSubject(
          tokens, parses[static_cast<size_t>(slot)], begin, end);
      confusion.Add(gold.polarity, verdict);
    }
  }
  return confusion;
}

Confusion GoldEvaluator::EvaluateReviewSeerSentences(
    const baseline::ReviewSeerClassifier& classifier,
    const std::vector<GeneratedDoc>& docs, bool binary,
    const EvalOptions& options) const {
  Confusion confusion;
  for (const GeneratedDoc& doc : docs) {
    text::TokenStream tokens = tokenizer_.Tokenize(doc.body);
    std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
    std::vector<pos::PosTag> tags = tagger_.Tag(tokens, spans);
    for (const SpotGold& gold : doc.golds) {
      if (options.skip_i_class && gold.i_class) continue;
      if (gold.sentence_index >= spans.size()) continue;
      const text::SentenceSpan& span = spans[gold.sentence_index];
      if (options.only_sentiment_candidates &&
          gold.polarity == Polarity::kNeutral) {
        bool has_sentiment_word = false;
        for (size_t i = span.begin_token; i < span.end_token; ++i) {
          if (tokens[i].kind != text::TokenKind::kWord) continue;
          if (lexicon_.Lookup(tokens[i].text, tags[i]).has_value()) {
            has_sentiment_word = true;
            break;
          }
        }
        if (!has_sentiment_word) continue;
      }
      size_t b = tokens[span.begin_token].begin;
      size_t e = tokens[span.end_token - 1].end;
      std::string sentence = doc.body.substr(b, e - b);
      Polarity verdict;
      if (binary) {
        verdict = classifier.LogOdds(sentence) >= 0.0 ? Polarity::kPositive
                                                      : Polarity::kNegative;
      } else {
        verdict = classifier.Classify(sentence);
      }
      confusion.Add(gold.polarity, verdict);
    }
  }
  return confusion;
}

Confusion GoldEvaluator::EvaluateReviewSeerDocuments(
    const baseline::ReviewSeerClassifier& classifier,
    const std::vector<GeneratedDoc>& docs) const {
  Confusion confusion;
  for (const GeneratedDoc& doc : docs) {
    Polarity verdict = classifier.LogOdds(doc.body) >= 0.0
                           ? Polarity::kPositive
                           : Polarity::kNegative;
    confusion.Add(doc.doc_polarity, verdict);
  }
  return confusion;
}

}  // namespace wf::eval
