#ifndef WF_EVAL_REPORT_H_
#define WF_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace wf::eval {

// Fixed-width text table, the output format of every bench binary.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Inserts a horizontal rule before the next row.
  void AddRule();

  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row = rule
};

// A banner line for bench output sections.
std::string Banner(const std::string& title);

}  // namespace wf::eval

#endif  // WF_EVAL_REPORT_H_
