#include "eval/metrics.h"

#include "common/string_util.h"

namespace wf::eval {

using ::wf::lexicon::Polarity;

void Confusion::Add(Polarity gold, Polarity predicted) {
  ++counts_[Idx(gold)][Idx(predicted)];
}

size_t Confusion::count(Polarity gold, Polarity predicted) const {
  return counts_[Idx(gold)][Idx(predicted)];
}

size_t Confusion::total() const {
  size_t n = 0;
  for (const auto& row : counts_) {
    for (size_t c : row) n += c;
  }
  return n;
}

size_t Confusion::gold_polar() const {
  size_t n = 0;
  for (int pred = 0; pred < 3; ++pred) {
    n += counts_[Idx(Polarity::kPositive)][pred];
    n += counts_[Idx(Polarity::kNegative)][pred];
  }
  return n;
}

size_t Confusion::extracted() const {
  size_t n = 0;
  for (int gold = 0; gold < 3; ++gold) {
    n += counts_[gold][Idx(Polarity::kPositive)];
    n += counts_[gold][Idx(Polarity::kNegative)];
  }
  return n;
}

size_t Confusion::correct_polar() const {
  return counts_[Idx(Polarity::kPositive)][Idx(Polarity::kPositive)] +
         counts_[Idx(Polarity::kNegative)][Idx(Polarity::kNegative)];
}

double Confusion::precision() const {
  size_t e = extracted();
  return e == 0 ? 0.0 : static_cast<double>(correct_polar()) / e;
}

double Confusion::recall() const {
  size_t g = gold_polar();
  return g == 0 ? 0.0 : static_cast<double>(correct_polar()) / g;
}

double Confusion::accuracy() const {
  size_t n = total();
  if (n == 0) return 0.0;
  size_t agree = 0;
  for (int i = 0; i < 3; ++i) agree += counts_[i][i];
  return static_cast<double>(agree) / n;
}

double Confusion::f1() const {
  double p = precision();
  double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

void Confusion::Merge(const Confusion& other) {
  for (int g = 0; g < 3; ++g) {
    for (int p = 0; p < 3; ++p) counts_[g][p] += other.counts_[g][p];
  }
}

std::string Confusion::ToString() const {
  return common::StrFormat(
      "P=%s R=%s Acc=%s (n=%zu, polar=%zu, extracted=%zu)",
      Pct(precision()).c_str(), Pct(recall()).c_str(),
      Pct(accuracy()).c_str(), total(), gold_polar(), extracted());
}

std::string Pct(double fraction) {
  return common::StrFormat("%.1f", fraction * 100.0);
}

}  // namespace wf::eval
