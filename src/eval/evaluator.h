#ifndef WF_EVAL_EVALUATOR_H_
#define WF_EVAL_EVALUATOR_H_

#include <map>
#include <string>
#include <vector>

#include "baseline/collocation.h"
#include "baseline/reviewseer.h"
#include "core/analyzer.h"
#include "corpus/generated.h"
#include "eval/metrics.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "parse/sentence_structure.h"
#include "pos/tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::eval {

struct EvalOptions {
  core::AnalyzerOptions analyzer;
  // Drop gold cases flagged as I class (the paper's "w/o I class" rows).
  bool skip_i_class = false;
  // Restrict to "sentiment-bearing candidate" cases: gold-polar mentions
  // plus neutral mentions whose sentence contains sentiment vocabulary.
  // This reproduces the paper's Table 5 protocol for ReviewSeer, which was
  // evaluated on sentences that look sentiment-bearing (of which 60–90%
  // turn out to be difficult I-class cases).
  bool only_sentiment_candidates = false;
};

// Per-template-class breakdown for calibration diagnostics.
struct ClassBreakdown {
  std::map<char, Confusion> by_class;
};

// Runs a system over the gold (subject, sentence, polarity) points of
// generated documents — the reproduction of the paper's manual-labels
// evaluation protocol. Each gold point is scored independently; systems
// never see the gold labels.
class GoldEvaluator {
 public:
  // Embedded lexicon + pattern database.
  GoldEvaluator();
  // Custom linguistic resources (ablation sweeps).
  GoldEvaluator(lexicon::SentimentLexicon lexicon,
                lexicon::PatternDatabase patterns)
      : lexicon_(std::move(lexicon)), patterns_(std::move(patterns)) {}

  // The sentiment miner (the paper's "SM" rows).
  Confusion EvaluateMiner(const std::vector<corpus::GeneratedDoc>& docs,
                          const EvalOptions& options,
                          ClassBreakdown* breakdown = nullptr) const;

  // The collocation baseline.
  Confusion EvaluateCollocation(const std::vector<corpus::GeneratedDoc>& docs,
                                const EvalOptions& options) const;

  // ReviewSeer applied per sentence (Table 5 protocol). `binary` disables
  // the neutral margin, matching the original classifier's two-way output.
  Confusion EvaluateReviewSeerSentences(
      const baseline::ReviewSeerClassifier& classifier,
      const std::vector<corpus::GeneratedDoc>& docs, bool binary,
      const EvalOptions& options) const;

  // ReviewSeer at document level (Table 4 protocol: whole-review rating).
  Confusion EvaluateReviewSeerDocuments(
      const baseline::ReviewSeerClassifier& classifier,
      const std::vector<corpus::GeneratedDoc>& docs) const;

  const lexicon::SentimentLexicon& lexicon() const { return lexicon_; }
  const lexicon::PatternDatabase& patterns() const { return patterns_; }

 private:
  // Locates the gold subject inside the sentence; false if not found (the
  // case is then skipped and counted in `skipped_`).
  bool LocateSubject(const text::TokenStream& tokens,
                     const text::SentenceSpan& span,
                     const std::string& subject, size_t* begin,
                     size_t* end) const;

  lexicon::SentimentLexicon lexicon_;
  lexicon::PatternDatabase patterns_;
  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  pos::PosTagger tagger_;
  parse::SentenceAnalyzer sentence_analyzer_;
};

}  // namespace wf::eval

#endif  // WF_EVAL_EVALUATOR_H_
