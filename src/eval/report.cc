#include "eval/report.h"

#include <algorithm>

namespace wf::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRule() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&]() {
    std::string line = "+";
    for (size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = rule();
  out += format_row(headers_);
  out += rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += rule();
    } else {
      out += format_row(row);
    }
  }
  out += rule();
  return out;
}

std::string Banner(const std::string& title) {
  std::string bar(title.size() + 4, '=');
  return bar + "\n= " + title + " =\n" + bar + "\n";
}

}  // namespace wf::eval
