#include "serve/front_door.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/hash.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace wf::serve {

using ::wf::common::Status;
using ::wf::platform::Deadline;

namespace {

// Wait chunk for deadline-bounded blocking: short enough that an infinite
// deadline still re-checks its predicate promptly, long enough not to spin.
constexpr uint64_t kWaitChunkUs = 20000;

// Renders a query result to its wire payload — a pure function of the
// result, so equal results always produce byte-identical payloads (the
// property coalescing followers and the post-overload acceptance test rely
// on). Field set mirrors the app/sentiment_query handler, plus coverage.
std::string RenderPayload(const platform::SentimentQueryResult& result) {
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("subject", result.subject);
  out.emplace_back("positive_docs",
                   common::StrFormat("%zu", result.positive_docs));
  out.emplace_back("negative_docs",
                   common::StrFormat("%zu", result.negative_docs));
  out.emplace_back("nodes_total",
                   common::StrFormat("%zu", result.nodes_total));
  out.emplace_back("nodes_responded",
                   common::StrFormat("%zu", result.nodes_responded));
  out.emplace_back("complete", result.complete() ? "1" : "0");
  for (const platform::SentimentHit& hit : result.hits) {
    out.emplace_back(
        "hit",
        common::StrFormat(
            "%s\t%s\t%s", hit.doc_id.c_str(),
            hit.polarity == lexicon::Polarity::kPositive ? "+" : "-",
            hit.sentence.c_str()));
  }
  return platform::EncodeMessage(out);
}

}  // namespace

FrontDoor::FrontDoor(const platform::SentimentQueryService* service,
                     platform::Cluster* cluster, FrontDoorOptions options)
    : service_(service), cluster_(cluster), options_(options) {
  {
    common::MutexLock lock(admit_mu_);
    limit_ = std::max<size_t>(1, options_.max_concurrent);
  }
  size_t stripes = std::max<size_t>(1, options_.cache_stripes);
  cache_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    cache_.push_back(std::make_unique<CacheStripe>());
  }
}

FrontDoor::~FrontDoor() = default;

void FrontDoor::Count(const std::string& name, uint64_t delta) const {
  if (metrics_ != nullptr) metrics_->GetCounter(name)->Add(delta);
}

void FrontDoor::SetGauge(const std::string& name, int64_t value) const {
  if (metrics_ != nullptr) metrics_->GetGauge(name)->Set(value);
}

void FrontDoor::RecordTiming(const std::string& name,
                             uint64_t value_us) const {
  if (metrics_ != nullptr) {
    metrics_
        ->GetHistogram(name, obs::DefaultLatencyBoundsUs(), /*timing=*/true)
        ->Record(value_us);
  }
}

// --- Quota ------------------------------------------------------------------

bool FrontDoor::QuotaAdmit(const std::string& tenant,
                           uint64_t* retry_after_us) {
  const uint64_t now = obs::MonotonicNowUs();
  common::MutexLock lock(quota_mu_);
  TokenBucket& bucket = buckets_[tenant];
  if (!bucket.initialized) {
    auto it = quota_overrides_.find(tenant);
    bucket.config =
        it != quota_overrides_.end() ? it->second : options_.default_quota;
    bucket.tokens = bucket.config.burst;
    bucket.last_refill_us = now;
    bucket.initialized = true;
  }
  if (bucket.config.tokens_per_second <= 0.0) return true;  // unlimited
  const double elapsed_s =
      static_cast<double>(now - bucket.last_refill_us) / 1e6;
  bucket.tokens = std::min(
      bucket.config.burst,
      bucket.tokens + elapsed_s * bucket.config.tokens_per_second);
  bucket.last_refill_us = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  // The honest backpressure signal: exactly when the next token lands.
  *retry_after_us = static_cast<uint64_t>(
      (1.0 - bucket.tokens) / bucket.config.tokens_per_second * 1e6);
  return false;
}

void FrontDoor::SetTenantQuota(const std::string& tenant,
                               const TokenBucketConfig& config) {
  common::MutexLock lock(quota_mu_);
  quota_overrides_[tenant] = config;
  TokenBucket& bucket = buckets_[tenant];
  bucket.config = config;
  bucket.tokens = config.burst;
  bucket.last_refill_us = obs::MonotonicNowUs();
  bucket.initialized = true;
}

// --- Result cache -----------------------------------------------------------

FrontDoor::CacheStripe& FrontDoor::StripeFor(const std::string& key) {
  return *cache_[common::Fnv1a64(key) % cache_.size()];
}

bool FrontDoor::CacheLookup(const std::string& key, std::string* payload) {
  if (options_.cache_entries == 0) return false;
  CacheStripe& stripe = StripeFor(key);
  common::MutexLock lock(stripe.mu);
  for (CacheEntry& entry : stripe.entries) {
    if (entry.key != key) continue;
    entry.last_used = ++stripe.tick;
    *payload = entry.payload;
    return true;
  }
  return false;
}

void FrontDoor::CacheInsert(const std::string& key, std::string payload,
                            std::vector<std::string> covered_docs) {
  if (options_.cache_entries == 0) return;
  const size_t per_stripe =
      std::max<size_t>(1, options_.cache_entries / cache_.size());
  CacheStripe& stripe = StripeFor(key);
  common::MutexLock lock(stripe.mu);
  for (CacheEntry& entry : stripe.entries) {
    if (entry.key != key) continue;
    entry.payload = std::move(payload);
    entry.covered_docs = std::move(covered_docs);
    entry.last_used = ++stripe.tick;
    return;
  }
  if (stripe.entries.size() >= per_stripe) {
    // Evict the stripe's least-recently-used entry (size-bounded cache:
    // the stripe never grows past its share of cache_entries).
    auto victim = std::min_element(
        stripe.entries.begin(), stripe.entries.end(),
        [](const CacheEntry& a, const CacheEntry& b) {
          return a.last_used < b.last_used;
        });
    *victim = CacheEntry{};
    victim->key = key;
    victim->payload = std::move(payload);
    victim->covered_docs = std::move(covered_docs);
    victim->last_used = ++stripe.tick;
    Count("serve/cache_evictions_total");
    return;
  }
  CacheEntry entry;
  entry.key = key;
  entry.payload = std::move(payload);
  entry.covered_docs = std::move(covered_docs);
  entry.last_used = ++stripe.tick;
  stripe.entries.push_back(std::move(entry));
}

void FrontDoor::InvalidateDocument(const std::string& doc_id) {
  size_t dropped = 0;
  for (auto& stripe : cache_) {
    common::MutexLock lock(stripe->mu);
    for (auto it = stripe->entries.begin(); it != stripe->entries.end();) {
      const auto& docs = it->covered_docs;
      if (std::find(docs.begin(), docs.end(), doc_id) != docs.end()) {
        it = stripe->entries.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  if (dropped > 0) Count("serve/cache_invalidated_total", dropped);
}

void FrontDoor::InvalidateAll() {
  size_t dropped = 0;
  for (auto& stripe : cache_) {
    common::MutexLock lock(stripe->mu);
    dropped += stripe->entries.size();
    stripe->entries.clear();
  }
  if (dropped > 0) Count("serve/cache_invalidated_total", dropped);
}

// --- Admission --------------------------------------------------------------

uint64_t FrontDoor::EstimateRetryAfterLocked() const {
  // Cold door: nothing observed yet, fall back to the configured constant.
  if (completed_total_ == 0 || ewma_exec_us_ <= 0.0) {
    return options_.shed_retry_after_us;
  }
  // Everyone queued ahead plus one service interval, drained across the
  // current execution lanes at the recent per-query service time.
  const double waiting = static_cast<double>(queued_[0] + queued_[1] + 1);
  const double lanes = static_cast<double>(std::max<size_t>(1, limit_));
  const double drain_us = ewma_exec_us_ * waiting / lanes;
  return static_cast<uint64_t>(std::clamp(drain_us, 1000.0, 5e6));
}

ShedReason FrontDoor::Admit(Priority priority, const Deadline& deadline,
                            uint64_t* queue_wait_us,
                            uint64_t* retry_after_us) {
  const uint64_t start = obs::MonotonicNowUs();
  const size_t idx = priority == Priority::kInteractive ? 0 : 1;
  std::unique_lock<common::Mutex> lock(admit_mu_);
  // Batch admission additionally defers to any queued interactive request,
  // so under pressure interactive traffic drains first. `limit_` is the
  // AIMD-adapted slot count (== max_concurrent with AIMD off).
  auto can_run = [&] {
    return inflight_ < limit_ && (idx == 0 || queued_[0] == 0);
  };
  if (!can_run()) {
    const size_t limit = idx == 0 ? options_.interactive_queue_limit
                                  : options_.batch_queue_limit;
    if (queued_[idx] >= limit) {
      // The waiting room is full: shed *now*. A request we cannot serve in
      // time must cost the caller a fast refusal, not a queue slot — with a
      // retry-after that reflects how long this queue actually takes to
      // drain, not a constant.
      *queue_wait_us = obs::MonotonicNowUs() - start;
      *retry_after_us = EstimateRetryAfterLocked();
      return ShedReason::kQueueFull;
    }
    ++queued_[idx];
    SetGauge(idx == 0 ? "serve/queued_interactive" : "serve/queued_batch",
             static_cast<int64_t>(queued_[idx]));
    while (!can_run()) {
      const uint64_t remaining = deadline.RemainingUs();
      if (remaining == 0) {
        --queued_[idx];
        SetGauge(idx == 0 ? "serve/queued_interactive" : "serve/queued_batch",
                 static_cast<int64_t>(queued_[idx]));
        admit_cv_.notify_all();  // a batch waiter may now be unblocked
        *queue_wait_us = obs::MonotonicNowUs() - start;
        return ShedReason::kDeadlineBeforeExecute;
      }
      admit_cv_.wait_for(
          lock, std::chrono::microseconds(std::min(remaining, kWaitChunkUs)));
    }
    --queued_[idx];
    SetGauge(idx == 0 ? "serve/queued_interactive" : "serve/queued_batch",
             static_cast<int64_t>(queued_[idx]));
    if (idx == 0) admit_cv_.notify_all();  // interactive queue may be empty
  }
  ++inflight_;
  SetGauge("serve/inflight", static_cast<int64_t>(inflight_));
  *queue_wait_us = obs::MonotonicNowUs() - start;
  return ShedReason::kNone;
}

void FrontDoor::Release(uint64_t exec_us, uint64_t e2e_us) {
  std::unique_lock<common::Mutex> lock(admit_mu_);
  --inflight_;
  SetGauge("serve/inflight", static_cast<int64_t>(inflight_));
  // Service-rate EWMA (alpha 0.2), kept whether or not AIMD is on: the
  // drain-time retry-after estimate needs it either way.
  ewma_exec_us_ = completed_total_ == 0
                      ? static_cast<double>(exec_us)
                      : ewma_exec_us_ + 0.2 * (static_cast<double>(exec_us) -
                                               ewma_exec_us_);
  ++completed_total_;
  const AimdOptions& aimd = options_.aimd;
  if (aimd.enabled) {
    window_latencies_us_.push_back(e2e_us);
    if (window_latencies_us_.size() >= std::max<size_t>(1, aimd.window)) {
      // Near-p99 of the decision window (exact for windows <= 100).
      std::vector<uint64_t>& w = window_latencies_us_;
      const size_t rank = std::min(w.size() - 1, (w.size() * 99) / 100);
      std::nth_element(w.begin(), w.begin() + static_cast<long>(rank),
                       w.end());
      const uint64_t p99_us = w[rank];
      const size_t floor = std::max<size_t>(1, aimd.min_limit);
      const size_t ceiling = std::max(floor, options_.max_concurrent);
      if (p99_us > aimd.target_p99_us) {
        // Multiplicative decrease: the backend is past its knee, so shed
        // concurrency fast. Counted even when pinned at the floor — the
        // counter is the controller's decision trail, not a change log.
        limit_ = std::clamp(
            static_cast<size_t>(static_cast<double>(limit_) *
                                aimd.decrease_factor),
            floor, ceiling);
        Count("serve/aimd_decrease_total");
      } else {
        // Additive increase: probe for headroom one step at a time.
        limit_ = std::clamp(limit_ + aimd.increase_step, floor, ceiling);
        Count("serve/aimd_increase_total");
      }
      SetGauge("serve/concurrency_limit", static_cast<int64_t>(limit_));
      w.clear();
    }
  }
  admit_cv_.notify_all();
}

// --- Flights (coalescing) ---------------------------------------------------

void FrontDoor::PublishFlight(const std::string& key,
                              const std::shared_ptr<Flight>& flight,
                              const common::Status& status,
                              std::string payload) {
  {
    // Retire the flight *before* publishing: a new identical query arriving
    // after this point starts fresh (or hits the cache) instead of joining
    // a finished flight. Followers keep their shared_ptr, so erasing the
    // map entry never invalidates their wait.
    common::MutexLock lock(flight_mu_);
    flights_.erase(key);
  }
  {
    common::MutexLock lock(flight->mu);
    flight->done = true;
    flight->published_status = status;
    flight->published_payload = std::move(payload);
  }
  flight->cv.notify_all();
}

QueryReply FrontDoor::ExecuteAndPublish(const QueryRequest& request,
                                        const Deadline& deadline,
                                        const std::string& key,
                                        const std::shared_ptr<Flight>& flight) {
  QueryReply reply;
  const ShedReason shed = Admit(request.priority, deadline,
                                &reply.queue_wait_us, &reply.retry_after_us);
  RecordTiming("serve/queue_wait_us", reply.queue_wait_us);
  if (shed != ShedReason::kNone) {
    reply.shed_reason = shed;
    if (shed == ShedReason::kQueueFull) {
      Count("serve/shed_queue_full_total");
      // retry_after_us was set by Admit: the drain-time estimate.
      reply.status = Status::Unavailable("front door queue full");
    } else {
      Count("serve/shed_deadline_total");
      reply.status = Status::DeadlineExceeded(
          "deadline expired in admission queue");
    }
    PublishFlight(key, flight, reply.status, "");
    return reply;
  }
  Count("serve/admitted_total");
  const uint64_t exec_start_us = obs::MonotonicNowUs();
  platform::SentimentQueryResult result =
      service_->Query(request.subject, options_.max_hits, deadline);
  const uint64_t exec_us = obs::MonotonicNowUs() - exec_start_us;
  Release(exec_us, reply.queue_wait_us + exec_us);
  if (result.deadline_expired) Count("serve/deadline_expired_results_total");
  reply.status = Status::Ok();
  reply.payload = RenderPayload(result);
  // Only complete answers are cached: a hit can then never replay bytes
  // degraded by faults or deadline truncation, which is what keeps
  // post-overload responses byte-identical to an unloaded run.
  if (result.complete()) {
    CacheInsert(key, reply.payload, std::move(result.covered_docs));
  }
  PublishFlight(key, flight, reply.status, reply.payload);
  return reply;
}

// --- The pipeline -----------------------------------------------------------

QueryReply FrontDoor::Query(const QueryRequest& request) {
  const uint64_t started = obs::MonotonicNowUs();
  Count("serve/requests_total");
  const Deadline deadline = Deadline::After(
      request.budget_us > 0 ? request.budget_us : options_.default_budget_us);

  QueryReply reply;
  // 1. Quota: the cheapest check first — an over-quota tenant costs one
  //    map lookup, nothing shared with other tenants.
  if (!QuotaAdmit(request.tenant, &reply.retry_after_us)) {
    Count("serve/shed_quota_total");
    reply.shed_reason = ShedReason::kQuotaExceeded;
    reply.status = Status::Unavailable("tenant quota exceeded");
    return reply;
  }

  // 2. Result cache.
  const std::string& key = request.subject;
  if (CacheLookup(key, &reply.payload)) {
    Count("serve/cache_hits_total");
    reply.cache_hit = true;
    RecordTiming("serve/latency_us", obs::MonotonicNowUs() - started);
    return reply;
  }
  Count("serve/cache_misses_total");

  // 3. Coalesce: find-or-insert the in-flight execution for this key.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    common::MutexLock lock(flight_mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
    } else {
      flight = std::make_shared<Flight>();
      flights_[key] = flight;
      leader = true;
    }
  }

  if (!leader) {
    // Follower: wait (deadline-bounded) for the leader's published reply.
    Count("serve/coalesced_total");
    reply.coalesced = true;
    std::unique_lock<common::Mutex> lock(flight->mu);
    while (!flight->done) {
      const uint64_t remaining = deadline.RemainingUs();
      if (remaining == 0) {
        Count("serve/shed_deadline_total");
        reply.shed_reason = ShedReason::kDeadlineBeforeExecute;
        reply.status = Status::DeadlineExceeded(
            "deadline expired waiting on coalesced query");
        return reply;
      }
      flight->cv.wait_for(
          lock, std::chrono::microseconds(std::min(remaining, kWaitChunkUs)));
    }
    reply.status = flight->published_status;
    reply.payload = flight->published_payload;
    RecordTiming("serve/latency_us", obs::MonotonicNowUs() - started);
    return reply;
  }

  // Leader double-check: between our cache miss and winning the flight, a
  // previous leader may have cached its answer and retired its flight (it
  // inserts into the cache strictly before erasing the flight, so whenever
  // the flight is gone the entry is visible). Re-checking here closes the
  // race where a second leader would re-execute a query the cache already
  // answers — the property coalescing tests pin down.
  if (CacheLookup(key, &reply.payload)) {
    Count("serve/cache_hits_total");
    reply.cache_hit = true;
    PublishFlight(key, flight, Status::Ok(), reply.payload);
    RecordTiming("serve/latency_us", obs::MonotonicNowUs() - started);
    return reply;
  }

  // 4+5. Leader: admission, execution, publication.
  reply = ExecuteAndPublish(request, deadline, key, flight);
  RecordTiming("serve/latency_us", obs::MonotonicNowUs() - started);
  return reply;
}

// --- Bus endpoint -----------------------------------------------------------

common::Status FrontDoor::RegisterService() {
  return cluster_->bus().RegisterService(
      "app/front_door", [this](const std::string& request) {
        QueryRequest query;
        query.subject = platform::GetMessageField(request, "subject");
        query.tenant = platform::GetMessageField(request, "tenant");
        if (platform::GetMessageField(request, "priority") == "batch") {
          query.priority = Priority::kBatch;
        }
        std::string budget = platform::GetMessageField(request, "budget_us");
        if (!budget.empty()) {
          query.budget_us = std::strtoull(budget.c_str(), nullptr, 10);
        }
        QueryReply reply = Query(query);
        std::vector<std::pair<std::string, std::string>> out;
        out.emplace_back("code",
                         common::StrFormat("%d", static_cast<int>(
                                                     reply.status.code())));
        out.emplace_back("shed", common::StrFormat(
                                     "%d", static_cast<int>(reply.shed_reason)));
        out.emplace_back(
            "retry_after_us",
            common::StrFormat("%llu", static_cast<unsigned long long>(
                                          reply.retry_after_us)));
        out.emplace_back("cache_hit", reply.cache_hit ? "1" : "0");
        out.emplace_back("coalesced", reply.coalesced ? "1" : "0");
        if (reply.status.ok()) {
          out.emplace_back("payload", reply.payload);
        } else {
          out.emplace_back("error", reply.status.ToString());
        }
        return platform::EncodeMessage(out);
      });
}

}  // namespace wf::serve
