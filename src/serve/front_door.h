#ifndef WF_SERVE_FRONT_DOOR_H_
#define WF_SERVE_FRONT_DOOR_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "platform/cluster.h"
#include "platform/deadline.h"
#include "platform/query_service.h"

namespace wf::obs {
class MetricsRegistry;
class Tracer;
}  // namespace wf::obs

namespace wf::serve {

// Priority classes for admission. Interactive traffic is admitted ahead of
// batch whenever both are queued; batch is the first thing shed under
// pressure, so a background crawl can never starve a dashboard.
enum class Priority { kInteractive = 0, kBatch = 1 };

// Why a request was shed (reply.status is Unavailable or DeadlineExceeded
// when one of these is set). Shedding is always explicit and early — the
// front door's contract is an honest fast "no" instead of a slow hang.
enum class ShedReason {
  kNone = 0,
  kQueueFull,           // the priority class's admission queue was full
  kQuotaExceeded,       // the tenant's token bucket was empty
  kDeadlineBeforeExecute,  // the budget expired while queued or coalesced
};

// Per-tenant token bucket: `tokens_per_second` refill toward `burst`
// capacity; each admitted query spends one token. A zero rate disables
// quota enforcement (the default tenant policy unless overridden).
struct TokenBucketConfig {
  double tokens_per_second = 0.0;
  double burst = 1.0;
};

// AIMD adaptive concurrency (DESIGN.md §14): instead of a hand-tuned fixed
// `max_concurrent`, the door steers its execution-slot limit by the
// completion latency it actually observes. Every `window` completions it
// takes the window's near-p99: above `target_p99_us` the limit is cut
// multiplicatively (backpressure the moment the backend slows down), at or
// below it the limit creeps up additively, clamped to
// [min_limit, FrontDoorOptions::max_concurrent]. The decision trail is
// `serve/concurrency_limit` (gauge), `serve/aimd_increase_total`, and
// `serve/aimd_decrease_total`. Disabled by default: the limit then stays
// pinned at max_concurrent and no AIMD metrics appear.
struct AimdOptions {
  bool enabled = false;
  // End-to-end (queue + execute) p99 the controller steers toward.
  uint64_t target_p99_us = 50000;
  // Floor for the adaptive limit; the ceiling is max_concurrent.
  size_t min_limit = 1;
  // Completions per controller decision.
  size_t window = 32;
  size_t increase_step = 1;
  double decrease_factor = 0.5;
};

struct FrontDoorOptions {
  // Queries executing concurrently against the cluster; the AIMD ceiling
  // when `aimd.enabled`. Everything beyond the (possibly adapted) limit
  // waits in the bounded admission queue (or is shed).
  size_t max_concurrent = 4;
  // Adaptive concurrency control (off by default).
  AimdOptions aimd;
  // Bounded waiting-room sizes per priority class; arrivals beyond the
  // bound are shed kQueueFull immediately.
  size_t interactive_queue_limit = 64;
  size_t batch_queue_limit = 16;
  // End-to-end budget applied when a request carries none.
  uint64_t default_budget_us = 250000;
  // retry_after_us attached to kQueueFull sheds while the door is cold (no
  // completion history yet). Once queries have completed, the hint is an
  // estimate of the actual drain time — queue depth over the recent
  // service rate — instead of this constant.
  uint64_t shed_retry_after_us = 50000;
  // Result cache capacity (entries, across all stripes; 0 disables).
  size_t cache_entries = 128;
  size_t cache_stripes = 8;
  // Quota applied to tenants without an explicit SetTenantQuota override.
  TokenBucketConfig default_quota;
  // max_hits forwarded to SentimentQueryService::Query.
  size_t max_hits = 50;
};

struct QueryRequest {
  std::string subject;
  std::string tenant;  // "" shares the anonymous bucket
  Priority priority = Priority::kInteractive;
  // End-to-end budget in microseconds; 0 = FrontDoorOptions default.
  uint64_t budget_us = 0;
};

struct QueryReply {
  common::Status status = common::Status::Ok();
  // The rendered sentiment answer (EncodeMessage form, same fields as the
  // app/sentiment_query handler) — a pure function of the query result, so
  // identical results render identical bytes.
  std::string payload;
  ShedReason shed_reason = ShedReason::kNone;
  // With a shed: when the caller should retry (its backpressure signal).
  uint64_t retry_after_us = 0;
  bool cache_hit = false;
  bool coalesced = false;  // waited on another caller's identical query
  uint64_t queue_wait_us = 0;
};

// The query front door (tentpole of the serving layer): everything between
// an application and Cluster sentiment queries goes through here.
//
//   Query ──► quota ──► cache ──► coalesce ──► admission ──► execute
//
// Guarantees under overload:
//   * Bounded queues — beyond them requests are shed *immediately* with
//     Unavailable + retry_after_us, never parked on an unbounded wait.
//   * Every wait is deadline-bounded; a request whose budget expires while
//     queued is shed without ever reaching the cluster, and the budget it
//     entered with is the exact budget its downstream calls inherit.
//   * Identical concurrent queries coalesce onto one upstream execution;
//     followers receive byte-identical payloads.
//   * Only complete() results are cached, so a cache hit can never serve
//     bytes degraded by faults or deadline truncation; entries remember
//     their covered documents and are invalidated exactly on re-mine.
//
// Threading: caller-runs. The front door spawns no threads — callers block
// (deadline-bounded) in admission and execute their own queries, so
// concurrency is whatever the callers bring.
class FrontDoor {
 public:
  // `service` and `cluster` must outlive the front door; the cluster is
  // only used for bus registration and re-mine invalidation hooks.
  FrontDoor(const platform::SentimentQueryService* service,
            platform::Cluster* cluster, FrontDoorOptions options);
  ~FrontDoor();
  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  // Serves one query end to end (see class comment for the pipeline).
  // Never blocks past the request's budget.
  QueryReply Query(const QueryRequest& request);

  // Registers "app/front_door" on the cluster bus:
  //   request:  subject=<s> [tenant=<t>] [priority=interactive|batch]
  //             [budget_us=<n>]
  //   response: status=<code> shed=<reason> retry_after_us=<n>
  //             payload=<rendered answer>  (on success)
  common::Status RegisterService();

  // Cache invalidation. InvalidateDocument drops exactly the entries whose
  // answers covered `doc_id`; InvalidateAll clears everything (the blunt
  // hook for a full re-mine).
  void InvalidateDocument(const std::string& doc_id);
  void InvalidateAll();

  // Overrides the default quota for one tenant (takes effect on its next
  // refill; an existing bucket's balance is reset to the new burst).
  void SetTenantQuota(const std::string& tenant,
                      const TokenBucketConfig& config);

  // Attaches a registry for serve/* metrics; nullptr detaches. The
  // registry must outlive its attachment.
  void AttachMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  const FrontDoorOptions& options() const { return options_; }

 private:
  // One in-flight execution that identical queries attach to. The leader
  // runs the query; followers wait (deadline-bounded) for `done` and copy
  // the published reply.
  struct Flight {
    common::Mutex mu;
    std::condition_variable_any cv;
    bool done WF_GUARDED_BY(mu) = false;
    common::Status published_status WF_GUARDED_BY(mu) = common::Status::Ok();
    std::string published_payload WF_GUARDED_BY(mu);
  };

  // Lock-striped LRU result cache (the AnalysisCache shape: small striped
  // vectors, linear scan, LRU tick per stripe).
  struct CacheEntry {
    std::string key;
    std::string payload;
    std::vector<std::string> covered_docs;
    uint64_t last_used = 0;
  };
  struct CacheStripe {
    common::Mutex mu;
    std::vector<CacheEntry> entries WF_GUARDED_BY(mu);
    uint64_t tick WF_GUARDED_BY(mu) = 0;
  };

  struct TokenBucket {
    TokenBucketConfig config;
    double tokens = 0.0;
    uint64_t last_refill_us = 0;
    bool initialized = false;
  };

  CacheStripe& StripeFor(const std::string& key);
  bool CacheLookup(const std::string& key, std::string* payload);
  void CacheInsert(const std::string& key, std::string payload,
                   std::vector<std::string> covered_docs);

  // Token-bucket check; on refusal returns false and sets *retry_after_us.
  bool QuotaAdmit(const std::string& tenant, uint64_t* retry_after_us);

  // Blocks (deadline-bounded) until an execution slot is free. Returns
  // kNone on admission, else the shed reason; *queue_wait_us reports the
  // time spent waiting either way. On kQueueFull, *retry_after_us carries
  // the drain-time estimate (EstimateRetryAfterLocked).
  ShedReason Admit(Priority priority, const platform::Deadline& deadline,
                   uint64_t* queue_wait_us, uint64_t* retry_after_us);
  // Frees the execution slot and feeds the completion into the service-rate
  // EWMA and (when enabled) the AIMD controller. `exec_us` is the upstream
  // execution time alone; `e2e_us` adds the admission wait — the latency
  // the caller actually experienced, which is what AIMD steers on.
  void Release(uint64_t exec_us, uint64_t e2e_us);
  // Honest kQueueFull backpressure: how long until the queue ahead of a
  // new arrival drains at the recently observed service rate, clamped to
  // [1ms, 5s]; the static shed_retry_after_us while the door is cold.
  uint64_t EstimateRetryAfterLocked() const WF_REQUIRES(admit_mu_);

  // Executes the query as flight leader and publishes the reply.
  QueryReply ExecuteAndPublish(const QueryRequest& request,
                               const platform::Deadline& deadline,
                               const std::string& key,
                               const std::shared_ptr<Flight>& flight);
  // Fails a flight the leader is abandoning (shed/expired) so followers
  // wake immediately instead of timing out.
  void PublishFlight(const std::string& key,
                     const std::shared_ptr<Flight>& flight,
                     const common::Status& status, std::string payload);

  void Count(const std::string& name, uint64_t delta = 1) const;
  void SetGauge(const std::string& name, int64_t value) const;
  void RecordTiming(const std::string& name, uint64_t value_us) const;

  const platform::SentimentQueryService* service_;
  platform::Cluster* cluster_;
  const FrontDoorOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Stripe set is fixed at construction; each stripe locks itself.
  std::vector<std::unique_ptr<CacheStripe>> cache_;

  // Admission state: execution slots and per-priority waiting counts.
  common::Mutex admit_mu_;
  std::condition_variable_any admit_cv_;
  size_t inflight_ WF_GUARDED_BY(admit_mu_) = 0;
  size_t queued_[2] WF_GUARDED_BY(admit_mu_) = {0, 0};
  // Current execution-slot limit: max_concurrent when AIMD is off, the
  // adaptive value in [aimd.min_limit, max_concurrent] when on.
  size_t limit_ WF_GUARDED_BY(admit_mu_);
  // Completion bookkeeping: service-time EWMA (drain-rate estimates) and
  // the AIMD decision window of end-to-end latencies.
  double ewma_exec_us_ WF_GUARDED_BY(admit_mu_) = 0.0;
  uint64_t completed_total_ WF_GUARDED_BY(admit_mu_) = 0;
  std::vector<uint64_t> window_latencies_us_ WF_GUARDED_BY(admit_mu_);

  common::Mutex flight_mu_;
  std::map<std::string, std::shared_ptr<Flight>> flights_
      WF_GUARDED_BY(flight_mu_);

  common::Mutex quota_mu_;
  std::map<std::string, TokenBucket> buckets_ WF_GUARDED_BY(quota_mu_);
  std::map<std::string, TokenBucketConfig> quota_overrides_
      WF_GUARDED_BY(quota_mu_);
};

}  // namespace wf::serve

#endif  // WF_SERVE_FRONT_DOOR_H_
