#ifndef WF_PLATFORM_WAL_H_
#define WF_PLATFORM_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/durable_file.h"
#include "common/status.h"

namespace wf::platform {

// Per-node write-ahead log: the durability floor under ClusterNode. Every
// ingested entity is appended (length-prefixed, checksummed) and flushed
// *before* the write is acked; recovery replays the log on top of the
// newest checkpoint and stops cleanly at a torn tail.
//
// On-disk format, all text framing so torn tails are easy to reason about:
//
//   wfwal 1\n                       file header, written at creation
//   rec <len> <fnv64-hex>\n         one line per record,
//   <len payload bytes>\n           then the raw payload and a newline
//
// A record counts only if its full frame is present and the payload
// checksum verifies. Anything after the last verifiable record — a
// half-written frame from a crash, a bit-flipped payload — is the torn
// tail: Replay reports it and ignores it, and the first post-recovery
// checkpoint truncates it away. Nothing after a bad record is ever
// trusted (it was written after a write the log already knows was lost).
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Opens `path` for appending, creating it (with header) if absent or
  // empty. An existing log is left byte-for-byte intact — including a
  // torn tail, which only Replay + Reset may judge.
  common::Status Open(const std::string& path,
                      common::StorageFaultInjector* injector = nullptr);
  bool is_open() const { return file_.is_open(); }
  const std::string& path() const { return path_; }

  // Appends one record; Ok means the full frame is flushed to disk — this
  // is the ack barrier. On IOError nothing may be acked: either no bytes
  // landed or a torn prefix did, and recovery will discard it.
  common::Status Append(std::string_view record);

  // File offset just past the last successfully acked record. Truncating
  // the file anywhere at or beyond this offset must lose nothing acked.
  uint64_t acked_bytes() const { return acked_bytes_; }
  // Records acked through this handle (not counting pre-existing ones).
  uint64_t appended_records() const { return appended_records_; }

  struct ReplayResult {
    std::vector<std::string> records;  // every fully verified record
    bool torn_tail = false;  // unverifiable bytes followed the last record
    uint64_t valid_bytes = 0;  // offset just past the last good record
  };
  // Reads the log at `path`. Total by design: a missing or empty file is
  // an empty log; any tail that does not verify sets `torn_tail` and is
  // excluded. IOError only when the file exists but cannot be read.
  static common::Result<ReplayResult> Replay(const std::string& path);

  // Atomically resets the log to header-only — the post-checkpoint
  // truncation. The old log (torn tail included) is replaced in one
  // rename.
  common::Status Reset();

  void Close();

 private:
  std::string path_;
  common::StorageFaultInjector* injector_ = nullptr;
  common::DurableFile file_;
  uint64_t acked_bytes_ = 0;
  uint64_t appended_records_ = 0;
  // Set when a failed append may have left partial bytes on disk; further
  // appends are refused (they would sit behind an unverifiable tail and be
  // dropped by Replay) until Reset() truncates the log.
  bool poisoned_ = false;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_WAL_H_
