#include "platform/health.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "obs/metrics.h"

namespace wf::platform {

namespace {

// Quantile over exponential buckets, mirroring
// obs::HistogramSnapshot::ApproxQuantile: returns the upper bound of the
// bucket containing the q-th sample (overflow reports last bound + 1).
uint64_t QuantileFromBuckets(const std::vector<uint64_t>& bounds,
                             const std::vector<uint64_t>& counts, double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      return i < bounds.size() ? bounds[i] : bounds.back() + 1;
    }
  }
  return bounds.back() + 1;
}

}  // namespace

HealthScoreboard::HealthScoreboard(const HealthOptions& options)
    : options_(options) {}

HealthScoreboard::Stripe& HealthScoreboard::StripeFor(
    const std::string& service) const {
  return stripes_[std::hash<std::string>{}(service) % kStripes];
}

void HealthScoreboard::RecordCall(const std::string& service,
                                  uint64_t latency_us, bool ok) {
  const std::vector<uint64_t>& bounds = obs::DefaultLatencyBoundsUs();
  Stripe& stripe = StripeFor(service);
  common::MutexLock lock(stripe.mu);
  Entry& entry = stripe.services[service];
  if (entry.bucket_counts.empty()) {
    entry.bucket_counts.assign(bounds.size() + 1, 0);
  }
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), latency_us);
  entry.bucket_counts[static_cast<size_t>(it - bounds.begin())] += 1;

  ServiceHealth& h = entry.health;
  const double sample_latency = static_cast<double>(latency_us);
  const double sample_error = ok ? 0.0 : 1.0;
  if (h.samples == 0) {
    h.ewma_latency_us = sample_latency;
    h.error_score = sample_error;
  } else {
    h.ewma_latency_us += options_.latency_alpha *
                         (sample_latency - h.ewma_latency_us);
    h.error_score += options_.error_alpha * (sample_error - h.error_score);
  }
  h.samples += 1;
}

ServiceHealth HealthScoreboard::Snapshot(const std::string& service) const {
  Stripe& stripe = StripeFor(service);
  common::MutexLock lock(stripe.mu);
  auto it = stripe.services.find(service);
  return it == stripe.services.end() ? ServiceHealth{} : it->second.health;
}

uint64_t HealthScoreboard::LatencyQuantileUs(const std::string& service,
                                             double q,
                                             uint64_t fallback_us) const {
  Stripe& stripe = StripeFor(service);
  common::MutexLock lock(stripe.mu);
  auto it = stripe.services.find(service);
  if (it == stripe.services.end() ||
      it->second.health.samples < options_.min_samples) {
    return fallback_us;
  }
  return QuantileFromBuckets(obs::DefaultLatencyBoundsUs(),
                             it->second.bucket_counts, q);
}

uint64_t HealthScoreboard::FleetLatencyQuantileUs(double q,
                                                  uint64_t fallback_us) const {
  std::vector<uint64_t> quantiles;
  for (const Stripe& stripe : stripes_) {
    common::MutexLock lock(stripe.mu);
    for (const auto& [name, entry] : stripe.services) {
      if (entry.health.samples < options_.min_samples) continue;
      quantiles.push_back(QuantileFromBuckets(obs::DefaultLatencyBoundsUs(),
                                              entry.bucket_counts, q));
    }
  }
  if (quantiles.empty()) return fallback_us;
  std::nth_element(quantiles.begin(),
                   quantiles.begin() + quantiles.size() / 2, quantiles.end());
  return quantiles[quantiles.size() / 2];
}

double HealthScoreboard::FleetEwmaMedianUs() const {
  std::vector<double> ewmas;
  for (const Stripe& stripe : stripes_) {
    common::MutexLock lock(stripe.mu);
    for (const auto& [name, entry] : stripe.services) {
      if (entry.health.samples < options_.min_samples) continue;
      ewmas.push_back(entry.health.ewma_latency_us);
    }
  }
  if (ewmas.empty()) return 0.0;
  std::nth_element(ewmas.begin(), ewmas.begin() + ewmas.size() / 2,
                   ewmas.end());
  return ewmas[ewmas.size() / 2];
}

bool HealthScoreboard::Suspect(const std::string& service) const {
  ServiceHealth h = Snapshot(service);
  if (h.samples < options_.min_samples) return false;
  if (h.error_score >= options_.suspect_error_score) return true;
  const double fleet = FleetEwmaMedianUs();
  return fleet > 0.0 &&
         h.ewma_latency_us >= options_.suspect_latency_factor * fleet;
}

std::vector<std::string> HealthScoreboard::Services() const {
  std::vector<std::string> names;
  for (const Stripe& stripe : stripes_) {
    common::MutexLock lock(stripe.mu);
    for (const auto& [name, entry] : stripe.services) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

void HealthScoreboard::Publish(const obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  for (const std::string& service : Services()) {
    ServiceHealth h = Snapshot(service);
    metrics->GetGauge("health/ewma_latency_us/" + service)
        ->Set(static_cast<int64_t>(std::llround(h.ewma_latency_us)));
    metrics->GetGauge("health/error_score_pct/" + service)
        ->Set(static_cast<int64_t>(std::llround(h.error_score * 100.0)));
    metrics->GetGauge("health/suspect/" + service)
        ->Set(Suspect(service) ? 1 : 0);
  }
}

}  // namespace wf::platform
