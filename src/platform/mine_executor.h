#ifndef WF_PLATFORM_MINE_EXECUTOR_H_
#define WF_PLATFORM_MINE_EXECUTOR_H_
// wflint: allow(platform-raw-thread) — this header declares the shared
// pool's own worker storage.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace wf::obs {
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace wf::obs

namespace wf::platform {

struct MineExecutorOptions {
  // Worker threads backing the pool. 0 means "match the hardware",
  // clamped to [1, 16]. Note the pool adds `threads` workers on top of
  // every calling thread: callers always participate in their own batch,
  // so even threads = 0 on a single-core host makes progress.
  size_t threads = 0;
  // Entities per claimed batch. Workers claim whole ranges instead of
  // single items to bound dispatch overhead on microscopic tasks. 0 means
  // "pick from the task count" (roughly 4 batches per worker).
  size_t batch_size = 0;
};

// The node-level mining pool: a bounded set of persistent workers that run
// a shard sweep's per-entity tasks concurrently. Design mirrors
// VinciBus::ScatterPool — tasks of one ParallelFor form a batch, workers
// and the calling thread both claim ranges from it, so progress never
// depends on a free pool thread and a task that calls ParallelFor again
// drains its own nested batch (no deadlock). One executor is meant to be
// shared by a whole Cluster: node-level sweeps dispatched concurrently
// interleave their batches on the same bounded worker set instead of
// multiplying threads.
//
// Determinism contract: ParallelFor provides *scheduling*, never
// *ordering* — tasks must not communicate, and every ordered effect (store
// commit, index append, metrics that must replay) belongs to the caller
// after it returns, applied in a canonical order (see
// MinerPipeline::ProcessStore).
class MineExecutor {
 public:
  MineExecutor() : MineExecutor(MineExecutorOptions{}) {}
  explicit MineExecutor(const MineExecutorOptions& options);
  ~MineExecutor();
  MineExecutor(const MineExecutor&) = delete;
  MineExecutor& operator=(const MineExecutor&) = delete;

  // Mirrors pool gauges/histograms into `metrics` under mine_executor/...
  // (nullptr detaches). Configuration, not data-path; the registry must
  // outlive the attachment.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  // Runs task(i) for every i in [0, count), partitioned into stable
  // contiguous ranges, returning after all have finished. The calling
  // thread participates. `task` must be safe to invoke concurrently from
  // multiple threads with distinct indices.
  // The batch wait hand-rolls a std::unique_lock over the pool mutex,
  // which the clang analysis cannot follow.
  void ParallelFor(size_t count, const std::function<void(size_t)>& task)
      WF_NO_THREAD_SAFETY_ANALYSIS;

  // Worker threads owned by the pool (not counting participating callers).
  size_t threads() const { return workers_.size(); }
  const MineExecutorOptions& options() const { return options_; }

  // Resolves MineExecutorOptions::threads semantics: 0 -> hardware
  // concurrency, clamped to [1, 16].
  static size_t ResolveThreads(size_t requested);

 private:
  struct Batch {
    const std::function<void(size_t)>* task = nullptr;
    size_t count = 0;        // total indices
    size_t stride = 1;       // indices claimed per grab
    std::atomic<size_t> next{0};
    size_t done = 0;         // finished indices; guarded by pool mu_
  };

  // Worker and stride internals juggle a std::unique_lock across the
  // condition-variable waits, which the clang analysis cannot follow.
  void WorkerLoop() WF_NO_THREAD_SAFETY_ANALYSIS;
  // Claims and runs one stride of `batch`; returns false when the batch
  // had nothing left to claim. `lock` is held on entry and exit.
  bool RunStride(const std::shared_ptr<Batch>& batch,
                 std::unique_lock<common::Mutex>& lock)
      WF_NO_THREAD_SAFETY_ANALYSIS;

  MineExecutorOptions options_;
  // Lifecycle-immutable: workers_ is filled in the constructor and joined
  // in the destructor, never mutated while the pool is live.
  std::vector<std::thread> workers_;
  common::Mutex mu_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  std::deque<std::shared_ptr<Batch>> queue_ WF_GUARDED_BY(mu_);
  bool stop_ WF_GUARDED_BY(mu_) = false;

  std::atomic<size_t> active_workers_{0};
  // Metric handles; attached under mu_ and written back under mu_ in
  // RunStride so a detach never races a stride's gauge update.
  obs::Gauge* utilization_gauge_ WF_GUARDED_BY(mu_) = nullptr;
  obs::Histogram* batch_latency_us_ WF_GUARDED_BY(mu_) = nullptr;
  obs::Gauge* threads_gauge_ WF_GUARDED_BY(mu_) = nullptr;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_MINE_EXECUTOR_H_
