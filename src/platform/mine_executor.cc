// wflint: allow(platform-raw-thread) — this IS the shared pool
// implementation the rule points everyone else at.
#include "platform/mine_executor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace wf::platform {

size_t MineExecutor::ResolveThreads(size_t requested) {
  if (requested == 0) {
    requested = std::thread::hardware_concurrency();
  }
  return std::min<size_t>(16, std::max<size_t>(1, requested));
}

MineExecutor::MineExecutor(const MineExecutorOptions& options)
    : options_(options) {
  const size_t threads = ResolveThreads(options_.threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MineExecutor::~MineExecutor() {
  {
    common::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void MineExecutor::AttachMetrics(obs::MetricsRegistry* metrics) {
  common::MutexLock lock(mu_);
  if (metrics == nullptr) {
    utilization_gauge_ = nullptr;
    batch_latency_us_ = nullptr;
    threads_gauge_ = nullptr;
    return;
  }
  utilization_gauge_ = metrics->GetGauge("mine_executor/busy_workers");
  threads_gauge_ = metrics->GetGauge("mine_executor/pool_threads");
  threads_gauge_->Set(static_cast<int64_t>(workers_.size()));
  batch_latency_us_ = metrics->GetHistogram("mine_executor/batch_latency_us",
                                            obs::DefaultLatencyBoundsUs(),
                                            /*timing=*/true);
}

void MineExecutor::ParallelFor(size_t count,
                               const std::function<void(size_t)>& task) {
  if (count == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->count = count;
  size_t stride = options_.batch_size;
  if (stride == 0) {
    // ~4 claims per participant keeps the tail balanced without paying a
    // queue round-trip per entity.
    stride = count / (4 * (workers_.size() + 1));
  }
  batch->stride = std::max<size_t>(1, std::min<size_t>(stride, 64));

  std::unique_lock<common::Mutex> lock(mu_);
  queue_.push_back(batch);
  work_cv_.notify_all();
  while (RunStride(batch, lock)) {
  }
  done_cv_.wait(lock, [&] { return batch->done == batch->count; });
  // The batch may still sit in the queue with all ranges claimed; remove
  // it so no worker touches it after `task` goes out of scope.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == batch) {
      queue_.erase(it);
      break;
    }
  }
}

bool MineExecutor::RunStride(const std::shared_ptr<Batch>& batch,
                             std::unique_lock<common::Mutex>& lock) {
  const size_t begin = batch->next.fetch_add(batch->stride);
  if (begin >= batch->count) return false;
  const size_t end = std::min(batch->count, begin + batch->stride);
  // Gauge updates happen under mu_ so the last write always reflects the
  // true busy count (an unordered stale Set could leave a quiescent pool
  // exporting busy_workers != 0, breaking deterministic exports).
  const size_t busy = active_workers_.fetch_add(1) + 1;
  if (utilization_gauge_ != nullptr) {
    utilization_gauge_->Set(static_cast<int64_t>(busy));
  }
  lock.unlock();
  const uint64_t t0 = batch_latency_us_ != nullptr ? obs::MonotonicNowUs() : 0;
  for (size_t i = begin; i < end; ++i) (*batch->task)(i);
  if (batch_latency_us_ != nullptr) {
    batch_latency_us_->Record(obs::MonotonicNowUs() - t0);
  }
  lock.lock();
  const size_t still_busy = active_workers_.fetch_sub(1) - 1;
  if (utilization_gauge_ != nullptr) {
    utilization_gauge_->Set(static_cast<int64_t>(still_busy));
  }
  batch->done += end - begin;
  if (batch->done == batch->count) done_cv_.notify_all();
  return true;
}

void MineExecutor::WorkerLoop() {
  std::unique_lock<common::Mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    std::shared_ptr<Batch> batch = queue_.front();
    if (!RunStride(batch, lock)) {
      // Fully claimed: retire it from the queue head so later batches run.
      if (!queue_.empty() && queue_.front() == batch) queue_.pop_front();
    }
  }
}

}  // namespace wf::platform
