#ifndef WF_PLATFORM_QUERY_SERVICE_H_
#define WF_PLATFORM_QUERY_SERVICE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/miner.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"
#include "platform/cluster.h"

namespace wf::platform {

// One sentiment-bearing sentence returned to an application.
struct SentimentHit {
  std::string doc_id;
  std::string subject;
  lexicon::Polarity polarity = lexicon::Polarity::kNeutral;
  std::string sentence;
  std::string pattern;
};

// Aggregate answer for a subject query. Coverage counters make partial
// answers visible: on a degraded cluster the query still completes, and
// `nodes_responded < nodes_total` tells the application the counts are a
// lower bound rather than the whole corpus.
struct SentimentQueryResult {
  std::string subject;
  size_t positive_docs = 0;  // documents with >= 1 positive mention
  size_t negative_docs = 0;
  std::vector<SentimentHit> hits;
  size_t nodes_total = 0;      // shards the query scattered to
  size_t nodes_responded = 0;  // shards that answered every search RPC
  size_t fetch_failures = 0;   // doc fetches that failed after retries
  // True when the caller's deadline expired mid-query and later stages
  // (hit fetches, or the whole scatter) were skipped — the answer is a
  // partial snapshot, never a stalled wait.
  bool deadline_expired = false;
  // Every document id the search scatters returned (positive and negative
  // union) — the exact read set of this answer, so a result cache can
  // invalidate precisely when one of these documents is re-mined.
  std::vector<std::string> covered_docs;
  bool complete() const {
    return nodes_responded == nodes_total && fetch_failures == 0 &&
           !deadline_expired;
  }
};

// The hosted Web-service side of the system: answers real-time sentiment
// queries about arbitrary subjects from the sentiment index built offline
// by the Mode-B miner (Figure 3). All cluster access goes through the
// Vinci bus (scatter/gather), never through node memory.
class SentimentQueryService {
 public:
  // `cluster` must outlive the service; its nodes must have been mined and
  // indexed with a sentiment plugin.
  explicit SentimentQueryService(Cluster* cluster) : cluster_(cluster) {}

  // Registers the "app/sentiment_query" service on the cluster bus so
  // remote applications can call it with "subject=<name>".
  common::Status RegisterService();

  // Sentiment roll-up plus the matching sentences for `subject` (case
  // insensitive; multi-word subjects allowed).
  SentimentQueryResult Query(const std::string& subject,
                             size_t max_hits = 50) const;

  // Deadline-bounded variant: the remaining budget rides both search
  // scatters and every hit fetch; once it is spent the query stops where
  // it stands (deadline_expired set, remaining fetches skipped) instead of
  // letting downstream calls outlive the caller.
  SentimentQueryResult Query(const std::string& subject, size_t max_hits,
                             const Deadline& deadline) const;

  // Subjects with at least one indexed sentiment, discovered from the
  // concept-token vocabulary (for dashboards).
  std::vector<std::string> KnownSubjects() const;

 private:
  std::vector<SentimentHit> FetchHits(const std::string& subject,
                                      lexicon::Polarity polarity,
                                      const std::vector<std::string>& docs,
                                      size_t max_hits,
                                      const Deadline& deadline,
                                      size_t* fetch_failures,
                                      bool* deadline_expired) const;

  Cluster* cluster_;
};

// The alternative §3 dismisses for latency reasons: run the sentiment
// analysis *at query time*. The subject term is looked up in the text
// index, the matching entities are fetched over the bus, and the full NLP
// pipeline runs on each of them before the answer can be assembled. Kept
// as a first-class implementation so the offline-vs-runtime trade-off is
// measurable (bench_modeb_latency); results are identical to the offline
// path on unchanged corpora.
class RuntimeSentimentQueryService {
 public:
  // Pointers must outlive the service.
  RuntimeSentimentQueryService(Cluster* cluster,
                               const lexicon::SentimentLexicon* lexicon,
                               const lexicon::PatternDatabase* patterns)
      : cluster_(cluster), lexicon_(lexicon), patterns_(patterns) {}

  // Same contract as SentimentQueryService::Query, computed from scratch.
  SentimentQueryResult Query(const std::string& subject,
                             size_t max_hits = 50) const;

 private:
  Cluster* cluster_;
  const lexicon::SentimentLexicon* lexicon_;
  const lexicon::PatternDatabase* patterns_;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_QUERY_SERVICE_H_
