#ifndef WF_PLATFORM_GEO_MINER_H_
#define WF_PLATFORM_GEO_MINER_H_

#include <string>

#include "platform/miner_framework.h"
#include "spot/spotter.h"

namespace wf::platform {

// Entity-level geographic-context miner (§2 lists a "geographic context
// discoverer" among WebFountain's entity-level miners; cf. McCurley 2002).
// Spots place names from a built-in gazetteer, annotates them in a "geo"
// layer, and emits "geo/<region>" conceptual tokens so queries can be
// scoped geographically.
class GeoContextMiner : public EntityMiner {
 public:
  GeoContextMiner();

  std::string name() const override { return "geo_context"; }
  common::Status Process(Entity& entity) override;
  common::Status Process(Entity& entity, const MineContext& context) override;
  bool wants_analysis() const override { return true; }

  // Conceptual token for a region ("geo/united_states").
  static std::string GeoConceptToken(const std::string& region);

 private:
  spot::Spotter gazetteer_;
  std::map<int, std::string> region_of_set_;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_GEO_MINER_H_
