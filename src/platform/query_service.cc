#include "platform/query_service.h"

#include <set>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "platform/sentiment_miner_plugin.h"

namespace wf::platform {

using ::wf::common::Status;
using ::wf::lexicon::Polarity;

namespace {

// Coverage/outcome metrics shared by both query services, recorded under
// query/<service>/... on the cluster registry (DESIGN.md §8).
void RecordQueryMetrics(const obs::MetricsRegistry& metrics,
                        const std::string& service,
                        const SentimentQueryResult& result) {
  const std::string prefix = "query/" + service + "/";
  metrics.GetCounter(prefix + "requests_total")->Add(1);
  metrics.GetCounter(prefix + (result.complete() ? "complete_total"
                                                 : "partial_total"))
      ->Add(1);
  if (result.fetch_failures > 0) {
    metrics.GetCounter(prefix + "fetch_failures_total")
        ->Add(result.fetch_failures);
  }
  metrics.GetCounter(prefix + "hits_total")->Add(result.hits.size());
  metrics.GetCounter(prefix + "nodes_scattered_total")
      ->Add(result.nodes_total);
  metrics.GetCounter(prefix + "nodes_responded_total")
      ->Add(result.nodes_responded);
}

}  // namespace

common::Status SentimentQueryService::RegisterService() {
  return cluster_->bus().RegisterService(
      "app/sentiment_query", [this](const std::string& request) {
        std::string subject = GetMessageField(request, "subject");
        SentimentQueryResult result = Query(subject);
        std::vector<std::pair<std::string, std::string>> out;
        out.emplace_back("subject", result.subject);
        out.emplace_back("positive_docs",
                         common::StrFormat("%zu", result.positive_docs));
        out.emplace_back("negative_docs",
                         common::StrFormat("%zu", result.negative_docs));
        out.emplace_back("nodes_total",
                         common::StrFormat("%zu", result.nodes_total));
        out.emplace_back("nodes_responded",
                         common::StrFormat("%zu", result.nodes_responded));
        for (const SentimentHit& hit : result.hits) {
          out.emplace_back(
              "hit", common::StrFormat(
                         "%s\t%s\t%s", hit.doc_id.c_str(),
                         hit.polarity == Polarity::kPositive ? "+" : "-",
                         hit.sentence.c_str()));
        }
        return EncodeMessage(out);
      });
}

namespace {

// Point fetches ride the resilient path: a couple of quick retries smooth
// over transient faults; a shard that stays down costs one failed fetch,
// not a stalled query.
CallOptions FetchCallOptions() {
  CallOptions options;
  options.max_retries = 2;
  options.initial_backoff_us = 50;
  options.max_backoff_us = 1000;
  return options;
}

}  // namespace

std::vector<SentimentHit> SentimentQueryService::FetchHits(
    const std::string& subject, lexicon::Polarity polarity,
    const std::vector<std::string>& docs, size_t max_hits,
    const Deadline& deadline, size_t* fetch_failures,
    bool* deadline_expired) const {
  std::vector<SentimentHit> hits;
  const char* want = polarity == Polarity::kPositive ? "+" : "-";
  for (const std::string& doc : docs) {
    if (hits.size() >= max_hits) break;
    if (!deadline.infinite() && deadline.expired()) {
      // Budget spent mid-fetch: stop here with what we have. The skipped
      // docs are not failures — the caller is late, not the shards.
      *deadline_expired = true;
      break;
    }
    size_t shard = cluster_->Route(doc);
    CallOptions options = FetchCallOptions();
    // Each fetch (and its retry loop) is capped by whatever budget is
    // left *now*, so the sum of fetches can never overrun the deadline.
    if (!deadline.infinite()) options.deadline_us = deadline.CallBudgetUs();
    std::vector<std::pair<std::string, std::string>> fetch_fields = {
        {"id", doc}};
    AppendDeadline(deadline, &fetch_fields);
    auto response = cluster_->bus().Call(
        common::StrFormat("node/%zu/fetch", shard),
        EncodeMessage(fetch_fields), options);
    if (!response.ok()) {
      ++*fetch_failures;
      continue;
    }
    std::string serialized = GetMessageField(*response, "entity");
    if (serialized.empty()) continue;
    auto entity = Entity::Deserialize(serialized);
    if (!entity.ok()) continue;
    const auto* spans = entity->GetAnnotations("sentiment");
    if (spans == nullptr) continue;
    for (const AnnotationSpan& span : *spans) {
      if (hits.size() >= max_hits) break;
      auto subj_it = span.attrs.find("subject");
      auto pol_it = span.attrs.find("polarity");
      if (subj_it == span.attrs.end() || pol_it == span.attrs.end()) continue;
      if (!common::EqualsIgnoreCase(subj_it->second, subject)) continue;
      if (pol_it->second != want) continue;
      SentimentHit hit;
      hit.doc_id = doc;
      hit.subject = subj_it->second;
      hit.polarity = polarity;
      auto sent_it = span.attrs.find("sentence");
      if (sent_it != span.attrs.end()) hit.sentence = sent_it->second;
      auto pat_it = span.attrs.find("pattern");
      if (pat_it != span.attrs.end()) hit.pattern = pat_it->second;
      hits.push_back(std::move(hit));
    }
  }
  return hits;
}

SentimentQueryResult SentimentQueryService::Query(const std::string& subject,
                                                  size_t max_hits) const {
  return Query(subject, max_hits, Deadline::Infinite());
}

SentimentQueryResult SentimentQueryService::Query(
    const std::string& subject, size_t max_hits,
    const Deadline& deadline) const {
  obs::ScopedTimer timer(cluster_->metrics().GetHistogram(
      "query/offline/latency_us", obs::DefaultLatencyBoundsUs(),
      /*timing=*/true));
  SentimentQueryResult result;
  result.subject = subject;

  SearchResult pos_docs = cluster_->Search(
      SentimentConceptToken(subject, Polarity::kPositive), deadline);
  SearchResult neg_docs = cluster_->Search(
      SentimentConceptToken(subject, Polarity::kNegative), deadline);
  result.positive_docs = pos_docs.docs.size();
  result.negative_docs = neg_docs.docs.size();

  // Coverage: a node "responded" only if it answered both scatters; the
  // union of failed services across them is what the query really missed.
  result.nodes_total = pos_docs.nodes_total;
  std::set<std::string> failed(pos_docs.failed_services.begin(),
                               pos_docs.failed_services.end());
  failed.insert(neg_docs.failed_services.begin(),
                neg_docs.failed_services.end());
  result.nodes_responded = result.nodes_total - failed.size();

  // The answer's exact read set: every doc either scatter surfaced, for
  // result caches that must invalidate when one of them is re-mined.
  std::set<std::string> covered(pos_docs.docs.begin(), pos_docs.docs.end());
  covered.insert(neg_docs.docs.begin(), neg_docs.docs.end());
  result.covered_docs.assign(covered.begin(), covered.end());

  size_t half = max_hits / 2 + 1;
  std::vector<SentimentHit> pos = FetchHits(
      subject, Polarity::kPositive, pos_docs.docs, half, deadline,
      &result.fetch_failures, &result.deadline_expired);
  std::vector<SentimentHit> neg = FetchHits(
      subject, Polarity::kNegative, neg_docs.docs, half, deadline,
      &result.fetch_failures, &result.deadline_expired);
  result.hits = std::move(pos);
  result.hits.insert(result.hits.end(), neg.begin(), neg.end());
  RecordQueryMetrics(cluster_->metrics(), "offline", result);
  return result;
}

SentimentQueryResult RuntimeSentimentQueryService::Query(
    const std::string& subject, size_t max_hits) const {
  obs::ScopedTimer timer(cluster_->metrics().GetHistogram(
      "query/runtime/latency_us", obs::DefaultLatencyBoundsUs(),
      /*timing=*/true));
  SentimentQueryResult result;
  result.subject = subject;

  // 1. Find candidate documents through the text index (phrase search for
  //    multi-word subjects).
  std::vector<std::string> words = common::Split(
      common::ToLower(subject), " ");
  SearchResult candidates = words.size() == 1
                                ? cluster_->Search(words[0])
                                : cluster_->SearchPhrase(words);
  result.nodes_total = candidates.nodes_total;
  result.nodes_responded = candidates.nodes_responded;

  // 2. Run the full sentiment pipeline on each candidate, at query time.
  core::SentimentMiner::Config config;
  config.record_neutral = false;
  config.use_disambiguator = false;
  core::SentimentMiner miner(lexicon_, patterns_, config);
  miner.AddSubject(spot::SynonymSet{0, subject, {}});

  core::SentimentStore store;
  for (const std::string& doc : candidates.docs) {
    size_t shard = cluster_->Route(doc);
    auto response = cluster_->bus().Call(
        common::StrFormat("node/%zu/fetch", shard),
        EncodeMessage({{"id", doc}}), FetchCallOptions());
    if (!response.ok()) {
      ++result.fetch_failures;
      continue;
    }
    auto entity = Entity::Deserialize(GetMessageField(*response, "entity"));
    if (!entity.ok()) continue;
    miner.ProcessDocument(doc, entity->body(), &store);
  }

  // 3. Assemble the same roll-up the offline service returns.
  core::SentimentStore::PageAggregate pages =
      store.PagesForSubject(subject);
  result.positive_docs = pages.pages_positive;
  result.negative_docs = pages.pages_negative;
  for (const core::SentimentMention& m : store.mentions()) {
    if (result.hits.size() >= max_hits) break;
    SentimentHit hit;
    hit.doc_id = m.doc_id;
    hit.subject = m.subject;
    hit.polarity = m.polarity;
    hit.sentence = m.sentence_text;
    hit.pattern = m.pattern;
    result.hits.push_back(std::move(hit));
  }
  RecordQueryMetrics(cluster_->metrics(), "runtime", result);
  return result;
}

std::vector<std::string> SentimentQueryService::KnownSubjects() const {
  std::set<std::string> subjects;
  for (size_t i = 0; i < cluster_->node_count(); ++i) {
    for (const std::string& term :
         cluster_->node(i).index().VocabularyWithPrefix("sent/")) {
      // "sent/<pol>/<subject>"
      std::vector<std::string> parts = common::SplitExact(term, "/");
      if (parts.size() != 3) continue;
      std::string name = parts[2];
      for (char& c : name) {
        if (c == '_') c = ' ';
      }
      subjects.insert(name);
    }
  }
  return std::vector<std::string>(subjects.begin(), subjects.end());
}

}  // namespace wf::platform
