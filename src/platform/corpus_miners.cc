#include "platform/corpus_miners.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace wf::platform {

using ::wf::common::Status;

// --- DuplicateDetectionMiner ------------------------------------------------

DuplicateDetectionMiner::DuplicateDetectionMiner(const Options& options)
    : options_(options) {
  WF_CHECK(options_.num_hashes % options_.bands == 0)
      << "bands must divide num_hashes";
}

namespace {

// Shingle hash set over an already-tokenized document.
std::vector<uint64_t> ShingleHashesFromTokens(const text::TokenStream& tokens,
                                              size_t shingle_size) {
  std::vector<std::string> words;
  words.reserve(tokens.size());
  for (const text::Token& t : tokens) {
    if (t.kind == text::TokenKind::kWord) {
      words.push_back(common::ToLower(t.text));
    }
  }
  std::set<uint64_t> shingles;
  if (words.size() >= shingle_size) {
    for (size_t i = 0; i + shingle_size <= words.size(); ++i) {
      uint64_t h = 0xcbf29ce484222325ULL;
      for (size_t k = 0; k < shingle_size; ++k) {
        h = common::HashCombine(h, common::Fnv1a64(words[i + k]));
      }
      shingles.insert(h);
    }
  } else if (!words.empty()) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::string& w : words) {
      h = common::HashCombine(h, common::Fnv1a64(w));
    }
    shingles.insert(h);
  }
  return std::vector<uint64_t>(shingles.begin(), shingles.end());
}

// Shingle hash set of a document body (tokenizes locally).
std::vector<uint64_t> ShingleHashes(const std::string& body,
                                    size_t shingle_size) {
  text::Tokenizer tokenizer;
  return ShingleHashesFromTokens(tokenizer.Tokenize(body), shingle_size);
}

// MinHash signature from shingle hashes; hash family h_i(x) = a_i*x + b_i
// with fixed odd multipliers (deterministic across runs).
std::vector<uint64_t> MinHashSignature(const std::vector<uint64_t>& shingles,
                                       size_t num_hashes) {
  std::vector<uint64_t> sig(num_hashes, UINT64_MAX);
  for (size_t i = 0; i < num_hashes; ++i) {
    uint64_t a = 0x9e3779b97f4a7c15ULL * (2 * i + 1) + 0x2545F4914F6CDD1DULL;
    uint64_t b = 0xda942042e4dd58b5ULL * (i + 1);
    for (uint64_t s : shingles) {
      uint64_t h = s * a + b;
      if (h < sig[i]) sig[i] = h;
    }
  }
  return sig;
}

double ExactJaccard(const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = 0;
  size_t i = 0, j = 0;  // both sorted (built from std::set)
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

}  // namespace

common::Status DuplicateDetectionMiner::Run(DataStore& store) {
  return Run(store, nullptr);
}

common::Status DuplicateDetectionMiner::Run(DataStore& store,
                                            core::AnalysisProvider* provider) {
  duplicates_.clear();

  struct DocSig {
    std::string id;
    std::vector<uint64_t> shingles;
    std::vector<uint64_t> signature;
  };
  std::vector<DocSig> docs;
  store.ForEach([&](const Entity& e) {
    DocSig d;
    d.id = e.id();
    d.shingles =
        provider != nullptr
            ? ShingleHashesFromTokens(
                  provider->Analyze(e.id(), e.body())->tokens,
                  options_.shingle_size)
            : ShingleHashes(e.body(), options_.shingle_size);
    d.signature = MinHashSignature(d.shingles, options_.num_hashes);
    docs.push_back(std::move(d));
  });
  // Deterministic order regardless of store iteration order.
  std::sort(docs.begin(), docs.end(),
            [](const DocSig& a, const DocSig& b) { return a.id < b.id; });

  // LSH: band signature rows into buckets; same bucket = candidate pair.
  const size_t rows = options_.num_hashes / options_.bands;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::unordered_map<std::string, std::string> representative_of;
  for (size_t d = 0; d < docs.size(); ++d) {
    if (docs[d].shingles.empty()) continue;
    std::unordered_set<size_t> candidates;
    for (size_t band = 0; band < options_.bands; ++band) {
      uint64_t key = common::Fnv1a64("band") + band * 1315423911ULL;
      for (size_t r = 0; r < rows; ++r) {
        key = common::HashCombine(key, docs[d].signature[band * rows + r]);
      }
      auto& bucket = buckets[key];
      for (size_t other : bucket) candidates.insert(other);
      bucket.push_back(d);
    }
    for (size_t other : candidates) {
      // Only mark d as duplicate of an earlier non-duplicate doc.
      if (representative_of.count(docs[other].id) > 0) continue;
      double sim = ExactJaccard(docs[d].shingles, docs[other].shingles);
      if (sim >= options_.threshold) {
        representative_of[docs[d].id] = docs[other].id;
        duplicates_.emplace_back(docs[d].id, docs[other].id);
        break;
      }
    }
  }

  for (const auto& [dup, rep] : duplicates_) {
    WF_RETURN_IF_ERROR(store.Update(dup, [&rep](Entity& e) {
      e.SetField("duplicate_of", rep);
    }));
  }
  return Status::Ok();
}

// --- AggregateStatsMiner ------------------------------------------------------

common::Status AggregateStatsMiner::Run(DataStore& store) {
  return Run(store, nullptr);
}

common::Status AggregateStatsMiner::Run(DataStore& store,
                                        core::AnalysisProvider* provider) {
  stats_ = Stats{};
  std::unordered_set<std::string> vocabulary;
  text::Tokenizer tokenizer;
  store.ForEach([&](const Entity& e) {
    ++stats_.documents;
    text::TokenStream local;
    const text::TokenStream* tokens = &local;
    std::shared_ptr<const core::LinguisticAnalysis> analysis;
    if (provider != nullptr) {
      analysis = provider->Analyze(e.id(), e.body());
      tokens = &analysis->tokens;
    } else {
      local = tokenizer.Tokenize(e.body());
    }
    stats_.tokens += tokens->size();
    for (const text::Token& t : *tokens) {
      if (t.kind == text::TokenKind::kWord) {
        ++stats_.words;
        vocabulary.insert(common::ToLower(t.text));
      }
    }
  });
  stats_.vocabulary = vocabulary.size();
  stats_.avg_tokens_per_doc =
      stats_.documents == 0
          ? 0.0
          : static_cast<double>(stats_.tokens) / stats_.documents;
  return Status::Ok();
}

// --- TrendingMiner ---------------------------------------------------------------

common::Status TrendingMiner::Run(DataStore& store) {
  trends_.clear();
  store.ForEach([&](const Entity& e) {
    const std::string& date = e.GetField("date");
    if (date.size() < 7) return;  // need at least YYYY-MM
    std::string month = date.substr(0, 7);
    const auto* spans = e.GetAnnotations("sentiment");
    if (spans == nullptr) return;
    for (const AnnotationSpan& span : *spans) {
      auto subj = span.attrs.find("subject");
      auto pol = span.attrs.find("polarity");
      if (subj == span.attrs.end() || pol == span.attrs.end()) continue;
      auto& bucket = trends_[common::ToLower(subj->second)][month];
      if (pol->second == "+") {
        ++bucket.first;
      } else if (pol->second == "-") {
        ++bucket.second;
      }
    }
  });
  return Status::Ok();
}

std::vector<TrendingMiner::Bucket> TrendingMiner::TrendFor(
    const std::string& subject) const {
  std::vector<Bucket> out;
  auto it = trends_.find(common::ToLower(subject));
  if (it == trends_.end()) return out;
  for (const auto& [month, counts] : it->second) {
    out.push_back(Bucket{month, counts.first, counts.second});
  }
  return out;
}

std::vector<std::string> TrendingMiner::Subjects() const {
  std::vector<std::string> out;
  out.reserve(trends_.size());
  for (const auto& [subject, buckets] : trends_) out.push_back(subject);
  return out;
}

}  // namespace wf::platform
