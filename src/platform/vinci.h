#ifndef WF_PLATFORM_VINCI_H_
#define WF_PLATFORM_VINCI_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace wf::obs {
class MetricsRegistry;
class Tracer;
}  // namespace wf::obs

namespace wf::platform {

class FaultInjector;

// Per-call resilience knobs for VinciBus::Call. Defaults are a single
// attempt with no deadline — identical to the plain overload.
struct CallOptions {
  // Overall budget across all attempts, in microseconds; 0 means none.
  // Exceeding it returns Status::DeadlineExceeded.
  uint64_t deadline_us = 0;
  // Extra attempts after the first, on retryable failures (Unavailable,
  // Corruption). NotFound and circuit-breaker rejections never retry.
  int max_retries = 0;
  // Exponential backoff between attempts: initial * multiplier^attempt,
  // capped at max, scaled by jitter in [0.5, 1.5) so synchronized callers
  // do not retry in lockstep.
  uint64_t initial_backoff_us = 100;
  uint64_t max_backoff_us = 10000;
  double backoff_multiplier = 2.0;
};

// Per-service circuit breaker: after `failure_threshold` consecutive
// failures the circuit opens and calls are rejected immediately (no
// latency, no handler dispatch) — that is what stops a retry storm from
// hammering a sick node. After `open_rejections` fast-rejections the next
// call is let through as a half-open probe: success closes the circuit,
// failure re-opens it for another rejection window. Counting calls rather
// than wall time keeps chaos runs deterministic.
struct BreakerConfig {
  size_t failure_threshold = 5;
  size_t open_rejections = 8;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

// In-process stand-in for Vinci, WebFountain's "Web-service style,
// lightweight, high-speed communication protocol" (a SOAP derivative).
// Services register string->string handlers under a name; nodes and
// applications communicate exclusively through Call(), which keeps the
// shared-nothing discipline honest — no component touches another's memory.
//
// Requests and responses use a line-oriented "key=value" wire format (see
// the helpers below) to mimic the serialization boundary of the real
// protocol.
//
// Failure semantics mirror a real cluster bus: an attached FaultInjector
// can drop, delay, or corrupt calls; Call() with CallOptions retries with
// exponential backoff under a deadline; a per-service circuit breaker
// sheds load from services that keep failing. Service resolution is local
// (a registry lookup), so a NotFound miss costs no simulated round trip.
class VinciBus {
 public:
  using Handler = std::function<std::string(const std::string& request)>;

  VinciBus();
  ~VinciBus();
  VinciBus(const VinciBus&) = delete;
  VinciBus& operator=(const VinciBus&) = delete;

  // Adds a busy-wait of `microseconds` to every Call(), simulating the
  // network round trip of the real SOAP-derived protocol. 0 disables
  // (default). Scatter/gather costs then scale with fan-out, as they would
  // across racks. Atomic: may be flipped while scattered calls are in
  // flight (CallAll workers read it concurrently).
  void SetSimulatedLatency(uint64_t microseconds) {
    simulated_latency_us_.store(microseconds, std::memory_order_relaxed);
  }

  // Attaches a chaos source consulted on every dispatch; nullptr detaches.
  // The injector must outlive its attachment. Atomic, so faults can be
  // flipped on and off while scattered calls are in flight.
  void AttachFaultInjector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  // Attaches a metrics registry; every dispatch then records per-service
  // call/failure counters, breaker transitions, retry counts, and latency
  // histograms (see DESIGN.md §8 for the naming scheme). nullptr detaches.
  // The registry must outlive its attachment.
  void AttachMetrics(obs::MetricsRegistry* metrics) {
    metrics_.store(metrics, std::memory_order_release);
  }

  // Attaches a tracer; a dispatched call whose request carries trace
  // context (obs::kTraceIdKey / obs::kSpanIdKey fields) then records a
  // client-side child span named after the target service, stitching a
  // scatter into one parent/child trace. Requests without context trace
  // nothing. nullptr detaches. The tracer must outlive its attachment.
  void AttachTracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

  // Registers a service; AlreadyExists if the name is taken.
  common::Status RegisterService(const std::string& name, Handler handler);
  common::Status UnregisterService(const std::string& name);

  // Synchronous request/response; NotFound for unknown services (resolved
  // locally, before any simulated network cost), Unavailable for injected
  // failures / partitions / an open circuit, Corruption for responses that
  // fail the simulated end-to-end checksum.
  common::Result<std::string> Call(const std::string& service,
                                   const std::string& request) const;

  // Resilient variant: retries retryable failures with exponential backoff
  // and jitter, under an overall deadline (DeadlineExceeded once spent).
  common::Result<std::string> Call(const std::string& service,
                                   const std::string& request,
                                   const CallOptions& options) const;

  // Fan-out: calls every service whose name starts with `prefix`, returning
  // per-service Results — the scatter half of scatter/gather queries. A
  // failed target reports its error instead of poisoning the whole gather,
  // so callers can tell "node down" from "empty answer". Scatter runs on a
  // small reusable worker pool (plus the calling thread), so a wide fan-out
  // under injected latency is bounded, never thread-per-target.
  std::vector<std::pair<std::string, common::Result<std::string>>> CallAll(
      const std::string& prefix, const std::string& request) const;
  // Resilient scatter: each target call runs under `options` (deadline,
  // retries with backoff), so a straggler shard costs at most the caller's
  // remaining budget, never an unbounded wait. Default options behave
  // exactly like the plain overload.
  std::vector<std::pair<std::string, common::Result<std::string>>> CallAll(
      const std::string& prefix, const std::string& request,
      const CallOptions& options) const;

  // Circuit-breaker controls. Config applies to every service on this bus.
  void SetBreakerConfig(const BreakerConfig& config);
  BreakerState breaker_state(const std::string& service) const;
  // Force-closes every breaker (e.g. after an operator heals a partition).
  void ResetBreakers();

  std::vector<std::string> Services() const;
  // Total completed calls (diagnostics).
  size_t CallCount(const std::string& service) const;

 private:
  class ScatterPool;
  struct Breaker {
    size_t consecutive_failures = 0;
    bool open = false;
    size_t rejections = 0;  // fast-rejections since the circuit opened
  };

  void SimulateLatency(uint64_t extra_us) const;
  // One dispatch attempt: breaker gate, local resolution, fault injection,
  // simulated latency, handler. `breaker_rejected` is set when the failure
  // came from an open circuit (never retried, costs nothing).
  common::Result<std::string> CallOnce(const std::string& service,
                                       const std::string& request,
                                       bool* breaker_rejected) const;
  // Records an attempt outcome; NotFound is a resolution miss, not a
  // service failure, and is never recorded.
  void RecordOutcome(const std::string& service, bool ok) const;
  // Bumps a counter on the attached registry, if any.
  void Count(const std::string& name, uint64_t delta = 1) const;
  // Sets the per-service breaker-state gauge (0 closed, 1 open, 2 half-open)
  // on the attached registry, if any.
  void SetBreakerGauge(const std::string& service, int64_t state) const;

  mutable common::Mutex mu_;
  std::map<std::string, Handler> services_ WF_GUARDED_BY(mu_);
  mutable std::map<std::string, size_t> call_counts_ WF_GUARDED_BY(mu_);
  std::atomic<uint64_t> simulated_latency_us_{0};
  std::atomic<FaultInjector*> fault_injector_{nullptr};
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};
  std::atomic<obs::Tracer*> tracer_{nullptr};

  mutable common::Mutex breaker_mu_;
  BreakerConfig breaker_config_ WF_GUARDED_BY(breaker_mu_);
  mutable std::map<std::string, Breaker> breakers_ WF_GUARDED_BY(breaker_mu_);

  mutable common::Mutex pool_mu_;  // guards lazy pool construction
  mutable std::unique_ptr<ScatterPool> pool_ WF_GUARDED_BY(pool_mu_);

  // Backoff-jitter sequence; each draw seeds a fresh wf::common::Rng so
  // concurrent retries stay lock-free and reproducible.
  mutable std::atomic<uint64_t> jitter_seq_{0};
};

// --- Wire helpers: the "key=value" line format used over the bus ----------

// Encodes pairs as "k=v" lines. Backslashes and newlines are escaped in
// both keys and values; '=' is additionally escaped in keys, so any byte
// string round-trips through Decode (keys with '=' used to corrupt the
// message silently).
std::string EncodeMessage(
    const std::vector<std::pair<std::string, std::string>>& pairs);
// Decodes; lines without an (unescaped) '=' are skipped.
std::vector<std::pair<std::string, std::string>> DecodeMessage(
    const std::string& message);
// First value for `key`, or empty string.
std::string GetMessageField(const std::string& message,
                            const std::string& key);
// Every value for `key`, in order.
std::vector<std::string> GetMessageFields(const std::string& message,
                                          const std::string& key);

}  // namespace wf::platform

#endif  // WF_PLATFORM_VINCI_H_
