#ifndef WF_PLATFORM_VINCI_H_
#define WF_PLATFORM_VINCI_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace wf::platform {

// In-process stand-in for Vinci, WebFountain's "Web-service style,
// lightweight, high-speed communication protocol" (a SOAP derivative).
// Services register string->string handlers under a name; nodes and
// applications communicate exclusively through Call(), which keeps the
// shared-nothing discipline honest — no component touches another's memory.
//
// Requests and responses use a line-oriented "key=value" wire format (see
// vinci_wire.h helpers) to mimic the serialization boundary of the real
// protocol.
class VinciBus {
 public:
  using Handler = std::function<std::string(const std::string& request)>;

  VinciBus() = default;
  VinciBus(const VinciBus&) = delete;
  VinciBus& operator=(const VinciBus&) = delete;

  // Adds a busy-wait of `microseconds` to every Call(), simulating the
  // network round trip of the real SOAP-derived protocol. 0 disables
  // (default). Scatter/gather costs then scale with fan-out, as they would
  // across racks. Atomic: may be flipped while scattered calls are in
  // flight (CallAll workers read it concurrently).
  void SetSimulatedLatency(uint64_t microseconds) {
    simulated_latency_us_.store(microseconds, std::memory_order_relaxed);
  }

  // Registers a service; AlreadyExists if the name is taken.
  common::Status RegisterService(const std::string& name, Handler handler);
  common::Status UnregisterService(const std::string& name);

  // Synchronous request/response; NotFound for unknown services.
  common::Result<std::string> Call(const std::string& service,
                                   const std::string& request) const;

  // Fan-out: calls every service whose name starts with `prefix`, returning
  // (service, response) pairs — the scatter half of scatter/gather queries.
  std::vector<std::pair<std::string, std::string>> CallAll(
      const std::string& prefix, const std::string& request) const;

  std::vector<std::string> Services() const;
  // Total completed calls (diagnostics).
  size_t CallCount(const std::string& service) const;

 private:
  void SimulateLatency() const;

  mutable std::mutex mu_;
  std::map<std::string, Handler> services_;
  mutable std::map<std::string, size_t> call_counts_;
  std::atomic<uint64_t> simulated_latency_us_{0};
};

// --- Wire helpers: the "key=value" line format used over the bus ----------

// Encodes pairs as "k=v" lines; values are newline-escaped.
std::string EncodeMessage(
    const std::vector<std::pair<std::string, std::string>>& pairs);
// Decodes; unknown lines are skipped.
std::vector<std::pair<std::string, std::string>> DecodeMessage(
    const std::string& message);
// First value for `key`, or empty string.
std::string GetMessageField(const std::string& message,
                            const std::string& key);
// Every value for `key`, in order.
std::vector<std::string> GetMessageFields(const std::string& message,
                                          const std::string& key);

}  // namespace wf::platform

#endif  // WF_PLATFORM_VINCI_H_
