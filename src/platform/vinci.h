#ifndef WF_PLATFORM_VINCI_H_
#define WF_PLATFORM_VINCI_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace wf::obs {
class MetricsRegistry;
class Tracer;
}  // namespace wf::obs

namespace wf::platform {

class FaultInjector;
class HealthScoreboard;

// Per-call resilience knobs for VinciBus::Call. Defaults are a single
// attempt with no deadline — identical to the plain overload.
struct CallOptions {
  // Overall budget across all attempts, in microseconds; 0 means none.
  // Exceeding it returns Status::DeadlineExceeded.
  uint64_t deadline_us = 0;
  // Extra attempts after the first, on retryable failures (Unavailable,
  // Corruption). NotFound and circuit-breaker rejections never retry.
  int max_retries = 0;
  // Exponential backoff between attempts: initial * multiplier^attempt,
  // capped at max, scaled by jitter in [0.5, 1.5) so synchronized callers
  // do not retry in lockstep.
  uint64_t initial_backoff_us = 100;
  uint64_t max_backoff_us = 10000;
  double backoff_multiplier = 2.0;
};

// Tail-tolerance knobs for CallAllHedged (DESIGN.md §14). A hedge is a
// single re-issue of a straggling scatter call after a delay derived from
// the target's observed latency distribution (~p95 via the attached
// HealthScoreboard, `default_delay_us` until it has history). The delay is
// measured from the moment the primary is actually dispatched, not from
// scatter start, so scatter-pool queueing is never mistaken for backend
// slowness. The first success wins; the loser is cancelled by ignoring it.
// Every hedge fire time is clamped to the caller's deadline — a hedge that
// could not finish in budget is never issued — and the per-target delay
// carries seeded
// jitter (hedge verdicts are reproducible per draw, desynchronized across
// targets). Suspect targets (gray-failing per the scoreboard) are never
// hedged — the only replica of a shard service is the sick one, so a
// re-issue would just queue behind the straggler; instead their primaries
// run on a dedicated detached thread (the "sick lane", keeping the shared
// scatter pool clear for healthy shards) and the gather widens its margin
// and abandons them early (see suspect_margin_factor).
struct HedgeOptions {
  bool enabled = false;
  // Hedge delay while a target has no latency history.
  uint64_t default_delay_us = 5000;
  // Clamp bounds for the computed hedge delay.
  uint64_t min_delay_us = 500;
  uint64_t max_delay_us = 100000;
  // Which latency quantile to hedge at (0.95 = hedge the slowest ~5%).
  double delay_quantile = 0.95;
  // A suspect target whose latency EWMA already exceeds the call deadline
  // (a predicted deadline miss — it was going to fail either way) is
  // abandoned (DeadlineExceeded, primary left to finish detached) once it
  // has been in flight `suspect_margin_factor` times the fleet-median
  // quantile latency, clamped to [suspect_min_margin_us, deadline]. This
  // is what keeps one gray node from dragging the whole gather to the
  // deadline on every scatter, without ever dropping a shard the unhedged
  // path would have kept (the byte-identity contract).
  double suspect_margin_factor = 4.0;
  uint64_t suspect_min_margin_us = 2000;
};

// Per-service circuit breaker: after `failure_threshold` consecutive
// failures the circuit opens and calls are rejected immediately (no
// latency, no handler dispatch) — that is what stops a retry storm from
// hammering a sick node. After `open_rejections` fast-rejections the next
// call is let through as a half-open probe: success closes the circuit,
// failure re-opens it for another rejection window. Counting calls rather
// than wall time keeps chaos runs deterministic.
struct BreakerConfig {
  size_t failure_threshold = 5;
  size_t open_rejections = 8;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

// In-process stand-in for Vinci, WebFountain's "Web-service style,
// lightweight, high-speed communication protocol" (a SOAP derivative).
// Services register string->string handlers under a name; nodes and
// applications communicate exclusively through Call(), which keeps the
// shared-nothing discipline honest — no component touches another's memory.
//
// Requests and responses use a line-oriented "key=value" wire format (see
// the helpers below) to mimic the serialization boundary of the real
// protocol.
//
// Failure semantics mirror a real cluster bus: an attached FaultInjector
// can drop, delay, or corrupt calls; Call() with CallOptions retries with
// exponential backoff under a deadline; a per-service circuit breaker
// sheds load from services that keep failing. Service resolution is local
// (a registry lookup), so a NotFound miss costs no simulated round trip.
class VinciBus {
 public:
  using Handler = std::function<std::string(const std::string& request)>;

  VinciBus();
  ~VinciBus();
  VinciBus(const VinciBus&) = delete;
  VinciBus& operator=(const VinciBus&) = delete;

  // Adds a busy-wait of `microseconds` to every Call(), simulating the
  // network round trip of the real SOAP-derived protocol. 0 disables
  // (default). Scatter/gather costs then scale with fan-out, as they would
  // across racks. Atomic: may be flipped while scattered calls are in
  // flight (CallAll workers read it concurrently).
  void SetSimulatedLatency(uint64_t microseconds) {
    simulated_latency_us_.store(microseconds, std::memory_order_relaxed);
  }

  // Attaches a chaos source consulted on every dispatch; nullptr detaches.
  // Quiescing: returns only after every dispatch that may have observed the
  // previous pointer has finished, so the caller may destroy the old
  // injector the moment this returns — hedged scatters leave detached
  // straggler tasks running past CallAllHedged's return
  // (cancel-by-ignore), and without the quiesce a straggler could consult
  // an injector its owner already destroyed. Do not call under sustained
  // dispatch load from other threads; it waits for an idle instant.
  void AttachFaultInjector(FaultInjector* injector);

  // Attaches a metrics registry; every dispatch then records per-service
  // call/failure counters, breaker transitions, retry counts, and latency
  // histograms (see DESIGN.md §8 for the naming scheme). nullptr detaches.
  // Quiescing, like AttachFaultInjector.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  // Attaches a health scoreboard; every dispatched call then feeds its
  // observed latency and outcome into it (successes, injected faults,
  // corruptions, and in-flight deadline expiries — the gray-failure
  // signature). CallAllHedged consults it for hedge timing and suspect
  // judgments. nullptr detaches. Quiescing, like AttachFaultInjector.
  void AttachHealth(HealthScoreboard* health);

  // Attaches a tracer; a dispatched call whose request carries trace
  // context (obs::kTraceIdKey / obs::kSpanIdKey fields) then records a
  // client-side child span named after the target service, stitching a
  // scatter into one parent/child trace. Requests without context trace
  // nothing. nullptr detaches. Quiescing, like AttachFaultInjector.
  void AttachTracer(obs::Tracer* tracer);

  // Joins the scatter pool (queued-but-unstarted detached tasks are
  // dropped) and waits for in-flight dispatches to drain. After this no
  // task of this bus can touch a handler, attachment, or metric. Called by
  // the destructor; owners embedding the bus next to the state its
  // handlers capture (Cluster) call it first so stragglers cannot outlive
  // that state.
  void Shutdown();

  // Registers a service; AlreadyExists if the name is taken.
  common::Status RegisterService(const std::string& name, Handler handler);
  common::Status UnregisterService(const std::string& name);

  // Synchronous request/response; NotFound for unknown services (resolved
  // locally, before any simulated network cost), Unavailable for injected
  // failures / partitions / an open circuit, Corruption for responses that
  // fail the simulated end-to-end checksum.
  common::Result<std::string> Call(const std::string& service,
                                   const std::string& request) const;

  // Resilient variant: retries retryable failures with exponential backoff
  // and jitter, under an overall deadline (DeadlineExceeded once spent).
  common::Result<std::string> Call(const std::string& service,
                                   const std::string& request,
                                   const CallOptions& options) const;

  // Fan-out: calls every service whose name starts with `prefix`, returning
  // per-service Results — the scatter half of scatter/gather queries. A
  // failed target reports its error instead of poisoning the whole gather,
  // so callers can tell "node down" from "empty answer". Scatter runs on a
  // small reusable worker pool (plus the calling thread), so a wide fan-out
  // under injected latency is bounded, never thread-per-target.
  std::vector<std::pair<std::string, common::Result<std::string>>> CallAll(
      const std::string& prefix, const std::string& request) const;
  // Resilient scatter: each target call runs under `options` (deadline,
  // retries with backoff), so a straggler shard costs at most the caller's
  // remaining budget, never an unbounded wait. Default options behave
  // exactly like the plain overload.
  std::vector<std::pair<std::string, common::Result<std::string>>> CallAll(
      const std::string& prefix, const std::string& request,
      const CallOptions& options) const;

  // Tail-tolerant scatter: like the resilient CallAll, but a straggling
  // target is re-issued once after a deadline-clamped, health-derived hedge
  // delay (first success wins, loser ignored), and the gather stops waiting
  // for a target at the caller's deadline — or earlier for suspect targets
  // — instead of riding out the straggler's full latency. Hedge attempts
  // are single-shot and breaker-neutral: they never feed the circuit
  // breaker, never consume its rejection window, and never count in
  // `vinci/retry_total` / `vinci/retries_per_call`; their audit trail is
  // `vinci/hedges_total`, `vinci/hedge_wins_total`, and
  // `vinci/hedge_abandoned_total`. With `hedge.enabled == false` this is
  // exactly CallAll(prefix, request, options).
  std::vector<std::pair<std::string, common::Result<std::string>>>
  CallAllHedged(const std::string& prefix, const std::string& request,
                const CallOptions& options, const HedgeOptions& hedge) const;

  // Circuit-breaker controls. Config applies to every service on this bus.
  void SetBreakerConfig(const BreakerConfig& config);
  BreakerState breaker_state(const std::string& service) const;
  // Force-closes every breaker (e.g. after an operator heals a partition).
  void ResetBreakers();

  std::vector<std::string> Services() const;
  // Total completed calls (diagnostics).
  size_t CallCount(const std::string& service) const;

 private:
  class ScatterPool;
  struct Breaker {
    size_t consecutive_failures = 0;
    bool open = false;
    size_t rejections = 0;  // fast-rejections since the circuit opened
  };

  void SimulateLatency(uint64_t extra_us) const;
  // One dispatch attempt: breaker gate, local resolution, fault injection,
  // simulated latency, handler. `breaker_rejected` is set when the failure
  // came from an open circuit (never retried, costs nothing). With
  // `feed_breaker == false` (hedge attempts) the breaker is read-only: an
  // open circuit still refuses the call, but the attempt neither consumes
  // the rejection window nor feeds the failure streak — a hedged scatter
  // must leave the breaker state machine exactly as the unhedged one.
  common::Result<std::string> CallOnce(const std::string& service,
                                       const std::string& request,
                                       bool* breaker_rejected,
                                       bool feed_breaker = true) const;
  ScatterPool* EnsurePool() const WF_EXCLUDES(pool_mu_);
  // RAII over active_dispatches_: every CallOnce body runs inside one, and
  // the guard is entered before any attachment pointer is loaded, so
  // QuiesceDispatches() really does fence off the old pointer.
  class DispatchGuard {
   public:
    explicit DispatchGuard(const VinciBus& bus);
    ~DispatchGuard();
    DispatchGuard(const DispatchGuard&) = delete;
    DispatchGuard& operator=(const DispatchGuard&) = delete;

   private:
    const VinciBus& bus_;
  };
  // Blocks until no dispatch is in flight (see AttachFaultInjector).
  void QuiesceDispatches() const;
  // Records an attempt outcome; NotFound is a resolution miss, not a
  // service failure, and is never recorded.
  void RecordOutcome(const std::string& service, bool ok) const;
  // Bumps a counter on the attached registry, if any.
  void Count(const std::string& name, uint64_t delta = 1) const;
  // Sets the per-service breaker-state gauge (0 closed, 1 open, 2 half-open)
  // on the attached registry, if any.
  void SetBreakerGauge(const std::string& service, int64_t state) const;

  mutable common::Mutex mu_;
  std::map<std::string, Handler> services_ WF_GUARDED_BY(mu_);
  mutable std::map<std::string, size_t> call_counts_ WF_GUARDED_BY(mu_);
  std::atomic<uint64_t> simulated_latency_us_{0};
  std::atomic<FaultInjector*> fault_injector_{nullptr};
  std::atomic<obs::MetricsRegistry*> metrics_{nullptr};
  std::atomic<obs::Tracer*> tracer_{nullptr};
  std::atomic<HealthScoreboard*> health_{nullptr};

  mutable common::Mutex breaker_mu_;
  BreakerConfig breaker_config_ WF_GUARDED_BY(breaker_mu_);
  mutable std::map<std::string, Breaker> breakers_ WF_GUARDED_BY(breaker_mu_);

  mutable common::Mutex pool_mu_;  // guards lazy pool construction
  mutable std::unique_ptr<ScatterPool> pool_ WF_GUARDED_BY(pool_mu_);

  // Backoff-jitter sequence; each draw seeds a fresh wf::common::Rng so
  // concurrent retries stay lock-free and reproducible.
  mutable std::atomic<uint64_t> jitter_seq_{0};
  // Hedge-delay jitter sequence, same scheme: every hedge verdict is a
  // seeded draw, never an unseeded RNG.
  mutable std::atomic<uint64_t> hedge_seq_{0};

  // Count of dispatches currently inside CallOnce; the quiescing
  // attachment setters wait for it to reach zero after swapping a pointer.
  mutable common::Mutex dispatch_mu_;
  mutable std::condition_variable_any dispatch_cv_;
  mutable uint64_t active_dispatches_ WF_GUARDED_BY(dispatch_mu_) = 0;
};

// --- Wire helpers: the "key=value" line format used over the bus ----------

// Encodes pairs as "k=v" lines. Backslashes and newlines are escaped in
// both keys and values; '=' is additionally escaped in keys, so any byte
// string round-trips through Decode (keys with '=' used to corrupt the
// message silently).
std::string EncodeMessage(
    const std::vector<std::pair<std::string, std::string>>& pairs);
// Decodes; lines without an (unescaped) '=' are skipped.
std::vector<std::pair<std::string, std::string>> DecodeMessage(
    const std::string& message);
// First value for `key`, or empty string.
std::string GetMessageField(const std::string& message,
                            const std::string& key);
// Every value for `key`, in order.
std::vector<std::string> GetMessageFields(const std::string& message,
                                          const std::string& key);

}  // namespace wf::platform

#endif  // WF_PLATFORM_VINCI_H_
