#ifndef WF_PLATFORM_DATA_STORE_H_
#define WF_PLATFORM_DATA_STORE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "platform/entity.h"
#include "store/lsm.h"

namespace wf::platform {

// One node's entity store (§2: "The data store stores, modifies, and
// retrieves entities"). Thread-safe.
//
// Since PR 8 the store is an adapter over store::LsmTree: entities are
// serialized records keyed by id in a memtable over immutable sorted
// segment files (DESIGN.md §13). By default the tree is ephemeral (pure
// in-memory, the old behavior); EnableSegments switches on the durable
// tiers, after which a full memtable flushes to a segment automatically
// and Flush() is the checkpoint operation. Reads and sweeps merge the
// tiers newest-first, so callers never see the difference.
class DataStore {
 public:
  DataStore() = default;
  DataStore(const DataStore&) = delete;
  DataStore& operator=(const DataStore&) = delete;

  // Registers store/* metrics (memtable bytes, segments per tier, flush
  // and compaction counters/latency, read amplification) on `metrics`.
  void AttachMetrics(const obs::MetricsRegistry* metrics);

  // Switches to segment mode rooted at `dir` (files `<base>-<id>.wfseg`
  // plus `<base>.manifest`), loading any existing manifest and segment
  // runs. Corruption when a file fails its checksum. Must be called
  // before the store holds data.
  common::Status EnableSegments(const std::string& dir,
                                const std::string& base,
                                const store::LsmOptions& options = {},
                                common::StorageFaultInjector* injector =
                                    nullptr);
  bool segmented() const { return lsm_.segmented(); }

  // Flushes the memtable tier to a new segment and compacts; the
  // checkpoint operation in segment mode.
  common::Status Flush() { return lsm_.Flush(); }

  // Inserts a new entity; AlreadyExists if the id is taken.
  common::Status Put(Entity entity);
  // Inserts or replaces. The error surface is the segment flush a full
  // memtable triggers — the entity itself is always accepted.
  common::Status Upsert(Entity entity);
  // NotFound when absent.
  common::Result<Entity> Get(const std::string& id) const;
  bool Contains(const std::string& id) const;
  common::Status Delete(const std::string& id);

  // Applies `fn` to the stored entity under the store lock (the way miners
  // augment entities in place). NotFound when absent.
  common::Status Update(const std::string& id,
                        const std::function<void(Entity&)>& fn);

  // Applies `fn` to every live entity in sorted-id order, streaming one
  // deserialized entity at a time (under the lock; `fn` must not call
  // back into the store).
  void ForEach(const std::function<void(const Entity&)>& fn) const;
  // Mutable sweep, for corpus-level miners: read-modify-writes every
  // entity by id, so rewritten records land in the memtable tier.
  common::Status ForEachMutable(const std::function<void(Entity&)>& fn);

  size_t size() const;

  // All ids in sorted order. Reads only the in-RAM key indexes — no
  // entity record is materialized, whatever the store size.
  std::vector<std::string> Ids() const;

  // Copies of every entity, sorted by id — the canonical sweep order the
  // deterministic mining path processes and commits in. Materializes the
  // whole store; prefer ForEach for streaming sweeps.
  std::vector<Entity> SnapshotSorted() const;

  // Snapshot persistence. Save writes the merged logical image (every
  // live entity, sorted by id) atomically under the checksummed `wfsnap
  // store` envelope — a pure function of the store's contents, so shards
  // with different segment layouts but equal data save identical bytes.
  // Load replaces the contents and is ephemeral-mode only
  // (FailedPrecondition in segment mode, where the manifest owns disk
  // state); it rejects anything that does not verify with Corruption.
  common::Status Save(const std::string& path,
                      common::StorageFaultInjector* injector = nullptr) const;
  common::Status Load(const std::string& path);

  // Segment-mode introspection (0 / empty when ephemeral).
  size_t segment_count() const { return lsm_.segment_count(); }
  uint64_t memtable_bytes() const { return lsm_.memtable_bytes(); }
  uint64_t flushes() const { return lsm_.flushes(); }
  uint64_t compactions() const { return lsm_.compactions(); }

 private:
  store::LsmTree lsm_;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_DATA_STORE_H_
