#ifndef WF_PLATFORM_DATA_STORE_H_
#define WF_PLATFORM_DATA_STORE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/durable_file.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "platform/entity.h"

namespace wf::platform {

// One node's entity store (§2: "The data store stores, modifies, and
// retrieves entities"). Thread-safe. Persistence is a line-oriented
// snapshot file with length-prefixed entity records, so a cluster can be
// saved and re-loaded between runs.
class DataStore {
 public:
  DataStore() = default;
  DataStore(const DataStore&) = delete;
  DataStore& operator=(const DataStore&) = delete;

  // Inserts a new entity; AlreadyExists if the id is taken.
  common::Status Put(Entity entity);
  // Inserts or replaces.
  void Upsert(Entity entity);
  // NotFound when absent.
  common::Result<Entity> Get(const std::string& id) const;
  bool Contains(const std::string& id) const;
  common::Status Delete(const std::string& id);

  // Applies `fn` to the stored entity under the store lock (the way miners
  // augment entities in place). NotFound when absent.
  common::Status Update(const std::string& id,
                        const std::function<void(Entity&)>& fn);

  // Applies `fn` to every entity (under the lock; `fn` must not call back
  // into the store). Iteration order is unspecified.
  void ForEach(const std::function<void(const Entity&)>& fn) const;
  // Mutable sweep, for corpus-level miners.
  void ForEachMutable(const std::function<void(Entity&)>& fn);

  size_t size() const;

  // All ids, unsorted.
  std::vector<std::string> Ids() const;

  // Copies of every entity, sorted by id — the canonical sweep order the
  // deterministic mining path processes and commits in.
  std::vector<Entity> SnapshotSorted() const;

  // Snapshot persistence. Save writes atomically (temp file + rename)
  // under the checksummed `wfsnap store` envelope; a crash mid-save leaves
  // the previous snapshot intact. Load rejects anything that does not
  // verify — truncation, a flipped bit, the wrong kind — with Corruption;
  // a missing file is IOError. `injector` (optional) threads storage
  // fault injection through the write path.
  common::Status Save(const std::string& path,
                      common::StorageFaultInjector* injector = nullptr) const;
  common::Status Load(const std::string& path);

 private:
  mutable common::Mutex mu_;
  std::unordered_map<std::string, Entity> entities_ WF_GUARDED_BY(mu_);
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_DATA_STORE_H_
