#ifndef WF_PLATFORM_HEALTH_H_
#define WF_PLATFORM_HEALTH_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace wf::obs {
class MetricsRegistry;
}  // namespace wf::obs

namespace wf::platform {

// Knobs for the health scoreboard. Defaults follow the usual EWMA folklore:
// latency reacts faster than the error score (a single slow call is signal,
// a single failure is noise), and a service is only judged once it has a
// minimum sample history so cold services are never "suspect" by accident.
struct HealthOptions {
  // EWMA smoothing factors in (0, 1]; higher = reacts faster.
  double latency_alpha = 0.2;
  double error_alpha = 0.1;
  // A service whose failure EWMA crosses this is suspect.
  double suspect_error_score = 0.5;
  // A service whose latency EWMA exceeds this multiple of the fleet median
  // latency EWMA is suspect (the gray-failure signature: still answering,
  // just far slower than its peers).
  double suspect_latency_factor = 4.0;
  // Judgments (Suspect, LatencyQuantileUs) need at least this many samples.
  uint64_t min_samples = 8;
};

// Point-in-time view of one service's health.
struct ServiceHealth {
  double ewma_latency_us = 0.0;
  double error_score = 0.0;  // EWMA of failure indicator, in [0, 1]
  uint64_t samples = 0;
};

// Per-service health scoreboard fed by every bus call (DESIGN.md §14).
// Tracks an EWMA latency, an EWMA error score, and a bucketed latency
// distribution per service, so serving-path policies can ask two questions
// cheaply: "when should I hedge against this service?" (its ~p95) and "is
// this node gray-failing?" (Suspect). Lock-striped by service name, like
// the metrics registry, so concurrent scatters rarely contend.
//
// Determinism note: the scoreboard is fed wall-clock latencies, so its
// numbers are inherently nondeterministic. It therefore never writes into a
// MetricsRegistry on the record path — gauges appear only when a caller
// explicitly asks via Publish(), which keeps deterministic golden exports
// (ExportOptions::include_timings = false) byte-stable for components that
// merely carry a scoreboard without consulting it.
class HealthScoreboard {
 public:
  explicit HealthScoreboard(const HealthOptions& options = {});
  HealthScoreboard(const HealthScoreboard&) = delete;
  HealthScoreboard& operator=(const HealthScoreboard&) = delete;

  // Records one call outcome. `latency_us` is the caller-observed duration;
  // `ok` is false for failures attributable to the service (injected
  // faults, corruption, deadline expiry inside the call).
  void RecordCall(const std::string& service, uint64_t latency_us, bool ok);

  // Zero-initialized when the service has never been seen.
  ServiceHealth Snapshot(const std::string& service) const;

  // Upper bound of the bucket holding the q-th latency quantile for the
  // service, or `fallback_us` while it has fewer than min_samples samples.
  uint64_t LatencyQuantileUs(const std::string& service, double q,
                             uint64_t fallback_us) const;

  // The fleet's notion of a normal q-quantile: the median of per-service
  // q-quantiles across services with enough samples (robust against one
  // sick node dragging the aggregate). `fallback_us` when no service
  // qualifies yet.
  uint64_t FleetLatencyQuantileUs(double q, uint64_t fallback_us) const;

  // True when the service has min_samples history and either its error
  // score crossed suspect_error_score or its latency EWMA exceeds
  // suspect_latency_factor times the fleet median latency EWMA.
  bool Suspect(const std::string& service) const;

  // Sorted names of every service with at least one recorded call.
  std::vector<std::string> Services() const;

  // Exports per-service gauges into `metrics`:
  //   health/ewma_latency_us/<service>
  //   health/error_score_pct/<service>   (score * 100, rounded)
  //   health/suspect/<service>           (0 or 1)
  // Callers opt in per snapshot because these values are wall-clock-fed
  // (see the determinism note above). No-op on nullptr. Const registry, as
  // recording is logically read-only on it (its Get* are const).
  void Publish(const obs::MetricsRegistry* metrics) const;

  const HealthOptions& options() const { return options_; }

 private:
  struct Entry {
    ServiceHealth health;
    // Latency distribution over obs::DefaultLatencyBoundsUs() (+ overflow),
    // kept here rather than in a registry so quantile reads need no metric
    // plumbing and stay off the deterministic export path.
    std::vector<uint64_t> bucket_counts;
  };
  struct Stripe {
    mutable common::Mutex mu;
    std::map<std::string, Entry> services WF_GUARDED_BY(mu);
  };
  static constexpr size_t kStripes = 8;

  Stripe& StripeFor(const std::string& service) const;
  // Median latency EWMA across services with min_samples history; 0 when
  // none qualify.
  double FleetEwmaMedianUs() const;

  const HealthOptions options_;
  mutable std::array<Stripe, kStripes> stripes_;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_HEALTH_H_
