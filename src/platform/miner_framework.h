#ifndef WF_PLATFORM_MINER_FRAMEWORK_H_
#define WF_PLATFORM_MINER_FRAMEWORK_H_

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "platform/data_store.h"
#include "platform/entity.h"

namespace wf::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace wf::obs

namespace wf::platform {

// Entity-level miner (§2): processes one entity at a time, with no
// information from neighboring entities, typically augmenting it with
// annotations or conceptual tokens. Examples in the paper: tokenizer,
// geographic-context discoverer, named-entity extractor — and the sentiment
// miner itself.
class EntityMiner {
 public:
  virtual ~EntityMiner() = default;
  virtual std::string name() const = 0;
  virtual common::Status Process(Entity& entity) = 0;
};

// Corpus-level miner (§2): needs all or part of the data in store
// (aggregate statistics, duplicate detection, trending...).
class CorpusMiner {
 public:
  virtual ~CorpusMiner() = default;
  virtual std::string name() const = 0;
  virtual common::Status Run(DataStore& store) = 0;
};

// A chain of entity-level miners applied in registration order, with
// per-miner counters — the unit of deployment a node runs over its shard.
//
// A miner that keeps failing is quarantined: after `quarantine_threshold`
// consecutive failures it is skipped for the rest of the sweep instead of
// failing every remaining entity (one broken plugin must not poison a
// whole shard's mining pass). Quarantine state is visible in MinerStats
// and cleared with ClearQuarantines() once the plugin is fixed.
class MinerPipeline {
 public:
  struct MinerStats {
    std::string name;
    size_t entities = 0;
    size_t failures = 0;
    std::chrono::microseconds total_time{0};
    size_t consecutive_failures = 0;
    bool quarantined = false;
  };

  // Consecutive failures before a miner is quarantined (default; override
  // per pipeline with SetQuarantineThreshold, 0 disables).
  static constexpr size_t kDefaultQuarantineThreshold = 16;

  void AddMiner(std::unique_ptr<EntityMiner> miner);

  // Attaches a metrics registry: per-miner stage timings, entity/failure
  // counters, and quarantine events are then mirrored to it under
  // miner/<name>/... (DESIGN.md §8). Handles are resolved once per miner,
  // so the per-entity hot path costs two counter bumps and one histogram
  // record. Configuration, not data-path: attach before processing starts.
  // The registry must outlive this pipeline; nullptr detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  // Runs every non-quarantined miner over the entity, in order. Stops at
  // (and returns) the first failure; quarantined miners are skipped.
  common::Status ProcessEntity(Entity& entity);

  // Runs the pipeline over every entity in the store; failures are counted
  // but do not stop the sweep.
  void ProcessStore(DataStore& store);

  // Safe to call while ProcessEntity/ProcessStore run on another thread
  // (e.g. a stats RPC during a mining sweep); returns a consistent copy.
  std::vector<MinerStats> Stats() const;
  size_t miner_count() const { return miners_.size(); }

  // Quarantine controls. Configuration, not data-path: set the threshold
  // before processing starts.
  void SetQuarantineThreshold(size_t threshold) {
    quarantine_threshold_ = threshold;
  }
  size_t quarantine_threshold() const { return quarantine_threshold_; }
  // Lifts every quarantine and resets the failure streaks (e.g. after the
  // faulty dependency recovers).
  void ClearQuarantines();

 private:
  // Pre-resolved registry handles for one miner (null when no registry is
  // attached).
  struct MinerMetrics {
    obs::Counter* entities = nullptr;
    obs::Counter* failures = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Histogram* stage_us = nullptr;
  };

  MinerMetrics ResolveMetrics(const std::string& miner_name) const;

  std::vector<std::unique_ptr<EntityMiner>> miners_;
  size_t quarantine_threshold_ = kDefaultQuarantineThreshold;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<MinerMetrics> metric_handles_;  // parallel to miners_
  // Guards stats_. AddMiner is configuration, not data-path: it must not
  // run concurrently with processing (miners_ itself is unguarded).
  mutable std::mutex stats_mu_;
  std::vector<MinerStats> stats_;
};

// --- Built-in entity miners --------------------------------------------------

// Annotates sentence boundaries in the body ("sentences" layer).
class SentenceBoundaryMiner : public EntityMiner {
 public:
  std::string name() const override { return "sentence_boundary"; }
  common::Status Process(Entity& entity) override;
};

// Adds lowercase token counts as a "token_count" field (a tiny stand-in for
// the paper's tokenizer miner; real token streams are recomputed on demand
// by consumers, which is cheaper than persisting them).
class TokenStatsMiner : public EntityMiner {
 public:
  std::string name() const override { return "token_stats"; }
  common::Status Process(Entity& entity) override;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_MINER_FRAMEWORK_H_
