#ifndef WF_PLATFORM_MINER_FRAMEWORK_H_
#define WF_PLATFORM_MINER_FRAMEWORK_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/analysis.h"
#include "platform/data_store.h"
#include "platform/entity.h"

namespace wf::obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace wf::obs

namespace wf::platform {

class MineExecutor;

// Per-entity context the pipeline hands to every miner in the chain: the
// shared linguistic-analysis artifact, computed (or cache-fetched) once so
// plugins stop re-running the identical tokenize→tag→parse front end.
// `analysis` is null when no miner in the pipeline asked for it (see
// EntityMiner::wants_analysis) or the entity has an empty body.
struct MineContext {
  std::shared_ptr<const core::LinguisticAnalysis> analysis;
};

// Entity-level miner (§2): processes one entity at a time, with no
// information from neighboring entities, typically augmenting it with
// annotations or conceptual tokens. Examples in the paper: tokenizer,
// geographic-context discoverer, named-entity extractor — and the sentiment
// miner itself.
class EntityMiner {
 public:
  virtual ~EntityMiner() = default;
  virtual std::string name() const = 0;
  virtual common::Status Process(Entity& entity) = 0;

  // Context-aware entry point; the default ignores the context, so legacy
  // miners keep working unchanged. Miners that consume the shared analysis
  // override this (and wants_analysis) instead of re-parsing the body.
  virtual common::Status Process(Entity& entity, const MineContext& context) {
    (void)context;
    return Process(entity);
  }

  // True when Process reads context.analysis — the pipeline only pays for
  // the artifact when some active miner wants it.
  virtual bool wants_analysis() const { return false; }

  // True when Process may run concurrently with Process on *other*
  // entities (never the same one). Miners with cross-document state (e.g.
  // incrementally built corpus statistics) must return false; the pipeline
  // then falls back to the sequential sweep.
  virtual bool parallel_safe() const { return true; }
};

// Corpus-level miner (§2): needs all or part of the data in store
// (aggregate statistics, duplicate detection, trending...).
class CorpusMiner {
 public:
  virtual ~CorpusMiner() = default;
  virtual std::string name() const = 0;
  virtual common::Status Run(DataStore& store) = 0;

  // Provider-aware entry point: implementations that tokenize every body
  // override this and fetch shared artifacts instead. Default ignores the
  // provider.
  virtual common::Status Run(DataStore& store,
                             core::AnalysisProvider* provider) {
    (void)provider;
    return Run(store);
  }
};

// A chain of entity-level miners applied in registration order, with
// per-miner counters — the unit of deployment a node runs over its shard.
//
// A miner that keeps failing is quarantined: after `quarantine_threshold`
// consecutive failures it is skipped instead of failing every remaining
// entity (one broken plugin must not poison a whole shard's mining pass).
// Quarantine state is visible in MinerStats and cleared with
// ClearQuarantines() once the plugin is fixed.
//
// Determinism contract for ProcessStore (DESIGN.md §10): the sweep is a
// pure function of (store contents, pipeline configuration), independent
// of thread count and scheduling. Entities are snapshotted in sorted-id
// order, each entity's full miner chain runs on exactly one thread (so
// per-entity effects like concept-token order are chain-ordered), results
// are committed back in sorted-id order on the calling thread, and failure
// streaks/quarantine trips are replayed in that same canonical order.
// Quarantine is evaluated at sweep boundaries: miners quarantined when the
// sweep starts are skipped throughout; a streak that crosses the threshold
// during the sweep trips quarantine for subsequent sweeps (and for direct
// ProcessEntity calls, which keep the original online semantics).
class MinerPipeline {
 public:
  struct MinerStats {
    std::string name;
    size_t entities = 0;
    size_t failures = 0;
    std::chrono::microseconds total_time{0};
    size_t consecutive_failures = 0;
    bool quarantined = false;
  };

  // Consecutive failures before a miner is quarantined (default; override
  // per pipeline with SetQuarantineThreshold, 0 disables).
  static constexpr size_t kDefaultQuarantineThreshold = 16;

  void AddMiner(std::unique_ptr<EntityMiner> miner);

  // Attaches a metrics registry: per-miner stage timings, entity/failure
  // counters, and quarantine events are then mirrored to it under
  // miner/<name>/... (DESIGN.md §8). Handles are resolved once per miner,
  // so the per-entity hot path costs two counter bumps and one histogram
  // record. Configuration, not data-path: attach before processing starts.
  // The registry must outlive this pipeline; nullptr detaches.
  void AttachMetrics(obs::MetricsRegistry* metrics);

  // Source of shared linguistic-analysis artifacts for miners that want
  // them (typically a node's AnalysisCache); nullptr (the default) makes
  // the pipeline compute a fresh artifact per entity instead. The provider
  // must outlive this pipeline. Configuration, not data-path.
  void SetAnalysisProvider(core::AnalysisProvider* provider) {
    analysis_provider_ = provider;
  }
  core::AnalysisProvider* analysis_provider() const {
    return analysis_provider_;
  }

  // Runs every non-quarantined miner over the entity, in order. Stops at
  // (and returns) the first failure; quarantined miners are skipped.
  common::Status ProcessEntity(Entity& entity);

  // Runs the pipeline over every entity in the store (sequentially, but
  // under the deterministic sweep contract above); failures are counted
  // but do not stop the sweep.
  void ProcessStore(DataStore& store);
  // Same sweep with per-entity work scheduled on `executor` when every
  // active miner is parallel_safe() (sequential fallback otherwise).
  // Output is byte-identical to the sequential sweep. nullptr executor ==
  // ProcessStore(store).
  void ProcessStore(DataStore& store, MineExecutor* executor);

  // Safe to call while ProcessEntity/ProcessStore run on another thread
  // (e.g. a stats RPC during a mining sweep); returns a consistent copy.
  std::vector<MinerStats> Stats() const;
  size_t miner_count() const { return miners_.size(); }

  // Quarantine controls. Configuration, not data-path: set the threshold
  // before processing starts.
  void SetQuarantineThreshold(size_t threshold) {
    quarantine_threshold_ = threshold;
  }
  size_t quarantine_threshold() const { return quarantine_threshold_; }
  // Lifts every quarantine and resets the failure streaks (e.g. after the
  // faulty dependency recovers).
  void ClearQuarantines();

 private:
  // Pre-resolved registry handles for one miner (null when no registry is
  // attached).
  struct MinerMetrics {
    obs::Counter* entities = nullptr;
    obs::Counter* failures = nullptr;
    obs::Counter* quarantined = nullptr;
    obs::Histogram* stage_us = nullptr;
  };

  // Per-(entity, miner) outcome of one sweep, replayed in canonical order
  // to update streaks/quarantine identically at every thread count.
  enum class StepOutcome : uint8_t { kNotRun = 0, kOk, kFailed };

  MinerMetrics ResolveMetrics(const std::string& miner_name) const;
  MineContext BuildContext(const Entity& entity, bool need_analysis) const;

  std::vector<std::unique_ptr<EntityMiner>> miners_;
  size_t quarantine_threshold_ = kDefaultQuarantineThreshold;
  obs::MetricsRegistry* metrics_ = nullptr;
  core::AnalysisProvider* analysis_provider_ = nullptr;
  std::vector<MinerMetrics> metric_handles_;  // parallel to miners_
  // Guards stats_. AddMiner is configuration, not data-path: it must not
  // run concurrently with processing (miners_ itself is unguarded).
  mutable common::Mutex stats_mu_;
  std::vector<MinerStats> stats_ WF_GUARDED_BY(stats_mu_);
};

// --- Built-in entity miners --------------------------------------------------

// Annotates sentence boundaries in the body ("sentences" layer).
class SentenceBoundaryMiner : public EntityMiner {
 public:
  std::string name() const override { return "sentence_boundary"; }
  common::Status Process(Entity& entity) override;
  common::Status Process(Entity& entity, const MineContext& context) override;
  bool wants_analysis() const override { return true; }
};

// Adds lowercase token counts as a "token_count" field (a tiny stand-in for
// the paper's tokenizer miner; real token streams are recomputed on demand
// by consumers, which is cheaper than persisting them).
class TokenStatsMiner : public EntityMiner {
 public:
  std::string name() const override { return "token_stats"; }
  common::Status Process(Entity& entity) override;
  common::Status Process(Entity& entity, const MineContext& context) override;
  bool wants_analysis() const override { return true; }
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_MINER_FRAMEWORK_H_
