#ifndef WF_PLATFORM_CLUSTER_H_
#define WF_PLATFORM_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/durable_file.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/logging.h"
#include "common/hash.h"
#include "common/status.h"
#include "core/analysis.h"
#include "obs/metrics.h"
#include "platform/data_store.h"
#include "platform/deadline.h"
#include "platform/health.h"
#include "platform/indexer.h"
#include "platform/mine_executor.h"
#include "platform/miner_framework.h"
#include "platform/vinci.h"
#include "platform/wal.h"

namespace wf::obs {
class Tracer;
}  // namespace wf::obs

namespace wf::platform {

// One node of the simulated shared-nothing cluster: its own data-store
// shard, index shard, and miner pipeline. Other components reach it only
// through its Vinci services:
//   node/<id>/search   request: term=<t> [mode=term|concept|phrase]
//                      response: doc=<id> per hit
//   node/<id>/stats    response: entities=<n>, vocabulary=<n>
//   node/<id>/fetch    request: id=<doc>  response: serialized entity
//   wfstats/node/<id>  request: [format=wire|text|json]
//                      response: node=<id>, format=<f>, stats=<export>
// (wfstats lives outside the node/ prefix so query scatters never hit it.)
class ClusterNode {
 public:
  explicit ClusterNode(size_t id) : id_(id) {
    pipeline_.AttachMetrics(&metrics_);
    analysis_cache_.AttachMetrics(&metrics_);
    pipeline_.SetAnalysisProvider(&analysis_cache_);
    store_.AttachMetrics(&metrics_);
    index_.AttachMetrics(&metrics_);
  }
  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  size_t id() const { return id_; }
  DataStore& store() { return store_; }
  const DataStore& store() const { return store_; }
  InvertedIndex& index() { return index_; }
  const InvertedIndex& index() const { return index_; }
  MinerPipeline& pipeline() { return pipeline_; }
  // This node's private registry (shared-nothing: shards never share
  // metrics; roll-ups go through Cluster::CollectStats over the bus).
  obs::MetricsRegistry& metrics() { return metrics_; }
  // The node's shared linguistic-analysis cache (the pipeline's provider):
  // mining computes each entity's artifact once, indexing and re-mines hit.
  core::AnalysisCache& analysis_cache() { return analysis_cache_; }

  // Runs the miner pipeline over the shard, then (re)indexes every entity
  // in sorted-id order (deterministic sweep, DESIGN.md §10). With an
  // executor, per-entity mining is scheduled across its workers; output is
  // byte-identical to the sequential sweep.
  void MineAndIndex();
  void MineAndIndex(MineExecutor* executor);

  // Registers this node's services on the bus.
  common::Status RegisterServices(VinciBus* bus);
  // Withdraws them (node crash / decommission). Missing registrations are
  // ignored so a double-crash is harmless.
  void UnregisterServices(VinciBus* bus);

  std::string ServiceName(const std::string& suffix) const;
  // The node's live-stats service, outside the node/ scatter prefix.
  std::string StatsServiceName() const;

  // --- Durability ---------------------------------------------------------
  // Opens the node's write-ahead log under `dir` (node-<id>.wal) and
  // switches the store and index to segment mode there (node-<id>.store*
  // and node-<id>.idx* segment runs + manifests, DESIGN.md §13), loading
  // whatever segments the directory already holds. Once enabled, Ingest()
  // appends to the WAL before acking, and every `checkpoint_every_appends`
  // acked writes trigger an automatic checkpoint (0 = manual only).
  // `lsm_options` shapes the store's memtable ceiling and both tiers'
  // compaction. `injector` (optional) threads storage fault injection
  // through every byte this node writes; it must outlive the node.
  common::Status EnableDurability(
      const std::string& dir, common::StorageFaultInjector* injector = nullptr,
      uint64_t checkpoint_every_appends = 0,
      const store::LsmOptions& lsm_options = {});
  bool durable() const {
    common::MutexLock lock(dur_mu_);
    return wal_.is_open();
  }

  // Durable write: the entity's serialized record is appended to the WAL
  // and flushed *before* the store accepts it — IOError means nothing was
  // acked and nothing was stored. Without durability enabled this is just
  // store().Put. AlreadyExists for duplicate ids (not logged).
  common::Status Ingest(Entity entity);

  // Flushes the store's memtable to a segment, freezes the index's delta
  // tier, then truncates the WAL. Each step commits through an atomic
  // manifest swap, and the WAL is truncated last — on any failure it is
  // left intact, so no acked write is ever exposed to loss by a failed
  // checkpoint.
  common::Status Checkpoint();

  // Rebuilds the shard from disk: the segment tiers were already loaded by
  // EnableDurability, so this replays the WAL on top (stopping cleanly at
  // a torn tail), then checkpoints to compact. Corrupt segments surface as
  // Corruption from EnableDurability rather than loading silently wrong.
  common::Status Recover();

 private:
  common::Status CheckpointLocked() WF_REQUIRES(dur_mu_);

  size_t id_;
  DataStore store_;
  InvertedIndex index_;
  MinerPipeline pipeline_;
  core::AnalysisCache analysis_cache_;
  obs::MetricsRegistry metrics_;

  // Durability configuration (set once by EnableDurability, before any
  // concurrent use) and the state it guards.
  common::StorageFaultInjector* injector_ = nullptr;
  uint64_t checkpoint_every_appends_ = 0;
  mutable common::Mutex dur_mu_;  // serializes WAL appends and checkpoints
  WriteAheadLog wal_ WF_GUARDED_BY(dur_mu_);
  uint64_t appends_since_checkpoint_ WF_GUARDED_BY(dur_mu_) = 0;
};

// Outcome of one scatter/gather search. A node that failed (partition,
// injected fault, open breaker) is simply absent from `docs` and listed in
// `failed_services`; the gather never poisons or stalls on a sick shard.
// Coverage counters let applications see when an answer is partial.
struct SearchResult {
  std::vector<std::string> docs;
  size_t nodes_total = 0;      // search shards scattered to
  size_t nodes_responded = 0;  // shards that answered OK
  std::vector<std::string> failed_services;  // e.g. "node/3/search"
  bool complete() const { return nodes_responded == nodes_total; }
};

// Cluster-wide metrics roll-up: every node's wfstats export gathered over
// the bus (the same degraded-tolerant path an operator would use), merged
// with the cluster's own bus-level registry. A node that cannot answer —
// or answers with a malformed or unmergeable export — is listed in
// `failed_services` and simply missing from `merged`.
struct ClusterStats {
  obs::MetricsSnapshot merged;
  size_t nodes_total = 0;      // wfstats services scattered to
  size_t nodes_responded = 0;  // exports merged successfully
  std::vector<std::string> failed_services;
  bool complete() const { return nodes_responded == nodes_total; }
};

// The loosely coupled cluster (§2): N nodes behind a shared Vinci bus.
// Entities are hash-partitioned by id; miners run per shard in parallel;
// queries scatter over node services and gather the results.
class Cluster {
 public:
  explicit Cluster(size_t num_nodes);
  // Joins the bus's scatter pool first: a hedged scatter's abandoned
  // stragglers are detached tasks whose handlers touch nodes_, metrics_,
  // and health_, all of which are destroyed before bus_ (declared first)
  // without this.
  ~Cluster() { bus_.Shutdown(); }

  size_t node_count() const { return nodes_.size(); }
  // The node must be up (see CrashNode/RestartNode).
  ClusterNode& node(size_t i) {
    WF_CHECK(nodes_[i] != nullptr);
    return *nodes_[i];
  }
  bool IsNodeUp(size_t i) const { return nodes_[i] != nullptr; }
  size_t NodesUp() const;
  VinciBus& bus() { return bus_; }
  const VinciBus& bus() const { return bus_; }

  // The cluster-level registry (bus and ingest metrics land here; each
  // node's mining/indexing metrics live in its own registry).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Attaches a tracer to the cluster and its bus: Search() then opens a
  // root span and propagates its context through the scatter, so one query
  // exports a single stitched parent/child trace. nullptr detaches. The
  // tracer must outlive its attachment.
  void AttachTracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    bus_.AttachTracer(tracer);
  }

  // The cluster's health scoreboard: fed by every bus call (the bus gets
  // it attached at construction), consulted by hedged scatters, and
  // published into metrics() by CollectStats while hedging is enabled.
  HealthScoreboard& health() { return health_; }
  const HealthScoreboard& health() const { return health_; }

  // Turns on tail-tolerant scatters: deadline-bounded searches then go
  // through VinciBus::CallAllHedged under `hedge` (with enabled forced
  // true), so a straggling shard is re-issued at its ~p95 and a suspect
  // shard is abandoned early instead of dragging the gather to the
  // deadline. Off by default — the unhedged path and its metric footprint
  // stay byte-identical for existing callers. Configuration, not
  // data-path: call before concurrent searches start.
  void EnableHedging(const HedgeOptions& hedge = {}) {
    hedge_ = hedge;
    hedge_.enabled = true;
  }
  void DisableHedging() { hedge_.enabled = false; }
  bool hedging_enabled() const { return hedge_.enabled; }

  // Shard owning an entity id (stable FNV hash).
  size_t Route(const std::string& entity_id) const {
    return common::Fnv1a64(entity_id) % nodes_.size();
  }

  // Stores an entity on its owning node.
  common::Status Ingest(Entity entity);

  // Adds a fresh instance of a miner to every node's pipeline (each shard
  // needs its own since pipelines run in parallel). The factory is invoked
  // once per node.
  void DeployMiner(
      const std::function<std::unique_ptr<EntityMiner>()>& factory);

  // Runs every node's MineAndIndex() over the cluster's shared mining
  // executor: node sweeps are dispatched as tasks and each sweep's
  // per-entity batches interleave on the same bounded worker set, so the
  // thread count stays fixed no matter how many shards mine at once.
  void MineAndIndexAll();

  // Replaces the shared mining executor (worker threads, batch size).
  // Configuration, not data-path: call while no mining sweep is running.
  void ConfigureMining(const MineExecutorOptions& options);
  MineExecutor& mining_executor() { return *executor_; }

  // Scatter/gather term or concept search over all node services. Nodes
  // that fail are tolerated; the result reports how many responded.
  SearchResult Search(const std::string& term) const;
  SearchResult SearchPhrase(const std::vector<std::string>& words) const;

  // Deadline-bounded variants: the caller's remaining end-to-end budget
  // rides the scattered request (wf-deadline-us, next to the trace context
  // fields) and caps every per-node call, so a straggler shard can degrade
  // coverage but never stall the gather past the deadline. An
  // already-expired deadline fails every shard up front — zero downstream
  // dispatches — instead of scattering work nobody will wait for.
  SearchResult Search(const std::string& term, const Deadline& deadline) const;
  SearchResult SearchPhrase(const std::vector<std::string>& words,
                            const Deadline& deadline) const;

  // Gathers and merges every node's wfstats export (see ClusterStats).
  ClusterStats CollectStats() const;

  size_t TotalEntities() const;

  // --- Durability & node lifecycle ----------------------------------------

  struct DurabilityOptions {
    std::string dir;  // per-node WAL + segment files live here
    // Acked WAL appends between automatic checkpoints (0 = manual only,
    // via CheckpointAll or per-node Checkpoint()).
    uint64_t checkpoint_every_appends = 0;
    // Storage-engine shape for every node: memtable ceiling (how much of a
    // shard may sit in RAM before it flushes) and compaction behavior for
    // both the store's and the index's segment runs.
    store::LsmOptions lsm = {};
  };
  // Makes every node durable under options.dir and recovers each from
  // whatever that directory already holds — a fresh directory yields empty
  // shards, an old one a restarted cluster. `injector` (optional) threads
  // storage fault injection through all node writes; it must outlive the
  // cluster.
  common::Status EnableDurability(
      const DurabilityOptions& options,
      common::StorageFaultInjector* injector = nullptr);

  // Checkpoints every up node; first failure wins, the rest still run.
  common::Status CheckpointAll();

  // Kills node i: its Vinci services are withdrawn and its in-memory state
  // is destroyed — exactly what a machine losing power loses. Queries keep
  // working but degrade (the dead shard shows up in failed_services and
  // coverage counters); ingests routed to it fail Unavailable. Durable
  // state on disk is untouched.
  common::Status CrashNode(size_t i);

  // Brings node i back: a fresh node recovers from its on-disk checkpoint
  // + WAL, gets the cluster's deployed miners, and re-registers its
  // services — search coverage returns to complete(). Requires durability
  // (a non-durable crash has nothing to restart from).
  common::Status RestartNode(size_t i);

 private:
  SearchResult TracedSearch(const std::string& name,
                            std::vector<std::pair<std::string, std::string>>
                                request_fields,
                            const Deadline& deadline) const;

  // Adds down nodes to a gather's accounting (service name from
  // `service_name(i)`) so degraded coverage is visible even though nothing
  // was scattered to them.
  template <typename ResultT>
  void AccountDownNodes(
      const std::function<std::string(size_t)>& service_name,
      ResultT* result) const;

  VinciBus bus_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  obs::MetricsRegistry metrics_;
  HealthScoreboard health_;
  HedgeOptions hedge_;  // enabled == false until EnableHedging
  obs::Tracer* tracer_ = nullptr;
  // Shared bounded worker pool for mining sweeps (see MineAndIndexAll).
  std::unique_ptr<MineExecutor> executor_;

  // Lifecycle state: miner factories are kept so a restarted node gets the
  // same pipeline its peers got from DeployMiner.
  std::vector<std::function<std::unique_ptr<EntityMiner>()>> miner_factories_;
  DurabilityOptions durability_;
  common::StorageFaultInjector* injector_ = nullptr;
  bool durable_ = false;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_CLUSTER_H_
