#include "platform/sentiment_miner_plugin.h"

#include "common/string_util.h"

namespace wf::platform {

using ::wf::common::Status;
using ::wf::core::SentimentMention;
using ::wf::core::SentimentStore;
using ::wf::lexicon::Polarity;

std::string SentimentConceptToken(const std::string& subject,
                                  lexicon::Polarity polarity) {
  std::string subj = common::ToLower(subject);
  for (char& c : subj) {
    if (c == ' ') c = '_';
  }
  const char* pol = polarity == Polarity::kPositive   ? "+"
                    : polarity == Polarity::kNegative ? "-"
                                                      : "0";
  return common::StrFormat("sent/%s/%s", pol, subj.c_str());
}

namespace {

void RecordMentions(const SentimentStore& store, Entity& entity) {
  for (const SentimentMention& m : store.mentions()) {
    if (m.polarity == Polarity::kNeutral) continue;
    AnnotationSpan span;
    span.begin = m.sentence_begin;
    span.end = m.sentence_end;
    span.attrs["subject"] = m.subject;
    // Single-char assign sidesteps a GCC 12 -Wrestrict false positive on
    // `string = cond ? "+" : "-"` at -O2.
    span.attrs["polarity"].assign(
        1, m.polarity == Polarity::kPositive ? '+' : '-');
    span.attrs["pattern"] = m.pattern;
    span.attrs["sentence"] = m.sentence_text;
    entity.AddAnnotation("sentiment", std::move(span));
    entity.AddConceptToken(SentimentConceptToken(m.subject, m.polarity));
  }
}

}  // namespace

common::Status AdHocSentimentMinerPlugin::Process(Entity& entity) {
  return Process(entity, MineContext{});
}

common::Status AdHocSentimentMinerPlugin::Process(Entity& entity,
                                                  const MineContext& context) {
  if (entity.body().empty()) return Status::Ok();
  SentimentStore store;
  if (context.analysis != nullptr) {
    miner_.ProcessDocument(entity.id(), *context.analysis, &store);
  } else {
    miner_.ProcessDocument(entity.id(), entity.body(), &store);
  }
  RecordMentions(store, entity);
  return Status::Ok();
}

SubjectSentimentMinerPlugin::SubjectSentimentMinerPlugin(
    const lexicon::SentimentLexicon* lexicon,
    const lexicon::PatternDatabase* patterns,
    std::vector<spot::SynonymSet> subjects)
    : miner_(lexicon, patterns) {
  for (spot::SynonymSet& s : subjects) {
    miner_.AddSubject(std::move(s));
  }
}

common::Status SubjectSentimentMinerPlugin::Process(Entity& entity) {
  return Process(entity, MineContext{});
}

common::Status SubjectSentimentMinerPlugin::Process(
    Entity& entity, const MineContext& context) {
  if (entity.body().empty()) return Status::Ok();
  SentimentStore store;
  if (context.analysis != nullptr) {
    miner_.ProcessDocument(entity.id(), *context.analysis, &store);
  } else {
    miner_.ProcessDocument(entity.id(), entity.body(), &store);
  }
  RecordMentions(store, entity);
  return Status::Ok();
}

}  // namespace wf::platform
