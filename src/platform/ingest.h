#ifndef WF_PLATFORM_INGEST_H_
#define WF_PLATFORM_INGEST_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "platform/cluster.h"
#include "platform/entity.h"

namespace wf::platform {

// A data source feeding the platform (§2): "Acquisition of other sources
// ... is done by a set of ingestors that handle the unique delivery method
// and format of each source." Each ingestor yields entities until
// exhausted.
class Ingestor {
 public:
  virtual ~Ingestor() = default;
  virtual std::string source_name() const = 0;
  // nullopt when the source is exhausted.
  virtual std::optional<Entity> Next() = 0;
};

// Ingestor over a pre-built batch of (id, body) documents — the adapter the
// corpus generators and tests use. Entities get the ingestor's source name
// and optional extra fields.
class BatchIngestor : public Ingestor {
 public:
  BatchIngestor(std::string source_name,
                std::vector<std::pair<std::string, std::string>> docs)
      : source_name_(std::move(source_name)), docs_(std::move(docs)) {}

  std::string source_name() const override { return source_name_; }
  std::optional<Entity> Next() override;

 private:
  std::string source_name_;
  std::vector<std::pair<std::string, std::string>> docs_;
  size_t next_ = 0;
};

// A simulated web crawler frontier: URLs (ids) are queued, fetched in FIFO
// order, and each "page" may enqueue further links. Simulation stands in
// for the paper's large-scale crawler; the fetch callback supplies bodies
// and outlinks.
class CrawlerSimulator : public Ingestor {
 public:
  struct Page {
    std::string body;
    std::vector<std::string> outlinks;
  };
  using Fetcher = std::function<std::optional<Page>(const std::string& url)>;

  CrawlerSimulator(std::vector<std::string> seed_urls, Fetcher fetcher,
                   size_t max_pages = 10000);

  std::string source_name() const override { return "webcrawl"; }
  std::optional<Entity> Next() override;

  size_t fetched() const { return fetched_; }

 private:
  Fetcher fetcher_;
  std::deque<std::string> frontier_;
  std::vector<std::string> visited_;  // insertion order
  size_t max_pages_;
  size_t fetched_ = 0;
};

// Drains an ingestor into the cluster. Returns the number of entities
// stored; duplicate ids are skipped (counted in `*duplicates` if given).
// Entities the cluster could not accept for any other reason — a crashed
// shard, a WAL append failure — are appended to `*failed` (if given) so
// the caller can re-drive them once the shard heals; they are counted in
// ingest/source/<name>/failed_total either way.
size_t IngestAll(Ingestor& ingestor, Cluster& cluster,
                 size_t* duplicates = nullptr,
                 std::vector<Entity>* failed = nullptr);

}  // namespace wf::platform

#endif  // WF_PLATFORM_INGEST_H_
