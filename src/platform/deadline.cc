#include "platform/deadline.h"

#include <cstdlib>

#include "common/string_util.h"
#include "obs/timer.h"
#include "platform/vinci.h"

namespace wf::platform {

Deadline Deadline::After(uint64_t budget_us) {
  uint64_t now = obs::MonotonicNowUs();
  // Saturate instead of wrapping: an absurdly large budget is "no deadline
  // in practice", not an expiry in the distant past.
  if (budget_us > kNever - now - 1) return Deadline(kNever - 1);
  return Deadline(now + budget_us);
}

bool Deadline::expired() const {
  if (infinite()) return false;
  return obs::MonotonicNowUs() >= expires_at_us_;
}

uint64_t Deadline::RemainingUs() const {
  if (infinite()) return kNever;
  uint64_t now = obs::MonotonicNowUs();
  return now >= expires_at_us_ ? 0 : expires_at_us_ - now;
}

uint64_t Deadline::CallBudgetUs() const {
  if (infinite()) return 0;
  uint64_t remaining = RemainingUs();
  return remaining == 0 ? 1 : remaining;
}

void AppendDeadline(const Deadline& deadline,
                    std::vector<std::pair<std::string, std::string>>* pairs) {
  if (deadline.infinite()) return;
  pairs->emplace_back(
      kDeadlineUsKey,
      common::StrFormat("%llu", static_cast<unsigned long long>(
                                    deadline.expires_at_us())));
}

Deadline DeadlineFromRequest(const std::string& request) {
  std::string field = GetMessageField(request, kDeadlineUsKey);
  if (field.empty()) return Deadline::Infinite();
  char* end = nullptr;
  unsigned long long stamp = std::strtoull(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') return Deadline::Infinite();
  return Deadline::AtUs(static_cast<uint64_t>(stamp));
}

}  // namespace wf::platform
