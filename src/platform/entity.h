#ifndef WF_PLATFORM_ENTITY_H_
#define WF_PLATFORM_ENTITY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace wf::platform {

// One annotated span over an entity's body, written by a miner. `attrs`
// carries miner-specific key/values ("polarity" = "+", "subject" = "NR70").
struct AnnotationSpan {
  size_t begin = 0;  // byte offsets into the "body" field
  size_t end = 0;
  std::map<std::string, std::string> attrs;

  friend bool operator==(const AnnotationSpan& a, const AnnotationSpan& b) {
    return a.begin == b.begin && a.end == b.end && a.attrs == b.attrs;
  }
};

// A WebFountain entity: "a referenceable unit of information such as a Web
// page" (§2). The paper's store keeps entities as XML; ours keeps typed
// fields plus named annotation layers that miners append to. Conceptual
// tokens (miner-produced index terms) live in `concept_tokens`.
class Entity {
 public:
  Entity() = default;
  Entity(std::string id, std::string source)
      : id_(std::move(id)), source_(std::move(source)) {}

  const std::string& id() const { return id_; }
  const std::string& source() const { return source_; }

  void SetField(const std::string& name, std::string value) {
    fields_[name] = std::move(value);
  }
  // Empty string when absent.
  const std::string& GetField(const std::string& name) const;
  bool HasField(const std::string& name) const {
    return fields_.count(name) > 0;
  }
  const std::map<std::string, std::string>& fields() const { return fields_; }

  // Body convenience accessors (the main text payload).
  void SetBody(std::string body) { SetField("body", std::move(body)); }
  const std::string& body() const { return GetField("body"); }

  void AddAnnotation(const std::string& layer, AnnotationSpan span) {
    annotations_[layer].push_back(std::move(span));
  }
  const std::vector<AnnotationSpan>* GetAnnotations(
      const std::string& layer) const;
  const std::map<std::string, std::vector<AnnotationSpan>>& annotations()
      const {
    return annotations_;
  }

  void AddConceptToken(std::string token) {
    concept_tokens_.push_back(std::move(token));
  }
  const std::vector<std::string>& concept_tokens() const {
    return concept_tokens_;
  }

  // Line-oriented serialization (used by the data store's persistence).
  std::string Serialize() const;
  static common::Result<Entity> Deserialize(const std::string& data);

  friend bool operator==(const Entity& a, const Entity& b) {
    return a.id_ == b.id_ && a.source_ == b.source_ &&
           a.fields_ == b.fields_ && a.annotations_ == b.annotations_ &&
           a.concept_tokens_ == b.concept_tokens_;
  }

 private:
  std::string id_;
  std::string source_;
  std::map<std::string, std::string> fields_;
  std::map<std::string, std::vector<AnnotationSpan>> annotations_;
  std::vector<std::string> concept_tokens_;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_ENTITY_H_
