#ifndef WF_PLATFORM_SENTIMENT_MINER_PLUGIN_H_
#define WF_PLATFORM_SENTIMENT_MINER_PLUGIN_H_

#include <memory>
#include <string>

#include "core/miner.h"
#include "platform/miner_framework.h"

namespace wf::platform {

// Conceptual-token format the sentiment plugins emit, consumed by the
// SentimentQueryService: "sent/<polarity>/<subject>" with the subject
// lowercased and spaces replaced by '_' ("sent/+/nr70").
std::string SentimentConceptToken(const std::string& subject,
                                  lexicon::Polarity polarity);

// Entity-level miner deploying Mode B (no predefined subjects, Figure 3):
// runs the ad-hoc sentiment miner over each entity, annotating it with a
// "sentiment" layer and emitting conceptual tokens for the indexer. This is
// the offline corpus pass that makes query-time sentiment lookups fast.
class AdHocSentimentMinerPlugin : public EntityMiner {
 public:
  // `lexicon` and `patterns` must outlive the plugin.
  AdHocSentimentMinerPlugin(const lexicon::SentimentLexicon* lexicon,
                            const lexicon::PatternDatabase* patterns)
      : miner_(lexicon, patterns) {}

  std::string name() const override { return "sentiment_adhoc"; }
  common::Status Process(Entity& entity) override;
  common::Status Process(Entity& entity, const MineContext& context) override;
  bool wants_analysis() const override { return true; }
  // The ad-hoc core miner is stateless across documents, so entities can
  // be mined concurrently.
  bool parallel_safe() const override { return true; }

 private:
  core::AdHocSentimentMiner miner_;
};

// Entity-level miner deploying Mode A (predefined subjects, Figure 2).
// Subjects are shared configuration; each node gets its own plugin
// instance wrapping its own core miner.
class SubjectSentimentMinerPlugin : public EntityMiner {
 public:
  SubjectSentimentMinerPlugin(const lexicon::SentimentLexicon* lexicon,
                              const lexicon::PatternDatabase* patterns,
                              std::vector<spot::SynonymSet> subjects);

  std::string name() const override { return "sentiment_subjects"; }
  common::Status Process(Entity& entity) override;
  common::Status Process(Entity& entity, const MineContext& context) override;
  bool wants_analysis() const override { return true; }
  // Mode A accumulates corpus statistics across documents (TF-IDF
  // disambiguation), so its results depend on processing order — the
  // pipeline must sweep sequentially.
  bool parallel_safe() const override { return false; }

 private:
  core::SentimentMiner miner_;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_SENTIMENT_MINER_PLUGIN_H_
