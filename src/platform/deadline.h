#ifndef WF_PLATFORM_DEADLINE_H_
#define WF_PLATFORM_DEADLINE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wf::platform {

// An end-to-end deadline on the obs::MonotonicNowUs() clock, threaded from
// the serving front door through Cluster::Search into every per-service
// VinciBus call. One budget decreases along the whole chain: a scatter, a
// retry loop, or a point fetch computes its per-call allowance from
// RemainingUs() at the moment it dispatches, so no downstream stage can be
// handed more time than its caller has left.
//
// The wire spelling (kDeadlineUsKey) is the *absolute* expiry in
// microseconds — the simulated cluster shares one monotonic clock, so an
// absolute stamp is exact where a relative budget would silently exclude
// the time the request spent in flight. A request without the field has no
// deadline (Infinite), so existing traffic and handlers are unaffected.
class Deadline {
 public:
  // No deadline: never expires, RemainingUs() saturates.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  // Expires `budget_us` from now; a zero budget is already expired.
  static Deadline After(uint64_t budget_us);
  // Expires at an absolute obs::MonotonicNowUs() stamp.
  static Deadline AtUs(uint64_t expires_at_us) {
    return Deadline(expires_at_us);
  }

  bool infinite() const { return expires_at_us_ == kNever; }
  uint64_t expires_at_us() const { return expires_at_us_; }

  // True once the clock has passed the expiry. Infinite never expires.
  bool expired() const;
  // Microseconds of budget left; 0 once expired, UINT64_MAX when infinite.
  uint64_t RemainingUs() const;

  // The per-call budget for VinciBus::CallOptions::deadline_us, where 0
  // means "no deadline": infinite maps to 0, an expired deadline to 1 (the
  // smallest enforcing value — the call fails DeadlineExceeded immediately
  // instead of silently running unbounded).
  uint64_t CallBudgetUs() const;

 private:
  static constexpr uint64_t kNever = UINT64_MAX;
  explicit Deadline(uint64_t expires_at_us) : expires_at_us_(expires_at_us) {}

  uint64_t expires_at_us_ = kNever;
};

// Reserved request-metadata key carrying the absolute expiry over the bus,
// alongside the obs::kTraceIdKey / kSpanIdKey context fields.
inline constexpr char kDeadlineUsKey[] = "wf-deadline-us";

// Appends the deadline field to a request's key=value pairs; a no-op for
// an infinite deadline, so undeadlined requests stay byte-identical.
void AppendDeadline(const Deadline& deadline,
                    std::vector<std::pair<std::string, std::string>>* pairs);

// Parses the deadline carried by a request; Infinite when the field is
// absent or malformed (a garbled stamp must not spuriously kill a call).
Deadline DeadlineFromRequest(const std::string& request);

}  // namespace wf::platform

#endif  // WF_PLATFORM_DEADLINE_H_
