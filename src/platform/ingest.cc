#include "platform/ingest.h"

#include <unordered_set>

#include "obs/metrics.h"

namespace wf::platform {

std::optional<Entity> BatchIngestor::Next() {
  if (next_ >= docs_.size()) return std::nullopt;
  auto& [id, body] = docs_[next_++];
  Entity e(id, source_name_);
  e.SetBody(std::move(body));
  return e;
}

CrawlerSimulator::CrawlerSimulator(std::vector<std::string> seed_urls,
                                   Fetcher fetcher, size_t max_pages)
    : fetcher_(std::move(fetcher)), max_pages_(max_pages) {
  for (std::string& url : seed_urls) frontier_.push_back(std::move(url));
}

std::optional<Entity> CrawlerSimulator::Next() {
  // `visited_` keeps crawl order; the set view gives O(1) dedup per call.
  std::unordered_set<std::string> visited_set(visited_.begin(),
                                              visited_.end());
  while (!frontier_.empty() && fetched_ < max_pages_) {
    std::string url = frontier_.front();
    frontier_.pop_front();
    if (visited_set.count(url) > 0) continue;
    visited_.push_back(url);
    visited_set.insert(url);

    std::optional<Page> page = fetcher_(url);
    if (!page.has_value()) continue;  // fetch failure: move on
    ++fetched_;
    for (std::string& link : page->outlinks) {
      if (visited_set.count(link) == 0) frontier_.push_back(std::move(link));
    }
    Entity e(url, source_name());
    e.SetField("url", url);
    e.SetBody(std::move(page->body));
    return e;
  }
  return std::nullopt;
}

size_t IngestAll(Ingestor& ingestor, Cluster& cluster, size_t* duplicates,
                 std::vector<Entity>* failed) {
  size_t stored = 0;
  size_t dups = 0;
  size_t failures = 0;
  while (true) {
    std::optional<Entity> entity = ingestor.Next();
    if (!entity.has_value()) break;
    // Ingest consumes the entity only on success/duplicate; keep a copy so
    // a failed (unacked) one can be handed back for re-drive.
    Entity pending = *entity;
    common::Status s = cluster.Ingest(std::move(*entity));
    if (s.ok()) {
      ++stored;
    } else if (s.code() == common::StatusCode::kAlreadyExists) {
      ++dups;
    } else {
      // Not a duplicate: the shard is down or the write was never acked.
      ++failures;
      if (failed != nullptr) failed->push_back(std::move(pending));
    }
  }
  if (duplicates != nullptr) *duplicates = dups;
  // Per-source throughput next to the per-Put counters Cluster::Ingest
  // keeps (source names are identifier-like, so they embed in metric names).
  const std::string prefix = "ingest/source/" + ingestor.source_name() + "/";
  cluster.metrics().GetCounter(prefix + "stored_total")->Add(stored);
  if (dups > 0) {
    cluster.metrics().GetCounter(prefix + "duplicate_total")->Add(dups);
  }
  if (failures > 0) {
    cluster.metrics().GetCounter(prefix + "failed_total")->Add(failures);
  }
  return stored;
}

}  // namespace wf::platform
