#include "platform/data_store.h"

#include <sstream>

#include "common/logging.h"

namespace wf::platform {

using ::wf::common::Status;

namespace {

// Stored records were serialized by this process (or verified by a
// segment checksum on the way in), so a deserialize failure is a logic
// bug, not an input error.
Entity MustDeserialize(const std::string& record) {
  auto entity = Entity::Deserialize(record);
  WF_CHECK_OK(entity.status());
  return std::move(entity).value();
}

}  // namespace

void DataStore::AttachMetrics(const obs::MetricsRegistry* metrics) {
  lsm_.AttachMetrics(metrics, "store");
}

common::Status DataStore::EnableSegments(
    const std::string& dir, const std::string& base,
    const store::LsmOptions& options,
    common::StorageFaultInjector* injector) {
  return lsm_.OpenSegments(dir, base, options, injector);
}

common::Status DataStore::Put(Entity entity) {
  const std::string id = entity.id();
  return lsm_.Insert(id, entity.Serialize());
}

common::Status DataStore::Upsert(Entity entity) {
  const std::string id = entity.id();
  return lsm_.Put(id, entity.Serialize());
}

common::Result<Entity> DataStore::Get(const std::string& id) const {
  WF_ASSIGN_OR_RETURN(std::string record, lsm_.Get(id));
  return Entity::Deserialize(record);
}

bool DataStore::Contains(const std::string& id) const {
  return lsm_.Contains(id);
}

common::Status DataStore::Delete(const std::string& id) {
  return lsm_.Delete(id);
}

common::Status DataStore::Update(const std::string& id,
                                 const std::function<void(Entity&)>& fn) {
  return lsm_.Update(id, [&fn](std::string* record) {
    WF_ASSIGN_OR_RETURN(Entity entity, Entity::Deserialize(*record));
    fn(entity);
    *record = entity.Serialize();
    return Status::Ok();
  });
}

void DataStore::ForEach(const std::function<void(const Entity&)>& fn) const {
  WF_CHECK_OK(lsm_.ForEachSorted(
      [&fn](const std::string&, const std::string& record) {
        fn(MustDeserialize(record));
        return Status::Ok();
      }));
}

common::Status DataStore::ForEachMutable(
    const std::function<void(Entity&)>& fn) {
  // Ids first (cheap: key indexes only), then a read-modify-write per
  // entity — each rewrite lands in the memtable tier like any update.
  for (const std::string& id : Ids()) {
    WF_RETURN_IF_ERROR(Update(id, fn));
  }
  return Status::Ok();
}

size_t DataStore::size() const { return lsm_.size(); }

std::vector<std::string> DataStore::Ids() const {
  std::vector<std::string> out;
  out.reserve(lsm_.size());
  lsm_.ForEachKey([&out](const std::string& id) { out.push_back(id); });
  return out;
}

std::vector<Entity> DataStore::SnapshotSorted() const {
  std::vector<Entity> out;
  out.reserve(lsm_.size());
  ForEach([&out](const Entity& entity) { out.push_back(entity); });
  return out;
}

common::Status DataStore::Save(const std::string& path,
                               common::StorageFaultInjector* injector) const {
  // Length-prefixed entity records under the checksummed snapshot
  // envelope, written temp-then-rename. Records stream from the merged
  // sorted sweep, so the payload is a pure function of the store's
  // logical contents: a shard rebuilt from segments + WAL replay saves
  // the same bytes as the shard that never crashed, whatever their
  // segment layouts look like.
  std::ostringstream payload;
  WF_RETURN_IF_ERROR(lsm_.ForEachSorted(
      [&payload](const std::string&, const std::string& record) {
        payload << record.size() << "\n" << record;
        return Status::Ok();
      }));
  return common::WriteSnapshotFile(path, common::kSnapKindStore,
                                   /*version=*/1, payload.str(), injector);
}

common::Status DataStore::Load(const std::string& path) {
  if (lsm_.segmented()) {
    return Status::FailedPrecondition(
        "segment-mode store loads from its manifest, not a snapshot");
  }
  auto payload_or = common::ReadSnapshotFile(path, common::kSnapKindStore,
                                             /*version=*/1);
  if (!payload_or.ok()) return payload_or.status();
  std::istringstream in(payload_or.value());
  std::vector<Entity> loaded;
  std::string size_line;
  while (std::getline(in, size_line)) {
    if (size_line.empty()) continue;
    size_t n = 0;
    try {
      n = std::stoull(size_line);
    } catch (...) {
      return Status::Corruption("bad record size in " + path);
    }
    std::string record(n, '\0');
    in.read(record.data(), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in.gcount()) != n) {
      return Status::Corruption("truncated record in " + path);
    }
    auto entity = Entity::Deserialize(record);
    if (!entity.ok()) return entity.status();
    loaded.push_back(std::move(entity).value());
  }
  WF_RETURN_IF_ERROR(lsm_.ClearEphemeral());
  for (Entity& entity : loaded) {
    const std::string id = entity.id();
    WF_RETURN_IF_ERROR(lsm_.Put(id, entity.Serialize()));
  }
  return Status::Ok();
}

}  // namespace wf::platform
