#include "platform/data_store.h"

#include <algorithm>
#include <sstream>

namespace wf::platform {

using ::wf::common::Status;

common::Status DataStore::Put(Entity entity) {
  common::MutexLock lock(mu_);
  std::string id = entity.id();
  auto [it, inserted] = entities_.emplace(id, std::move(entity));
  if (!inserted) return Status::AlreadyExists("entity exists: " + id);
  return Status::Ok();
}

void DataStore::Upsert(Entity entity) {
  common::MutexLock lock(mu_);
  entities_[entity.id()] = std::move(entity);
}

common::Result<Entity> DataStore::Get(const std::string& id) const {
  common::MutexLock lock(mu_);
  auto it = entities_.find(id);
  if (it == entities_.end()) return Status::NotFound("no entity: " + id);
  return it->second;
}

bool DataStore::Contains(const std::string& id) const {
  common::MutexLock lock(mu_);
  return entities_.count(id) > 0;
}

common::Status DataStore::Delete(const std::string& id) {
  common::MutexLock lock(mu_);
  if (entities_.erase(id) == 0) return Status::NotFound("no entity: " + id);
  return Status::Ok();
}

common::Status DataStore::Update(const std::string& id,
                                 const std::function<void(Entity&)>& fn) {
  common::MutexLock lock(mu_);
  auto it = entities_.find(id);
  if (it == entities_.end()) return Status::NotFound("no entity: " + id);
  fn(it->second);
  return Status::Ok();
}

void DataStore::ForEach(const std::function<void(const Entity&)>& fn) const {
  common::MutexLock lock(mu_);
  for (const auto& [id, entity] : entities_) fn(entity);
}

void DataStore::ForEachMutable(const std::function<void(Entity&)>& fn) {
  common::MutexLock lock(mu_);
  for (auto& [id, entity] : entities_) fn(entity);
}

size_t DataStore::size() const {
  common::MutexLock lock(mu_);
  return entities_.size();
}

std::vector<std::string> DataStore::Ids() const {
  common::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(entities_.size());
  for (const auto& [id, entity] : entities_) out.push_back(id);
  return out;
}

std::vector<Entity> DataStore::SnapshotSorted() const {
  common::MutexLock lock(mu_);
  std::vector<Entity> out;
  out.reserve(entities_.size());
  for (const auto& [id, entity] : entities_) out.push_back(entity);
  std::sort(out.begin(), out.end(), [](const Entity& a, const Entity& b) {
    return a.id() < b.id();
  });
  return out;
}

common::Status DataStore::Save(const std::string& path,
                               common::StorageFaultInjector* injector) const {
  common::MutexLock lock(mu_);
  // Length-prefixed entity records under the checksummed snapshot
  // envelope, written temp-then-rename: a crash (or full disk) mid-save
  // leaves the previous snapshot intact, and a reader can never load a
  // truncated or bit-flipped image as silently wrong data. Records are
  // written in sorted-id order so the snapshot is a pure function of the
  // store's contents — a shard rebuilt from checkpoint + WAL replay
  // checkpoints to the same bytes as the shard that never crashed.
  std::vector<const Entity*> sorted;
  sorted.reserve(entities_.size());
  for (const auto& [id, entity] : entities_) sorted.push_back(&entity);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entity* a, const Entity* b) { return a->id() < b->id(); });
  std::ostringstream payload;
  for (const Entity* entity : sorted) {
    std::string record = entity->Serialize();
    payload << record.size() << "\n" << record;
  }
  return common::WriteSnapshotFile(path, "store", /*version=*/1,
                                   payload.str(), injector);
}

common::Status DataStore::Load(const std::string& path) {
  auto payload_or = common::ReadSnapshotFile(path, "store", /*version=*/1);
  if (!payload_or.ok()) return payload_or.status();
  std::istringstream in(payload_or.value());
  std::unordered_map<std::string, Entity> loaded;
  std::string size_line;
  while (std::getline(in, size_line)) {
    if (size_line.empty()) continue;
    size_t n = 0;
    try {
      n = std::stoull(size_line);
    } catch (...) {
      return Status::Corruption("bad record size in " + path);
    }
    std::string record(n, '\0');
    in.read(record.data(), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in.gcount()) != n) {
      return Status::Corruption("truncated record in " + path);
    }
    auto entity = Entity::Deserialize(record);
    if (!entity.ok()) return entity.status();
    std::string id = entity->id();
    loaded[id] = std::move(entity).value();
  }
  common::MutexLock lock(mu_);
  entities_ = std::move(loaded);
  return Status::Ok();
}

}  // namespace wf::platform
