#include "platform/data_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace wf::platform {

using ::wf::common::Status;

common::Status DataStore::Put(Entity entity) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string id = entity.id();
  auto [it, inserted] = entities_.emplace(id, std::move(entity));
  if (!inserted) return Status::AlreadyExists("entity exists: " + id);
  return Status::Ok();
}

void DataStore::Upsert(Entity entity) {
  std::lock_guard<std::mutex> lock(mu_);
  entities_[entity.id()] = std::move(entity);
}

common::Result<Entity> DataStore::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entities_.find(id);
  if (it == entities_.end()) return Status::NotFound("no entity: " + id);
  return it->second;
}

bool DataStore::Contains(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entities_.count(id) > 0;
}

common::Status DataStore::Delete(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entities_.erase(id) == 0) return Status::NotFound("no entity: " + id);
  return Status::Ok();
}

common::Status DataStore::Update(const std::string& id,
                                 const std::function<void(Entity&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entities_.find(id);
  if (it == entities_.end()) return Status::NotFound("no entity: " + id);
  fn(it->second);
  return Status::Ok();
}

void DataStore::ForEach(const std::function<void(const Entity&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, entity] : entities_) fn(entity);
}

void DataStore::ForEachMutable(const std::function<void(Entity&)>& fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, entity] : entities_) fn(entity);
}

size_t DataStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entities_.size();
}

std::vector<std::string> DataStore::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entities_.size());
  for (const auto& [id, entity] : entities_) out.push_back(id);
  return out;
}

common::Status DataStore::Save(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Write-temp-then-rename: writing `path` in place would truncate the
  // previous good snapshot the moment the stream opens, so a crash (or a
  // full disk) mid-save lost it. The rename is atomic, so readers see
  // either the old complete snapshot or the new one, never a prefix.
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc | std::ios::binary);
    if (!out) return Status::IOError("cannot open for write: " + tmp_path);
    for (const auto& [id, entity] : entities_) {
      std::string record = entity.Serialize();
      out << record.size() << "\n" << record;
    }
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::IOError("write failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::Ok();
}

common::Status DataStore::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::unordered_map<std::string, Entity> loaded;
  std::string size_line;
  while (std::getline(in, size_line)) {
    if (size_line.empty()) continue;
    size_t n = 0;
    try {
      n = std::stoull(size_line);
    } catch (...) {
      return Status::Corruption("bad record size in " + path);
    }
    std::string record(n, '\0');
    in.read(record.data(), static_cast<std::streamsize>(n));
    if (static_cast<size_t>(in.gcount()) != n) {
      return Status::Corruption("truncated record in " + path);
    }
    auto entity = Entity::Deserialize(record);
    if (!entity.ok()) return entity.status();
    std::string id = entity->id();
    loaded[id] = std::move(entity).value();
  }
  std::lock_guard<std::mutex> lock(mu_);
  entities_ = std::move(loaded);
  return Status::Ok();
}

}  // namespace wf::platform
