#include "platform/geo_miner.h"

#include <set>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace wf::platform {

namespace {

// A compact gazetteer: region -> surface forms. Enough to exercise the
// pipeline; production deployments load a real gazetteer the same way.
struct GazetteerEntry {
  const char* region;
  const char* variants;  // ';'-separated
};

constexpr GazetteerEntry kGazetteer[] = {
    {"united states", "United States;U.S.;USA;America"},
    {"united kingdom", "United Kingdom;U.K.;Britain;England"},
    {"germany", "Germany;Berlin"},
    {"france", "France;Paris"},
    {"japan", "Japan;Tokyo"},
    {"china", "China;Beijing;Shanghai"},
    {"india", "India;Mumbai;Delhi"},
    {"brazil", "Brazil;Sao Paulo"},
    {"canada", "Canada;Toronto;Ottawa"},
    {"texas", "Texas;Houston;Dallas"},
    {"california", "California;San Jose;San Francisco;Los Angeles"},
    {"new york", "New York;Manhattan"},
    {"gulf of mexico", "Gulf of Mexico"},
    {"north sea", "North Sea"},
};

}  // namespace

GeoContextMiner::GeoContextMiner() {
  int id = 0;
  for (const GazetteerEntry& g : kGazetteer) {
    spot::SynonymSet set;
    set.id = id;
    std::vector<std::string> variants = common::SplitExact(g.variants, ";");
    set.canonical = variants[0];
    set.variants.assign(variants.begin() + 1, variants.end());
    region_of_set_[id] = g.region;
    gazetteer_.AddSynonymSet(set);
    ++id;
  }
}

std::string GeoContextMiner::GeoConceptToken(const std::string& region) {
  std::string out = common::ToLower(region);
  for (char& c : out) {
    if (c == ' ') c = '_';
  }
  return "geo/" + out;
}

common::Status GeoContextMiner::Process(Entity& entity) {
  return Process(entity, MineContext{});
}

common::Status GeoContextMiner::Process(Entity& entity,
                                        const MineContext& context) {
  if (entity.body().empty()) return common::Status::Ok();
  text::TokenStream local;
  const text::TokenStream* tokens_ptr;
  if (context.analysis != nullptr) {
    tokens_ptr = &context.analysis->tokens;
  } else {
    text::Tokenizer tokenizer;
    local = tokenizer.Tokenize(entity.body());
    tokens_ptr = &local;
  }
  const text::TokenStream& tokens = *tokens_ptr;
  std::set<std::string> regions;
  for (const spot::SubjectSpot& spot : gazetteer_.Spot(tokens)) {
    // .at(): every synset id came from the gazetteer, and operator[] on a
    // shared map would be a write from concurrent mining workers.
    const std::string& region = region_of_set_.at(spot.synset_id);
    AnnotationSpan span;
    span.begin = tokens[spot.begin_token].begin;
    span.end = tokens[spot.end_token - 1].end;
    span.attrs["region"] = region;
    entity.AddAnnotation("geo", std::move(span));
    regions.insert(region);
  }
  for (const std::string& region : regions) {
    entity.AddConceptToken(GeoConceptToken(region));
  }
  return common::Status::Ok();
}

}  // namespace wf::platform
