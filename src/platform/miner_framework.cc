#include "platform/miner_framework.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "platform/mine_executor.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::platform {

using ::wf::common::Status;

MinerPipeline::MinerMetrics MinerPipeline::ResolveMetrics(
    const std::string& miner_name) const {
  MinerMetrics handles;
  if (metrics_ == nullptr) return handles;
  const std::string prefix = "miner/" + miner_name + "/";
  handles.entities = metrics_->GetCounter(prefix + "entities_total");
  handles.failures = metrics_->GetCounter(prefix + "failures_total");
  handles.quarantined = metrics_->GetCounter(prefix + "quarantined_total");
  handles.stage_us = metrics_->GetHistogram(
      prefix + "stage_us", obs::DefaultLatencyBoundsUs(), /*timing=*/true);
  return handles;
}

void MinerPipeline::AddMiner(std::unique_ptr<EntityMiner> miner) {
  common::MutexLock lock(stats_mu_);
  stats_.push_back(MinerStats{miner->name()});
  metric_handles_.push_back(ResolveMetrics(miner->name()));
  miners_.push_back(std::move(miner));
}

void MinerPipeline::AttachMetrics(obs::MetricsRegistry* metrics) {
  common::MutexLock lock(stats_mu_);
  metrics_ = metrics;
  for (size_t i = 0; i < miners_.size(); ++i) {
    metric_handles_[i] = ResolveMetrics(miners_[i]->name());
  }
}

MineContext MinerPipeline::BuildContext(const Entity& entity,
                                        bool need_analysis) const {
  MineContext context;
  if (!need_analysis || entity.body().empty()) return context;
  context.analysis =
      analysis_provider_ != nullptr
          ? analysis_provider_->Analyze(entity.id(), entity.body())
          : core::AnalyzeDocument(entity.body());
  return context;
}

common::Status MinerPipeline::ProcessEntity(Entity& entity) {
  bool need_analysis = false;
  for (size_t i = 0; i < miners_.size(); ++i) {
    if (miners_[i]->wants_analysis()) {
      common::MutexLock lock(stats_mu_);
      if (!stats_[i].quarantined) {
        need_analysis = true;
        break;
      }
    }
  }
  const MineContext context = BuildContext(entity, need_analysis);
  for (size_t i = 0; i < miners_.size(); ++i) {
    MinerMetrics handles;
    {
      common::MutexLock lock(stats_mu_);
      if (stats_[i].quarantined) continue;
      handles = metric_handles_[i];
    }
    const uint64_t start_us = obs::MonotonicNowUs();
    Status s = miners_[i]->Process(entity, context);
    const uint64_t elapsed = obs::MonotonicNowUs() - start_us;
    if (handles.stage_us != nullptr) handles.stage_us->Record(elapsed);
    if (handles.entities != nullptr) handles.entities->Add(1);
    if (!s.ok() && handles.failures != nullptr) handles.failures->Add(1);
    {
      common::MutexLock lock(stats_mu_);
      stats_[i].total_time += std::chrono::microseconds(elapsed);
      ++stats_[i].entities;
      if (s.ok()) {
        stats_[i].consecutive_failures = 0;
      } else {
        ++stats_[i].failures;
        ++stats_[i].consecutive_failures;
        if (quarantine_threshold_ > 0 &&
            stats_[i].consecutive_failures >= quarantine_threshold_ &&
            !stats_[i].quarantined) {
          stats_[i].quarantined = true;
          if (handles.quarantined != nullptr) handles.quarantined->Add(1);
          WF_LOG(Warning) << "quarantining miner '" << stats_[i].name
                          << "' after " << stats_[i].consecutive_failures
                          << " consecutive failures: " << s.ToString();
        }
      }
    }
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void MinerPipeline::ClearQuarantines() {
  common::MutexLock lock(stats_mu_);
  for (MinerStats& stats : stats_) {
    stats.quarantined = false;
    stats.consecutive_failures = 0;
  }
}

void MinerPipeline::ProcessStore(DataStore& store) {
  ProcessStore(store, nullptr);
}

void MinerPipeline::ProcessStore(DataStore& store, MineExecutor* executor) {
  // Canonical sweep order: sorted by id. The snapshot decouples mining
  // from the store lock, so a stats RPC mid-sweep never blocks on a slow
  // miner, and the parallel path mutates only thread-private copies.
  std::vector<Entity> entities = store.SnapshotSorted();
  const size_t entity_count = entities.size();
  const size_t miner_count = miners_.size();
  if (miner_count == 0 || entity_count == 0) return;

  // Sweep-boundary quarantine snapshot (see header contract): the active
  // set is fixed before the first entity, so it cannot depend on the order
  // entities happen to finish in.
  std::vector<char> active(miner_count, 0);
  std::vector<MinerMetrics> handles(miner_count);
  {
    common::MutexLock lock(stats_mu_);
    for (size_t i = 0; i < miner_count; ++i) {
      active[i] = stats_[i].quarantined ? 0 : 1;
      handles[i] = metric_handles_[i];
    }
  }
  bool need_analysis = false;
  bool all_parallel_safe = true;
  for (size_t i = 0; i < miner_count; ++i) {
    if (!active[i]) continue;
    if (miners_[i]->wants_analysis()) need_analysis = true;
    if (!miners_[i]->parallel_safe()) all_parallel_safe = false;
  }

  // Per-(entity, miner) outcome and elapsed-time matrices, filled by
  // whichever thread runs the entity and replayed in canonical order
  // below. Indexed [entity * miner_count + miner].
  std::vector<StepOutcome> outcomes(entity_count * miner_count,
                                    StepOutcome::kNotRun);
  std::vector<uint64_t> elapsed_us(entity_count * miner_count, 0);

  auto run_entity = [&](size_t e) {
    Entity& entity = entities[e];
    const MineContext context = BuildContext(entity, need_analysis);
    for (size_t i = 0; i < miner_count; ++i) {
      if (!active[i]) continue;
      const uint64_t start_us = obs::MonotonicNowUs();
      Status s = miners_[i]->Process(entity, context);
      const uint64_t elapsed = obs::MonotonicNowUs() - start_us;
      elapsed_us[e * miner_count + i] = elapsed;
      outcomes[e * miner_count + i] =
          s.ok() ? StepOutcome::kOk : StepOutcome::kFailed;
      if (handles[i].stage_us != nullptr) handles[i].stage_us->Record(elapsed);
      if (handles[i].entities != nullptr) handles[i].entities->Add(1);
      if (!s.ok()) {
        if (handles[i].failures != nullptr) handles[i].failures->Add(1);
        break;  // first failure stops this entity's chain
      }
    }
  };

  if (executor != nullptr && all_parallel_safe) {
    executor->ParallelFor(entity_count, run_entity);
  } else {
    for (size_t e = 0; e < entity_count; ++e) run_entity(e);
  }

  // Commit in canonical order on the calling thread: identical Upsert
  // sequence at every thread count means identical store layout (and
  // byte-identical snapshots). A failed segment flush mid-commit is a
  // storage-layer fault the crash-recovery path owns; the commit itself
  // must not be abandoned halfway or the sweep diverges from the contract.
  for (Entity& entity : entities) {
    common::Status upserted = store.Upsert(std::move(entity));
    (void)upserted;
  }

  // Replay the outcome matrix in canonical order to update streaks and
  // quarantine — the same trips fire regardless of execution interleaving.
  common::MutexLock lock(stats_mu_);
  for (size_t e = 0; e < entity_count; ++e) {
    for (size_t i = 0; i < miner_count; ++i) {
      const StepOutcome outcome = outcomes[e * miner_count + i];
      if (outcome == StepOutcome::kNotRun) continue;
      stats_[i].total_time +=
          std::chrono::microseconds(elapsed_us[e * miner_count + i]);
      ++stats_[i].entities;
      if (outcome == StepOutcome::kOk) {
        stats_[i].consecutive_failures = 0;
        continue;
      }
      ++stats_[i].failures;
      ++stats_[i].consecutive_failures;
      if (quarantine_threshold_ > 0 &&
          stats_[i].consecutive_failures >= quarantine_threshold_ &&
          !stats_[i].quarantined) {
        stats_[i].quarantined = true;
        if (handles[i].quarantined != nullptr) handles[i].quarantined->Add(1);
        WF_LOG(Warning) << "quarantining miner '" << stats_[i].name
                        << "' after " << stats_[i].consecutive_failures
                        << " consecutive failures";
      }
    }
  }
}

std::vector<MinerPipeline::MinerStats> MinerPipeline::Stats() const {
  common::MutexLock lock(stats_mu_);
  return stats_;
}

common::Status SentenceBoundaryMiner::Process(Entity& entity) {
  return Process(entity, MineContext{});
}

namespace {

// Sentence boundaries and word counts only need tokens: without a shared
// artifact these miners tokenize locally instead of paying for the full
// tag/parse pipeline they would not use.
void TokenView(const MineContext& context, const std::string& body,
               text::TokenStream* local, const text::TokenStream** tokens,
               std::vector<text::SentenceSpan>* sentences) {
  if (context.analysis != nullptr) {
    *tokens = &context.analysis->tokens;
    if (sentences != nullptr) *sentences = context.analysis->sentences;
    return;
  }
  text::Tokenizer tokenizer;
  *local = tokenizer.Tokenize(body);
  *tokens = local;
  if (sentences != nullptr) {
    text::SentenceSplitter splitter;
    *sentences = splitter.Split(*local);
  }
}

}  // namespace

common::Status SentenceBoundaryMiner::Process(Entity& entity,
                                              const MineContext& context) {
  const std::string& body = entity.body();
  if (body.empty()) return Status::Ok();
  text::TokenStream local;
  const text::TokenStream* tokens = nullptr;
  std::vector<text::SentenceSpan> sentences;
  TokenView(context, body, &local, &tokens, &sentences);
  for (const text::SentenceSpan& span : sentences) {
    AnnotationSpan ann;
    ann.begin = (*tokens)[span.begin_token].begin;
    ann.end = (*tokens)[span.end_token - 1].end;
    entity.AddAnnotation("sentences", std::move(ann));
  }
  return Status::Ok();
}

common::Status TokenStatsMiner::Process(Entity& entity) {
  return Process(entity, MineContext{});
}

common::Status TokenStatsMiner::Process(Entity& entity,
                                        const MineContext& context) {
  text::TokenStream local;
  const text::TokenStream* tokens = nullptr;
  TokenView(context, entity.body(), &local, &tokens, nullptr);
  size_t words = 0;
  for (const text::Token& t : *tokens) {
    if (t.kind == text::TokenKind::kWord) ++words;
  }
  entity.SetField("token_count", common::StrFormat("%zu", tokens->size()));
  entity.SetField("word_count", common::StrFormat("%zu", words));
  return Status::Ok();
}

}  // namespace wf::platform
