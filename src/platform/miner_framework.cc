#include "platform/miner_framework.h"

#include "common/string_util.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::platform {

using ::wf::common::Status;

void MinerPipeline::AddMiner(std::unique_ptr<EntityMiner> miner) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.push_back(MinerStats{miner->name(), 0, 0,
                              std::chrono::microseconds{0}});
  miners_.push_back(std::move(miner));
}

common::Status MinerPipeline::ProcessEntity(Entity& entity) {
  for (size_t i = 0; i < miners_.size(); ++i) {
    auto start = std::chrono::steady_clock::now();
    Status s = miners_[i]->Process(entity);
    auto end = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_[i].total_time +=
          std::chrono::duration_cast<std::chrono::microseconds>(end - start);
      ++stats_[i].entities;
      if (!s.ok()) ++stats_[i].failures;
    }
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void MinerPipeline::ProcessStore(DataStore& store) {
  store.ForEachMutable([this](Entity& entity) {
    (void)ProcessEntity(entity);
  });
}

std::vector<MinerPipeline::MinerStats> MinerPipeline::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

common::Status SentenceBoundaryMiner::Process(Entity& entity) {
  const std::string& body = entity.body();
  if (body.empty()) return Status::Ok();
  text::Tokenizer tokenizer;
  text::TokenStream tokens = tokenizer.Tokenize(body);
  text::SentenceSplitter splitter;
  for (const text::SentenceSpan& span : splitter.Split(tokens)) {
    AnnotationSpan ann;
    ann.begin = tokens[span.begin_token].begin;
    ann.end = tokens[span.end_token - 1].end;
    entity.AddAnnotation("sentences", std::move(ann));
  }
  return Status::Ok();
}

common::Status TokenStatsMiner::Process(Entity& entity) {
  const std::string& body = entity.body();
  text::Tokenizer tokenizer;
  text::TokenStream tokens = tokenizer.Tokenize(body);
  size_t words = 0;
  for (const text::Token& t : tokens) {
    if (t.kind == text::TokenKind::kWord) ++words;
  }
  entity.SetField("token_count", common::StrFormat("%zu", tokens.size()));
  entity.SetField("word_count", common::StrFormat("%zu", words));
  return Status::Ok();
}

}  // namespace wf::platform
