#include "platform/miner_framework.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::platform {

using ::wf::common::Status;

MinerPipeline::MinerMetrics MinerPipeline::ResolveMetrics(
    const std::string& miner_name) const {
  MinerMetrics handles;
  if (metrics_ == nullptr) return handles;
  const std::string prefix = "miner/" + miner_name + "/";
  handles.entities = metrics_->GetCounter(prefix + "entities_total");
  handles.failures = metrics_->GetCounter(prefix + "failures_total");
  handles.quarantined = metrics_->GetCounter(prefix + "quarantined_total");
  handles.stage_us = metrics_->GetHistogram(
      prefix + "stage_us", obs::DefaultLatencyBoundsUs(), /*timing=*/true);
  return handles;
}

void MinerPipeline::AddMiner(std::unique_ptr<EntityMiner> miner) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.push_back(MinerStats{miner->name()});
  metric_handles_.push_back(ResolveMetrics(miner->name()));
  miners_.push_back(std::move(miner));
}

void MinerPipeline::AttachMetrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  metrics_ = metrics;
  for (size_t i = 0; i < miners_.size(); ++i) {
    metric_handles_[i] = ResolveMetrics(miners_[i]->name());
  }
}

common::Status MinerPipeline::ProcessEntity(Entity& entity) {
  for (size_t i = 0; i < miners_.size(); ++i) {
    MinerMetrics handles;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (stats_[i].quarantined) continue;
      handles = metric_handles_[i];
    }
    const uint64_t start_us = obs::MonotonicNowUs();
    Status s = miners_[i]->Process(entity);
    const uint64_t elapsed = obs::MonotonicNowUs() - start_us;
    if (handles.stage_us != nullptr) handles.stage_us->Record(elapsed);
    if (handles.entities != nullptr) handles.entities->Add(1);
    if (!s.ok() && handles.failures != nullptr) handles.failures->Add(1);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_[i].total_time += std::chrono::microseconds(elapsed);
      ++stats_[i].entities;
      if (s.ok()) {
        stats_[i].consecutive_failures = 0;
      } else {
        ++stats_[i].failures;
        ++stats_[i].consecutive_failures;
        if (quarantine_threshold_ > 0 &&
            stats_[i].consecutive_failures >= quarantine_threshold_ &&
            !stats_[i].quarantined) {
          stats_[i].quarantined = true;
          if (handles.quarantined != nullptr) handles.quarantined->Add(1);
          WF_LOG(Warning) << "quarantining miner '" << stats_[i].name
                          << "' after " << stats_[i].consecutive_failures
                          << " consecutive failures: " << s.ToString();
        }
      }
    }
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void MinerPipeline::ClearQuarantines() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (MinerStats& stats : stats_) {
    stats.quarantined = false;
    stats.consecutive_failures = 0;
  }
}

void MinerPipeline::ProcessStore(DataStore& store) {
  store.ForEachMutable([this](Entity& entity) {
    (void)ProcessEntity(entity);
  });
}

std::vector<MinerPipeline::MinerStats> MinerPipeline::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

common::Status SentenceBoundaryMiner::Process(Entity& entity) {
  const std::string& body = entity.body();
  if (body.empty()) return Status::Ok();
  text::Tokenizer tokenizer;
  text::TokenStream tokens = tokenizer.Tokenize(body);
  text::SentenceSplitter splitter;
  for (const text::SentenceSpan& span : splitter.Split(tokens)) {
    AnnotationSpan ann;
    ann.begin = tokens[span.begin_token].begin;
    ann.end = tokens[span.end_token - 1].end;
    entity.AddAnnotation("sentences", std::move(ann));
  }
  return Status::Ok();
}

common::Status TokenStatsMiner::Process(Entity& entity) {
  const std::string& body = entity.body();
  text::Tokenizer tokenizer;
  text::TokenStream tokens = tokenizer.Tokenize(body);
  size_t words = 0;
  for (const text::Token& t : tokens) {
    if (t.kind == text::TokenKind::kWord) ++words;
  }
  entity.SetField("token_count", common::StrFormat("%zu", tokens.size()));
  entity.SetField("word_count", common::StrFormat("%zu", words));
  return Status::Ok();
}

}  // namespace wf::platform
