#include "platform/entity.h"

#include <sstream>

#include "common/string_util.h"

namespace wf::platform {

namespace {

using ::wf::common::Status;

// Escapes newlines and backslashes so every record stays line-oriented.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        default:
          out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

const std::string& Entity::GetField(const std::string& name) const {
  static const std::string* kEmpty = new std::string();
  auto it = fields_.find(name);
  return it == fields_.end() ? *kEmpty : it->second;
}

const std::vector<AnnotationSpan>* Entity::GetAnnotations(
    const std::string& layer) const {
  auto it = annotations_.find(layer);
  return it == annotations_.end() ? nullptr : &it->second;
}

std::string Entity::Serialize() const {
  std::ostringstream out;
  out << "id\t" << Escape(id_) << "\n";
  out << "source\t" << Escape(source_) << "\n";
  for (const auto& [name, value] : fields_) {
    out << "field\t" << Escape(name) << "\t" << Escape(value) << "\n";
  }
  for (const auto& [layer, spans] : annotations_) {
    for (const AnnotationSpan& span : spans) {
      out << "ann\t" << Escape(layer) << "\t" << span.begin << "\t"
          << span.end;
      for (const auto& [k, v] : span.attrs) {
        out << "\t" << Escape(k) << "=" << Escape(v);
      }
      out << "\n";
    }
  }
  for (const std::string& token : concept_tokens_) {
    out << "concept\t" << Escape(token) << "\n";
  }
  return out.str();
}

common::Result<Entity> Entity::Deserialize(const std::string& data) {
  Entity e;
  std::istringstream in(data);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> parts = common::SplitExact(line, "\t");
    const std::string& kind = parts[0];
    auto bad = [&](const char* why) {
      return Status::Corruption(common::StrFormat(
          "entity record line %d: %s", lineno, why));
    };
    if (kind == "id" && parts.size() == 2) {
      e.id_ = Unescape(parts[1]);
    } else if (kind == "source" && parts.size() == 2) {
      e.source_ = Unescape(parts[1]);
    } else if (kind == "field" && parts.size() == 3) {
      e.fields_[Unescape(parts[1])] = Unescape(parts[2]);
    } else if (kind == "ann" && parts.size() >= 4) {
      AnnotationSpan span;
      span.begin = std::stoull(parts[2]);
      span.end = std::stoull(parts[3]);
      for (size_t i = 4; i < parts.size(); ++i) {
        size_t eq = parts[i].find('=');
        if (eq == std::string::npos) return bad("attr without '='");
        span.attrs[Unescape(parts[i].substr(0, eq))] =
            Unescape(parts[i].substr(eq + 1));
      }
      e.annotations_[Unescape(parts[1])].push_back(std::move(span));
    } else if (kind == "concept" && parts.size() == 2) {
      e.concept_tokens_.push_back(Unescape(parts[1]));
    } else {
      return bad("unknown record kind");
    }
  }
  if (e.id_.empty()) return Status::Corruption("entity without id");
  return e;
}

}  // namespace wf::platform
