#ifndef WF_PLATFORM_FAULT_H_
#define WF_PLATFORM_FAULT_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace wf::platform {

// What the injector may do to a single service (or node prefix). All
// probabilities are in [0, 1]; latency is added on top of the bus's own
// simulated round trip.
struct FaultPolicy {
  // Call is dropped before reaching the handler: Status::Unavailable.
  double fail_probability = 0.0;
  // Handler runs, but the response arrives mangled. The bus models the
  // end-to-end checksum real protocols carry, so callers see a detectable
  // Status::Corruption rather than silently wrong bytes.
  double corrupt_probability = 0.0;
  // Deterministic extra latency per call, plus uniform jitter in
  // [0, latency_jitter_us].
  uint64_t added_latency_us = 0;
  uint64_t latency_jitter_us = 0;
  // Gray failure: the service answers correctly but gets slower with every
  // call — added latency grows by this much per call to the service,
  // capped at max_added_latency_us (0 ramp disables). Models the
  // heap-fragmented / disk-degraded node that stays "up" in health checks
  // while quietly missing every deadline; the deterministic ramp lets a
  // chaos run replay the exact degradation curve from its seed.
  uint64_t latency_ramp_per_call_us = 0;
  uint64_t max_added_latency_us = 0;  // 0 = uncapped
};

// A slow-node (gray-failure) policy: no drops or corruption, just latency
// that starts at `start_us` and climbs `ramp_us` per call toward `cap_us`,
// with uniform jitter in [0, jitter_us].
FaultPolicy SlowNodePolicy(uint64_t start_us, uint64_t ramp_us,
                           uint64_t cap_us, uint64_t jitter_us = 0);

// Deterministic chaos source for the simulated cluster. Attach one to a
// VinciBus (VinciBus::AttachFaultInjector) and every Call/CallAll consults
// it before dispatching. Policies are keyed by service-name prefix, so
// "node/3/" degrades one whole node while "node/" degrades the fleet; the
// longest matching prefix wins. Partitions are a separate on/off axis that
// can be flipped at runtime to model a node dropping off the network.
//
// Reproducibility: every decision is a pure function of (seed, service
// name, per-service call sequence number) — not of a shared RNG stream —
// so concurrently scattered calls get the same verdicts regardless of
// thread interleaving, and a chaos run replays exactly from its seed.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Policy management (longest-prefix match at decision time).
  void SetPolicy(const std::string& service_prefix, FaultPolicy policy);
  void ClearPolicy(const std::string& service_prefix);
  void ClearAllPolicies();

  // Whole-node partitions: every call to a matching service fails
  // Unavailable until the prefix is healed. Independent of policies.
  void Partition(const std::string& service_prefix);
  void Heal(const std::string& service_prefix);
  void HealAll();
  bool IsPartitioned(const std::string& service) const;

  // The verdict for one call, in the order the bus applies it: partition
  // check first, then drop, then latency, then (post-handler) corruption.
  struct Decision {
    enum class Action { kDeliver, kUnavailable, kCorrupt };
    Action action = Action::kDeliver;
    uint64_t extra_latency_us = 0;
  };
  Decision Decide(const std::string& service);

  // Injection counters, for assertions and chaos-run reports.
  struct Counters {
    size_t delivered = 0;
    size_t failed = 0;
    size_t corrupted = 0;
    size_t partitioned = 0;
  };
  Counters counters() const;

 private:
  // Longest-prefix policy lookup; nullptr when nothing matches. Requires
  // mu_ held.
  const FaultPolicy* MatchPolicyLocked(const std::string& service) const
      WF_REQUIRES(mu_);

  const uint64_t seed_;

  mutable common::Mutex mu_;
  std::map<std::string, FaultPolicy> policies_ WF_GUARDED_BY(mu_);
  std::set<std::string> partitions_ WF_GUARDED_BY(mu_);
  // Per-service call sequence; the decision stream for a service depends
  // only on how many calls that service has seen, not on global order.
  std::map<std::string, uint64_t> call_seq_ WF_GUARDED_BY(mu_);
  Counters counters_ WF_GUARDED_BY(mu_);
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_FAULT_H_
