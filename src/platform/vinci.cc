#include "platform/vinci.h"

#include <chrono>
#include <thread>

#include "common/string_util.h"

namespace wf::platform {

using ::wf::common::Status;

common::Status VinciBus::RegisterService(const std::string& name,
                                         Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = services_.emplace(name, std::move(handler));
  if (!inserted) return Status::AlreadyExists("service exists: " + name);
  return Status::Ok();
}

common::Status VinciBus::UnregisterService(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (services_.erase(name) == 0) {
    return Status::NotFound("no service: " + name);
  }
  return Status::Ok();
}

void VinciBus::SimulateLatency() const {
  uint64_t us = simulated_latency_us_.load(std::memory_order_relaxed);
  if (us == 0) return;
  // Sleeping (rather than spinning) lets concurrent scattered calls overlap
  // their simulated round trips, as real in-flight RPCs do.
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

common::Result<std::string> VinciBus::Call(const std::string& service,
                                           const std::string& request) const {
  SimulateLatency();
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = services_.find(service);
    if (it == services_.end()) {
      return Status::NotFound("no service: " + service);
    }
    handler = it->second;
    ++call_counts_[service];
  }
  // The handler runs outside the bus lock so services may call each other.
  return handler(request);
}

std::vector<std::pair<std::string, std::string>> VinciBus::CallAll(
    const std::string& prefix, const std::string& request) const {
  std::vector<std::pair<std::string, Handler>> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = services_.lower_bound(prefix);
         it != services_.end() && common::StartsWith(it->first, prefix);
         ++it) {
      targets.emplace_back(it->first, it->second);
      ++call_counts_[it->first];
    }
  }
  // Scatter in parallel — the gather latency is one round trip, not the
  // sum over nodes, matching the real protocol's concurrent RPCs.
  std::vector<std::pair<std::string, std::string>> out(targets.size());
  std::vector<std::thread> in_flight;
  in_flight.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    in_flight.emplace_back([this, &targets, &out, i, &request] {
      SimulateLatency();
      out[i] = {targets[i].first, targets[i].second(request)};
    });
  }
  for (std::thread& t : in_flight) t.join();
  return out;
}

std::vector<std::string> VinciBus::Services() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, handler] : services_) out.push_back(name);
  return out;
}

size_t VinciBus::CallCount(const std::string& service) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = call_counts_.find(service);
  return it == call_counts_.end() ? 0 : it->second;
}

// --- Wire helpers -----------------------------------------------------------

namespace {

std::string EscapeValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == '\\' && i + 1 < v.size()) {
      ++i;
      out += (v[i] == 'n') ? '\n' : v[i];
    } else {
      out += v[i];
    }
  }
  return out;
}

}  // namespace

std::string EncodeMessage(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::string out;
  for (const auto& [k, v] : pairs) {
    out += k;
    out += '=';
    out += EscapeValue(v);
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> DecodeMessage(
    const std::string& message) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& line : common::SplitExact(message, "\n")) {
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) continue;
    out.emplace_back(line.substr(0, eq), UnescapeValue(line.substr(eq + 1)));
  }
  return out;
}

std::string GetMessageField(const std::string& message,
                            const std::string& key) {
  for (const auto& [k, v] : DecodeMessage(message)) {
    if (k == key) return v;
  }
  return "";
}

std::vector<std::string> GetMessageFields(const std::string& message,
                                          const std::string& key) {
  std::vector<std::string> out;
  for (const auto& [k, v] : DecodeMessage(message)) {
    if (k == key) out.push_back(v);
  }
  return out;
}

}  // namespace wf::platform
