#include "platform/vinci.h"
// wflint: allow(platform-raw-thread) — ScatterPool is one of the shared
// pool implementations the rule points everyone else at.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>

#include "common/hash.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "platform/deadline.h"
#include "platform/fault.h"
#include "platform/health.h"

namespace wf::platform {

using ::wf::common::Status;
using ::wf::common::StatusCode;

// --- Bounded scatter pool ---------------------------------------------------
//
// A small reusable worker pool for CallAll: a wide fan-out under injected
// latency used to spawn one thread per target, which a few hundred nodes
// turn into a few hundred threads. Tasks of one scatter form a batch;
// workers and the scattering caller both claim tasks from it, so progress
// never depends on a free pool thread (a handler that scatters again from
// inside a pool thread drains its own nested batch itself — no deadlock).
class VinciBus::ScatterPool {
 public:
  explicit ScatterPool(size_t threads) {
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ScatterPool() {
    {
      common::MutexLock lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  // Enqueues one detached task; it runs on some pool worker, unordered
  // relative to batches. The hedged gather uses this for primaries and
  // hedges because the coordinator must keep watching the clock instead of
  // parking inside a straggler's simulated round trip (RunAll would make
  // the caller claim — and sleep through — a task itself).
  void Submit(std::function<void()> task) {
    {
      common::MutexLock lock(mu_);
      singles_.push_back(std::move(task));
    }
    work_cv_.notify_one();
  }

  // Runs every task, returning once all have finished. The calling thread
  // participates in its own batch.
  void RunAll(std::vector<std::function<void()>>* tasks)
      WF_NO_THREAD_SAFETY_ANALYSIS {
    if (tasks->empty()) return;
    auto batch = std::make_shared<Batch>();
    batch->tasks = tasks;
    batch->size = tasks->size();
    {
      common::MutexLock lock(mu_);
      queue_.push_back(batch);
    }
    work_cv_.notify_all();
    for (;;) {
      size_t i = batch->next.fetch_add(1);
      if (i >= batch->size) break;
      (*tasks)[i]();
      common::MutexLock lock(mu_);
      if (++batch->done == batch->size) done_cv_.notify_all();
    }
    std::unique_lock<common::Mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch->done == batch->size; });
    // The batch may still sit in the queue with all tasks claimed; remove
    // it so no worker touches it after `tasks` goes out of scope.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == batch) {
        queue_.erase(it);
        break;
      }
    }
  }

 private:
  struct Batch {
    std::vector<std::function<void()>>* tasks = nullptr;
    size_t size = 0;                // copy: survives `tasks` going away
    std::atomic<size_t> next{0};    // next unclaimed task index
    size_t done = 0;                // finished tasks; guarded by pool mu_
  };

  // The analysis cannot follow a unique_lock handed in and out of cv
  // waits; the fields stay annotated so every other access is checked.
  void WorkerLoop() WF_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<common::Mutex> lock(mu_);
    for (;;) {
      work_cv_.wait(lock,
                    [&] { return stop_ || !queue_.empty() || !singles_.empty(); });
      if (stop_) return;
      if (!singles_.empty()) {
        std::function<void()> task = std::move(singles_.front());
        singles_.pop_front();
        lock.unlock();
        task();
        lock.lock();
        continue;
      }
      std::shared_ptr<Batch> batch = queue_.front();
      size_t i = batch->next.fetch_add(1);
      if (i >= batch->size) {
        if (!queue_.empty() && queue_.front() == batch) queue_.pop_front();
        continue;
      }
      lock.unlock();
      (*batch->tasks)[i]();
      lock.lock();
      if (++batch->done == batch->size) done_cv_.notify_all();
    }
  }

  // Started in the constructor, joined in the destructor, untouched in
  // between: lifecycle-immutable, so declared above the mutex.
  std::vector<std::thread> workers_;

  common::Mutex mu_;
  // condition_variable_any, not condition_variable: it waits on the
  // annotated common::Mutex directly.
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  std::deque<std::shared_ptr<Batch>> queue_ WF_GUARDED_BY(mu_);
  std::deque<std::function<void()>> singles_ WF_GUARDED_BY(mu_);
  bool stop_ WF_GUARDED_BY(mu_) = false;
};

namespace {

size_t ScatterThreads() {
  size_t hw = std::thread::hardware_concurrency();
  return std::min<size_t>(8, std::max<size_t>(2, hw));
}

}  // namespace

VinciBus::VinciBus() = default;
VinciBus::~VinciBus() { Shutdown(); }

VinciBus::DispatchGuard::DispatchGuard(const VinciBus& bus) : bus_(bus) {
  common::MutexLock lock(bus_.dispatch_mu_);
  ++bus_.active_dispatches_;
}

VinciBus::DispatchGuard::~DispatchGuard() {
  bool idle;
  {
    common::MutexLock lock(bus_.dispatch_mu_);
    idle = --bus_.active_dispatches_ == 0;
  }
  if (idle) bus_.dispatch_cv_.notify_all();
}

void VinciBus::QuiesceDispatches() const WF_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<common::Mutex> lock(dispatch_mu_);
  dispatch_cv_.wait(lock, [&] { return active_dispatches_ == 0; });
}

void VinciBus::AttachFaultInjector(FaultInjector* injector) {
  fault_injector_.store(injector, std::memory_order_release);
  QuiesceDispatches();
}

void VinciBus::AttachMetrics(obs::MetricsRegistry* metrics) {
  metrics_.store(metrics, std::memory_order_release);
  QuiesceDispatches();
}

void VinciBus::AttachHealth(HealthScoreboard* health) {
  health_.store(health, std::memory_order_release);
  QuiesceDispatches();
}

void VinciBus::AttachTracer(obs::Tracer* tracer) {
  tracer_.store(tracer, std::memory_order_release);
  QuiesceDispatches();
}

void VinciBus::Shutdown() {
  std::unique_ptr<ScatterPool> pool;
  {
    common::MutexLock lock(pool_mu_);
    pool = std::move(pool_);
  }
  // Joined outside pool_mu_: a straggler running a nested scatter takes
  // pool_mu_ in EnsurePool, and joining it while holding the lock would
  // deadlock. Unstarted detached tasks are dropped by the pool destructor.
  pool.reset();
  QuiesceDispatches();
}

common::Status VinciBus::RegisterService(const std::string& name,
                                         Handler handler) {
  common::MutexLock lock(mu_);
  auto [it, inserted] = services_.emplace(name, std::move(handler));
  if (!inserted) return Status::AlreadyExists("service exists: " + name);
  return Status::Ok();
}

common::Status VinciBus::UnregisterService(const std::string& name) {
  common::MutexLock lock(mu_);
  if (services_.erase(name) == 0) {
    return Status::NotFound("no service: " + name);
  }
  return Status::Ok();
}

void VinciBus::SimulateLatency(uint64_t extra_us) const {
  uint64_t us = simulated_latency_us_.load(std::memory_order_relaxed) +
                extra_us;
  if (us == 0) return;
  // Sleeping (rather than spinning) lets concurrent scattered calls overlap
  // their simulated round trips, as real in-flight RPCs do.
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void VinciBus::Count(const std::string& name, uint64_t delta) const {
  if (obs::MetricsRegistry* m = metrics_.load(std::memory_order_acquire)) {
    m->GetCounter(name)->Add(delta);
  }
}

void VinciBus::SetBreakerGauge(const std::string& service,
                               int64_t state) const {
  if (obs::MetricsRegistry* m = metrics_.load(std::memory_order_acquire)) {
    m->GetGauge("vinci/breaker/state/" + service)->Set(state);
  }
}

void VinciBus::RecordOutcome(const std::string& service, bool ok) const {
  common::MutexLock lock(breaker_mu_);
  Breaker& b = breakers_[service];
  if (ok) {
    if (b.open) {
      // Successful half-open probe: the circuit closes.
      Count("vinci/breaker/close_total");
      SetBreakerGauge(service, 0);
    }
    b = Breaker{};  // success closes the circuit and clears the streak
    return;
  }
  ++b.consecutive_failures;
  if (b.open) {
    b.rejections = 0;  // failed half-open probe: new rejection window
    Count("vinci/breaker/open_total");
    SetBreakerGauge(service, 1);
  } else if (breaker_config_.failure_threshold > 0 &&
             b.consecutive_failures >= breaker_config_.failure_threshold) {
    b.open = true;
    b.rejections = 0;
    Count("vinci/breaker/open_total");
    SetBreakerGauge(service, 1);
  }
}

common::Result<std::string> VinciBus::CallOnce(const std::string& service,
                                               const std::string& request,
                                               bool* breaker_rejected,
                                               bool feed_breaker) const {
  // Entered before any attachment pointer is loaded, so the quiescing
  // Attach* setters can guarantee the old pointer has no remaining reader.
  DispatchGuard dispatch_guard(*this);
  *breaker_rejected = false;
  // Client-side child span: only requests that carry trace context (see
  // AppendContext) produce one, so untraced traffic stays span-free and
  // identically-seeded traced runs replay the exact same span set.
  obs::Span span;
  if (obs::Tracer* tracer = tracer_.load(std::memory_order_acquire)) {
    obs::SpanContext parent;
    parent.trace_id = obs::IdFromHex(GetMessageField(request, obs::kTraceIdKey));
    parent.span_id = obs::IdFromHex(GetMessageField(request, obs::kSpanIdKey));
    span = tracer->StartSpan(parent, service);
  }
  auto finish = [&span, this, &service](const char* status,
                                        common::Result<std::string> result) {
    if (span.active()) span.SetAttr("status", status);
    if (!result.ok()) Count("vinci/failures/" + service);
    return result;
  };
  {
    common::MutexLock lock(breaker_mu_);
    Breaker& b = breakers_[service];
    if (!feed_breaker) {
      // Hedge attempts observe the breaker without driving it: an open
      // circuit still refuses them, but they neither consume rejection-
      // window slots nor act as the half-open probe — a hedged run must
      // walk the breaker through the exact same state sequence as the
      // unhedged one.
      if (b.open) {
        *breaker_rejected = true;
        if (span.active()) {
          span.SetAttr("status", "rejected");
          span.SetAttr("breaker", "open");
        }
        return Status::Unavailable("circuit open: " + service);
      }
    } else if (b.open && b.rejections < breaker_config_.open_rejections) {
      ++b.rejections;
      *breaker_rejected = true;
      Count("vinci/breaker/rejected/" + service);
      if (span.active()) {
        span.SetAttr("status", "rejected");
        span.SetAttr("breaker", "open");
      }
      return Status::Unavailable("circuit open: " + service);
    } else if (b.open) {
      // Circuit open with the rejection window spent: fall through as the
      // half-open probe.
      Count("vinci/breaker/half_open_total");
      SetBreakerGauge(service, 2);
    }
  }
  // End-to-end deadline gate, stage 1: a request whose budget is already
  // spent is refused before it costs a simulated round trip or a handler
  // dispatch. Deadline refusals never feed the breaker — the service is not
  // sick, the caller is late.
  const Deadline deadline = DeadlineFromRequest(request);
  if (!deadline.infinite() && deadline.expired()) {
    Count("vinci/deadline_rejected_total");
    Count("vinci/deadline_rejected/" + service);
    return finish("deadline_expired", Status::DeadlineExceeded(
                                          "deadline expired before dispatch: " +
                                          service));
  }
  // Service resolution is a local registry lookup — a miss costs no
  // simulated network round trip and says nothing about service health.
  Handler handler;
  {
    common::MutexLock lock(mu_);
    auto it = services_.find(service);
    if (it == services_.end()) {
      if (span.active()) span.SetAttr("status", "not_found");
      return Status::NotFound("no service: " + service);
    }
    handler = it->second;
    ++call_counts_[service];
  }
  Count("vinci/calls/" + service);
  obs::Histogram* latency = nullptr;
  if (obs::MetricsRegistry* m = metrics_.load(std::memory_order_acquire)) {
    latency = m->GetHistogram("vinci/latency_us/" + service,
                              obs::DefaultLatencyBoundsUs(), /*timing=*/true);
  }
  obs::ScopedTimer timer(latency);
  // Health feed: every dispatched attempt (hedges included) reports its
  // observed latency and whether the failure was the service's fault. The
  // scoreboard never touches the metrics registry here, so deterministic
  // exports stay byte-stable (see HealthScoreboard's determinism note).
  auto feed_health = [this, &service, &timer](bool ok) {
    if (HealthScoreboard* h = health_.load(std::memory_order_acquire)) {
      h->RecordCall(service, timer.ElapsedUs(), ok);
    }
  };
  uint64_t extra_latency_us = 0;
  bool corrupt_response = false;
  if (FaultInjector* injector =
          fault_injector_.load(std::memory_order_acquire)) {
    FaultInjector::Decision d = injector->Decide(service);
    if (d.action == FaultInjector::Decision::Action::kUnavailable) {
      if (feed_breaker) RecordOutcome(service, false);
      feed_health(false);
      return finish("unavailable",
                    Status::Unavailable("injected unavailable: " + service));
    }
    corrupt_response = d.action == FaultInjector::Decision::Action::kCorrupt;
    extra_latency_us = d.extra_latency_us;
  }
  SimulateLatency(extra_latency_us);
  // Deadline gate, stage 2: the simulated round trip (plus injected
  // straggler latency) may have consumed the rest of the budget — a real
  // server re-checks on arrival, before doing any work. One clock read
  // decides both the gate and the audit below, so the invariant "no handler
  // ever starts past its deadline" is race-free and provable from metrics.
  const bool expired_at_dispatch =
      !deadline.infinite() &&
      obs::MonotonicNowUs() >= deadline.expires_at_us();
  if (expired_at_dispatch) {
    Count("vinci/deadline_rejected_total");
    Count("vinci/deadline_rejected/" + service);
    // The service burned the whole budget in flight — the gray-failure
    // signature — so this does count against its health, unlike the
    // stage-1 refusal (where the caller arrived already late).
    feed_health(false);
    return finish("deadline_expired",
                  Status::DeadlineExceeded("deadline expired in flight: " +
                                           service));
  }
  // The handler runs outside the bus lock so services may call each other.
  std::string response = handler(request);
  if (expired_at_dispatch) {
    // Tripwire, not control flow: unreachable while the gate above stands,
    // so the overload acceptance test can assert zero deadline-expired
    // handler executions from metrics alone — and a refactor that drops
    // the gate turns that assertion red instead of silently burning work.
    Count("vinci/deadline_expired_handler_runs_total");
  }
  if (corrupt_response) {
    // Real Vinci frames carry end-to-end checksums; a mangled response is
    // detected at the client, not silently consumed.
    if (feed_breaker) RecordOutcome(service, false);
    feed_health(false);
    return finish("corruption",
                  Status::Corruption("response checksum mismatch: " + service));
  }
  if (feed_breaker) RecordOutcome(service, true);
  feed_health(true);
  return finish("ok", std::move(response));
}

common::Result<std::string> VinciBus::Call(const std::string& service,
                                           const std::string& request) const {
  bool breaker_rejected = false;
  return CallOnce(service, request, &breaker_rejected);
}

common::Result<std::string> VinciBus::Call(const std::string& service,
                                           const std::string& request,
                                           const CallOptions& options) const {
  const uint64_t start_us = obs::MonotonicNowUs();
  auto elapsed_us = [start_us] { return obs::MonotonicNowUs() - start_us; };
  // Retries actually performed, recorded on every exit path so the
  // distribution covers successes, exhausted budgets, and deadline cuts.
  auto record_retries = [this, &service](int retries) {
    if (obs::MetricsRegistry* m = metrics_.load(std::memory_order_acquire)) {
      m->GetHistogram("vinci/retries_per_call", obs::DefaultRetryBounds(),
                      /*timing=*/false)
          ->Record(static_cast<uint64_t>(retries));
      if (retries > 0) {
        m->GetCounter("vinci/retry_total/" + service)
            ->Add(static_cast<uint64_t>(retries));
      }
    }
  };
  double backoff_us = static_cast<double>(options.initial_backoff_us);
  for (int attempt = 0;; ++attempt) {
    if (options.deadline_us > 0 && elapsed_us() >= options.deadline_us) {
      record_retries(attempt);
      return Status::DeadlineExceeded("deadline exceeded calling " + service);
    }
    bool breaker_rejected = false;
    auto result = CallOnce(service, request, &breaker_rejected);
    if (options.deadline_us > 0 && elapsed_us() > options.deadline_us) {
      // The response exists, but it landed after the caller's budget — the
      // caller has moved on, exactly like a late RPC on a real cluster.
      record_retries(attempt);
      return Status::DeadlineExceeded("deadline exceeded calling " + service);
    }
    if (result.ok()) {
      record_retries(attempt);
      return result;
    }
    StatusCode code = result.status().code();
    bool retryable = !breaker_rejected && (code == StatusCode::kUnavailable ||
                                           code == StatusCode::kCorruption);
    if (!retryable || attempt >= options.max_retries) {
      record_retries(attempt);
      return result;
    }
    uint64_t sleep_us = static_cast<uint64_t>(std::min(
        backoff_us, static_cast<double>(options.max_backoff_us)));
    // Jitter in [0.5, 1.5): deterministic per draw, but desynchronized
    // across callers so a healed service is not hit by a retry convoy.
    uint64_t seq = jitter_seq_.fetch_add(1, std::memory_order_relaxed);
    common::Rng jitter_rng(common::HashCombine(0x6a177e72ULL, seq));
    sleep_us = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(sleep_us) *
                                 (0.5 + jitter_rng.Double())));
    if (options.deadline_us > 0 &&
        elapsed_us() + sleep_us >= options.deadline_us) {
      record_retries(attempt);
      return Status::DeadlineExceeded("deadline exceeded calling " + service);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    backoff_us *= options.backoff_multiplier;
  }
}

std::vector<std::pair<std::string, common::Result<std::string>>>
VinciBus::CallAll(const std::string& prefix,
                  const std::string& request) const {
  return CallAll(prefix, request, CallOptions{});
}

std::vector<std::pair<std::string, common::Result<std::string>>>
VinciBus::CallAll(const std::string& prefix, const std::string& request,
                  const CallOptions& options) const {
  std::vector<std::string> targets;
  {
    common::MutexLock lock(mu_);
    for (auto it = services_.lower_bound(prefix);
         it != services_.end() && common::StartsWith(it->first, prefix);
         ++it) {
      targets.push_back(it->first);
    }
  }
  // Scatter over the worker pool — the gather latency is a handful of
  // round trips at worst, not the sum over nodes, while the thread count
  // stays bounded however wide the fan-out is. Dispatch goes through
  // CallOnce so faults, breakers, and call counts behave exactly as for
  // point-to-point calls; a target unregistered since the listing simply
  // reports NotFound.
  std::vector<std::pair<std::string, common::Result<std::string>>> out;
  out.reserve(targets.size());
  for (const std::string& name : targets) {
    out.emplace_back(name, Status::Unavailable("not dispatched"));
  }
  // Resilient dispatch only when the options actually ask for it: the plain
  // scatter keeps its exact metric footprint (no per-call retry histogram),
  // so pre-deadline callers and their golden exports are untouched.
  const bool resilient = options.deadline_us > 0 || options.max_retries > 0;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    tasks.push_back([this, &targets, &out, &request, &options, resilient, i] {
      if (resilient) {
        out[i].second = Call(targets[i], request, options);
      } else {
        bool breaker_rejected = false;
        out[i].second = CallOnce(targets[i], request, &breaker_rejected);
      }
    });
  }
  EnsurePool()->RunAll(&tasks);
  return out;
}

VinciBus::ScatterPool* VinciBus::EnsurePool() const {
  common::MutexLock lock(pool_mu_);
  if (!pool_) pool_ = std::make_unique<ScatterPool>(ScatterThreads());
  return pool_.get();
}

namespace {

// Shared state of one hedged gather. Tasks (primaries and hedges) hold a
// shared_ptr, so an abandoned straggler finishing after the gather returned
// publishes into a still-live, already-resolved slot and is ignored —
// cancel-by-ignore, the only cancellation the simulated bus needs.
struct HedgeGather {
  struct Slot {
    bool resolved = false;      // final result chosen (success/failure/abandon)
    bool primary_done = false;  // primary attempt returned
    bool hedge_issued = false;
    bool hedge_done = false;    // hedge attempt returned (if issued)
    // When the primary actually left the scatter pool's queue (0 = not yet).
    // The hedge clock starts here, not at scatter start, so local queueing
    // delay is never mistaken for backend slowness.
    uint64_t primary_start_us = 0;
    common::Result<std::string> result = Status::Unavailable("pending");
    // Primary's failure, preferred over the hedge's when both fail so the
    // reported status matches what the unhedged scatter would have said.
    common::Status primary_failure = Status::Ok();
  };
  // Per-target schedule: hedge delay relative to primary dispatch, abandon
  // time absolute µs; 0 = never. A suspect target's primary runs on its own
  // detached thread (the sick lane) instead of the shared scatter pool, so
  // a straggler sleeping toward the deadline never queues healthy shards'
  // dispatches behind it.
  struct Plan {
    uint64_t hedge_delay_us = 0;
    uint64_t abandon_at_us = 0;
    bool sick_lane = false;
  };

  // Immutable after setup (written before any task is dispatched).
  std::string request;
  CallOptions options;
  std::vector<std::string> targets;

  common::Mutex mu;
  std::condition_variable_any cv;
  std::vector<Slot> slots WF_GUARDED_BY(mu);
  size_t unresolved WF_GUARDED_BY(mu) = 0;
};

}  // namespace

std::vector<std::pair<std::string, common::Result<std::string>>>
VinciBus::CallAllHedged(const std::string& prefix, const std::string& request,
                        const CallOptions& options,
                        const HedgeOptions& hedge) const
    WF_NO_THREAD_SAFETY_ANALYSIS {
  if (!hedge.enabled) return CallAll(prefix, request, options);
  auto g = std::make_shared<HedgeGather>();
  g->request = request;
  g->options = options;
  {
    common::MutexLock lock(mu_);
    for (auto it = services_.lower_bound(prefix);
         it != services_.end() && common::StartsWith(it->first, prefix);
         ++it) {
      g->targets.push_back(it->first);
    }
  }
  const size_t n = g->targets.size();
  if (n == 0) return {};
  g->slots.resize(n);
  g->unresolved = n;

  // An attempt's result enters its slot here; the first success resolves
  // the slot, anything after that is the ignored loser.
  auto publish = [this, g](size_t i, common::Result<std::string> r,
                           bool is_hedge) {
    bool hedge_won = false;
    {
      common::MutexLock lock(g->mu);
      HedgeGather::Slot& s = g->slots[i];
      if (is_hedge) {
        s.hedge_done = true;
      } else {
        s.primary_done = true;
        if (!r.ok()) s.primary_failure = r.status();
      }
      if (!s.resolved) {
        if (r.ok()) {
          s.result = std::move(r);
          s.resolved = true;
          hedge_won = is_hedge;
          --g->unresolved;
        } else if (s.primary_done && (!s.hedge_issued || s.hedge_done)) {
          // Every attempt has failed; report the primary's status so the
          // caller sees what the unhedged scatter would have reported.
          s.result = s.primary_done && !s.primary_failure.ok()
                         ? s.primary_failure
                         : r.status();
          s.resolved = true;
          --g->unresolved;
        }
      }
    }
    g->cv.notify_all();
    if (hedge_won) {
      Count("vinci/hedge_wins_total");
      Count("vinci/hedge_wins/" + g->targets[i]);
    }
  };

  // Per-target schedule, fixed up front: hedge at a seeded-jittered ~p95
  // delay (skipped entirely when it could not fit inside the deadline — the
  // clamp the serving-unclamped-hedge lint rule looks for), abandon at the
  // deadline, or early for a suspect target (no hedge there: the one
  // replica of the shard is the sick one).
  HealthScoreboard* health = health_.load(std::memory_order_acquire);
  const uint64_t start_us = obs::MonotonicNowUs();
  const uint64_t expiry_us =
      options.deadline_us > 0 ? start_us + options.deadline_us : 0;
  const bool resilient = options.deadline_us > 0 || options.max_retries > 0;
  std::vector<HedgeGather::Plan> plans(n);
  for (size_t i = 0; i < n; ++i) {
    const std::string& target = g->targets[i];
    uint64_t delay_us = hedge.default_delay_us;
    bool suspect = false;
    if (health != nullptr) {
      delay_us = health->LatencyQuantileUs(target, hedge.delay_quantile,
                                           hedge.default_delay_us);
      suspect = health->Suspect(target);
    }
    delay_us = std::clamp(delay_us, hedge.min_delay_us, hedge.max_delay_us);
    // Seeded jitter in [0.75, 1.25): reproducible per draw, desynchronized
    // across targets so hedges do not fire as a convoy.
    const uint64_t seq = hedge_seq_.fetch_add(1, std::memory_order_relaxed);
    common::Rng hedge_rng(common::HashCombine(0x48454447ULL, seq));
    delay_us = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(delay_us) *
                                 (0.75 + hedge_rng.Double() / 2.0)));
    HedgeGather::Plan& plan = plans[i];
    // A suspect target is never hedged — its shard has one replica and that
    // replica is the sick one, so a re-issue just queues behind the
    // straggler. Early abandon is allowed only when the suspect's latency
    // EWMA already exceeds the call deadline: the shard was going to miss
    // the deadline either way, so failing it at a fleet-derived margin
    // bounds the gather without changing the answer the unhedged scatter
    // would have produced (the byte-identity contract).
    const bool predicted_miss =
        suspect && expiry_us != 0 && health != nullptr &&
        health->Snapshot(target).ewma_latency_us >=
            static_cast<double>(options.deadline_us);
    plan.sick_lane = suspect;
    if (predicted_miss) {
      const uint64_t fleet_us = health->FleetLatencyQuantileUs(
          hedge.delay_quantile, hedge.default_delay_us);
      const uint64_t margin_us = std::clamp(
          static_cast<uint64_t>(hedge.suspect_margin_factor *
                                static_cast<double>(fleet_us)),
          hedge.suspect_min_margin_us, options.deadline_us);
      plan.abandon_at_us = std::min(expiry_us, start_us + margin_us);
    } else if (suspect) {
      plan.abandon_at_us = expiry_us;
    } else {
      plan.abandon_at_us = expiry_us;
      // The delay is applied from primary dispatch by the coordinator, which
      // re-checks the deadline clamp at fire time (see hedge_at_us below).
      plan.hedge_delay_us = std::min(delay_us, hedge.max_delay_us);
    }
  }

  // Primaries run detached (Submit, not RunAll) with the full resilient
  // semantics — retries, backoff, and breaker feeding exactly as the
  // unhedged scatter.
  ScatterPool* pool = EnsurePool();
  for (size_t i = 0; i < n; ++i) {
    auto primary = [this, g, i, resilient, publish] {
      {
        common::MutexLock lock(g->mu);
        g->slots[i].primary_start_us = obs::MonotonicNowUs();
      }
      // Wake the coordinator so it can schedule this slot's hedge timer.
      g->cv.notify_all();
      publish(i,
              resilient ? Call(g->targets[i], g->request, g->options)
                        : Call(g->targets[i], g->request),
              /*is_hedge=*/false);
    };
    if (plans[i].sick_lane) {
      // Sick lane: a suspect's straggler may legitimately sleep toward the
      // deadline, and on the shared pool that would queue healthy shards'
      // dispatches behind it. Suspects are rare by construction, so one
      // detached thread each is cheap. The dispatch gate is entered here —
      // not inside the new thread — so Shutdown()/Attach* quiescing can
      // never slip between the spawn and the thread's first instruction.
      auto gate = std::make_shared<DispatchGuard>(*this);
      std::thread([primary, gate] { primary(); }).detach();
    } else {
      pool->Submit(primary);
    }
  }

  // Coordinator: the calling thread watches the clock, fires due hedges,
  // abandons stragglers, and returns once every slot is resolved. Waits are
  // chunked so a missed notify can only cost one chunk, mirroring the
  // serving layer's bounded-wait discipline.
  constexpr uint64_t kWaitChunkUs = 20000;
  std::unique_lock<common::Mutex> lock(g->mu);
  for (;;) {
    if (g->unresolved == 0) break;
    const uint64_t now_us = obs::MonotonicNowUs();
    uint64_t next_event_us = 0;
    for (size_t i = 0; i < n; ++i) {
      HedgeGather::Slot& s = g->slots[i];
      if (s.resolved) continue;
      const HedgeGather::Plan& plan = plans[i];
      if (plan.abandon_at_us != 0 && now_us >= plan.abandon_at_us) {
        s.resolved = true;
        s.result = Status::DeadlineExceeded("straggler abandoned: " +
                                            g->targets[i]);
        --g->unresolved;
        Count("vinci/hedge_abandoned_total");
        continue;
      }
      // Hedge clock runs from primary dispatch; a hedge that would fire at
      // or past the expiry is never issued (deadline clamp, the
      // serving-unclamped-hedge contract). 0 = not yet schedulable or never.
      const uint64_t hedge_at_us =
          plan.hedge_delay_us == 0 || s.primary_start_us == 0 ||
                  (expiry_us != 0 &&
                   s.primary_start_us + plan.hedge_delay_us >= expiry_us)
              ? 0
              : s.primary_start_us + plan.hedge_delay_us;
      if (hedge_at_us != 0 && !s.hedge_issued && now_us >= hedge_at_us) {
        s.hedge_issued = true;
        Count("vinci/hedges_total");
        Count("vinci/hedges/" + g->targets[i]);
        pool->Submit([this, g, i, publish] {
          bool breaker_rejected = false;
          publish(i,
                  CallOnce(g->targets[i], g->request, &breaker_rejected,
                           /*feed_breaker=*/false),
                  /*is_hedge=*/true);
        });
      } else if (hedge_at_us != 0 && !s.hedge_issued) {
        next_event_us = next_event_us == 0
                            ? hedge_at_us
                            : std::min(next_event_us, hedge_at_us);
      }
      if (plan.abandon_at_us != 0) {
        next_event_us = next_event_us == 0
                            ? plan.abandon_at_us
                            : std::min(next_event_us, plan.abandon_at_us);
      }
    }
    if (g->unresolved == 0) break;
    uint64_t wait_us = kWaitChunkUs;
    if (next_event_us != 0) {
      const uint64_t now2_us = obs::MonotonicNowUs();
      wait_us = next_event_us > now2_us
                    ? std::min(kWaitChunkUs, next_event_us - now2_us)
                    : 1;
    }
    g->cv.wait_for(lock, std::chrono::microseconds(wait_us));
  }

  std::vector<std::pair<std::string, common::Result<std::string>>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(g->targets[i], g->slots[i].result);
  }
  return out;
}

void VinciBus::SetBreakerConfig(const BreakerConfig& config) {
  common::MutexLock lock(breaker_mu_);
  breaker_config_ = config;
}

BreakerState VinciBus::breaker_state(const std::string& service) const {
  common::MutexLock lock(breaker_mu_);
  auto it = breakers_.find(service);
  if (it == breakers_.end() || !it->second.open) return BreakerState::kClosed;
  return it->second.rejections >= breaker_config_.open_rejections
             ? BreakerState::kHalfOpen
             : BreakerState::kOpen;
}

void VinciBus::ResetBreakers() {
  common::MutexLock lock(breaker_mu_);
  for (const auto& [service, breaker] : breakers_) {
    if (breaker.open) SetBreakerGauge(service, 0);
  }
  breakers_.clear();
}

std::vector<std::string> VinciBus::Services() const {
  common::MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, handler] : services_) out.push_back(name);
  return out;
}

size_t VinciBus::CallCount(const std::string& service) const {
  common::MutexLock lock(mu_);
  auto it = call_counts_.find(service);
  return it == call_counts_.end() ? 0 : it->second;
}

// --- Wire helpers -----------------------------------------------------------

namespace {

// Escapes backslashes and newlines; '=' additionally when `escape_eq`
// (keys must escape it — the key/value split is the first unescaped '=').
std::string EscapeWire(const std::string& v, bool escape_eq) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '=' && escape_eq) {
      out += "\\=";
    } else {
      out += c;
    }
  }
  return out;
}

// Inverse of EscapeWire. Decode is total: an unknown escape keeps its
// backslash, and a dangling trailing backslash is preserved verbatim
// instead of being silently dropped or merged with the next byte.
std::string UnescapeWire(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] != '\\') {
      out += v[i];
      continue;
    }
    if (i + 1 >= v.size()) {
      out += '\\';  // dangling trailing backslash
      break;
    }
    char next = v[i + 1];
    if (next == 'n') {
      out += '\n';
      ++i;
    } else if (next == '\\') {
      out += '\\';
      ++i;
    } else if (next == '=') {
      out += '=';
      ++i;
    } else {
      out += '\\';  // unknown escape: keep the backslash, rescan `next`
    }
  }
  return out;
}

// First '=' not preceded by an (unconsumed) escape, or npos.
size_t FindUnescapedEq(const std::string& line) {
  bool escaped = false;
  for (size_t i = 0; i < line.size(); ++i) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (line[i] == '\\') {
      escaped = true;
      continue;
    }
    if (line[i] == '=') return i;
  }
  return std::string::npos;
}

}  // namespace

std::string EncodeMessage(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::string out;
  for (const auto& [k, v] : pairs) {
    out += EscapeWire(k, /*escape_eq=*/true);
    out += '=';
    out += EscapeWire(v, /*escape_eq=*/false);
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> DecodeMessage(
    const std::string& message) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& line : common::SplitExact(message, "\n")) {
    if (line.empty()) continue;
    size_t eq = FindUnescapedEq(line);
    if (eq == std::string::npos) continue;
    out.emplace_back(UnescapeWire(line.substr(0, eq)),
                     UnescapeWire(line.substr(eq + 1)));
  }
  return out;
}

std::string GetMessageField(const std::string& message,
                            const std::string& key) {
  for (const auto& [k, v] : DecodeMessage(message)) {
    if (k == key) return v;
  }
  return "";
}

std::vector<std::string> GetMessageFields(const std::string& message,
                                          const std::string& key) {
  std::vector<std::string> out;
  for (const auto& [k, v] : DecodeMessage(message)) {
    if (k == key) out.push_back(v);
  }
  return out;
}

}  // namespace wf::platform
