#include "platform/fault.h"

#include "common/hash.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace wf::platform {

void FaultInjector::SetPolicy(const std::string& service_prefix,
                              FaultPolicy policy) {
  common::MutexLock lock(mu_);
  policies_[service_prefix] = policy;
}

void FaultInjector::ClearPolicy(const std::string& service_prefix) {
  common::MutexLock lock(mu_);
  policies_.erase(service_prefix);
}

void FaultInjector::ClearAllPolicies() {
  common::MutexLock lock(mu_);
  policies_.clear();
}

void FaultInjector::Partition(const std::string& service_prefix) {
  common::MutexLock lock(mu_);
  partitions_.insert(service_prefix);
}

void FaultInjector::Heal(const std::string& service_prefix) {
  common::MutexLock lock(mu_);
  partitions_.erase(service_prefix);
}

void FaultInjector::HealAll() {
  common::MutexLock lock(mu_);
  partitions_.clear();
}

bool FaultInjector::IsPartitioned(const std::string& service) const {
  common::MutexLock lock(mu_);
  for (const std::string& prefix : partitions_) {
    if (common::StartsWith(service, prefix)) return true;
  }
  return false;
}

const FaultPolicy* FaultInjector::MatchPolicyLocked(
    const std::string& service) const {
  const FaultPolicy* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, policy] : policies_) {
    if (!common::StartsWith(service, prefix)) continue;
    if (best == nullptr || prefix.size() >= best_len) {
      best = &policy;
      best_len = prefix.size();
    }
  }
  return best;
}

FaultInjector::Decision FaultInjector::Decide(const std::string& service) {
  common::MutexLock lock(mu_);
  Decision decision;
  for (const std::string& prefix : partitions_) {
    if (common::StartsWith(service, prefix)) {
      decision.action = Decision::Action::kUnavailable;
      ++counters_.partitioned;
      return decision;
    }
  }
  const FaultPolicy* policy = MatchPolicyLocked(service);
  if (policy == nullptr) {
    ++counters_.delivered;
    return decision;
  }
  // Seed an Rng from (seed, service, sequence) so the verdict for "the
  // k-th call to service S" is fixed, whatever thread gets there first.
  uint64_t seq = call_seq_[service]++;
  uint64_t mix = common::HashCombine(
      common::HashCombine(seed_, common::Fnv1a64(service)), seq);
  common::Rng rng(mix);
  if (rng.Bernoulli(policy->fail_probability)) {
    decision.action = Decision::Action::kUnavailable;
    ++counters_.failed;
  } else if (rng.Bernoulli(policy->corrupt_probability)) {
    decision.action = Decision::Action::kCorrupt;
    ++counters_.corrupted;
  } else {
    ++counters_.delivered;
  }
  decision.extra_latency_us = policy->added_latency_us;
  if (policy->latency_ramp_per_call_us > 0) {
    // Gray failure: the k-th call to this service is slower than the
    // (k-1)-th, deterministically in seq, until the ramp hits its cap.
    uint64_t ramped = decision.extra_latency_us +
                      policy->latency_ramp_per_call_us * seq;
    if (policy->max_added_latency_us > 0 &&
        ramped > policy->max_added_latency_us) {
      ramped = policy->max_added_latency_us;
    }
    decision.extra_latency_us = ramped;
  }
  if (policy->latency_jitter_us > 0) {
    decision.extra_latency_us += static_cast<uint64_t>(
        rng.Uniform(0, static_cast<int64_t>(policy->latency_jitter_us)));
  }
  return decision;
}

FaultPolicy SlowNodePolicy(uint64_t start_us, uint64_t ramp_us,
                           uint64_t cap_us, uint64_t jitter_us) {
  FaultPolicy policy;
  policy.added_latency_us = start_us;
  policy.latency_ramp_per_call_us = ramp_us;
  policy.max_added_latency_us = cap_us;
  policy.latency_jitter_us = jitter_us;
  return policy;
}

FaultInjector::Counters FaultInjector::counters() const {
  common::MutexLock lock(mu_);
  return counters_;
}

}  // namespace wf::platform
