#include "platform/indexer.h"

#include <algorithm>
#include <cstdlib>
#include <regex>
#include <set>
#include <sstream>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace wf::platform {

using ::wf::common::ToLower;

namespace {

// Lowercases `text` into the reused scratch buffer `out` — the indexing
// hot path used to allocate a fresh std::string per token here.
void LowerInto(std::string_view text, std::string* out) {
  out->clear();
  for (char c : text) out->push_back(common::ToLowerAscii(c));
}

}  // namespace

uint32_t InvertedIndex::InternDoc(const std::string& doc_id) {
  auto it = doc_ids_.find(doc_id);
  if (it != doc_ids_.end()) return it->second;
  uint32_t ord = static_cast<uint32_t>(docs_.size());
  docs_.push_back(doc_id);
  doc_ids_.emplace(doc_id, ord);
  return ord;
}

void InvertedIndex::IndexEntity(const Entity& entity) {
  text::Tokenizer tokenizer;
  IndexEntity(entity, tokenizer.Tokenize(entity.body()));
}

void InvertedIndex::IndexEntity(const Entity& entity,
                                const text::TokenStream& tokens) {
  common::MutexLock lock(mu_);
  uint32_t ord = InternDoc(entity.id());

  // Drop any previous postings for this doc (re-index).
  for (auto& [term, list] : postings_) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [ord](const Posting& p) { return p.doc == ord; }),
               list.end());
  }

  // One reused lowercase buffer for the whole sweep; `current` keys view
  // into postings_ map keys, which std::map keeps stable.
  std::string lower;
  std::unordered_map<std::string_view, Posting*> current;
  current.reserve(tokens.size());
  for (uint32_t pos = 0; pos < tokens.size(); ++pos) {
    if (tokens[pos].kind != text::TokenKind::kWord &&
        tokens[pos].kind != text::TokenKind::kNumber) {
      continue;
    }
    LowerInto(tokens[pos].text, &lower);
    Posting* p;
    auto it = current.find(std::string_view(lower));
    if (it == current.end()) {
      auto [pit, inserted] = postings_.try_emplace(lower);
      (void)inserted;
      pit->second.push_back(Posting{ord, {}});
      p = &pit->second.back();
      current.emplace(std::string_view(pit->first), p);
    } else {
      p = it->second;
    }
    p->positions.push_back(pos);
  }
  for (const std::string& concept_token : entity.concept_tokens()) {
    AddConceptPosting(concept_token, ord, &lower);
  }

  // Numeric/date fields feed the range index (old values dropped on
  // re-index).
  for (auto& [field, values] : fields_) {
    values.erase(std::remove_if(values.begin(), values.end(),
                                [ord](const auto& pair) {
                                  return pair.second == ord;
                                }),
                 values.end());
  }
  for (const auto& [field, value] : entity.fields()) {
    if (value.empty()) continue;
    if (field == "date") {
      // "YYYY-MM" or "YYYY-MM-DD" -> yyyymmdd (day defaults to 01).
      std::vector<std::string> parts = common::Split(value, "-");
      if (parts.size() >= 2) {
        char* end = nullptr;
        double y = std::strtod(parts[0].c_str(), &end);
        double m = std::strtod(parts[1].c_str(), &end);
        double d = parts.size() >= 3
                       ? std::strtod(parts[2].c_str(), &end)
                       : 1.0;
        fields_[field].emplace_back(y * 10000 + m * 100 + d, ord);
        continue;
      }
    }
    char* end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end != nullptr && *end == '\0' && end != value.c_str()) {
      fields_[field].emplace_back(v, ord);
    }
  }
}

void InvertedIndex::AddFieldValue(const std::string& doc_id,
                                  const std::string& field, double value) {
  common::MutexLock lock(mu_);
  fields_[field].emplace_back(value, InternDoc(doc_id));
}

std::vector<std::string> InvertedIndex::Range(const std::string& field,
                                              double lo, double hi) const {
  common::MutexLock lock(mu_);
  std::vector<uint32_t> ords;
  auto it = fields_.find(field);
  if (it == fields_.end()) return {};
  for (const auto& [value, ord] : it->second) {
    if (value >= lo && value <= hi) ords.push_back(ord);
  }
  return ToDocIds(std::move(ords));
}

void InvertedIndex::AddConceptPosting(std::string_view term, uint32_t ord,
                                      std::string* lower) {
  LowerInto(term, lower);
  auto [it, inserted] = postings_.try_emplace(*lower);
  (void)inserted;
  for (const Posting& p : it->second) {
    if (p.doc == ord) return;
  }
  it->second.push_back(Posting{ord, {}});
}

void InvertedIndex::AddConceptToken(const std::string& doc_id,
                                    const std::string& token) {
  common::MutexLock lock(mu_);
  std::string lower;
  AddConceptPosting(token, InternDoc(doc_id), &lower);
}

const std::vector<InvertedIndex::Posting>* InvertedIndex::Find(
    const std::string& term) const {
  auto it = postings_.find(ToLower(term));
  return it == postings_.end() ? nullptr : &it->second;
}

std::vector<std::string> InvertedIndex::ToDocIds(
    std::vector<uint32_t> ords) const {
  std::sort(ords.begin(), ords.end());
  ords.erase(std::unique(ords.begin(), ords.end()), ords.end());
  std::vector<std::string> out;
  out.reserve(ords.size());
  for (uint32_t o : ords) out.push_back(docs_[o]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> InvertedIndex::Term(const std::string& term) const {
  common::MutexLock lock(mu_);
  const auto* list = Find(term);
  if (list == nullptr) return {};
  std::vector<uint32_t> ords;
  ords.reserve(list->size());
  for (const Posting& p : *list) ords.push_back(p.doc);
  return ToDocIds(std::move(ords));
}

std::vector<std::string> InvertedIndex::And(
    const std::vector<std::string>& terms) const {
  if (terms.empty()) return {};
  std::vector<std::string> result = Term(terms[0]);
  for (size_t i = 1; i < terms.size() && !result.empty(); ++i) {
    std::vector<std::string> next = Term(terms[i]);
    std::vector<std::string> merged;
    std::set_intersection(result.begin(), result.end(), next.begin(),
                          next.end(), std::back_inserter(merged));
    result = std::move(merged);
  }
  return result;
}

std::vector<std::string> InvertedIndex::Or(
    const std::vector<std::string>& terms) const {
  std::set<std::string> acc;
  for (const std::string& t : terms) {
    for (std::string& d : Term(t)) acc.insert(std::move(d));
  }
  return std::vector<std::string>(acc.begin(), acc.end());
}

std::vector<std::string> InvertedIndex::Not(const std::string& term,
                                            const std::string& exclude) const {
  std::vector<std::string> base = Term(term);
  std::vector<std::string> minus = Term(exclude);
  std::vector<std::string> out;
  std::set_difference(base.begin(), base.end(), minus.begin(), minus.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<std::string> InvertedIndex::Phrase(
    const std::vector<std::string>& words) const {
  if (words.empty()) return {};
  if (words.size() == 1) return Term(words[0]);

  common::MutexLock lock(mu_);
  const auto* first = Find(words[0]);
  if (first == nullptr) return {};

  std::vector<uint32_t> hits;
  for (const Posting& p0 : *first) {
    // For each start position, check the continuation in every next term.
    for (uint32_t pos : p0.positions) {
      bool all = true;
      for (size_t w = 1; w < words.size() && all; ++w) {
        const auto* list = Find(words[w]);
        all = false;
        if (list == nullptr) break;
        for (const Posting& pw : *list) {
          if (pw.doc != p0.doc) continue;
          all = std::binary_search(pw.positions.begin(), pw.positions.end(),
                                   pos + static_cast<uint32_t>(w));
          break;
        }
      }
      if (all) {
        hits.push_back(p0.doc);
        break;
      }
    }
  }
  return ToDocIds(std::move(hits));
}

std::vector<std::string> InvertedIndex::Prefix(
    const std::string& prefix) const {
  common::MutexLock lock(mu_);
  std::string lo = ToLower(prefix);
  std::vector<uint32_t> ords;
  for (auto it = postings_.lower_bound(lo);
       it != postings_.end() && common::StartsWith(it->first, lo); ++it) {
    for (const Posting& p : it->second) ords.push_back(p.doc);
  }
  return ToDocIds(std::move(ords));
}

std::vector<std::string> InvertedIndex::MatchRegex(
    const std::string& pattern) const {
  common::MutexLock lock(mu_);
  std::regex re;
  try {
    re = std::regex(pattern, std::regex::ECMAScript | std::regex::icase);
  } catch (const std::regex_error&) {
    return {};
  }
  std::vector<uint32_t> ords;
  for (const auto& [term, list] : postings_) {
    if (!std::regex_match(term, re)) continue;
    for (const Posting& p : list) ords.push_back(p.doc);
  }
  return ToDocIds(std::move(ords));
}

size_t InvertedIndex::TermFrequency(const std::string& term,
                                    const std::string& doc_id) const {
  common::MutexLock lock(mu_);
  auto dit = doc_ids_.find(doc_id);
  if (dit == doc_ids_.end()) return 0;
  const auto* list = Find(term);
  if (list == nullptr) return 0;
  for (const Posting& p : *list) {
    if (p.doc == dit->second) {
      return p.positions.empty() ? 1 : p.positions.size();
    }
  }
  return 0;
}

size_t InvertedIndex::document_count() const {
  common::MutexLock lock(mu_);
  return docs_.size();
}

size_t InvertedIndex::vocabulary_size() const {
  common::MutexLock lock(mu_);
  return postings_.size();
}

namespace {

// Percent-escape for whitespace-delimited snapshot fields.
std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '%') {
      out += common::StrFormat("%%%02x", static_cast<unsigned char>(c));
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(
          std::strtol(s.substr(i + 1, 2).c_str(), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

common::Status InvertedIndex::Save(
    const std::string& path, common::StorageFaultInjector* injector) const {
  common::MutexLock lock(mu_);
  // Built in memory and written atomically under the checksummed `wfsnap
  // index` envelope — truncating in place would destroy the previous
  // snapshot before the new one was safely down.
  std::ostringstream out;
  out << "wfidx 1\n";
  for (size_t i = 0; i < docs_.size(); ++i) {
    out << "doc " << i << " " << EscapeField(docs_[i]) << "\n";
  }
  for (const auto& [term, list] : postings_) {
    out << "term " << EscapeField(term);
    for (const Posting& p : list) {
      out << " " << p.doc << ":";
      for (size_t k = 0; k < p.positions.size(); ++k) {
        if (k > 0) out << ",";
        out << p.positions[k];
      }
    }
    out << "\n";
  }
  for (const auto& [field, values] : fields_) {
    for (const auto& [value, ord] : values) {
      out << "field " << EscapeField(field) << " " << value << " " << ord
          << "\n";
    }
  }
  return common::WriteSnapshotFile(path, "index", /*version=*/1, out.str(),
                                   injector);
}

common::Status InvertedIndex::Load(const std::string& path) {
  auto payload_or = common::ReadSnapshotFile(path, "index", /*version=*/1);
  if (!payload_or.ok()) return payload_or.status();
  std::istringstream in(payload_or.value());
  std::string header;
  if (!std::getline(in, header) || header != "wfidx 1") {
    return common::Status::Corruption("bad index header in " + path);
  }
  std::vector<std::string> docs;
  std::unordered_map<std::string, uint32_t> doc_ids;
  std::map<std::string, std::vector<Posting>> postings;
  std::map<std::string, std::vector<std::pair<double, uint32_t>>> fields;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> parts = common::Split(line, " ");
    if (parts.empty()) continue;
    if (parts[0] == "doc" && parts.size() == 3) {
      size_t ord = std::stoull(parts[1]);
      if (ord != docs.size()) {
        return common::Status::Corruption("doc ordinals out of order");
      }
      docs.push_back(UnescapeField(parts[2]));
      doc_ids[docs.back()] = static_cast<uint32_t>(ord);
    } else if (parts[0] == "term" && parts.size() >= 2) {
      std::vector<Posting>& list = postings[UnescapeField(parts[1])];
      for (size_t i = 2; i < parts.size(); ++i) {
        size_t colon = parts[i].find(':');
        if (colon == std::string::npos) {
          return common::Status::Corruption("bad posting: " + parts[i]);
        }
        Posting p;
        p.doc = static_cast<uint32_t>(
            std::stoul(parts[i].substr(0, colon)));
        if (p.doc >= docs.size()) {
          return common::Status::Corruption("posting names unknown doc");
        }
        std::string pos_list = parts[i].substr(colon + 1);
        if (!pos_list.empty()) {
          for (const std::string& pos : common::Split(pos_list, ",")) {
            p.positions.push_back(
                static_cast<uint32_t>(std::stoul(pos)));
          }
        }
        list.push_back(std::move(p));
      }
    } else if (parts[0] == "field" && parts.size() == 4) {
      fields[UnescapeField(parts[1])].emplace_back(
          std::strtod(parts[2].c_str(), nullptr),
          static_cast<uint32_t>(std::stoul(parts[3])));
    } else {
      return common::Status::Corruption("unknown index record: " + line);
    }
  }
  common::MutexLock lock(mu_);
  docs_ = std::move(docs);
  doc_ids_ = std::move(doc_ids);
  postings_ = std::move(postings);
  fields_ = std::move(fields);
  return common::Status::Ok();
}

std::vector<std::string> InvertedIndex::VocabularyWithPrefix(
    const std::string& prefix) const {
  common::MutexLock lock(mu_);
  std::string lo = ToLower(prefix);
  std::vector<std::string> out;
  for (auto it = postings_.lower_bound(lo);
       it != postings_.end() && common::StartsWith(it->first, lo); ++it) {
    if (!it->second.empty()) out.push_back(it->first);
  }
  return out;
}

}  // namespace wf::platform
