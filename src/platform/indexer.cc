#include "platform/indexer.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <numeric>
#include <regex>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/timer.h"
#include "text/tokenizer.h"

namespace wf::platform {

using ::wf::common::ToLower;

namespace {

// Size tiers for frozen-segment compaction; mirrors store::LsmTree.
constexpr size_t kMaxTier = 16;
constexpr uint64_t kTierBaseBytes = 4096;
constexpr double kSizeTierFactor = 4.0;

using ::wf::common::LowerInto;

// Sorted-unique union of `add` into `acc` (both ascending).
void MergePositions(const std::vector<uint32_t>& add,
                    std::vector<uint32_t>* acc) {
  if (add.empty()) return;
  if (acc->empty()) {
    *acc = add;
    return;
  }
  std::vector<uint32_t> merged;
  merged.reserve(acc->size() + add.size());
  std::set_union(acc->begin(), acc->end(), add.begin(), add.end(),
                 std::back_inserter(merged));
  acc->swap(merged);
}

}  // namespace

void InvertedIndex::AttachMetrics(const obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  frozen_segments_gauge_ = nullptr;
  delta_docs_gauge_ = nullptr;
  freezes_counter_ = nullptr;
  compactions_counter_ = nullptr;
  compaction_bytes_counter_ = nullptr;
  freeze_us_ = nullptr;
  compaction_us_ = nullptr;
  if (metrics_ == nullptr) return;
  frozen_segments_gauge_ = metrics_->GetGauge("index/frozen_segments");
  delta_docs_gauge_ = metrics_->GetGauge("index/delta_docs");
  freezes_counter_ = metrics_->GetCounter("index/freezes_total");
  compactions_counter_ = metrics_->GetCounter("index/compactions_total");
  compaction_bytes_counter_ =
      metrics_->GetCounter("index/compaction_bytes_rewritten_total");
  freeze_us_ = metrics_->GetHistogram(
      "index/freeze_us", obs::DefaultLatencyBoundsUs(), /*timing=*/true);
  compaction_us_ = metrics_->GetHistogram(
      "index/compaction_us", obs::DefaultLatencyBoundsUs(), /*timing=*/true);
}

common::Status InvertedIndex::EnableSegments(
    const std::string& dir, const std::string& base,
    common::StorageFaultInjector* injector, size_t compaction_fanout) {
  common::MutexLock lock(mu_);
  if (segmented_) {
    return common::Status::FailedPrecondition("index segments already open");
  }
  if (!docs_.empty() || !postings_.empty() || !fields_.empty()) {
    return common::Status::FailedPrecondition(
        "delta tier must be empty when opening index segments");
  }
  dir_ = dir;
  base_ = base;
  injector_ = injector;
  compaction_fanout_ = compaction_fanout;
  manifest_ = store::ManifestData{};
  frozen_.clear();
  const std::string manifest_path = ManifestPathLocked();
  if (common::FileExists(manifest_path)) {
    WF_ASSIGN_OR_RETURN(manifest_, store::LoadManifest(manifest_path));
    frozen_.reserve(manifest_.segments.size());
    for (const store::SegmentMeta& meta : manifest_.segments) {
      WF_ASSIGN_OR_RETURN(std::unique_ptr<store::IndexSegmentReader> reader,
                          store::IndexSegmentReader::Open(
                              SegmentPathLocked(meta.id)));
      frozen_.push_back(std::move(reader));
    }
  }
  // Segment files the durable manifest never adopted (crash between write
  // and swap) are garbage; so are stray .tmp files from an interrupted
  // atomic write. Delete both so ids can be reused safely.
  std::error_code ec;
  std::vector<std::string> orphans;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!common::StartsWith(name, base_ + "-") &&
        !common::StartsWith(name, base_ + ".")) {
      continue;
    }
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      orphans.push_back(entry.path().string());
      continue;
    }
    if (name.size() > 6 && name.substr(name.size() - 6) == ".wfseg") {
      bool adopted = false;
      for (const store::SegmentMeta& meta : manifest_.segments) {
        if (entry.path().string() == SegmentPathLocked(meta.id)) {
          adopted = true;
          break;
        }
      }
      if (!adopted) orphans.push_back(entry.path().string());
    }
  }
  for (const std::string& orphan : orphans) {
    std::filesystem::remove(orphan, ec);
  }
  segmented_ = true;
  UpdateGaugesLocked();
  return common::Status::Ok();
}

bool InvertedIndex::segmented() const {
  common::MutexLock lock(mu_);
  return segmented_;
}

size_t InvertedIndex::frozen_segment_count() const {
  common::MutexLock lock(mu_);
  return frozen_.size();
}

common::Status InvertedIndex::Freeze() {
  common::MutexLock lock(mu_);
  if (!segmented_) {
    return common::Status::FailedPrecondition(
        "ephemeral index cannot freeze (EnableSegments first)");
  }
  WF_RETURN_IF_ERROR(FreezeLocked());
  common::Status compacted = MaybeCompactLocked();
  UpdateGaugesLocked();
  return compacted;
}

uint32_t InvertedIndex::InternDoc(const std::string& doc_id) {
  auto it = doc_ids_.find(doc_id);
  if (it != doc_ids_.end()) return it->second;
  uint32_t ord = static_cast<uint32_t>(docs_.size());
  docs_.push_back(doc_id);
  doc_ids_.emplace(doc_id, ord);
  delta_full_.push_back(false);
  return ord;
}

void InvertedIndex::IndexEntity(const Entity& entity) {
  text::Tokenizer tokenizer;
  IndexEntity(entity, tokenizer.Tokenize(entity.body()));
}

void InvertedIndex::IndexEntity(const Entity& entity,
                                const text::TokenStream& tokens) {
  common::MutexLock lock(mu_);
  uint32_t ord = InternDoc(entity.id());
  // The delta now holds the doc's complete postings: at query and freeze
  // time this version shadows every frozen tier.
  delta_full_[ord] = true;

  // Drop any previous delta postings for this doc (re-index).
  for (auto& [term, list] : postings_) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [ord](const Posting& p) { return p.doc == ord; }),
               list.end());
  }

  // One reused lowercase buffer for the whole sweep; `current` keys view
  // into postings_ map keys, which std::map keeps stable.
  std::string lower;
  std::unordered_map<std::string_view, Posting*> current;
  current.reserve(tokens.size());
  for (uint32_t pos = 0; pos < tokens.size(); ++pos) {
    if (tokens[pos].kind != text::TokenKind::kWord &&
        tokens[pos].kind != text::TokenKind::kNumber) {
      continue;
    }
    LowerInto(tokens[pos].text, &lower);
    Posting* p;
    auto it = current.find(std::string_view(lower));
    if (it == current.end()) {
      auto [pit, inserted] = postings_.try_emplace(lower);
      (void)inserted;
      pit->second.push_back(Posting{ord, {}});
      p = &pit->second.back();
      current.emplace(std::string_view(pit->first), p);
    } else {
      p = it->second;
    }
    p->positions.push_back(pos);
  }
  for (const std::string& concept_token : entity.concept_tokens()) {
    AddConceptPosting(concept_token, ord, &lower);
  }

  // Numeric/date fields feed the range index (old values dropped on
  // re-index).
  for (auto& [field, values] : fields_) {
    values.erase(std::remove_if(values.begin(), values.end(),
                                [ord](const auto& pair) {
                                  return pair.second == ord;
                                }),
                 values.end());
  }
  for (const auto& [field, value] : entity.fields()) {
    if (value.empty()) continue;
    if (field == "date") {
      // "YYYY-MM" or "YYYY-MM-DD" -> yyyymmdd (day defaults to 01).
      std::vector<std::string> parts = common::Split(value, "-");
      if (parts.size() >= 2) {
        char* end = nullptr;
        double y = std::strtod(parts[0].c_str(), &end);
        double m = std::strtod(parts[1].c_str(), &end);
        double d = parts.size() >= 3
                       ? std::strtod(parts[2].c_str(), &end)
                       : 1.0;
        fields_[field].emplace_back(y * 10000 + m * 100 + d, ord);
        continue;
      }
    }
    char* end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end != nullptr && *end == '\0' && end != value.c_str()) {
      fields_[field].emplace_back(v, ord);
    }
  }
}

void InvertedIndex::AddConceptPosting(std::string_view term, uint32_t ord,
                                      std::string* lower) {
  LowerInto(term, lower);
  auto [it, inserted] = postings_.try_emplace(*lower);
  (void)inserted;
  for (const Posting& p : it->second) {
    if (p.doc == ord) return;
  }
  it->second.push_back(Posting{ord, {}});
}

void InvertedIndex::AddConceptToken(const std::string& doc_id,
                                    const std::string& token) {
  common::MutexLock lock(mu_);
  std::string lower;
  AddConceptPosting(token, InternDoc(doc_id), &lower);
}

void InvertedIndex::AddFieldValue(const std::string& doc_id,
                                  const std::string& field, double value) {
  common::MutexLock lock(mu_);
  fields_[field].emplace_back(value, InternDoc(doc_id));
}

// --- Tier merging -----------------------------------------------------------

int InvertedIndex::SealTierLocked(const std::string& doc_id) const {
  auto it = doc_ids_.find(doc_id);
  if (it != doc_ids_.end() && delta_full_[it->second]) {
    return static_cast<int>(frozen_.size());
  }
  for (int t = static_cast<int>(frozen_.size()) - 1; t >= 0; --t) {
    int ord = frozen_[static_cast<size_t>(t)]->FindDoc(doc_id);
    if (ord >= 0 &&
        frozen_[static_cast<size_t>(t)]->docs()[static_cast<size_t>(ord)]
            .full) {
      return t;
    }
  }
  return -1;
}

std::map<std::string, std::vector<uint32_t>>
InvertedIndex::MergedPostingsLocked(const std::string& lower_term) const {
  std::map<std::string, std::vector<uint32_t>> acc;
  // Memoize seal lookups: one term often touches the same docs in several
  // tiers.
  std::map<std::string, int> seal;
  auto seal_of = [this, &seal](const std::string& doc_id) {
    auto it = seal.find(doc_id);
    if (it != seal.end()) return it->second;
    int s = SealTierLocked(doc_id);
    seal.emplace(doc_id, s);
    return s;
  };
  for (size_t t = 0; t < frozen_.size(); ++t) {
    const store::IndexSegmentReader::TermEntry* entry =
        frozen_[t]->FindTerm(lower_term);
    if (entry == nullptr) continue;
    // The segment verified its checksum at open, so a decode failure here
    // is a logic bug or an I/O fault mid-read, not query input.
    auto postings_or = frozen_[t]->Postings(*entry);
    WF_CHECK_OK(postings_or.status());
    for (const store::TermPostings& tp : postings_or.value()) {
      const std::string& doc_id = frozen_[t]->docs()[tp.doc_ord].id;
      if (seal_of(doc_id) > static_cast<int>(t)) continue;  // shadowed
      MergePositions(tp.positions, &acc[doc_id]);
    }
  }
  auto it = postings_.find(lower_term);
  if (it != postings_.end()) {
    // The delta is the newest tier: never shadowed. operator[] records
    // presence even for position-less concept postings.
    for (const Posting& p : it->second) {
      MergePositions(p.positions, &acc[docs_[p.doc]]);
    }
  }
  return acc;
}

std::vector<std::string> InvertedIndex::MergedVocabularyLocked(
    const std::string& prefix) const {
  std::set<std::string> terms;
  for (auto it = postings_.lower_bound(prefix);
       it != postings_.end() && common::StartsWith(it->first, prefix); ++it) {
    terms.insert(it->first);
  }
  for (const auto& reader : frozen_) {
    const std::vector<store::IndexSegmentReader::TermEntry>& dict =
        reader->terms();
    auto lo = std::lower_bound(
        dict.begin(), dict.end(), prefix,
        [](const store::IndexSegmentReader::TermEntry& e,
           const std::string& p) { return e.term < p; });
    for (auto it = lo;
         it != dict.end() && common::StartsWith(it->term, prefix); ++it) {
      terms.insert(it->term);
    }
  }
  return std::vector<std::string>(terms.begin(), terms.end());
}

// --- Queries ----------------------------------------------------------------

std::vector<std::string> InvertedIndex::Term(const std::string& term) const {
  common::MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [doc_id, positions] : MergedPostingsLocked(ToLower(term))) {
    out.push_back(doc_id);
  }
  return out;
}

std::vector<std::string> InvertedIndex::And(
    const std::vector<std::string>& terms) const {
  if (terms.empty()) return {};
  std::vector<std::string> result = Term(terms[0]);
  for (size_t i = 1; i < terms.size() && !result.empty(); ++i) {
    std::vector<std::string> next = Term(terms[i]);
    std::vector<std::string> merged;
    std::set_intersection(result.begin(), result.end(), next.begin(),
                          next.end(), std::back_inserter(merged));
    result = std::move(merged);
  }
  return result;
}

std::vector<std::string> InvertedIndex::Or(
    const std::vector<std::string>& terms) const {
  std::set<std::string> acc;
  for (const std::string& t : terms) {
    for (std::string& d : Term(t)) acc.insert(std::move(d));
  }
  return std::vector<std::string>(acc.begin(), acc.end());
}

std::vector<std::string> InvertedIndex::Not(const std::string& term,
                                            const std::string& exclude) const {
  std::vector<std::string> base = Term(term);
  std::vector<std::string> minus = Term(exclude);
  std::vector<std::string> out;
  std::set_difference(base.begin(), base.end(), minus.begin(), minus.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<std::string> InvertedIndex::Phrase(
    const std::vector<std::string>& words) const {
  if (words.empty()) return {};
  if (words.size() == 1) return Term(words[0]);

  common::MutexLock lock(mu_);
  const auto first = MergedPostingsLocked(ToLower(words[0]));
  if (first.empty()) return {};
  std::vector<std::map<std::string, std::vector<uint32_t>>> rest;
  rest.reserve(words.size() - 1);
  for (size_t w = 1; w < words.size(); ++w) {
    rest.push_back(MergedPostingsLocked(ToLower(words[w])));
  }

  std::vector<std::string> out;
  for (const auto& [doc_id, positions] : first) {
    // For each start position, check the continuation in every next term.
    bool hit = false;
    for (uint32_t pos : positions) {
      bool all = true;
      for (size_t w = 1; w < words.size(); ++w) {
        auto it = rest[w - 1].find(doc_id);
        if (it == rest[w - 1].end() ||
            !std::binary_search(it->second.begin(), it->second.end(),
                                pos + static_cast<uint32_t>(w))) {
          all = false;
          break;
        }
      }
      if (all) {
        hit = true;
        break;
      }
    }
    if (hit) out.push_back(doc_id);
  }
  return out;
}

std::vector<std::string> InvertedIndex::Prefix(
    const std::string& prefix) const {
  common::MutexLock lock(mu_);
  std::set<std::string> acc;
  for (const std::string& term : MergedVocabularyLocked(ToLower(prefix))) {
    for (const auto& [doc_id, positions] : MergedPostingsLocked(term)) {
      acc.insert(doc_id);
    }
  }
  return std::vector<std::string>(acc.begin(), acc.end());
}

std::vector<std::string> InvertedIndex::MatchRegex(
    const std::string& pattern) const {
  common::MutexLock lock(mu_);
  std::regex re;
  try {
    re = std::regex(pattern, std::regex::ECMAScript | std::regex::icase);
  } catch (const std::regex_error&) {
    return {};
  }
  std::set<std::string> acc;
  for (const std::string& term : MergedVocabularyLocked("")) {
    if (!std::regex_match(term, re)) continue;
    for (const auto& [doc_id, positions] : MergedPostingsLocked(term)) {
      acc.insert(doc_id);
    }
  }
  return std::vector<std::string>(acc.begin(), acc.end());
}

std::vector<std::string> InvertedIndex::Range(const std::string& field,
                                              double lo, double hi) const {
  common::MutexLock lock(mu_);
  std::set<std::string> acc;
  for (size_t t = 0; t < frozen_.size(); ++t) {
    auto fit = frozen_[t]->fields().find(field);
    if (fit == frozen_[t]->fields().end()) continue;
    for (const store::FieldValueEntry& entry : fit->second) {
      if (entry.value < lo || entry.value > hi) continue;
      const std::string& doc_id = frozen_[t]->docs()[entry.doc_ord].id;
      if (SealTierLocked(doc_id) > static_cast<int>(t)) continue;
      acc.insert(doc_id);
    }
  }
  auto it = fields_.find(field);
  if (it != fields_.end()) {
    for (const auto& [value, ord] : it->second) {
      if (value >= lo && value <= hi) acc.insert(docs_[ord]);
    }
  }
  return std::vector<std::string>(acc.begin(), acc.end());
}

size_t InvertedIndex::TermFrequency(const std::string& term,
                                    const std::string& doc_id) const {
  common::MutexLock lock(mu_);
  const auto merged = MergedPostingsLocked(ToLower(term));
  auto it = merged.find(doc_id);
  if (it == merged.end()) return 0;
  return it->second.empty() ? 1 : it->second.size();
}

size_t InvertedIndex::document_count() const {
  common::MutexLock lock(mu_);
  if (frozen_.empty()) return docs_.size();
  std::set<std::string> ids(docs_.begin(), docs_.end());
  for (const auto& reader : frozen_) {
    for (const store::IndexDocEntry& doc : reader->docs()) {
      ids.insert(doc.id);
    }
  }
  return ids.size();
}

size_t InvertedIndex::vocabulary_size() const {
  common::MutexLock lock(mu_);
  if (frozen_.empty()) return postings_.size();
  return MergedVocabularyLocked("").size();
}

std::vector<std::string> InvertedIndex::VocabularyWithPrefix(
    const std::string& prefix) const {
  common::MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const std::string& term : MergedVocabularyLocked(ToLower(prefix))) {
    // A delta term can hold an empty list after re-index eviction; it only
    // counts if some tier still has live postings.
    if (!MergedPostingsLocked(term).empty()) out.push_back(term);
  }
  return out;
}

// --- Freeze / compaction ----------------------------------------------------

std::string InvertedIndex::SegmentPathLocked(uint64_t id) const {
  return dir_ + "/" + base_ +
         common::StrFormat("-%llu.wfseg", static_cast<unsigned long long>(id));
}

std::string InvertedIndex::ManifestPathLocked() const {
  return dir_ + "/" + base_ + ".manifest";
}

store::IndexSegmentData InvertedIndex::BuildDeltaSegmentLocked() const {
  store::IndexSegmentData data;
  // Canonical doc table: sorted by id, ordinals remapped accordingly.
  std::vector<uint32_t> order(docs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return docs_[a] < docs_[b];
  });
  std::vector<uint32_t> remap(docs_.size(), 0);
  data.docs.reserve(order.size());
  for (uint32_t new_ord = 0; new_ord < order.size(); ++new_ord) {
    remap[order[new_ord]] = new_ord;
    data.docs.push_back(
        store::IndexDocEntry{docs_[order[new_ord]],
                             delta_full_[order[new_ord]]});
  }
  for (const auto& [term, list] : postings_) {
    if (list.empty()) continue;  // evicted by re-index; nothing to freeze
    std::vector<store::TermPostings> tps;
    tps.reserve(list.size());
    for (const Posting& p : list) {
      tps.push_back(store::TermPostings{remap[p.doc], p.positions});
    }
    std::sort(tps.begin(), tps.end(),
              [](const store::TermPostings& a, const store::TermPostings& b) {
                return a.doc_ord < b.doc_ord;
              });
    data.terms.emplace(term, std::move(tps));
  }
  for (const auto& [field, values] : fields_) {
    if (values.empty()) continue;
    // Canonical field entries: (ordinal, value) sorted and deduplicated.
    std::set<std::pair<uint32_t, double>> canonical;
    for (const auto& [value, ord] : values) {
      canonical.emplace(remap[ord], value);
    }
    std::vector<store::FieldValueEntry> entries;
    entries.reserve(canonical.size());
    for (const auto& [ord, value] : canonical) {
      entries.push_back(store::FieldValueEntry{value, ord});
    }
    data.fields.emplace(field, std::move(entries));
  }
  return data;
}

common::Status InvertedIndex::FreezeLocked() {
  if (docs_.empty() && postings_.empty() && fields_.empty()) {
    return common::Status::Ok();
  }
  obs::ScopedTimer timer(freeze_us_);
  store::IndexSegmentData data = BuildDeltaSegmentLocked();
  const uint64_t id = manifest_.next_segment_id;
  const std::string path = SegmentPathLocked(id);
  uint64_t bytes = 0;
  WF_RETURN_IF_ERROR(
      store::WriteIndexSegmentFile(path, data, injector_, &bytes));
  WF_ASSIGN_OR_RETURN(std::unique_ptr<store::IndexSegmentReader> reader,
                      store::IndexSegmentReader::Open(path));
  store::ManifestData next = manifest_;
  next.next_segment_id = id + 1;
  next.segments.push_back(store::SegmentMeta{id, data.docs.size(), bytes});
  // The manifest swap is the commit point: fail here and the new segment
  // is an orphan the next open deletes, while the delta tier (and the WAL
  // above us) still holds everything — nothing is lost.
  WF_RETURN_IF_ERROR(
      store::SaveManifest(ManifestPathLocked(), next, injector_));
  manifest_ = std::move(next);
  frozen_.push_back(std::move(reader));
  docs_.clear();
  doc_ids_.clear();
  delta_full_.clear();
  postings_.clear();
  fields_.clear();
  if (freezes_counter_ != nullptr) freezes_counter_->Add();
  return common::Status::Ok();
}

size_t InvertedIndex::TierOfLocked(uint64_t bytes) const {
  size_t tier = 0;
  double ceiling = static_cast<double>(kTierBaseBytes);
  while (static_cast<double>(bytes) > ceiling && tier < kMaxTier) {
    ceiling *= kSizeTierFactor;
    ++tier;
  }
  return tier;
}

common::Status InvertedIndex::MaybeCompactLocked() {
  if (compaction_fanout_ < 2) return common::Status::Ok();
  // Keep merging while any age-contiguous run of >= fanout segments sits
  // in one size tier — the same policy as the store's LSM tree, so both
  // halves of a checkpoint age at the same rate.
  for (;;) {
    size_t begin = frozen_.size();
    size_t end = begin;
    for (size_t i = 0; i < frozen_.size();) {
      size_t tier = TierOfLocked(manifest_.segments[i].bytes);
      size_t j = i + 1;
      while (j < frozen_.size() &&
             TierOfLocked(manifest_.segments[j].bytes) == tier) {
        ++j;
      }
      if (j - i >= compaction_fanout_) {
        begin = i;
        end = j;
        break;
      }
      i = j;
    }
    if (begin == end) return common::Status::Ok();
    WF_RETURN_IF_ERROR(CompactRunLocked(begin, end));
  }
}

common::Status InvertedIndex::CompactRunLocked(size_t begin, size_t end) {
  obs::ScopedTimer timer(compaction_us_);
  std::vector<store::IndexSegmentData> tiers;
  tiers.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    WF_ASSIGN_OR_RETURN(store::IndexSegmentData data,
                        store::LoadIndexSegmentData(*frozen_[i]));
    tiers.push_back(std::move(data));
  }
  store::IndexSegmentData merged = store::MergeIndexSegments(tiers);
  const uint64_t id = manifest_.next_segment_id;
  const std::string path = SegmentPathLocked(id);
  uint64_t bytes = 0;
  WF_RETURN_IF_ERROR(
      store::WriteIndexSegmentFile(path, merged, injector_, &bytes));
  WF_ASSIGN_OR_RETURN(std::unique_ptr<store::IndexSegmentReader> reader,
                      store::IndexSegmentReader::Open(path));

  store::ManifestData next;
  next.next_segment_id = id + 1;
  uint64_t rewritten = 0;
  for (size_t i = 0; i < begin; ++i) {
    next.segments.push_back(manifest_.segments[i]);
  }
  next.segments.push_back(store::SegmentMeta{id, merged.docs.size(), bytes});
  for (size_t i = end; i < frozen_.size(); ++i) {
    next.segments.push_back(manifest_.segments[i]);
  }
  for (size_t i = begin; i < end; ++i) {
    rewritten += manifest_.segments[i].bytes;
  }
  // Commit point: the old segments may be deleted only once the new
  // manifest is durable (same discipline as the store's LSM compaction).
  WF_RETURN_IF_ERROR(
      store::SaveManifest(ManifestPathLocked(), next, injector_));
  std::vector<std::string> stale;
  for (size_t i = begin; i < end; ++i) {
    stale.push_back(frozen_[i]->path());
  }
  frozen_.erase(frozen_.begin() + static_cast<long>(begin),
                frozen_.begin() + static_cast<long>(end));
  frozen_.insert(frozen_.begin() + static_cast<long>(begin),
                 std::move(reader));
  manifest_ = std::move(next);
  std::error_code ec;
  for (const std::string& path_to_remove : stale) {
    std::filesystem::remove(path_to_remove, ec);
  }
  if (compactions_counter_ != nullptr) compactions_counter_->Add();
  if (compaction_bytes_counter_ != nullptr) {
    compaction_bytes_counter_->Add(rewritten);
  }
  return common::Status::Ok();
}

void InvertedIndex::UpdateGaugesLocked() const {
  if (frozen_segments_gauge_ != nullptr) {
    frozen_segments_gauge_->Set(static_cast<int64_t>(frozen_.size()));
  }
  if (delta_docs_gauge_ != nullptr) {
    delta_docs_gauge_->Set(static_cast<int64_t>(docs_.size()));
  }
}

// --- Snapshot persistence ---------------------------------------------------

namespace {

// Percent-escape for whitespace-delimited snapshot fields.
std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '%') {
      out += common::StrFormat("%%%02x", static_cast<unsigned char>(c));
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(
          std::strtol(s.substr(i + 1, 2).c_str(), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

common::Status InvertedIndex::Save(
    const std::string& path, common::StorageFaultInjector* injector) const {
  common::MutexLock lock(mu_);
  // The canonical merged image: docs sorted by id with remapped ordinals,
  // terms sorted, postings in doc-ordinal order, fields sorted by
  // (ordinal, value). A pure function of the logical contents, so two
  // indexes with equal data but different tier layouts save byte-identical
  // snapshots (the determinism contract parallel mining relies on).
  // Written atomically under the checksummed `wfsnap index` envelope.
  std::ostringstream out;
  out << "wfidx 1\n";
  std::set<std::string> doc_set(docs_.begin(), docs_.end());
  for (const auto& reader : frozen_) {
    for (const store::IndexDocEntry& doc : reader->docs()) {
      doc_set.insert(doc.id);
    }
  }
  std::unordered_map<std::string, uint32_t> ord_of;
  ord_of.reserve(doc_set.size());
  {
    uint32_t ord = 0;
    for (const std::string& doc_id : doc_set) {
      out << "doc " << ord << " " << EscapeField(doc_id) << "\n";
      ord_of.emplace(doc_id, ord);
      ++ord;
    }
  }
  for (const std::string& term : MergedVocabularyLocked("")) {
    const auto merged = MergedPostingsLocked(term);
    if (merged.empty()) continue;
    out << "term " << EscapeField(term);
    for (const auto& [doc_id, positions] : merged) {
      out << " " << ord_of[doc_id] << ":";
      for (size_t k = 0; k < positions.size(); ++k) {
        if (k > 0) out << ",";
        out << positions[k];
      }
    }
    out << "\n";
  }
  std::set<std::string> field_names;
  for (const auto& [field, values] : fields_) field_names.insert(field);
  for (const auto& reader : frozen_) {
    for (const auto& [field, entries] : reader->fields()) {
      field_names.insert(field);
    }
  }
  for (const std::string& field : field_names) {
    std::set<std::pair<uint32_t, double>> entries;
    for (size_t t = 0; t < frozen_.size(); ++t) {
      auto fit = frozen_[t]->fields().find(field);
      if (fit == frozen_[t]->fields().end()) continue;
      for (const store::FieldValueEntry& entry : fit->second) {
        const std::string& doc_id = frozen_[t]->docs()[entry.doc_ord].id;
        if (SealTierLocked(doc_id) > static_cast<int>(t)) continue;
        entries.emplace(ord_of[doc_id], entry.value);
      }
    }
    auto it = fields_.find(field);
    if (it != fields_.end()) {
      for (const auto& [value, ord] : it->second) {
        entries.emplace(ord_of[docs_[ord]], value);
      }
    }
    for (const auto& [ord, value] : entries) {
      out << "field " << EscapeField(field) << " " << value << " " << ord
          << "\n";
    }
  }
  return common::WriteSnapshotFile(path, common::kSnapKindIndex, /*version=*/1,
                                   out.str(), injector);
}

common::Status InvertedIndex::Load(const std::string& path) {
  {
    common::MutexLock lock(mu_);
    if (segmented_) {
      return common::Status::FailedPrecondition(
          "segment-mode index loads from its manifest, not a snapshot");
    }
  }
  auto payload_or = common::ReadSnapshotFile(path, common::kSnapKindIndex,
                                             /*version=*/1);
  if (!payload_or.ok()) return payload_or.status();
  std::istringstream in(payload_or.value());
  std::string header;
  if (!std::getline(in, header) || header != "wfidx 1") {
    return common::Status::Corruption("bad index header in " + path);
  }
  std::vector<std::string> docs;
  std::unordered_map<std::string, uint32_t> doc_ids;
  std::map<std::string, std::vector<Posting>> postings;
  std::map<std::string, std::vector<std::pair<double, uint32_t>>> fields;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> parts = common::Split(line, " ");
    if (parts.empty()) continue;
    if (parts[0] == "doc" && parts.size() == 3) {
      size_t ord = std::stoull(parts[1]);
      if (ord != docs.size()) {
        return common::Status::Corruption("doc ordinals out of order");
      }
      docs.push_back(UnescapeField(parts[2]));
      doc_ids[docs.back()] = static_cast<uint32_t>(ord);
    } else if (parts[0] == "term" && parts.size() >= 2) {
      std::vector<Posting>& list = postings[UnescapeField(parts[1])];
      for (size_t i = 2; i < parts.size(); ++i) {
        size_t colon = parts[i].find(':');
        if (colon == std::string::npos) {
          return common::Status::Corruption("bad posting: " + parts[i]);
        }
        Posting p;
        p.doc = static_cast<uint32_t>(
            std::stoul(parts[i].substr(0, colon)));
        if (p.doc >= docs.size()) {
          return common::Status::Corruption("posting names unknown doc");
        }
        std::string pos_list = parts[i].substr(colon + 1);
        if (!pos_list.empty()) {
          for (const std::string& pos : common::Split(pos_list, ",")) {
            p.positions.push_back(
                static_cast<uint32_t>(std::stoul(pos)));
          }
        }
        list.push_back(std::move(p));
      }
    } else if (parts[0] == "field" && parts.size() == 4) {
      fields[UnescapeField(parts[1])].emplace_back(
          std::strtod(parts[2].c_str(), nullptr),
          static_cast<uint32_t>(std::stoul(parts[3])));
    } else {
      return common::Status::Corruption("unknown index record: " + line);
    }
  }
  common::MutexLock lock(mu_);
  docs_ = std::move(docs);
  doc_ids_ = std::move(doc_ids);
  // A loaded snapshot is the complete image of each doc.
  delta_full_.assign(docs_.size(), true);
  postings_ = std::move(postings);
  fields_ = std::move(fields);
  return common::Status::Ok();
}

}  // namespace wf::platform
