#include "platform/wal.h"

#include <cstdlib>

#include "common/hash.h"
#include "common/string_util.h"

namespace wf::platform {

using ::wf::common::Status;

namespace {
constexpr char kWalHeader[] = "wfwal 1\n";
constexpr size_t kWalHeaderSize = sizeof(kWalHeader) - 1;
}  // namespace

common::Status WriteAheadLog::Open(const std::string& path,
                                   common::StorageFaultInjector* injector) {
  if (is_open()) return Status::FailedPrecondition("log already open");
  WF_RETURN_IF_ERROR(file_.Open(path, injector));
  if (file_.size() == 0) {
    Status s = file_.Append(std::string_view(kWalHeader, kWalHeaderSize));
    if (!s.ok()) {
      file_.Close();
      return s;
    }
  }
  path_ = path;
  injector_ = injector;
  acked_bytes_ = file_.size();
  appended_records_ = 0;
  poisoned_ = false;
  return Status::Ok();
}

common::Status WriteAheadLog::Append(std::string_view record) {
  if (!is_open()) return Status::FailedPrecondition("log not open");
  if (poisoned_) {
    return Status::IOError(
        "log has a torn tail from an earlier failed append; recover and "
        "Reset() before appending: " +
        path_);
  }
  std::string frame = common::StrFormat(
      "rec %zu %016llx\n", record.size(),
      static_cast<unsigned long long>(common::Fnv1a64(record)));
  frame.append(record.data(), record.size());
  frame += '\n';
  const uint64_t before = file_.size();
  Status s = file_.Append(frame);
  if (!s.ok()) {
    // If any prefix of the frame landed, later appends would sit behind an
    // unverifiable tail and be silently dropped by Replay — refuse them
    // until recovery truncates the log.
    if (file_.size() != before) poisoned_ = true;
    return s;
  }
  acked_bytes_ = file_.size();
  ++appended_records_;
  return Status::Ok();
}

common::Result<WriteAheadLog::ReplayResult> WriteAheadLog::Replay(
    const std::string& path) {
  ReplayResult result;
  if (!common::FileExists(path)) return result;  // never written: empty log
  common::Result<std::string> content_or = common::ReadFileToString(path);
  if (!content_or.ok()) return content_or.status();
  const std::string& content = content_or.value();
  if (content.empty()) return result;
  if (content.size() < kWalHeaderSize) {
    // A prefix of the header: the creating write itself was torn.
    if (content ==
        std::string_view(kWalHeader).substr(0, content.size())) {
      result.torn_tail = true;
      return result;
    }
    return Status::Corruption("not a WAL file: " + path);
  }
  if (content.compare(0, kWalHeaderSize, kWalHeader) != 0) {
    return Status::Corruption("bad WAL header in " + path);
  }
  size_t pos = kWalHeaderSize;
  result.valid_bytes = pos;
  while (pos < content.size()) {
    size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // torn frame line
    std::vector<std::string> parts =
        common::Split(content.substr(pos, nl - pos), " ");
    if (parts.size() != 3 || parts[0] != "rec" || parts[2].size() != 16) {
      break;  // unparseable frame: torn or corrupt tail
    }
    char* end = nullptr;
    unsigned long long len = std::strtoull(parts[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') break;
    unsigned long long checksum = std::strtoull(parts[2].c_str(), &end, 16);
    if (end == nullptr || *end != '\0') break;
    size_t payload_at = nl + 1;
    if (payload_at + len + 1 > content.size()) break;  // payload torn
    if (content[payload_at + len] != '\n') break;
    std::string_view payload(content.data() + payload_at,
                             static_cast<size_t>(len));
    if (common::Fnv1a64(payload) != checksum) break;  // bit rot
    result.records.emplace_back(payload);
    pos = payload_at + len + 1;
    result.valid_bytes = pos;
  }
  // Anything left past the last verified record is the torn tail. Nothing
  // beyond it is trusted: it was written after a write already lost.
  result.torn_tail = pos < content.size();
  return result;
}

common::Status WriteAheadLog::Reset() {
  if (!is_open()) return Status::FailedPrecondition("log not open");
  file_.Close();
  Status s = common::WriteFileAtomic(
      path_, std::string_view(kWalHeader, kWalHeaderSize), injector_);
  // Reopen even after a failed truncation so the handle stays usable; the
  // old log (and its tail) is still intact on failure.
  Status reopen = file_.Open(path_, injector_);
  if (!s.ok()) return s;
  WF_RETURN_IF_ERROR(reopen);
  acked_bytes_ = file_.size();
  appended_records_ = 0;
  poisoned_ = false;
  return Status::Ok();
}

void WriteAheadLog::Close() {
  file_.Close();
  path_.clear();
  injector_ = nullptr;
  acked_bytes_ = 0;
  appended_records_ = 0;
  poisoned_ = false;
}

}  // namespace wf::platform
