#include "platform/cluster.h"

#include <algorithm>
#include <set>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace wf::platform {

using ::wf::common::Status;

void ClusterNode::MineAndIndex() {
  pipeline_.ProcessStore(store_);
  store_.ForEach([this](const Entity& e) { index_.IndexEntity(e); });
}

std::string ClusterNode::ServiceName(const std::string& suffix) const {
  return common::StrFormat("node/%zu/%s", id_, suffix.c_str());
}

common::Status ClusterNode::RegisterServices(VinciBus* bus) {
  WF_RETURN_IF_ERROR(bus->RegisterService(
      ServiceName("search"), [this](const std::string& request) {
        std::string term = GetMessageField(request, "term");
        std::string mode = GetMessageField(request, "mode");
        std::vector<std::string> docs;
        if (mode == "phrase") {
          std::vector<std::string> words = common::Split(term, " ");
          docs = index_.Phrase(words);
        } else if (mode == "prefix") {
          docs = index_.Prefix(term);
        } else {
          docs = index_.Term(term);
        }
        std::vector<std::pair<std::string, std::string>> out;
        out.reserve(docs.size());
        for (std::string& d : docs) out.emplace_back("doc", std::move(d));
        return EncodeMessage(out);
      }));
  WF_RETURN_IF_ERROR(bus->RegisterService(
      ServiceName("stats"), [this](const std::string&) {
        return EncodeMessage(
            {{"entities", common::StrFormat("%zu", store_.size())},
             {"vocabulary",
              common::StrFormat("%zu", index_.vocabulary_size())}});
      }));
  WF_RETURN_IF_ERROR(bus->RegisterService(
      ServiceName("fetch"), [this](const std::string& request) {
        std::string id = GetMessageField(request, "id");
        auto entity = store_.Get(id);
        if (!entity.ok()) {
          return EncodeMessage({{"error", entity.status().ToString()}});
        }
        return EncodeMessage({{"entity", entity->Serialize()}});
      }));
  return Status::Ok();
}

Cluster::Cluster(size_t num_nodes) {
  WF_CHECK(num_nodes > 0);
  nodes_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<ClusterNode>(i));
    WF_CHECK_OK(nodes_.back()->RegisterServices(&bus_));
  }
}

common::Status Cluster::Ingest(Entity entity) {
  size_t shard = Route(entity.id());
  return nodes_[shard]->store().Put(std::move(entity));
}

void Cluster::DeployMiner(
    const std::function<std::unique_ptr<EntityMiner>()>& factory) {
  for (auto& node : nodes_) {
    node->pipeline().AddMiner(factory());
  }
}

void Cluster::MineAndIndexAll() {
  std::vector<std::thread> workers;
  workers.reserve(nodes_.size());
  for (auto& node : nodes_) {
    workers.emplace_back([&node] { node->MineAndIndex(); });
  }
  for (std::thread& t : workers) t.join();
}

namespace {

// Gathers a scatter over the node search services into a SearchResult,
// tolerating per-node failures (the degraded shard is recorded, not fatal).
SearchResult GatherSearch(
    const std::vector<std::pair<std::string, common::Result<std::string>>>&
        scattered) {
  SearchResult result;
  std::set<std::string> docs;
  for (const auto& [service, response] : scattered) {
    if (!common::EndsWith(service, "/search")) continue;
    ++result.nodes_total;
    if (!response.ok()) {
      result.failed_services.push_back(service);
      continue;
    }
    ++result.nodes_responded;
    for (std::string& d : GetMessageFields(*response, "doc")) {
      docs.insert(std::move(d));
    }
  }
  result.docs.assign(docs.begin(), docs.end());
  return result;
}

}  // namespace

SearchResult Cluster::Search(const std::string& term) const {
  std::string request = EncodeMessage({{"term", term}});
  return GatherSearch(bus_.CallAll("node/", request));
}

SearchResult Cluster::SearchPhrase(
    const std::vector<std::string>& words) const {
  std::string request = EncodeMessage(
      {{"term", common::Join(words, " ")}, {"mode", "phrase"}});
  return GatherSearch(bus_.CallAll("node/", request));
}

size_t Cluster::TotalEntities() const {
  size_t total = 0;
  for (const auto& node : nodes_) total += node->store().size();
  return total;
}

}  // namespace wf::platform
