#include "platform/cluster.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace wf::platform {

using ::wf::common::Status;

void ClusterNode::MineAndIndex() { MineAndIndex(nullptr); }

void ClusterNode::MineAndIndex(MineExecutor* executor) {
  obs::ScopedTimer timer(metrics_.GetHistogram(
      "node/mine_and_index_us", obs::DefaultLatencyBoundsUs(),
      /*timing=*/true));
  pipeline_.ProcessStore(store_, executor);
  // Index in sorted-id order so the index snapshot is a pure function of
  // the shard contents (the in-memory posting layout never depends on how
  // mining was scheduled). Mining just populated the analysis cache, so
  // the token streams here are hits, not a third tokenization. The sweep
  // streams one entity at a time — a 100x shard never materializes whole.
  size_t indexed = 0;
  store_.ForEach([this, &indexed](const Entity& e) {
    index_.IndexEntity(e, analysis_cache_.Analyze(e.id(), e.body())->tokens);
    ++indexed;
  });
  metrics_.GetCounter("index/indexed_entities_total")->Add(indexed);
  metrics_.GetGauge("index/vocabulary")
      ->Set(static_cast<int64_t>(index_.vocabulary_size()));
  metrics_.GetGauge("store/entities")->Set(static_cast<int64_t>(store_.size()));
}

std::string ClusterNode::ServiceName(const std::string& suffix) const {
  return common::StrFormat("node/%zu/%s", id_, suffix.c_str());
}

std::string ClusterNode::StatsServiceName() const {
  // Outside the node/ prefix on purpose: query scatters (CallAll("node/"))
  // must not dispatch — or count, or trace — stats traffic.
  return common::StrFormat("wfstats/node/%zu", id_);
}

common::Status ClusterNode::RegisterServices(VinciBus* bus) {
  WF_RETURN_IF_ERROR(bus->RegisterService(
      ServiceName("search"), [this](const std::string& request) {
        std::string term = GetMessageField(request, "term");
        std::string mode = GetMessageField(request, "mode");
        std::vector<std::string> docs;
        if (mode == "phrase") {
          std::vector<std::string> words = common::Split(term, " ");
          docs = index_.Phrase(words);
        } else if (mode == "prefix") {
          docs = index_.Prefix(term);
        } else {
          docs = index_.Term(term);
        }
        std::vector<std::pair<std::string, std::string>> out;
        out.reserve(docs.size());
        for (std::string& d : docs) out.emplace_back("doc", std::move(d));
        return EncodeMessage(out);
      }));
  WF_RETURN_IF_ERROR(bus->RegisterService(
      ServiceName("stats"), [this](const std::string&) {
        return EncodeMessage(
            {{"entities", common::StrFormat("%zu", store_.size())},
             {"vocabulary",
              common::StrFormat("%zu", index_.vocabulary_size())}});
      }));
  WF_RETURN_IF_ERROR(bus->RegisterService(
      ServiceName("fetch"), [this](const std::string& request) {
        std::string id = GetMessageField(request, "id");
        auto entity = store_.Get(id);
        if (!entity.ok()) {
          return EncodeMessage({{"error", entity.status().ToString()}});
        }
        return EncodeMessage({{"entity", entity->Serialize()}});
      }));
  WF_RETURN_IF_ERROR(bus->RegisterService(
      StatsServiceName(), [this](const std::string& request) {
        std::string format = GetMessageField(request, "format");
        obs::MetricsSnapshot snapshot = metrics_.Snapshot();
        std::string payload;
        if (format == "json") {
          payload = snapshot.ExportJson();
        } else if (format == "text") {
          payload = snapshot.ExportText();
        } else {
          format = "wire";
          payload = snapshot.ToWire();
        }
        return EncodeMessage({{"node", common::StrFormat("%zu", id_)},
                              {"format", format},
                              {"stats", payload}});
      }));
  return Status::Ok();
}

void ClusterNode::UnregisterServices(VinciBus* bus) {
  // Ignore NotFound: crashing an already-deregistered node must be benign.
  (void)bus->UnregisterService(ServiceName("search"));
  (void)bus->UnregisterService(ServiceName("stats"));
  (void)bus->UnregisterService(ServiceName("fetch"));
  (void)bus->UnregisterService(StatsServiceName());
}

common::Status ClusterNode::EnableDurability(
    const std::string& dir, common::StorageFaultInjector* injector,
    uint64_t checkpoint_every_appends, const store::LsmOptions& lsm_options) {
  common::MutexLock lock(dur_mu_);
  if (wal_.is_open()) {
    return Status::FailedPrecondition("durability already enabled");
  }
  injector_ = injector;
  checkpoint_every_appends_ = checkpoint_every_appends;
  appends_since_checkpoint_ = 0;
  // Segment tiers first: opening them loads every checkpointed record and
  // posting from the manifests (or starts empty in a fresh directory), and
  // a corrupt segment must fail enablement rather than load silently
  // wrong. The WAL opens last, so durable() implies the whole stack is up.
  WF_RETURN_IF_ERROR(store_.EnableSegments(
      dir, common::StrFormat("node-%zu.store", id_), lsm_options, injector));
  WF_RETURN_IF_ERROR(index_.EnableSegments(
      dir, common::StrFormat("node-%zu.idx", id_), injector,
      lsm_options.compaction_fanout));
  return wal_.Open(common::StrFormat("%s/node-%zu.wal", dir.c_str(), id_),
                   injector);
}

common::Status ClusterNode::Ingest(Entity entity) {
  if (store_.Contains(entity.id())) {
    return Status::AlreadyExists("entity exists: " + entity.id());
  }
  if (!wal_.is_open()) return store_.Put(std::move(entity));
  common::MutexLock lock(dur_mu_);
  // Log-then-store: the WAL append is the ack barrier. If it fails the
  // write was never acked, so the store must not accept it either.
  Status logged = wal_.Append(entity.Serialize());
  if (!logged.ok()) {
    metrics_.GetCounter("wal/append_failures_total")->Add(1);
    return logged;
  }
  metrics_.GetCounter("wal/appends_total")->Add(1);
  WF_RETURN_IF_ERROR(store_.Put(std::move(entity)));
  if (checkpoint_every_appends_ > 0 &&
      ++appends_since_checkpoint_ >= checkpoint_every_appends_) {
    // Best effort: the write is already durable in the WAL, so a failed
    // auto-checkpoint is counted but does not fail the acked ingest.
    if (!CheckpointLocked().ok()) {
      metrics_.GetCounter("wal/checkpoint_failures_total")->Add(1);
    }
  }
  return Status::Ok();
}

common::Status ClusterNode::Checkpoint() {
  common::MutexLock lock(dur_mu_);
  return CheckpointLocked();
}

common::Status ClusterNode::CheckpointLocked() {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition("durability not enabled");
  }
  obs::ScopedTimer timer(metrics_.GetHistogram(
      "wal/checkpoint_us", obs::DefaultLatencyBoundsUs(), /*timing=*/true));
  // Segment flushes first, WAL truncation last: until Reset() succeeds
  // every acked record is still replayable, so a crash anywhere in here
  // loses nothing (each flush commits through an atomic manifest swap, so
  // recovery sees whichever segment generation the swap left durable).
  WF_RETURN_IF_ERROR(store_.Flush());
  WF_RETURN_IF_ERROR(index_.Freeze());
  WF_RETURN_IF_ERROR(wal_.Reset());
  appends_since_checkpoint_ = 0;
  metrics_.GetCounter("wal/checkpoints_total")->Add(1);
  return Status::Ok();
}

common::Status ClusterNode::Recover() {
  common::MutexLock lock(dur_mu_);
  if (!wal_.is_open()) {
    return Status::FailedPrecondition("durability not enabled");
  }
  obs::ScopedTimer timer(metrics_.GetHistogram(
      "wal/recovery_us", obs::DefaultLatencyBoundsUs(), /*timing=*/true));
  // The checkpointed tiers are already live: EnableDurability loaded every
  // segment run its manifest named. What remains is everything acked
  // since: replay the WAL, stopping cleanly at a torn tail. Upsert keeps
  // replay idempotent over the checkpoint.
  auto replay_or = WriteAheadLog::Replay(wal_.path());
  if (!replay_or.ok()) return replay_or.status();
  const WriteAheadLog::ReplayResult& replay = replay_or.value();
  for (const std::string& record : replay.records) {
    WF_ASSIGN_OR_RETURN(Entity entity, Entity::Deserialize(record));
    index_.IndexEntity(entity);
    WF_RETURN_IF_ERROR(store_.Upsert(std::move(entity)));
  }
  metrics_.GetCounter("wal/replayed_records_total")
      ->Add(replay.records.size());
  if (replay.torn_tail) {
    metrics_.GetCounter("wal/torn_tail_detected_total")->Add(1);
  }
  metrics_.GetGauge("store/entities")
      ->Set(static_cast<int64_t>(store_.size()));
  metrics_.GetGauge("index/vocabulary")
      ->Set(static_cast<int64_t>(index_.vocabulary_size()));
  // Compact immediately: the checkpoint truncates the WAL — discarding
  // any torn tail — before this handle appends behind it.
  return CheckpointLocked();
}

Cluster::Cluster(size_t num_nodes) {
  WF_CHECK(num_nodes > 0);
  bus_.AttachMetrics(&metrics_);
  // Always fed, consulted only by hedged scatters: recording into the
  // scoreboard has no metric footprint, so unhedged clusters keep their
  // deterministic exports (see HealthScoreboard's determinism note).
  bus_.AttachHealth(&health_);
  executor_ = std::make_unique<MineExecutor>(MineExecutorOptions{});
  executor_->AttachMetrics(&metrics_);
  nodes_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<ClusterNode>(i));
    WF_CHECK_OK(nodes_.back()->RegisterServices(&bus_));
  }
  metrics_.GetGauge("cluster/nodes_up")->Set(static_cast<int64_t>(num_nodes));
}

size_t Cluster::NodesUp() const {
  size_t up = 0;
  for (const auto& node : nodes_) {
    if (node != nullptr) ++up;
  }
  return up;
}

common::Status Cluster::Ingest(Entity entity) {
  size_t shard = Route(entity.id());
  if (nodes_[shard] == nullptr) {
    metrics_.GetCounter("ingest/unavailable_total")->Add(1);
    return Status::Unavailable(
        common::StrFormat("shard %zu is down", shard));
  }
  Status s = nodes_[shard]->Ingest(std::move(entity));
  metrics_.GetCounter(s.ok() ? "ingest/stored_total" : "ingest/rejected_total")
      ->Add(1);
  return s;
}

void Cluster::DeployMiner(
    const std::function<std::unique_ptr<EntityMiner>()>& factory) {
  for (auto& node : nodes_) {
    if (node != nullptr) node->pipeline().AddMiner(factory());
  }
  // Remembered so a restarted node is rebuilt with the same pipeline.
  miner_factories_.push_back(factory);
}

void Cluster::MineAndIndexAll() {
  std::vector<ClusterNode*> up;
  up.reserve(nodes_.size());
  for (auto& node : nodes_) {
    if (node != nullptr) up.push_back(node.get());
  }
  if (up.empty()) return;
  // Nested scatter: the outer ParallelFor dispatches one task per node,
  // and each node's ProcessStore scatters its per-entity batches onto the
  // same pool, so total threads stay bounded by the executor regardless of
  // shard count.
  executor_->ParallelFor(up.size(),
                         [&](size_t i) { up[i]->MineAndIndex(executor_.get()); });
}

void Cluster::ConfigureMining(const MineExecutorOptions& options) {
  executor_ = std::make_unique<MineExecutor>(options);
  executor_->AttachMetrics(&metrics_);
}

common::Status Cluster::EnableDurability(
    const DurabilityOptions& options, common::StorageFaultInjector* injector) {
  if (durable_) return Status::FailedPrecondition("durability already enabled");
  durability_ = options;
  injector_ = injector;
  durable_ = true;
  for (auto& node : nodes_) {
    WF_RETURN_IF_ERROR(node->EnableDurability(
        durability_.dir, injector_, durability_.checkpoint_every_appends,
        durability_.lsm));
    // Recover from whatever the directory holds: empty shards for a fresh
    // dir, the previous run's state for an existing one.
    WF_RETURN_IF_ERROR(node->Recover());
  }
  return Status::Ok();
}

common::Status Cluster::CheckpointAll() {
  Status first = Status::Ok();
  for (auto& node : nodes_) {
    if (node == nullptr) continue;
    Status s = node->Checkpoint();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

common::Status Cluster::CrashNode(size_t i) {
  if (i >= nodes_.size()) {
    return Status::InvalidArgument(common::StrFormat("no node %zu", i));
  }
  if (nodes_[i] == nullptr) {
    return Status::FailedPrecondition(
        common::StrFormat("node %zu is already down", i));
  }
  // Withdraw the services, then drop the node: everything in memory — the
  // shard, the index, the metrics — is gone, exactly as a power loss
  // would leave it. Only the WAL and checkpoints on disk survive.
  nodes_[i]->UnregisterServices(&bus_);
  nodes_[i].reset();
  metrics_.GetCounter("cluster/node_crashes_total")->Add(1);
  metrics_.GetGauge("cluster/nodes_up")->Set(static_cast<int64_t>(NodesUp()));
  return Status::Ok();
}

common::Status Cluster::RestartNode(size_t i) {
  if (i >= nodes_.size()) {
    return Status::InvalidArgument(common::StrFormat("no node %zu", i));
  }
  if (nodes_[i] != nullptr) {
    return Status::FailedPrecondition(
        common::StrFormat("node %zu is already up", i));
  }
  if (!durable_) {
    return Status::FailedPrecondition(
        "cluster is not durable; nothing to restart from");
  }
  auto node = std::make_unique<ClusterNode>(i);
  WF_RETURN_IF_ERROR(node->EnableDurability(
      durability_.dir, injector_, durability_.checkpoint_every_appends,
      durability_.lsm));
  for (const auto& factory : miner_factories_) {
    node->pipeline().AddMiner(factory());
  }
  // Recover before serving: the node re-registers only once its shard is
  // rebuilt from the newest checkpoint + WAL replay.
  WF_RETURN_IF_ERROR(node->Recover());
  WF_RETURN_IF_ERROR(node->RegisterServices(&bus_));
  nodes_[i] = std::move(node);
  metrics_.GetCounter("cluster/node_restarts_total")->Add(1);
  metrics_.GetGauge("cluster/nodes_up")->Set(static_cast<int64_t>(NodesUp()));
  return Status::Ok();
}

namespace {

// Gathers a scatter over the node search services into a SearchResult,
// tolerating per-node failures (the degraded shard is recorded, not fatal).
SearchResult GatherSearch(
    const std::vector<std::pair<std::string, common::Result<std::string>>>&
        scattered) {
  SearchResult result;
  std::set<std::string> docs;
  for (const auto& [service, response] : scattered) {
    if (!common::EndsWith(service, "/search")) continue;
    ++result.nodes_total;
    if (!response.ok()) {
      result.failed_services.push_back(service);
      continue;
    }
    ++result.nodes_responded;
    for (std::string& d : GetMessageFields(*response, "doc")) {
      docs.insert(std::move(d));
    }
  }
  result.docs.assign(docs.begin(), docs.end());
  return result;
}

}  // namespace

template <typename ResultT>
void Cluster::AccountDownNodes(
    const std::function<std::string(size_t)>& service_name,
    ResultT* result) const {
  // A down node's services are deregistered, so the scatter never saw
  // them — but a 4-shard cluster answering from 3 shards is a partial
  // answer and must report itself as one.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] != nullptr) continue;
    ++result->nodes_total;
    result->failed_services.push_back(service_name(i));
  }
}

SearchResult Cluster::TracedSearch(
    const std::string& name,
    std::vector<std::pair<std::string, std::string>> request_fields,
    const Deadline& deadline) const {
  // With a tracer attached, the query gets a root span whose context rides
  // the scattered request; the bus then records one child span per target,
  // stitching the fan-out into a single trace.
  obs::Span root;
  if (tracer_ != nullptr) {
    root = tracer_->StartTrace(name);
    obs::AppendContext(root.context(), &request_fields);
  }
  metrics_.GetCounter("cluster/searches_total")->Add(1);
  SearchResult result;
  if (!deadline.infinite() && deadline.expired()) {
    // Fail every shard up front: the caller's budget is spent, so nothing
    // may be scattered — the whole point of propagating the deadline is
    // that zero downstream work runs past it.
    metrics_.GetCounter("cluster/deadline_expired_searches_total")->Add(1);
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i] == nullptr) continue;
      ++result.nodes_total;
      result.failed_services.push_back(
          common::StrFormat("node/%zu/search", i));
    }
  } else {
    // The absolute expiry rides the request (servers gate on it) and also
    // caps each per-node call from this side, so a shard that never answers
    // costs at most the remaining budget, not an unbounded wait.
    AppendDeadline(deadline, &request_fields);
    CallOptions options;
    options.deadline_us = deadline.CallBudgetUs();
    // Hedged when enabled: a straggling shard is re-issued once at its
    // health-derived ~p95 (clamped to the deadline) and a suspect shard is
    // abandoned early. GatherSearch unions docs into a set, so the answer
    // bytes cannot depend on which copy of a shard's response won.
    result = GatherSearch(
        hedge_.enabled
            ? bus_.CallAllHedged("node/", EncodeMessage(request_fields),
                                 options, hedge_)
            : bus_.CallAll("node/", EncodeMessage(request_fields), options));
  }
  AccountDownNodes(
      [](size_t i) { return common::StrFormat("node/%zu/search", i); },
      &result);
  if (!result.complete()) {
    metrics_.GetCounter("cluster/partial_searches_total")->Add(1);
  }
  if (root.active()) {
    root.SetAttr("nodes_total",
                 common::StrFormat("%zu", result.nodes_total));
    root.SetAttr("nodes_responded",
                 common::StrFormat("%zu", result.nodes_responded));
  }
  return result;
}

SearchResult Cluster::Search(const std::string& term) const {
  return Search(term, Deadline::Infinite());
}

SearchResult Cluster::SearchPhrase(
    const std::vector<std::string>& words) const {
  return SearchPhrase(words, Deadline::Infinite());
}

SearchResult Cluster::Search(const std::string& term,
                             const Deadline& deadline) const {
  return TracedSearch("cluster/search", {{"term", term}}, deadline);
}

SearchResult Cluster::SearchPhrase(const std::vector<std::string>& words,
                                   const Deadline& deadline) const {
  return TracedSearch("cluster/search_phrase",
                      {{"term", common::Join(words, " ")}, {"mode", "phrase"}},
                      deadline);
}

ClusterStats Cluster::CollectStats() const {
  ClusterStats stats;
  // Health gauges join the roll-up only while hedging is on: they are
  // wall-clock-fed, and publishing them unconditionally would break the
  // byte-identical deterministic exports unhedged clusters promise.
  if (hedge_.enabled) health_.Publish(&metrics_);
  // Snapshot the local (bus-level) registry before the gather so the
  // roll-up's own wfstats calls are not half-counted inside it.
  stats.merged = metrics_.Snapshot();
  std::string request = EncodeMessage({{"format", "wire"}});
  for (const auto& [service, response] : bus_.CallAll("wfstats/", request)) {
    ++stats.nodes_total;
    if (!response.ok()) {
      stats.failed_services.push_back(service);
      continue;
    }
    std::string wire = GetMessageField(*response, "stats");
    auto snapshot = obs::MetricsSnapshot::FromWire(wire);
    if (!snapshot.ok() || !stats.merged.MergeFrom(*snapshot).ok()) {
      stats.failed_services.push_back(service);
      continue;
    }
    ++stats.nodes_responded;
  }
  AccountDownNodes(
      [](size_t i) { return common::StrFormat("wfstats/node/%zu", i); },
      &stats);
  return stats;
}

size_t Cluster::TotalEntities() const {
  size_t total = 0;
  for (const auto& node : nodes_) {
    if (node != nullptr) total += node->store().size();
  }
  return total;
}

}  // namespace wf::platform
