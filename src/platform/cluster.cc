#include "platform/cluster.h"

#include <algorithm>
#include <set>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace wf::platform {

using ::wf::common::Status;

void ClusterNode::MineAndIndex() {
  obs::ScopedTimer timer(metrics_.GetHistogram(
      "node/mine_and_index_us", obs::DefaultLatencyBoundsUs(),
      /*timing=*/true));
  pipeline_.ProcessStore(store_);
  size_t indexed = 0;
  store_.ForEach([this, &indexed](const Entity& e) {
    index_.IndexEntity(e);
    ++indexed;
  });
  metrics_.GetCounter("index/indexed_entities_total")->Add(indexed);
  metrics_.GetGauge("index/vocabulary")
      ->Set(static_cast<int64_t>(index_.vocabulary_size()));
  metrics_.GetGauge("store/entities")->Set(static_cast<int64_t>(store_.size()));
}

std::string ClusterNode::ServiceName(const std::string& suffix) const {
  return common::StrFormat("node/%zu/%s", id_, suffix.c_str());
}

std::string ClusterNode::StatsServiceName() const {
  // Outside the node/ prefix on purpose: query scatters (CallAll("node/"))
  // must not dispatch — or count, or trace — stats traffic.
  return common::StrFormat("wfstats/node/%zu", id_);
}

common::Status ClusterNode::RegisterServices(VinciBus* bus) {
  WF_RETURN_IF_ERROR(bus->RegisterService(
      ServiceName("search"), [this](const std::string& request) {
        std::string term = GetMessageField(request, "term");
        std::string mode = GetMessageField(request, "mode");
        std::vector<std::string> docs;
        if (mode == "phrase") {
          std::vector<std::string> words = common::Split(term, " ");
          docs = index_.Phrase(words);
        } else if (mode == "prefix") {
          docs = index_.Prefix(term);
        } else {
          docs = index_.Term(term);
        }
        std::vector<std::pair<std::string, std::string>> out;
        out.reserve(docs.size());
        for (std::string& d : docs) out.emplace_back("doc", std::move(d));
        return EncodeMessage(out);
      }));
  WF_RETURN_IF_ERROR(bus->RegisterService(
      ServiceName("stats"), [this](const std::string&) {
        return EncodeMessage(
            {{"entities", common::StrFormat("%zu", store_.size())},
             {"vocabulary",
              common::StrFormat("%zu", index_.vocabulary_size())}});
      }));
  WF_RETURN_IF_ERROR(bus->RegisterService(
      ServiceName("fetch"), [this](const std::string& request) {
        std::string id = GetMessageField(request, "id");
        auto entity = store_.Get(id);
        if (!entity.ok()) {
          return EncodeMessage({{"error", entity.status().ToString()}});
        }
        return EncodeMessage({{"entity", entity->Serialize()}});
      }));
  WF_RETURN_IF_ERROR(bus->RegisterService(
      StatsServiceName(), [this](const std::string& request) {
        std::string format = GetMessageField(request, "format");
        obs::MetricsSnapshot snapshot = metrics_.Snapshot();
        std::string payload;
        if (format == "json") {
          payload = snapshot.ExportJson();
        } else if (format == "text") {
          payload = snapshot.ExportText();
        } else {
          format = "wire";
          payload = snapshot.ToWire();
        }
        return EncodeMessage({{"node", common::StrFormat("%zu", id_)},
                              {"format", format},
                              {"stats", payload}});
      }));
  return Status::Ok();
}

Cluster::Cluster(size_t num_nodes) {
  WF_CHECK(num_nodes > 0);
  bus_.AttachMetrics(&metrics_);
  nodes_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<ClusterNode>(i));
    WF_CHECK_OK(nodes_.back()->RegisterServices(&bus_));
  }
}

common::Status Cluster::Ingest(Entity entity) {
  size_t shard = Route(entity.id());
  Status s = nodes_[shard]->store().Put(std::move(entity));
  metrics_.GetCounter(s.ok() ? "ingest/stored_total" : "ingest/rejected_total")
      ->Add(1);
  return s;
}

void Cluster::DeployMiner(
    const std::function<std::unique_ptr<EntityMiner>()>& factory) {
  for (auto& node : nodes_) {
    node->pipeline().AddMiner(factory());
  }
}

void Cluster::MineAndIndexAll() {
  std::vector<std::thread> workers;
  workers.reserve(nodes_.size());
  for (auto& node : nodes_) {
    workers.emplace_back([&node] { node->MineAndIndex(); });
  }
  for (std::thread& t : workers) t.join();
}

namespace {

// Gathers a scatter over the node search services into a SearchResult,
// tolerating per-node failures (the degraded shard is recorded, not fatal).
SearchResult GatherSearch(
    const std::vector<std::pair<std::string, common::Result<std::string>>>&
        scattered) {
  SearchResult result;
  std::set<std::string> docs;
  for (const auto& [service, response] : scattered) {
    if (!common::EndsWith(service, "/search")) continue;
    ++result.nodes_total;
    if (!response.ok()) {
      result.failed_services.push_back(service);
      continue;
    }
    ++result.nodes_responded;
    for (std::string& d : GetMessageFields(*response, "doc")) {
      docs.insert(std::move(d));
    }
  }
  result.docs.assign(docs.begin(), docs.end());
  return result;
}

}  // namespace

SearchResult Cluster::TracedSearch(
    const std::string& name,
    std::vector<std::pair<std::string, std::string>> request_fields) const {
  // With a tracer attached, the query gets a root span whose context rides
  // the scattered request; the bus then records one child span per target,
  // stitching the fan-out into a single trace.
  obs::Span root;
  if (tracer_ != nullptr) {
    root = tracer_->StartTrace(name);
    obs::AppendContext(root.context(), &request_fields);
  }
  metrics_.GetCounter("cluster/searches_total")->Add(1);
  SearchResult result =
      GatherSearch(bus_.CallAll("node/", EncodeMessage(request_fields)));
  if (!result.complete()) {
    metrics_.GetCounter("cluster/partial_searches_total")->Add(1);
  }
  if (root.active()) {
    root.SetAttr("nodes_total",
                 common::StrFormat("%zu", result.nodes_total));
    root.SetAttr("nodes_responded",
                 common::StrFormat("%zu", result.nodes_responded));
  }
  return result;
}

SearchResult Cluster::Search(const std::string& term) const {
  return TracedSearch("cluster/search", {{"term", term}});
}

SearchResult Cluster::SearchPhrase(
    const std::vector<std::string>& words) const {
  return TracedSearch("cluster/search_phrase",
                      {{"term", common::Join(words, " ")}, {"mode", "phrase"}});
}

ClusterStats Cluster::CollectStats() const {
  ClusterStats stats;
  // Snapshot the local (bus-level) registry before the gather so the
  // roll-up's own wfstats calls are not half-counted inside it.
  stats.merged = metrics_.Snapshot();
  std::string request = EncodeMessage({{"format", "wire"}});
  for (const auto& [service, response] : bus_.CallAll("wfstats/", request)) {
    ++stats.nodes_total;
    if (!response.ok()) {
      stats.failed_services.push_back(service);
      continue;
    }
    std::string wire = GetMessageField(*response, "stats");
    auto snapshot = obs::MetricsSnapshot::FromWire(wire);
    if (!snapshot.ok() || !stats.merged.MergeFrom(*snapshot).ok()) {
      stats.failed_services.push_back(service);
      continue;
    }
    ++stats.nodes_responded;
  }
  return stats;
}

size_t Cluster::TotalEntities() const {
  size_t total = 0;
  for (const auto& node : nodes_) total += node->store().size();
  return total;
}

}  // namespace wf::platform
