#ifndef WF_PLATFORM_CORPUS_MINERS_H_
#define WF_PLATFORM_CORPUS_MINERS_H_

#include <map>
#include <string>
#include <vector>

#include "platform/miner_framework.h"

namespace wf::platform {

// §2 names three corpus-level miner families: "computing aggregate
// statistics, duplicate detection, trending". These are their
// implementations; each runs over a DataStore shard (or a merged view) and
// either annotates entities or exposes a report.

// Near-duplicate detection via MinHash over token shingles with LSH
// banding. Duplicate entities (Jaccard similarity of shingle sets >=
// `threshold` against an earlier entity) get a "duplicate_of" field naming
// the retained representative.
class DuplicateDetectionMiner : public CorpusMiner {
 public:
  struct Options {
    size_t shingle_size = 4;     // tokens per shingle
    size_t num_hashes = 32;      // MinHash signature width
    size_t bands = 8;            // LSH bands (rows = num_hashes / bands)
    double threshold = 0.85;     // verified Jaccard similarity
  };

  DuplicateDetectionMiner() : DuplicateDetectionMiner(Options{}) {}
  explicit DuplicateDetectionMiner(const Options& options);

  std::string name() const override { return "duplicate_detection"; }
  common::Status Run(DataStore& store) override;
  // Shingling consumes the shared token streams instead of re-tokenizing
  // every body when a provider is given.
  common::Status Run(DataStore& store,
                     core::AnalysisProvider* provider) override;

  // (duplicate id, representative id) pairs found by the last Run().
  const std::vector<std::pair<std::string, std::string>>& duplicates()
      const {
    return duplicates_;
  }

 private:
  Options options_;
  std::vector<std::pair<std::string, std::string>> duplicates_;
};

// Corpus-wide aggregate statistics (document/token/vocabulary counts),
// written into the miner and queryable afterwards.
class AggregateStatsMiner : public CorpusMiner {
 public:
  struct Stats {
    size_t documents = 0;
    size_t tokens = 0;
    size_t words = 0;
    size_t vocabulary = 0;
    double avg_tokens_per_doc = 0.0;
  };

  std::string name() const override { return "aggregate_stats"; }
  common::Status Run(DataStore& store) override;
  // Counts over the shared token streams instead of re-tokenizing every
  // body when a provider is given.
  common::Status Run(DataStore& store,
                     core::AnalysisProvider* provider) override;

  const Stats& stats() const { return stats_; }

 private:
  Stats stats_;
};

// Sentiment trending: buckets the "sentiment" annotations written by the
// sentiment miners over each entity's "date" field (ISO "YYYY-MM" or
// "YYYY-MM-DD"; the month prefix is the bucket) and reports per-subject
// positive/negative counts per bucket — the "tracking of market trends"
// capability of the reputation application.
class TrendingMiner : public CorpusMiner {
 public:
  struct Bucket {
    std::string month;  // "2004-07"
    size_t positive = 0;
    size_t negative = 0;
  };

  std::string name() const override { return "trending"; }
  common::Status Run(DataStore& store) override;

  // Buckets for one subject (case-insensitive), sorted by month.
  std::vector<Bucket> TrendFor(const std::string& subject) const;
  // All subjects with at least one dated sentiment mention.
  std::vector<std::string> Subjects() const;

 private:
  // subject -> month -> (pos, neg)
  std::map<std::string, std::map<std::string, std::pair<size_t, size_t>>>
      trends_;
};

}  // namespace wf::platform

#endif  // WF_PLATFORM_CORPUS_MINERS_H_
