// wfsm — command-line front end for the WebFountain sentiment miner.
//
//   wfsm analyze --subject <term> [text ...]     sentiment about a subject
//   wfsm mine --subjects a,b,c [--neutral]       mine a document (stdin)
//   wfsm adhoc                                   ad-hoc mining (stdin)
//   wfsm features --plus FILE --minus FILE       feature-term extraction
//                                                (one document per line)
//   wfsm validate --lexicon FILE | --patterns FILE
//   wfsm help
//
// Text input comes from the remaining arguments when present, otherwise
// from stdin.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/miner.h"
#include "feature/feature_extractor.h"
#include "lexicon/pattern_db.h"
#include "lexicon/sentiment_lexicon.h"

namespace {

using namespace wf;

std::string ReadAllStdin() {
  std::ostringstream buf;
  buf << std::cin.rdbuf();
  return buf.str();
}

// Gathered text: joined trailing args, or stdin when none.
std::string GatherText(const std::vector<std::string>& args) {
  if (args.empty()) return ReadAllStdin();
  std::vector<std::string> copy = args;
  return common::Join(copy, " ");
}

// Pulls "--flag value" out of an argument list; empty when absent.
std::string TakeFlag(std::vector<std::string>& args,
                     const std::string& flag) {
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) {
      std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      return value;
    }
  }
  return "";
}

bool TakeSwitch(std::vector<std::string>& args, const std::string& flag) {
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag) {
      args.erase(args.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

const char* PolaritySymbol(lexicon::Polarity p) {
  switch (p) {
    case lexicon::Polarity::kPositive:
      return "+";
    case lexicon::Polarity::kNegative:
      return "-";
    case lexicon::Polarity::kNeutral:
      return "0";
  }
  return "?";
}

int CmdAnalyze(std::vector<std::string> args) {
  std::string subject = TakeFlag(args, "--subject");
  if (subject.empty()) {
    std::fprintf(stderr, "analyze: --subject is required\n");
    return 2;
  }
  std::string text = GatherText(args);

  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  core::SentimentMiner miner(&lexicon, &patterns);
  miner.AddSubject(spot::SynonymSet{0, subject, {}});
  core::SentimentStore store;
  miner.ProcessDocument("stdin", text, &store);

  if (store.size() == 0) {
    std::printf("no occurrences of \"%s\"\n", subject.c_str());
    return 1;
  }
  for (const core::SentimentMention& m : store.mentions()) {
    std::printf("[%s] %s", PolaritySymbol(m.polarity),
                m.sentence_text.c_str());
    if (!m.pattern.empty()) std::printf("   (pattern: %s)", m.pattern.c_str());
    std::printf("\n");
  }
  return 0;
}

int CmdMine(std::vector<std::string> args) {
  std::string subjects = TakeFlag(args, "--subjects");
  bool neutral = TakeSwitch(args, "--neutral");
  if (subjects.empty()) {
    std::fprintf(stderr, "mine: --subjects a,b,c is required\n");
    return 2;
  }
  std::string text = GatherText(args);

  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  core::SentimentMiner::Config config;
  config.record_neutral = neutral;
  core::SentimentMiner miner(&lexicon, &patterns, config);
  int id = 0;
  for (const std::string& s : common::Split(subjects, ",")) {
    miner.AddSubject(spot::SynonymSet{id++, s, {}});
  }
  core::SentimentStore store;
  miner.ProcessDocument("stdin", text, &store);
  for (const core::SentimentMention& m : store.mentions()) {
    std::printf("%s\t%s\t%s\n", m.subject.c_str(),
                PolaritySymbol(m.polarity), m.sentence_text.c_str());
  }
  std::fprintf(stderr, "%zu mention(s)\n", store.size());
  return 0;
}

int CmdAdhoc(std::vector<std::string> args) {
  std::string text = GatherText(args);
  lexicon::SentimentLexicon lexicon = lexicon::SentimentLexicon::Embedded();
  lexicon::PatternDatabase patterns = lexicon::PatternDatabase::Embedded();
  core::AdHocSentimentMiner miner(&lexicon, &patterns);
  core::SentimentStore store;
  miner.ProcessDocument("stdin", text, &store);
  for (const core::SentimentMention& m : store.mentions()) {
    std::printf("%s\t%s\t%s\n", m.subject.c_str(),
                PolaritySymbol(m.polarity), m.sentence_text.c_str());
  }
  std::fprintf(stderr, "%zu sentiment-bearing entity mention(s)\n",
               store.size());
  return 0;
}

int CmdFeatures(std::vector<std::string> args) {
  std::string plus_path = TakeFlag(args, "--plus");
  std::string minus_path = TakeFlag(args, "--minus");
  std::string top = TakeFlag(args, "--top");
  if (plus_path.empty() || minus_path.empty()) {
    std::fprintf(stderr,
                 "features: --plus FILE and --minus FILE are required "
                 "(one document per line)\n");
    return 2;
  }
  feature::FeatureExtractor::Options options;
  if (!top.empty()) options.top_n = std::stoul(top);
  feature::FeatureExtractor extractor(options);

  auto feed = [&extractor](const std::string& path, bool on_topic) -> bool {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) extractor.AddDocument(line, on_topic);
    }
    return true;
  };
  if (!feed(plus_path, true) || !feed(minus_path, false)) return 1;

  for (const feature::FeatureTerm& t : extractor.Extract()) {
    std::printf("%10.2f  %4llu/%-4llu  %s\n", t.score,
                static_cast<unsigned long long>(t.df_on_topic),
                static_cast<unsigned long long>(t.df_off_topic),
                t.phrase.c_str());
  }
  return 0;
}

int CmdValidate(std::vector<std::string> args) {
  std::string lexicon_path = TakeFlag(args, "--lexicon");
  std::string patterns_path = TakeFlag(args, "--patterns");
  if (lexicon_path.empty() && patterns_path.empty()) {
    std::fprintf(stderr,
                 "validate: --lexicon FILE or --patterns FILE required\n");
    return 2;
  }
  if (!lexicon_path.empty()) {
    lexicon::SentimentLexicon lex;
    common::Status s = lex.LoadFile(lexicon_path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("lexicon OK: %zu entries\n", lex.size());
  }
  if (!patterns_path.empty()) {
    lexicon::PatternDatabase db;
    common::Status s = db.LoadFile(patterns_path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("patterns OK: %zu patterns over %zu predicates\n",
                db.size(), db.predicate_count());
  }
  return 0;
}

int CmdHelp() {
  std::printf(
      "wfsm — WebFountain sentiment miner\n\n"
      "  wfsm analyze --subject TERM [text ...]   sentiment about TERM\n"
      "  wfsm mine --subjects a,b,c [--neutral]   mine document (stdin)\n"
      "  wfsm adhoc [text ...]                    ad-hoc entity mining\n"
      "  wfsm features --plus F --minus F [--top N]\n"
      "                                           feature-term extraction\n"
      "  wfsm validate --lexicon F | --patterns F resource file check\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return CmdHelp();
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "analyze") return CmdAnalyze(std::move(args));
  if (cmd == "mine") return CmdMine(std::move(args));
  if (cmd == "adhoc") return CmdAdhoc(std::move(args));
  if (cmd == "features") return CmdFeatures(std::move(args));
  if (cmd == "validate") return CmdValidate(std::move(args));
  return CmdHelp();
}
