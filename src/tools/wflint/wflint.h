#ifndef WF_TOOLS_WFLINT_WFLINT_H_
#define WF_TOOLS_WFLINT_WFLINT_H_

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

// wflint v2: the project's static-analysis engine (DESIGN.md §11).
//
// v1 was a single-file, line-regex scanner. v2 is a two-pass, repo-wide
// analysis: pass 1 (Engine::AddFile) builds a per-file model over the
// scrubbed token stream — include edges, class shapes (declared mutexes,
// WF_GUARDED_BY field annotations), function spans, call edges, container
// declarations, suppressions — and pass 2 (Engine::Run) evaluates every
// rule over the whole model at once, so rules can reason across files:
// which layer includes which, whether a guarded field is only touched
// under its mutex, whether an unordered-container iteration reaches a
// serialization sink defined three files away.
//
// Rule families (see Rules() for the full list):
//   - conventions: discarded-status, raw-new/delete, include guards,
//     using-namespace, float-equality (v1 rules, unchanged semantics)
//   - platform discipline: unchecked-rpc, platform-raw-{timing,thread,
//     file-io} (v1 rules, unchanged semantics)
//   - layering: an explicit allowed-edge DAG over src/<layer> directories;
//     any #include crossing against it is a finding
//   - guarded-by: WF_GUARDED_BY(mu) fields touched in a member function
//     that neither locks `mu` nor is annotated WF_REQUIRES(mu); plus
//     unannotated fields declared after a mutex member (platform/obs/core)
//   - determinism: iteration over std::unordered_{map,set} whose loop body
//     reaches a serialization/export/hash sink (byte-identical-output
//     contract, DESIGN.md §10); banned-rng covers the RNG half
//   - hot-path allocation: by-value std::string params, allocating
//     substr, and unreserved per-element push_back in the tokenize→POS→
//     parse front half (src/{text,pos,parse})
//   - suppression hygiene: unknown-rule and unused-suppression (an
//     allow() whose rule never fires in that file is itself a finding)
//
// Suppression syntax (per file): a comment anywhere in the file of the form
//     // wflint: allow(<rule-1>, <rule-2>)
// (with real rule ids, no angle brackets) disables the named rules for that
// entire file. Suppressions of unknown rules, and suppressions that no
// longer suppress anything, are themselves violations.
//
// The engine is intentionally standalone: it depends only on the standard
// library, so a bug in the code it lints can never take the linter down
// with it. It is a token-level approximation, not a compiler — the
// [[nodiscard]] + -Werror build and the clang-tsafety preset
// (-Wthread-safety) are the precise backstops; wflint catches the same
// classes of bug earlier, on every toolchain, and in code the compiler
// cannot see.

namespace wf::tools::wflint {

// One finding. `rule` is the stable kebab-case rule id used both in reports
// and in allow(...) suppressions.
struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

// All rules, in report order.
const std::vector<RuleInfo>& Rules();

// True if `id` names a known rule.
bool IsKnownRule(const std::string& id);

// The allowed-edge layering DAG over src/<layer> directories: for each
// layer, the set of *other* layers it may #include (intra-layer edges are
// always allowed; tests/bench/examples may include anything). Exposed so
// tests and docs stay in lockstep with the rule.
const std::map<std::string, std::set<std::string>>& LayeringDag();

// A source file handed to the engine. `path` is used for reporting, for
// header/source classification (".h" vs anything else), and for layer
// assignment (the directory component after "src/").
struct SourceFile {
  std::string path;
  std::string content;
};

struct FileModel;  // internal per-file model (wflint.cc)

// The two-pass engine. Feed every file in the repo to AddFile (pass 1),
// then call Run() for the full cross-file analysis (pass 2). Findings are
// sorted by (file, line, rule) and already filtered through per-file
// allow() suppressions.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Pass 1: parse `file` into its model. Order does not matter.
  void AddFile(const SourceFile& file);

  // Pass 2: evaluate every rule over the whole model.
  std::vector<Violation> Run() const;

  size_t file_count() const;

  // Names of fallible (Status/Result-returning) functions seen by pass 1
  // (diagnostics for the discarded-status rule).
  const std::set<std::string>& fallible_functions() const;

 private:
  std::vector<std::unique_ptr<FileModel>> files_;
  std::set<std::string> fallible_;
};

// Machine-readable TSV report: one line per violation,
// "<file>\t<line>\t<rule>\t<message>\n", sorted by (file, line, rule).
std::string FormatReport(std::vector<Violation> violations);

// Machine-readable JSON report:
//   {"version":2,"files_scanned":N,"count":M,
//    "violations":[{"file":...,"line":...,"rule":...,"message":...},...]}
// Violations sorted by (file, line, rule); keys emitted in the order shown.
std::string FormatJsonReport(std::vector<Violation> violations,
                             size_t files_scanned);

}  // namespace wf::tools::wflint

#endif  // WF_TOOLS_WFLINT_WFLINT_H_
