#ifndef WF_TOOLS_WFLINT_WFLINT_H_
#define WF_TOOLS_WFLINT_WFLINT_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

// wflint: a lightweight project-specific static-analysis pass.
//
// It scans C++ sources for patterns this codebase bans outright (see
// DESIGN.md "Correctness tooling"): silently discarded Status/Result calls,
// raw new/delete, non-deterministic RNG construction, `using namespace` in
// headers, missing include guards, tolerance-free floating-point
// equality assertions, and query-path bus Calls whose Result status is
// never checked. It is a text-level scanner, deliberately dependency
// free (no libclang): the [[nodiscard]] + -Werror compiler enforcement is
// the precise backstop; wflint catches the same class of bugs earlier and
// in code the compiler cannot see (e.g. dead test helpers), and enforces
// conventions the compiler has no opinion on.
//
// Suppression syntax (per file): a comment anywhere in the file of the form
//     // wflint: allow(<rule-1>, <rule-2>)
// (with real rule ids, no angle brackets) disables the named rules for that
// entire file. Suppressions of unknown rule names are themselves
// violations, so stale allowances get cleaned up.
//
// The scanner is intentionally standalone: it depends only on the standard
// library, so a bug in the code it lints can never take the linter down
// with it.

namespace wf::tools::wflint {

// One finding. `rule` is the stable kebab-case rule id used both in reports
// and in allow(...) suppressions.
struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

// All rules, in report order.
const std::vector<RuleInfo>& Rules();

// True if `id` names a known rule.
bool IsKnownRule(const std::string& id);

// A source file handed to the linter. `path` is used for reporting and for
// header/source classification (".h" vs anything else).
struct SourceFile {
  std::string path;
  std::string content;
};

class Linter {
 public:
  // Pass 1: record declarations of functions returning Status / Result<T>
  // from `file` so pass 2 can recognize discarded calls to them. Feed every
  // file that will later be linted (headers declare most, but .cc-local
  // helpers count too).
  void CollectDeclarations(const SourceFile& file);

  // Pass 2: lint one file. CollectDeclarations must have seen the whole
  // file set first for discarded-status to be complete.
  std::vector<Violation> Lint(const SourceFile& file) const;

  // Names of fallible (Status/Result-returning) functions seen by pass 1.
  const std::set<std::string>& fallible_functions() const {
    return fallible_;
  }

 private:
  std::set<std::string> fallible_;
};

// Machine-readable report: one line per violation,
// "<file>\t<line>\t<rule>\t<message>\n", sorted by (file, line, rule).
std::string FormatReport(std::vector<Violation> violations);

}  // namespace wf::tools::wflint

#endif  // WF_TOOLS_WFLINT_WFLINT_H_
