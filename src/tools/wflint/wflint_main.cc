// wflint CLI: scans C++ sources under the given roots and reports banned
// patterns plus cross-file analysis findings (layering, guarded-by,
// determinism, hot-path allocation — see wflint.h). Exit status 0 means
// clean, 1 means violations, 2 means usage or I/O error.
//
//   wflint [--report <path>] [--format=tsv|json] [--list-rules]
//          <root-dir-or-file>...
//
// --report writes the machine-readable report (TSV by default; JSON with
// --format=json) to <path> in addition to the human-readable stdout
// listing.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/wflint/wflint.h"

namespace fs = std::filesystem;
namespace wflint = wf::tools::wflint;

namespace {

bool IsSourcePath(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

int Usage() {
  std::cerr << "usage: wflint [--report <path>] [--format=tsv|json] "
               "[--list-rules] <root-dir-or-file>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string report_path;
  std::string format = "tsv";
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--report") {
      if (i + 1 >= argc) return Usage();
      report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = arg.substr(9);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "tsv" && format != "json") return Usage();
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      roots.push_back(std::move(arg));
    }
  }

  if (list_rules) {
    for (const wflint::RuleInfo& r : wflint::Rules()) {
      std::cout << r.id << "\t" << r.summary << "\n";
    }
    if (roots.empty()) return 0;
  }
  if (roots.empty()) return Usage();

  // Gather the file set, sorted for deterministic reports.
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && IsSourcePath(it->path())) {
          paths.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      std::cerr << "wflint: cannot read root: " << root << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  // Pass 1: build the per-file models.
  wflint::Engine engine;
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "wflint: cannot open: " << p << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    engine.AddFile({p, buf.str()});
  }

  // Pass 2: the cross-file analysis.
  std::vector<wflint::Violation> violations = engine.Run();

  for (const wflint::Violation& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  std::cout << "wflint: " << violations.size() << " violation(s) in "
            << engine.file_count() << " file(s) scanned\n";

  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::trunc);
    out << (format == "json"
                ? wflint::FormatJsonReport(violations, engine.file_count())
                : wflint::FormatReport(violations));
    if (!out) {
      std::cerr << "wflint: cannot write report: " << report_path << "\n";
      return 2;
    }
  }
  return violations.empty() ? 0 : 1;
}
