#include "tools/wflint/wflint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <regex>
#include <sstream>

namespace wf::tools::wflint {

namespace {

// --- Source scrubbing -------------------------------------------------------
//
// Every rule except suppression parsing runs over a "scrubbed" copy of the
// file: comments and the contents of string/char literals are replaced by
// spaces, byte for byte, so line/column structure survives but banned
// tokens inside prose or test fixtures cannot fire rules.

enum class ScrubState {
  kCode,
  kLineComment,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

// `keep_comments` blanks only literals (used for suppression parsing, so an
// allow() directive quoted inside a string — e.g. in wflint's own tests —
// does not count as a real suppression).
std::string Scrub(const std::string& in, bool keep_comments = false) {
  std::string out = in;
  ScrubState state = ScrubState::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case ScrubState::kCode:
        if (c == '/' && next == '/') {
          state = ScrubState::kLineComment;
          if (!keep_comments) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = ScrubState::kBlockComment;
          if (!keep_comments) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   in[i - 1])) &&
                               in[i - 1] != '_'))) {
          size_t paren = in.find('(', i + 2);
          if (paren == std::string::npos) break;  // malformed; give up
          raw_delim = ")" + in.substr(i + 2, paren - i - 2) + "\"";
          state = ScrubState::kRawString;
          i = paren;  // keep prefix; contents get blanked below
        } else if (c == '"') {
          state = ScrubState::kString;
        } else if (c == '\'') {
          state = ScrubState::kChar;
        }
        break;
      case ScrubState::kLineComment:
        if (c == '\n') {
          state = ScrubState::kCode;
        } else if (!keep_comments) {
          out[i] = ' ';
        }
        break;
      case ScrubState::kBlockComment:
        if (c == '*' && next == '/') {
          if (!keep_comments) out[i] = out[i + 1] = ' ';
          ++i;
          state = ScrubState::kCode;
        } else if (c != '\n' && !keep_comments) {
          out[i] = ' ';
        }
        break;
      case ScrubState::kString:
      case ScrubState::kChar: {
        char quote = state == ScrubState::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == quote) {
          state = ScrubState::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
      case ScrubState::kRawString:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = ScrubState::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

bool IsHeaderPath(const std::string& path) {
  auto ends_with = [&path](const char* suffix) {
    size_t n = std::char_traits<char>::length(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends_with(".h") || ends_with(".hpp");
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True if `tok` occurs in `s` as a whole identifier token.
bool HasToken(const std::string& s, const std::string& tok) {
  size_t pos = 0;
  while ((pos = s.find(tok, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(s[pos - 1]);
    size_t end = pos + tok.size();
    bool right_ok = end >= s.size() || !IsIdentChar(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// Position of the first whole-token occurrence, or npos.
size_t FindToken(const std::string& s, const std::string& tok) {
  size_t pos = 0;
  while ((pos = s.find(tok, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(s[pos - 1]);
    size_t end = pos + tok.size();
    bool right_ok = end >= s.size() || !IsIdentChar(s[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

// Index of the ')' matching the '(' at `open`, or npos.
size_t MatchParen(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

// Index just past the '>' matching the '<' at `open`, or npos.
size_t SkipAngles(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

// Removes balanced <...> groups so `(` detection and token extraction are
// not confused by template argument lists.
std::string StripAngleGroups(const std::string& s) {
  std::string out;
  int depth = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '<') {
      ++depth;
      continue;
    }
    if (c == '>') {
      if (depth > 0) {
        --depth;
        continue;
      }
    }
    if (depth == 0) out += c;
  }
  return out;
}

std::string LastIdentifier(const std::string& s) {
  size_t end = s.find_last_not_of(" \t");
  while (end != std::string::npos) {
    if (IsIdentChar(s[end])) {
      size_t b = end;
      while (b > 0 && IsIdentChar(s[b - 1])) --b;
      if (!std::isdigit(static_cast<unsigned char>(s[b]))) {
        return s.substr(b, end - b + 1);
      }
      end = b == 0 ? std::string::npos : s.find_last_not_of(" \t", b - 1);
    } else {
      end = end == 0 ? std::string::npos : s.find_last_not_of(" \t", end - 1);
      break;  // only skip trailing whitespace/digits, not arbitrary junk
    }
  }
  return "";
}

// --- Suppressions -----------------------------------------------------------

// Parses `// wflint: allow(<rule>, <rule>)` comments from the raw source.
// Tokens that do not lex as rule ids ([a-z0-9-]+) are ignored (so docs can
// show placeholder syntax); tokens that lex but name no rule are reported.
struct Suppressions {
  std::map<std::string, size_t> allowed;  // rule id -> 1-based line
  std::vector<Violation> unknown;
};

Suppressions ParseSuppressions(const std::string& path,
                               const std::vector<std::string>& raw_lines) {
  static const std::regex kAllowRe(R"(//\s*wflint:\s*allow\(([^)]*)\))");
  static const std::regex kRuleTokenRe("^[a-z][a-z0-9-]*$");
  Suppressions out;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch m;
    std::string rest = raw_lines[i];
    while (std::regex_search(rest, m, kAllowRe)) {
      std::stringstream list(m[1].str());
      std::string token;
      while (std::getline(list, token, ',')) {
        token = Trim(token);
        if (token.empty()) continue;
        if (!std::regex_match(token, kRuleTokenRe)) continue;
        if (IsKnownRule(token)) {
          out.allowed.emplace(token, i + 1);
        } else {
          out.unknown.push_back({path, i + 1, "unknown-rule",
                                 "allow() names unknown rule '" + token +
                                     "'; see wflint --list-rules"});
        }
      }
      rest = m.suffix();
    }
  }
  return out;
}

// --- Statement scanning helpers ---------------------------------------------

// Accumulates one statement starting at scrubbed line `start`: text up to
// the first `;` at zero (){}[] depth, spanning at most `max_lines` lines.
// Returns empty string if no such terminator is found (not a statement we
// can reason about).
std::string AccumulateStatement(const std::vector<std::string>& lines,
                                size_t start, size_t max_lines = 12) {
  std::string text;
  int depth = 0;
  for (size_t i = start; i < lines.size() && i < start + max_lines; ++i) {
    for (char c : lines[i]) {
      text += c;
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ';' && depth == 0) return text;
    }
    text += ' ';
  }
  return "";
}

// True if `stmt` contains an assignment `=` at zero bracket depth (skipping
// ==, !=, <=, >=, and compound assignments, all of which still mean the
// value is consumed).
bool HasTopLevelAssignment(const std::string& stmt) {
  int depth = 0;
  for (size_t i = 0; i < stmt.size(); ++i) {
    char c = stmt[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (depth != 0 || c != '=') continue;
    char prev = i > 0 ? stmt[i - 1] : '\0';
    char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
    if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
        prev == '>' || prev == '+' || prev == '-' || prev == '*' ||
        prev == '/' || prev == '%' || prev == '&' || prev == '|' ||
        prev == '^') {
      if (prev == '=') continue;  // second char of ==
      if (next == '=') {          // first char of a two-char operator
        ++i;
        continue;
      }
      continue;
    }
    return true;
  }
  return false;
}

// Splits the argument list of the first top-level macro/function call in
// `stmt` after position `open_paren` into top-level arguments.
std::vector<std::string> SplitTopLevelArgs(const std::string& stmt,
                                           size_t open_paren) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  for (size_t i = open_paren; i < stmt.size(); ++i) {
    char c = stmt[i];
    if (c == '(' || c == '[' || c == '{') {
      if (depth > 0) cur += c;
      ++depth;
      continue;
    }
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) break;
      cur += c;
      continue;
    }
    if (c == ',' && depth == 1) {
      args.push_back(cur);
      cur.clear();
      continue;
    }
    if (depth >= 1) cur += c;
  }
  if (!cur.empty()) args.push_back(cur);
  return args;
}

}  // namespace

// --- Pass-1 model -----------------------------------------------------------

namespace {

struct FieldInfo {
  std::string name;
  std::string guard;  // WF_GUARDED_BY/WF_PT_GUARDED_BY argument, or empty
  size_t line = 0;
  bool unordered = false;    // declared as std::unordered_{map,set}
  bool exempt = false;       // atomic/const/static/cv: no guard expected
  bool after_mutex = false;  // declared after the class's first mutex member
};

struct FnAnnotation {
  std::set<std::string> requires_held;  // WF_REQUIRES(...) mutex names
  bool no_analysis = false;             // WF_NO_THREAD_SAFETY_ANALYSIS

  void MergeFrom(const FnAnnotation& o) {
    requires_held.insert(o.requires_held.begin(), o.requires_held.end());
    no_analysis = no_analysis || o.no_analysis;
  }
};

struct ClassModel {
  std::string name;
  std::string enclosing;             // enclosing class name, "" at top level
  std::vector<std::string> mutexes;  // mutex-typed member names, decl order
  std::vector<FieldInfo> fields;
  // Annotations found on member function *declarations* (the body may live
  // in another file; Clang puts the attribute on the declaration).
  std::map<std::string, FnAnnotation> fn_annotations;
};

struct FunctionModel {
  std::string class_name;  // enclosing class or out-of-line qualifier, or ""
  std::string name;        // "~Foo" for destructors
  std::string header;      // scrubbed declaration text before the open brace
  std::string body;        // scrubbed body text, braces excluded
  size_t line = 0;             // 1-based line where the declaration starts
  size_t body_start_line = 0;  // 1-based line of the opening brace
  FnAnnotation annotation;
  std::set<std::string> callees;           // bare callee names in the body
  std::set<std::string> unordered_vars;    // unordered-typed params + locals
  std::set<std::string> string_view_vars;  // string_view params + locals
};

struct IncludeEdge {
  std::string target;  // the quoted include path
  size_t line = 0;
};

}  // namespace

struct FileModel {
  SourceFile file;
  std::string layer;  // directory component after src/, or ""
  bool is_header = false;
  std::vector<std::string> lines;          // scrubbed
  std::vector<std::string> comment_lines;  // scrubbed, comments kept
  std::vector<IncludeEdge> includes;
  std::vector<ClassModel> classes;
  std::vector<FunctionModel> functions;
  Suppressions suppressions;
};

namespace {

std::string LayerOf(const std::string& path) {
  size_t src = 0;
  if (path.compare(0, 4, "src/") == 0) {
    src = 4;
  } else {
    size_t p = path.find("/src/");
    if (p == std::string::npos) return "";
    src = p + 5;
  }
  size_t slash = path.find('/', src);
  if (slash == std::string::npos) return "";
  return path.substr(src, slash - src);
}

// Extracts WF_* annotation macros from `text` (erasing them in place so
// later name/type extraction is not confused) and reports what they said.
FnAnnotation ExtractAnnotations(std::string* text, std::string* guard_out) {
  static const std::regex kWfRe(R"((WF_[A-Z0-9_]+)\s*(\(([^()]*)\))?)");
  FnAnnotation ann;
  std::string& t = *text;
  std::smatch m;
  std::string scanned;
  while (std::regex_search(t, m, kWfRe)) {
    const std::string macro = m[1].str();
    const std::string arg = Trim(m[3].str());
    if (macro == "WF_GUARDED_BY" || macro == "WF_PT_GUARDED_BY") {
      if (guard_out) *guard_out = arg;
    } else if (macro == "WF_REQUIRES") {
      for (const std::string& a : SplitTopLevelArgs("(" + arg + ")", 0)) {
        std::string name = LastIdentifier(Trim(a));
        if (!name.empty()) ann.requires_held.insert(name);
      }
    } else if (macro == "WF_NO_THREAD_SAFETY_ANALYSIS") {
      ann.no_analysis = true;
    }
    scanned += m.prefix().str() + " ";
    t = m.suffix().str();
  }
  t = scanned + t;
  return ann;
}

void ParseMemberDecl(const std::string& raw, size_t line, ClassModel* cls) {
  static const std::regex kAccessRe(
      R"(^\s*((public|private|protected)\s*:\s*)+)");
  static const std::regex kSkipRe(
      R"(^(friend|using|typedef|static_assert|template|enum)\b)");
  static const std::regex kMutexTypeRe(
      R"(\b(mutex|shared_mutex|recursive_mutex|Mutex)\b)");
  static const std::regex kExemptRe(
      R"(\b(atomic|atomic_flag|condition_variable|condition_variable_any|once_flag)\b)");
  static const std::regex kImmutableRe(R"(^\s*(const|constexpr|static)\b)");

  std::string t = Trim(std::regex_replace(raw, kAccessRe, ""));
  if (t.empty() || std::regex_search(t, kSkipRe)) return;

  std::string guard;
  FnAnnotation ann = ExtractAnnotations(&t, &guard);

  // Cut default member initializers / `= default` / `= delete`.
  int depth = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    char c = t[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (depth == 0 && c == '=') {
      char prev = i > 0 ? t[i - 1] : '\0';
      char next = i + 1 < t.size() ? t[i + 1] : '\0';
      if (prev != '=' && prev != '!' && prev != '<' && prev != '>' &&
          next != '=') {
        t = t.substr(0, i);
        break;
      }
    }
  }
  // Brace initializers were normalized to "{}" by the scanner; drop them.
  for (size_t p; (p = t.find("{}")) != std::string::npos;) t.erase(p, 2);
  // Drop array extents so `Stripe stripes_[kStripes]` names `stripes_`.
  for (size_t p; (p = t.find('[')) != std::string::npos;) {
    size_t q = t.find(']', p);
    if (q == std::string::npos) break;
    t.erase(p, q - p + 1);
  }

  std::string flat = StripAngleGroups(t);
  size_t open = flat.find('(');
  if (open != std::string::npos) {
    // A member function declaration. Record its thread-safety annotations
    // under the class so the out-of-line definition inherits them.
    std::string name = LastIdentifier(flat.substr(0, open));
    if (!name.empty() && (ann.no_analysis || !ann.requires_held.empty())) {
      cls->fn_annotations[name].MergeFrom(ann);
    }
    return;
  }

  std::string name = LastIdentifier(flat);
  if (name.empty()) return;
  if (std::regex_search(t, kMutexTypeRe)) {
    cls->mutexes.push_back(name);
    return;
  }
  FieldInfo f;
  f.name = name;
  f.guard = LastIdentifier(guard);
  f.line = line;
  f.unordered = t.find("unordered_map") != std::string::npos ||
                t.find("unordered_set") != std::string::npos;
  f.exempt =
      std::regex_search(t, kExemptRe) || std::regex_search(t, kImmutableRe);
  f.after_mutex = !cls->mutexes.empty();
  cls->fields.push_back(std::move(f));
}

bool IsControlKeyword(const std::string& name) {
  static const std::set<std::string>* kKeywords = new std::set<std::string>{
      "if",     "for",    "while",  "switch",   "catch",         "return",
      "sizeof", "new",    "delete", "else",     "do",            "try",
      "throw",  "assert", "defined", "noexcept", "static_assert", "alignof",
      "decltype"};
  return kKeywords->count(name) > 0;
}

struct FnHeader {
  bool ok = false;
  std::string class_name;
  std::string name;
};

// Decides whether the text accumulated before a `{` is a function
// definition header, and if so which (class, name) it defines.
FnHeader ParseFunctionHeader(const std::string& pending) {
  FnHeader out;
  std::string t = Trim(pending);
  if (t.compare(0, 8, "template") == 0) {
    size_t lt = t.find('<');
    if (lt == std::string::npos) return out;
    size_t past = SkipAngles(t, lt);
    if (past == std::string::npos) return out;
    t = Trim(t.substr(past));
  }
  if (t.find("operator") != std::string::npos) return out;

  // First '(' at zero ()[]{}-depth; a top-level '=' before it means this is
  // a variable initializer, not a function.
  int depth = 0;
  size_t open = std::string::npos;
  for (size_t i = 0; i < t.size(); ++i) {
    char c = t[i];
    if (depth == 0 && c == '=') {
      char prev = i > 0 ? t[i - 1] : '\0';
      char next = i + 1 < t.size() ? t[i + 1] : '\0';
      if (prev != '=' && prev != '!' && prev != '<' && prev != '>' &&
          next != '=') {
        return out;
      }
    }
    if (c == '(') {
      if (depth == 0) {
        open = i;
        break;
      }
      ++depth;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
    }
  }
  if (open == std::string::npos) return out;

  size_t e = open;
  while (e > 0 && std::isspace(static_cast<unsigned char>(t[e - 1]))) --e;
  size_t b = e;
  while (b > 0 && IsIdentChar(t[b - 1])) --b;
  if (b == e) return out;
  out.name = t.substr(b, e - b);
  if (IsControlKeyword(out.name)) return out;
  if (b > 0 && t[b - 1] == '~') {
    out.name = "~" + out.name;
    --b;
  }
  if (b >= 2 && t[b - 1] == ':' && t[b - 2] == ':') {
    size_t qe = b - 2;
    // The qualifier may carry template args (Foo<T>::bar); skip them.
    if (qe > 0 && t[qe - 1] == '>') {
      int ad = 0;
      while (qe > 0) {
        if (t[qe - 1] == '>') ++ad;
        if (t[qe - 1] == '<' && --ad == 0) {
          --qe;
          break;
        }
        --qe;
      }
    }
    size_t qb = qe;
    while (qb > 0 && IsIdentChar(t[qb - 1])) --qb;
    out.class_name = t.substr(qb, qe - qb);
  }
  out.ok = true;
  return out;
}

// True if the last meaningful token before the `{` can precede a function
// body: `)` or one of the trailing qualifiers. A bare identifier before the
// brace means a member-init or aggregate brace instead.
bool TailAllowsFunctionBody(const std::string& pending) {
  std::string t = Trim(pending);
  if (t.empty()) return false;
  if (t.back() == ')') return true;
  size_t e = t.size();
  size_t b = e;
  while (b > 0 && IsIdentChar(t[b - 1])) --b;
  std::string last = t.substr(b, e - b);
  static const std::set<std::string>* kTail = new std::set<std::string>{
      "const", "noexcept", "override", "final", "try",
      "WF_NO_THREAD_SAFETY_ANALYSIS"};
  return kTail->count(last) > 0;
}

void CollectVarDecls(const std::string& text, FunctionModel* fn) {
  for (size_t pos = 0;;) {
    size_t p = text.find("unordered_", pos);
    if (p == std::string::npos) break;
    size_t lt = text.find('<', p);
    if (lt == std::string::npos) break;
    size_t past = SkipAngles(text, lt);
    if (past == std::string::npos) {
      pos = p + 10;
      continue;
    }
    size_t r = past;
    while (r < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[r])) ||
            text[r] == '&' || text[r] == '*')) {
      ++r;
    }
    size_t b = r;
    while (r < text.size() && IsIdentChar(text[r])) ++r;
    if (r > b) fn->unordered_vars.insert(text.substr(b, r - b));
    pos = past;
  }
  static const std::regex kSvRe(R"(string_view\s*[&*]?\s+([A-Za-z_]\w*))");
  auto begin = std::sregex_iterator(text.begin(), text.end(), kSvRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    fn->string_view_vars.insert((*it)[1].str());
  }
}

void CollectCallees(const std::string& body, FunctionModel* fn) {
  static const std::regex kCallRe(R"(([A-Za-z_]\w*)\s*\()");
  auto begin = std::sregex_iterator(body.begin(), body.end(), kCallRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string name = (*it)[1].str();
    if (!IsControlKeyword(name)) fn->callees.insert(name);
  }
}

// The scanner: walks the scrubbed file once, maintaining a namespace/class
// scope stack, classifying the text accumulated since the last `{` `}` `;`
// whenever a `{` opens, and fast-forwarding over function bodies (their
// insides are modeled as text, not scopes).
class ModelBuilder {
 public:
  explicit ModelBuilder(FileModel* model) : model_(model) {}

  void Build(const std::string& scrubbed) {
    const std::string& s = scrubbed;
    for (size_t i = 0; i < s.size(); ++i) {
      char c = s[i];
      if (c == '\n') {
        ++line_;
        line_has_code_ = false;
        pending_ += ' ';
        continue;
      }
      if (c == '#' && !line_has_code_) {
        // Preprocessor directive: consume to end of line (honoring
        // backslash continuations); keep it out of the statement stream.
        while (i < s.size() && s[i] != '\n') {
          if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == '\n') {
            ++line_;
            ++i;
          }
          ++i;
        }
        if (i < s.size()) {
          ++line_;
          line_has_code_ = false;
        }
        continue;
      }
      if (!std::isspace(static_cast<unsigned char>(c))) {
        line_has_code_ = true;
        if (Trim(pending_).empty()) pending_line_ = line_;
      }
      if (c == '{') {
        OnOpenBrace(s, &i);
        continue;
      }
      if (c == '}') {
        if (!scopes_.empty()) scopes_.pop_back();
        pending_.clear();
        continue;
      }
      if (c == ';') {
        if (!scopes_.empty() && scopes_.back().is_class) {
          ParseMemberDecl(pending_, pending_line_,
                          &model_->classes[scopes_.back().class_index]);
        }
        pending_.clear();
        continue;
      }
      pending_ += c;
    }
  }

 private:
  struct Scope {
    bool is_class = false;
    int class_index = -1;
  };

  static bool LooksLikeClassHead(const std::string& pending) {
    static const std::regex kClassRe(R"((^|[^\w])(class|struct)\s)");
    static const std::regex kEnumRe(R"((^|[^\w])enum\s)");
    return std::regex_search(pending, kClassRe) &&
           !std::regex_search(pending, kEnumRe);
  }

  std::string ClassNameFrom(const std::string& pending) {
    static const std::regex kHeadRe(R"((^|[^\w])(class|struct)\s)");
    std::smatch m;
    std::string t = pending;
    std::string tail;
    while (std::regex_search(t, m, kHeadRe)) {
      tail = m.suffix().str();
      t = tail;
    }
    ExtractAnnotations(&tail, nullptr);  // drop WF_CAPABILITY(...) etc.
    static const std::regex kAttrRe(R"(alignas\s*\([^()]*\))");
    tail = std::regex_replace(tail, kAttrRe, " ");
    // Cut the base clause: the first ':' that is not part of '::'.
    for (size_t i = 0; i < tail.size(); ++i) {
      if (tail[i] != ':') continue;
      if (i + 1 < tail.size() && tail[i + 1] == ':') {
        ++i;
        continue;
      }
      if (i > 0 && tail[i - 1] == ':') continue;
      tail = tail.substr(0, i);
      break;
    }
    static const std::regex kNameRe(R"([A-Za-z_]\w*)");
    std::smatch nm;
    std::string name;
    std::string rest = tail;
    while (std::regex_search(rest, nm, kNameRe)) {
      std::string cand = nm.str();
      rest = nm.suffix().str();
      if (cand == "final" || cand == "public" || cand == "protected" ||
          cand == "private" || cand == "virtual") {
        continue;
      }
      name = cand;
      break;
    }
    return name;
  }

  std::string InnermostClassName() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->is_class) return model_->classes[it->class_index].name;
    }
    return "";
  }

  // Consumes a balanced {...} starting at s[*i] == '{'; returns the body
  // text (braces excluded) and leaves *i at the closing '}'.
  std::string ConsumeBraced(const std::string& s, size_t* i,
                            size_t* body_line) {
    *body_line = line_;
    int depth = 0;
    size_t start = *i + 1;
    size_t j = *i;
    for (; j < s.size(); ++j) {
      if (s[j] == '\n') ++line_;
      if (s[j] == '{') ++depth;
      if (s[j] == '}' && --depth == 0) break;
    }
    std::string body = s.substr(start, j > start ? j - start : 0);
    *i = j;
    return body;
  }

  void OnOpenBrace(const std::string& s, size_t* i) {
    const std::string trimmed = Trim(pending_);
    if (LooksLikeClassHead(trimmed)) {
      ClassModel cls;
      cls.name = ClassNameFrom(trimmed);
      cls.enclosing = InnermostClassName();
      model_->classes.push_back(std::move(cls));
      scopes_.push_back(
          {true, static_cast<int>(model_->classes.size()) - 1});
      pending_.clear();
      return;
    }
    if (HasToken(trimmed, "namespace")) {
      scopes_.push_back({false, -1});
      pending_.clear();
      return;
    }
    FnHeader header = ParseFunctionHeader(trimmed);
    if (header.ok && TailAllowsFunctionBody(trimmed)) {
      FunctionModel fn;
      fn.class_name =
          header.class_name.empty() ? InnermostClassName() : header.class_name;
      fn.name = header.name;
      fn.header = trimmed;
      fn.line = pending_line_;
      std::string hdr = trimmed;
      fn.annotation = ExtractAnnotations(&hdr, nullptr);
      fn.body = ConsumeBraced(s, i, &fn.body_start_line);
      CollectCallees(fn.body, &fn);
      CollectVarDecls(fn.header, &fn);
      CollectVarDecls(fn.body, &fn);
      model_->functions.push_back(std::move(fn));
      pending_.clear();
      return;
    }
    // Aggregate/brace initializer, enum body, or anything else we do not
    // model: swallow it balanced and keep accumulating the statement.
    size_t body_line = 0;
    ConsumeBraced(s, i, &body_line);
    pending_ += "{}";
  }

  FileModel* model_;
  std::vector<Scope> scopes_;
  std::string pending_;
  size_t pending_line_ = 1;
  size_t line_ = 1;
  bool line_has_code_ = false;
};

void ParseIncludes(FileModel* model) {
  static const std::regex kIncludeRe(R"(^\s*#\s*include\s*"([^"]+)\")");
  std::vector<std::string> raw_lines = SplitLines(model->file.content);
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(raw_lines[i], m, kIncludeRe)) {
      model->includes.push_back({m[1].str(), i + 1});
    }
  }
}

// --- Per-file rules (v1 semantics, unchanged) --------------------------------

void CheckIncludeGuard(const SourceFile& file,
                       const std::vector<std::string>& lines,
                       std::vector<Violation>* out) {
  static const std::regex kPragmaRe(R"(^\s*#\s*pragma\s+once\b)");
  static const std::regex kIfndefRe(R"(^\s*#\s*ifndef\s+([A-Za-z_]\w*))");
  std::string guard;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lines[i], m, kPragmaRe)) return;
    if (guard.empty() && std::regex_search(lines[i], m, kIfndefRe)) {
      guard = m[1].str();
      // The matching #define must follow within the next few lines.
      std::regex define_re(R"(^\s*#\s*define\s+)" + guard + R"(\b)");
      for (size_t j = i + 1; j < lines.size() && j < i + 4; ++j) {
        if (std::regex_search(lines[j], define_re)) return;
      }
    }
  }
  out->push_back({file.path, 1, "include-guard",
                  "header has neither #pragma once nor a matching "
                  "#ifndef/#define include guard"});
}

void CheckUsingNamespace(const SourceFile& file,
                         const std::vector<std::string>& lines,
                         std::vector<Violation>* out) {
  static const std::regex kUsingRe(R"(^\s*using\s+namespace\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], kUsingRe)) {
      out->push_back({file.path, i + 1, "using-namespace-header",
                      "`using namespace` in a header leaks into every "
                      "includer; qualify names instead"});
    }
  }
}

void CheckRawNewDelete(const SourceFile& file,
                       const std::vector<std::string>& lines,
                       std::vector<Violation>* out) {
  static const std::regex kNewRe(R"(\bnew\b(?!\s*\()\s*[A-Za-z_<:])");
  static const std::regex kDeleteRe(
      R"((^|[^=\s])\s*\bdelete\b(\s*\[\s*\])?\s*[A-Za-z_*(])");
  static const std::regex kDeletedFnRe(R"(=\s*delete\b)");
  static const std::regex kStaticRe(R"(\bstatic\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (std::regex_search(line, kNewRe)) {
      // The static-local intentional-leak idiom (`static const X* k =
      // new X{...};`) is exempt: it exists to dodge destruction-order
      // issues, and the allocation provably happens once.
      bool static_ctx = std::regex_search(line, kStaticRe) ||
                        (i > 0 && std::regex_search(lines[i - 1], kStaticRe));
      if (!static_ctx) {
        out->push_back({file.path, i + 1, "raw-new",
                        "raw `new`; use std::make_unique / containers (the "
                        "static-leak idiom is exempt)"});
      }
    }
    if (std::regex_search(line, kDeleteRe) &&
        !std::regex_search(line, kDeletedFnRe)) {
      out->push_back({file.path, i + 1, "raw-delete",
                      "raw `delete`; ownership belongs in smart pointers "
                      "or containers"});
    }
  }
}

void CheckBannedRng(const SourceFile& file,
                    const std::vector<std::string>& lines,
                    std::vector<Violation>* out) {
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern>* kPatterns = new std::vector<Pattern>{
      {std::regex(R"(\brand\s*\()"), "rand()"},
      {std::regex(R"(\bsrand\s*\()"), "srand()"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
      {std::regex(R"(\bmt19937(_64)?\b)"), "a locally constructed engine"},
      {std::regex(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"),
       "a wall-clock seed"},
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    for (const Pattern& p : *kPatterns) {
      if (std::regex_search(lines[i], p.re)) {
        out->push_back(
            {file.path, i + 1, "banned-rng",
             std::string("non-deterministic randomness via ") + p.what +
                 "; use wf::common::Rng with an explicit seed "
                 "(determinism rule, DESIGN.md)"});
        break;  // one finding per line is enough
      }
    }
  }
}

void CheckFloatEquality(const SourceFile& file,
                        const std::vector<std::string>& lines,
                        std::vector<Violation>* out) {
  static const std::regex kEqMacroRe(R"(\b(EXPECT_EQ|ASSERT_EQ)\s*\()");
  static const std::regex kFloatLiteralRe(
      R"(^[-+]?(\d+\.\d*|\.\d+)([eE][-+]?\d+)?f?$|^[-+]?\d+[eE][-+]?\d+f?$)");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kEqMacroRe)) continue;
    std::string stmt = AccumulateStatement(lines, i);
    if (stmt.empty()) continue;
    size_t open = stmt.find('(', stmt.find(m[1].str()));
    if (open == std::string::npos) continue;
    for (const std::string& arg : SplitTopLevelArgs(stmt, open)) {
      if (std::regex_match(Trim(arg), kFloatLiteralRe)) {
        out->push_back({file.path, i + 1, "float-equality",
                        m[1].str() + " against the float literal " +
                            Trim(arg) +
                            "; use EXPECT_NEAR (or EXPECT_DOUBLE_EQ)"});
        break;
      }
    }
  }
}

void CheckDiscardedStatus(const SourceFile& file,
                          const std::vector<std::string>& lines,
                          const std::set<std::string>& fallible,
                          std::vector<Violation>* out) {
  // A bare expression-statement `receiver->Name(args);` whose callee is a
  // known Status/Result-returning function. Anything that consumes the
  // value — return, assignment, macro wrapper, (void) cast, if condition —
  // fails this shape and is skipped.
  static const std::regex kCallRe(
      R"(^\s*((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*)([A-Za-z_]\w*)\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kCallRe,
                           std::regex_constants::match_continuous)) {
      continue;
    }
    const std::string callee = m[2].str();
    if (fallible.count(callee) == 0) continue;
    std::string stmt = AccumulateStatement(lines, i);
    if (stmt.empty()) continue;
    if (HasTopLevelAssignment(stmt)) continue;
    // Must be a pure call statement: nothing after the closing paren of the
    // call but the terminating semicolon.
    std::string trimmed = Trim(stmt);
    if (trimmed.size() < 2 ||
        trimmed.compare(trimmed.size() - 2, 2, ");") != 0) {
      continue;
    }
    out->push_back({file.path, i + 1, "discarded-status",
                    "result of fallible call `" + callee +
                        "(...)` is discarded; handle it, propagate it, or "
                        "(void)-cast with a comment"});
  }
}

void CheckUncheckedRpc(const SourceFile& file,
                       const std::vector<std::string>& lines,
                       std::vector<Violation>* out) {
  // Query-path code only (scatter/gather and the sentiment query services):
  // there, a bus Call whose Result is never status-checked turns a transient
  // fault into a silently wrong answer instead of degraded coverage. Other
  // layers are covered by [[nodiscard]] + discarded-status.
  if (file.path.find("query") == std::string::npos &&
      file.path.find("cluster") == std::string::npos) {
    return;
  }
  // Matches the receiver spellings used for the bus: `bus->Call(`,
  // `bus.Call(`, `bus_.Call(`, `bus().Call(`. Deliberately not CallAll,
  // which returns per-service Results the gather loop inspects.
  static const std::regex kBusCallRe(
      R"(\bbus(_\b|\s*\(\s*\))?\s*(\.|->)\s*Call\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kBusCallRe)) continue;
    std::string stmt = AccumulateStatement(lines, i);
    if (stmt.empty()) continue;
    // Any status inspection (or explicit discard) in the statement is fine.
    if (stmt.find(".ok()") != std::string::npos ||
        stmt.find(".status(") != std::string::npos ||
        stmt.find("WF_RETURN_IF_ERROR") != std::string::npos ||
        stmt.find("WF_CHECK_OK") != std::string::npos ||
        stmt.find("(void)") != std::string::npos) {
      continue;
    }
    if (Trim(stmt).compare(0, 6, "return") == 0) continue;  // caller's job
    std::smatch sm;
    if (!std::regex_search(stmt, sm, kBusCallRe)) continue;
    size_t call_pos = static_cast<size_t>(sm.position(0));
    size_t open = stmt.find('(', call_pos + sm.length(0) - 1);
    if (open == std::string::npos) continue;
    size_t close = MatchParen(stmt, open);
    if (close == std::string::npos) continue;

    // Deref without check, form 1: the temporary is member-accessed right
    // after the call (`bus->Call(...).value()`, `...Call(...)->empty()`).
    size_t after = stmt.find_first_not_of(" \t", close + 1);
    bool deref_suffix =
        after != std::string::npos &&
        (stmt[after] == '.' ||
         (stmt[after] == '-' && after + 1 < stmt.size() &&
          stmt[after + 1] == '>'));

    // Deref form 2: the whole receiver chain is star-dereferenced
    // (`*cluster_->bus().Call(...)`). Walk back over the chain to see what
    // precedes it.
    size_t j = call_pos;
    while (j > 0) {
      char c = stmt[j - 1];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == ':' || c == ' ') {
        --j;
      } else if (c == '>' && j >= 2 && stmt[j - 2] == '-') {
        j -= 2;
      } else if (c == ')' && j >= 2 && stmt[j - 2] == '(') {
        j -= 2;
      } else {
        break;
      }
    }
    bool deref_prefix = j > 0 && stmt[j - 1] == '*';

    // Bare discard: the call is the entire statement.
    bool bare_discard = !HasTopLevelAssignment(stmt) &&
                        after != std::string::npos && stmt[after] == ';';

    if (deref_suffix || deref_prefix || bare_discard) {
      out->push_back(
          {file.path, i + 1, "unchecked-rpc",
           "bus Call on the query path ignores the Result status; check "
           ".ok() and degrade coverage (CallOptions adds retries) instead "
           "of assuming the shard answered"});
    }
  }
}

void CheckPlatformRawTiming(const SourceFile& file,
                            const std::vector<std::string>& lines,
                            std::vector<Violation>* out) {
  // Platform code must time through wf_obs (obs::MonotonicNowUs or
  // obs::ScopedTimer): a raw clock read is either a duration that bypasses
  // the timing histograms or an unquarantined source of nondeterminism.
  // wf_obs itself (src/obs/) is the sanctioned home of the one raw read,
  // and is outside this rule's path scope by construction.
  if (file.path.find("platform/") == std::string::npos) return;
  static const std::regex kClockNowRe(
      R"(\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kClockNowRe)) continue;
    out->push_back({file.path, i + 1, "platform-raw-timing",
                    "raw " + m[1].str() +
                        "::now() in platform code; time through "
                        "obs::MonotonicNowUs()/obs::ScopedTimer so durations "
                        "land in wf_obs timing histograms (DESIGN.md §8)"});
  }
}

void CheckPlatformRawThread(const SourceFile& file,
                            const std::vector<std::string>& lines,
                            std::vector<Violation>* out) {
  // Platform and core code must schedule work through the shared pool
  // types (MineExecutor, VinciBus::ScatterPool): an ad-hoc std::thread or
  // std::async spawns unbounded concurrency that the executor's worker cap,
  // utilization gauges, and determinism contract never see. The pool
  // implementations themselves carry an allow() suppression.
  if (file.path.find("platform/") == std::string::npos &&
      file.path.find("core/") == std::string::npos) {
    return;
  }
  static const std::regex kRawThreadRe(R"(\bstd\s*::\s*(thread|async)\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kRawThreadRe)) continue;
    out->push_back({file.path, i + 1, "platform-raw-thread",
                    "raw std::" + m[1].str() +
                        " in platform/core code; schedule through the shared "
                        "pool types (MineExecutor, VinciBus::ScatterPool) so "
                        "concurrency stays bounded and observable "
                        "(DESIGN.md §10)"});
  }
}

void CheckPlatformRawFileIo(const SourceFile& file,
                            const std::vector<std::string>& lines,
                            std::vector<Violation>* out) {
  // Platform storage must write through the durable-file layer
  // (common::DurableFile / WriteFileAtomic / WriteSnapshotFile): a raw
  // output stream bypasses both the storage fault-injection point and the
  // write-temp-then-atomic-rename discipline, so a crash mid-write can
  // destroy the previous good file. wf_common owns the one sanctioned raw
  // stream and is outside this rule's path scope by construction. Reads
  // (std::ifstream) are unaffected. src/store — the segment engine whose
  // whole job is writing files — is held to the same discipline: segment
  // and manifest bytes must pass the fault-injection point too.
  if (file.path.find("platform/") == std::string::npos &&
      file.path.find("store/") == std::string::npos) {
    return;
  }
  static const std::regex kRawWriteRe(
      R"(\b(?:std\s*::\s*)?(ofstream|fstream)\b|\b(fopen|freopen|fwrite)\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    // `#include <fstream>` is how read-side code gets std::ifstream, which
    // is legal here; any write-type *use* is still caught on its own line.
    if (Trim(lines[i]).rfind("#include", 0) == 0) continue;
    std::smatch m;
    if (!std::regex_search(lines[i], m, kRawWriteRe)) continue;
    std::string what = m[1].matched ? m[1].str() : m[2].str() + "()";
    out->push_back(
        {file.path, i + 1, "platform-raw-file-io",
         "raw " + what +
             " write path in platform/store code; go through "
             "common::DurableFile "
             "/ WriteFileAtomic / WriteSnapshotFile so every byte passes "
             "fault injection and atomic replacement (DESIGN.md §9)"});
  }
}

void CheckServingUnboundedWait(const FileModel& fm,
                               std::vector<Violation>* out) {
  // Serving-layer code (src/serve) sits on the overload path: any block
  // without a bound — an untimed cv wait, a sleep, a bus call with no
  // deadline — is a request that can hang instead of shedding. Every wait
  // there must be wait_for/wait_until under the request's remaining
  // budget, and every bus call must carry CallOptions/a deadline.
  if (fm.layer != "serve") return;
  static const std::regex kUntimedWaitRe(R"(\.\s*wait\s*\()");
  static const std::regex kSleepRe(R"(\bsleep_(for|until)\s*\()");
  static const std::regex kBusCallRe(
      R"(\bbus(_\b|\s*\(\s*\))?\s*(\.|->)\s*Call(All)?\s*\()");
  for (size_t i = 0; i < fm.lines.size(); ++i) {
    const std::string& line = fm.lines[i];
    if (std::regex_search(line, kUntimedWaitRe)) {
      out->push_back(
          {fm.file.path, i + 1, "serving-unbounded-wait",
           "untimed condition-variable wait in serving code; use wait_for "
           "with the request's remaining deadline so overload sheds instead "
           "of hanging"});
    }
    if (std::regex_search(line, kSleepRe)) {
      out->push_back(
          {fm.file.path, i + 1, "serving-unbounded-wait",
           "sleep in serving code; serving threads are caller-runs and must "
           "only block in deadline-bounded waits"});
    }
    if (std::regex_search(line, kBusCallRe)) {
      std::string stmt = AccumulateStatement(fm.lines, i);
      if (stmt.empty()) continue;
      if (stmt.find("CallOptions") == std::string::npos &&
          stmt.find("options") == std::string::npos &&
          stmt.find("Deadline") == std::string::npos &&
          stmt.find("deadline") == std::string::npos) {
        out->push_back(
            {fm.file.path, i + 1, "serving-unbounded-wait",
             "bus call in serving code without a deadline: pass CallOptions "
             "with deadline_us (or thread the request Deadline) so no "
             "downstream call can outlive its caller's budget"});
      }
    }
  }
}

void CheckServingUnclampedHedge(const FileModel& fm,
                                std::vector<Violation>* out) {
  // Hedged/re-issued work on the serving path (src/serve and the platform
  // bus it rides) must schedule inside the request's deadline: a hedge
  // timer computed without consulting the expiry happily re-issues work the
  // caller can no longer use, doubling load exactly when the system is
  // slow (DESIGN.md §14). Any statement assigning a hedge/reissue schedule
  // variable must mention the deadline/expiry (or clamp through std::min /
  // std::clamp against it) in that same statement. Plain literal
  // initializers (`hedge_at_us = 0;` — the "never" sentinel) are exempt.
  if (fm.layer != "serve" && fm.layer != "platform") return;
  static const std::regex kHedgeAssignRe(
      R"(\b(?:hedge|reissue)\w*(?:_at|_delay|_us)\w*\s*=[^=])");
  static const std::regex kLiteralInitRe(R"(=\s*\{?\s*\d*\s*\}?\s*;)");
  for (size_t i = 0; i < fm.lines.size(); ++i) {
    if (!std::regex_search(fm.lines[i], kHedgeAssignRe)) continue;
    std::string stmt = AccumulateStatement(fm.lines, i);
    if (stmt.empty()) continue;
    if (std::regex_search(stmt, kLiteralInitRe)) continue;
    if (stmt.find("deadline") != std::string::npos ||
        stmt.find("Deadline") != std::string::npos ||
        stmt.find("expiry") != std::string::npos ||
        stmt.find("expires") != std::string::npos ||
        stmt.find("clamp") != std::string::npos ||
        stmt.find("min(") != std::string::npos) {
      continue;
    }
    out->push_back(
        {fm.file.path, i + 1, "serving-unclamped-hedge",
         "hedge/re-issue schedule assigned without consulting the request "
         "deadline; clamp the fire time against the expiry (std::min / "
         "std::clamp or an explicit deadline check in the same statement) "
         "so hedging never adds load past the caller's budget "
         "(DESIGN.md §14)"});
  }
}

// --- Cross-file rules --------------------------------------------------------

// Layers where a mutex member implies a lock discipline worth annotating.
bool LayerWantsAnnotations(const std::string& layer) {
  return layer == "platform" || layer == "obs" || layer == "core" ||
         layer == "serve" || layer == "store";
}

void CheckLayering(const FileModel& fm, std::vector<Violation>* out) {
  if (fm.layer.empty()) return;  // tests/bench/examples: unrestricted
  const auto& dag = LayeringDag();
  auto it = dag.find(fm.layer);
  if (it == dag.end()) return;
  for (const IncludeEdge& inc : fm.includes) {
    size_t slash = inc.target.find('/');
    if (slash == std::string::npos) continue;
    std::string target = inc.target.substr(0, slash);
    if (target == fm.layer) continue;       // intra-layer: always allowed
    if (dag.find(target) == dag.end()) continue;  // not a src/ layer
    if (it->second.count(target) == 0) {
      out->push_back(
          {fm.file.path, inc.line, "layering",
           "#include \"" + inc.target + "\" crosses the layering DAG: " +
               fm.layer + " may not depend on " + target +
               " (DESIGN.md §11 layer order)"});
    }
  }
}

void CheckUnguardedFields(const FileModel& fm, std::vector<Violation>* out) {
  if (!LayerWantsAnnotations(fm.layer)) return;
  for (const ClassModel& cls : fm.classes) {
    if (cls.mutexes.empty()) continue;
    for (const FieldInfo& f : cls.fields) {
      if (!f.after_mutex || f.exempt || !f.guard.empty()) continue;
      out->push_back(
          {fm.file.path, f.line, "unguarded-field",
           "field '" + f.name + "' of " +
               (cls.name.empty() ? "class" : cls.name) +
               " is declared after mutex '" + cls.mutexes.front() +
               "' but carries no WF_GUARDED_BY annotation; annotate it or "
               "move immutable configuration above the mutex"});
    }
  }
}

size_t LineOfOffset(size_t start_line, const std::string& text,
                    size_t offset) {
  return start_line +
         static_cast<size_t>(
             std::count(text.begin(), text.begin() + static_cast<long>(offset),
                        '\n'));
}

bool BodyLocksMutex(const std::string& body, const std::string& mu) {
  static const char* kHolders[] = {"MutexLock", "lock_guard", "unique_lock",
                                   "scoped_lock", "shared_lock"};
  for (const char* h : kHolders) {
    size_t pos = 0;
    while ((pos = body.find(h, pos)) != std::string::npos) {
      size_t open = body.find('(', pos + std::strlen(h));
      pos += std::strlen(h);
      if (open == std::string::npos) break;
      size_t close = MatchParen(body, open);
      if (close == std::string::npos) break;
      if (HasToken(body.substr(open, close - open + 1), mu)) return true;
    }
  }
  std::regex direct_lock("(^|[^\\w])" + mu +
                         "\\s*\\.\\s*(lock|try_lock)\\s*\\(");
  return std::regex_search(body, direct_lock);
}

}  // namespace

// --- Public API -------------------------------------------------------------

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* kRules = new std::vector<RuleInfo>{
      {"discarded-status",
       "Status/Result<T> return value silently discarded"},
      {"raw-new", "raw `new` outside the static-leak idiom"},
      {"raw-delete", "raw `delete`"},
      {"banned-rng",
       "non-deterministic RNG (rand, random_device, local engines, "
       "wall-clock seeds)"},
      {"using-namespace-header", "`using namespace` in a header"},
      {"include-guard", "header missing #pragma once / include guard"},
      {"float-equality", "EXPECT_EQ/ASSERT_EQ against a float literal"},
      {"unchecked-rpc",
       "query-path bus Call whose Result status is never checked"},
      {"platform-raw-timing",
       "raw std::chrono clock read in platform code instead of wf_obs "
       "timers"},
      {"platform-raw-file-io",
       "raw file write (ofstream/fopen/fwrite) in platform/store code "
       "instead of the durable-file layer"},
      {"platform-raw-thread",
       "raw std::thread/std::async in platform or core code instead of the "
       "shared pool types"},
      {"layering",
       "#include edge that crosses the src/ layering DAG (DESIGN.md §11)"},
      {"guarded-by",
       "WF_GUARDED_BY field touched in a member function that neither locks "
       "its mutex nor is annotated WF_REQUIRES"},
      {"unguarded-field",
       "field declared after a mutex member without a WF_GUARDED_BY "
       "annotation (platform/obs/core)"},
      {"unordered-serialization",
       "iteration over std::unordered_{map,set} that reaches a "
       "serialization/export/hash sink (determinism contract, DESIGN.md "
       "§10)"},
      {"hot-path-alloc",
       "allocation-heavy pattern (by-value std::string param, allocating "
       "substr, unreserved per-element push_back) in src/{text,pos,parse}, "
       "plus std::string construction inside token loops in "
       "src/{parse,core}"},
      {"serving-unbounded-wait",
       "blocking wait, sleep, or deadline-less bus call in src/serve (the "
       "overload path must shed, never hang)"},
      {"serving-unclamped-hedge",
       "hedge/re-issue schedule in src/serve or src/platform not clamped "
       "to the request deadline"},
      {"unknown-rule", "wflint allow() comment names an unknown rule"},
      {"unused-suppression",
       "wflint allow() names a rule that never fires in that file"},
  };
  return *kRules;
}

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& r : Rules()) {
    if (id == r.id) return true;
  }
  return false;
}

const std::map<std::string, std::set<std::string>>& LayeringDag() {
  // Computed from the dependency structure the repo is supposed to have
  // (DESIGN.md §11): leaves at the top, the platform and tools at the
  // bottom. A layer may include itself and the listed layers only.
  static const auto* kDag = new std::map<std::string, std::set<std::string>>{
      {"common", {}},
      {"obs", {"common"}},
      {"store", {"common", "obs"}},
      {"text", {"common"}},
      {"pos", {"common", "text"}},
      {"parse", {"common", "text", "pos"}},
      {"lexicon", {"common", "text", "pos"}},
      {"ner", {"common", "text"}},
      {"spot", {"common", "text"}},
      {"feature", {"common", "text", "pos"}},
      {"corpus", {"common", "text", "lexicon"}},
      {"baseline", {"common", "text", "pos", "parse", "lexicon"}},
      {"core",
       {"common", "obs", "text", "pos", "parse", "lexicon", "ner", "spot",
        "feature"}},
      {"platform",
       {"common", "obs", "store", "text", "pos", "parse", "lexicon", "ner",
        "spot", "feature", "core"}},
      {"serve",
       {"common", "obs", "store", "text", "pos", "parse", "lexicon", "ner",
        "spot", "feature", "core", "platform"}},
      {"eval",
       {"common", "text", "pos", "parse", "lexicon", "corpus", "baseline",
        "core"}},
      {"tools",
       {"common", "obs", "store", "text", "pos", "parse", "lexicon", "ner",
        "spot", "feature", "corpus", "baseline", "core", "platform", "serve",
        "eval"}},
  };
  return *kDag;
}

Engine::Engine() = default;
Engine::~Engine() = default;

void Engine::AddFile(const SourceFile& file) {
  // Fallible-function names feed the discarded-status rule exactly as in
  // v1: any Status/Result<T>-returning declaration anywhere in the repo.
  static const std::regex kFallibleRe(
      R"((?:^|[\s;{}(])(?:[A-Za-z_]\w*::)*(?:Status|Result\s*<[^;{}()]*>)\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\()");
  auto model = std::make_unique<FileModel>();
  model->file = file;
  model->layer = LayerOf(file.path);
  model->is_header = IsHeaderPath(file.path);
  const std::string scrubbed = Scrub(file.content);
  model->lines = SplitLines(scrubbed);
  model->comment_lines =
      SplitLines(Scrub(file.content, /*keep_comments=*/true));
  model->suppressions = ParseSuppressions(file.path, model->comment_lines);
  ParseIncludes(model.get());
  ModelBuilder(model.get()).Build(scrubbed);

  auto begin =
      std::sregex_iterator(scrubbed.begin(), scrubbed.end(), kFallibleRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    fallible_.insert((*it)[1].str());
  }
  files_.push_back(std::move(model));
}

size_t Engine::file_count() const { return files_.size(); }

const std::set<std::string>& Engine::fallible_functions() const {
  return fallible_;
}

namespace {

bool IsSinkName(const std::string& name) {
  static const std::regex kSinkRe(
      R"(^(Save|Serialize\w*|Export\w*|ToWire\w*|ToJson\w*|ToText\w*|Write\w*|Encode\w*|Fingerprint\w*|Fnv1a64|HashCombine\w*)$)");
  return std::regex_match(name, kSinkRe);
}

// Whole-model context shared by the cross-file rules.
struct CrossFileIndex {
  // (class name, function name) -> merged annotations from every
  // declaration and definition seen anywhere.
  std::map<std::string, std::map<std::string, FnAnnotation>> class_fns;
  // Function names whose bodies reach a serialization sink (directly by
  // calling a sink-named function, or transitively).
  std::set<std::string> reaches_sink;
  // Unordered-typed field names per file (for loop-target resolution).
  std::map<const FileModel*, std::set<std::string>> unordered_fields;
  // Every function in the repo, with its defining file.
  std::vector<std::pair<const FileModel*, const FunctionModel*>> functions;
};

CrossFileIndex BuildIndex(
    const std::vector<std::unique_ptr<FileModel>>& files) {
  CrossFileIndex idx;
  std::map<std::string, std::set<std::string>> calls;  // name -> callees
  for (const auto& fm : files) {
    for (const ClassModel& cls : fm->classes) {
      for (const auto& [fn_name, ann] : cls.fn_annotations) {
        idx.class_fns[cls.name][fn_name].MergeFrom(ann);
      }
      for (const FieldInfo& f : cls.fields) {
        if (f.unordered) idx.unordered_fields[fm.get()].insert(f.name);
      }
    }
    for (const FunctionModel& fn : fm->functions) {
      idx.functions.emplace_back(fm.get(), &fn);
      if (!fn.class_name.empty()) {
        idx.class_fns[fn.class_name][fn.name].MergeFrom(fn.annotation);
      }
      auto& c = calls[fn.name];
      c.insert(fn.callees.begin(), fn.callees.end());
    }
  }
  // Fixpoint: a function reaches a sink if it is sink-named, calls a
  // sink-named function, or calls a function that reaches one.
  for (const auto& [name, callees] : calls) {
    if (IsSinkName(name)) idx.reaches_sink.insert(name);
    for (const std::string& c : callees) {
      if (IsSinkName(c)) {
        idx.reaches_sink.insert(name);
        break;
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, callees] : calls) {
      if (idx.reaches_sink.count(name)) continue;
      for (const std::string& c : callees) {
        if (idx.reaches_sink.count(c)) {
          idx.reaches_sink.insert(name);
          changed = true;
          break;
        }
      }
    }
  }
  return idx;
}

FnAnnotation MergedAnnotation(const CrossFileIndex& idx,
                              const FunctionModel& fn) {
  FnAnnotation ann = fn.annotation;
  if (!fn.class_name.empty()) {
    auto cit = idx.class_fns.find(fn.class_name);
    if (cit != idx.class_fns.end()) {
      auto fit = cit->second.find(fn.name);
      if (fit != cit->second.end()) ann.MergeFrom(fit->second);
    }
  }
  return ann;
}

void CheckGuardedBy(const FileModel& fm, const CrossFileIndex& idx,
                    std::map<std::string, std::vector<Violation>>* by_file) {
  for (const ClassModel& cls : fm.classes) {
    for (const FieldInfo& f : cls.fields) {
      if (f.guard.empty()) continue;
      for (const auto& [fn_file, fn] : idx.functions) {
        if (fn->class_name != cls.name &&
            (cls.enclosing.empty() || fn->class_name != cls.enclosing)) {
          continue;
        }
        if (fn->name == fn->class_name || fn->name[0] == '~') continue;
        FnAnnotation ann = MergedAnnotation(idx, *fn);
        if (ann.no_analysis) continue;
        if (ann.requires_held.count(f.guard)) continue;
        size_t pos = FindToken(fn->body, f.name);
        if (pos == std::string::npos) continue;
        if (BodyLocksMutex(fn->body, f.guard)) continue;
        (*by_file)[fn_file->file.path].push_back(
            {fn_file->file.path,
             LineOfOffset(fn->body_start_line, fn->body, pos), "guarded-by",
             "field '" + f.name + "' is WF_GUARDED_BY(" + f.guard +
                 ") but " + (fn->class_name.empty() ? "" : fn->class_name +
                 "::") + fn->name +
                 " touches it without locking " + f.guard +
                 " (annotate WF_REQUIRES(" + f.guard +
                 ") if the caller holds it)"});
      }
    }
  }
}

// Finds iteration targets (range-for and .begin() loops) in a function
// body: returns (identifier, offset) pairs.
std::vector<std::pair<std::string, size_t>> IterationTargets(
    const std::string& body) {
  std::vector<std::pair<std::string, size_t>> out;
  // Range-for: `for ( decl : expr )` — take the last identifier of expr.
  size_t pos = 0;
  while ((pos = body.find("for", pos)) != std::string::npos) {
    size_t start = pos;
    pos += 3;
    bool lb = start == 0 || !IsIdentChar(body[start - 1]);
    if (!lb || (pos < body.size() && IsIdentChar(body[pos]))) continue;
    size_t open = body.find_first_not_of(" \t\n", pos);
    if (open == std::string::npos || body[open] != '(') continue;
    size_t close = MatchParen(body, open);
    if (close == std::string::npos) continue;
    std::string head = body.substr(open + 1, close - open - 1);
    // The ':' of a range-for is at zero depth and not part of '::'.
    int depth = 0;
    size_t colon = std::string::npos;
    for (size_t i = 0; i < head.size(); ++i) {
      char c = head[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (depth != 0 || c != ':') continue;
      if (i + 1 < head.size() && head[i + 1] == ':') {
        ++i;
        continue;
      }
      if (i > 0 && head[i - 1] == ':') continue;
      colon = i;
      break;
    }
    if (colon == std::string::npos) continue;
    std::string expr = Trim(head.substr(colon + 1));
    // A call like `Snapshot()` yields a fresh value; only bare
    // identifier chains name a container we can classify.
    if (!expr.empty() && expr.back() == ')') continue;
    std::string id = LastIdentifier(expr);
    if (!id.empty()) out.emplace_back(id, start);
  }
  // Iterator form: `x.begin()`.
  static const std::regex kBeginRe(R"(([A-Za-z_]\w*)\s*\.\s*begin\s*\()");
  auto begin = std::sregex_iterator(body.begin(), body.end(), kBeginRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    out.emplace_back((*it)[1].str(),
                     static_cast<size_t>(it->position(1)));
  }
  return out;
}

void CheckUnorderedSerialization(const FileModel& fm,
                                 const CrossFileIndex& idx,
                                 std::vector<Violation>* out) {
  if (fm.layer.empty()) return;
  auto ufit = idx.unordered_fields.find(&fm);
  const std::set<std::string>* fields =
      ufit != idx.unordered_fields.end() ? &ufit->second : nullptr;
  for (const FunctionModel& fn : fm.functions) {
    // The function must lead to a serialization sink for iteration order
    // to become output order.
    bool sinkish = IsSinkName(fn.name) || idx.reaches_sink.count(fn.name);
    if (!sinkish) {
      for (const std::string& c : fn.callees) {
        if (IsSinkName(c) || idx.reaches_sink.count(c)) {
          sinkish = true;
          break;
        }
      }
    }
    if (!sinkish) continue;
    // An explicit sort before emitting is the sanctioned fix; treat any
    // sort in the function as the escape hatch.
    if (fn.body.find("sort(") != std::string::npos) continue;
    std::set<std::string> flagged;
    for (const auto& [id, off] : IterationTargets(fn.body)) {
      bool unordered = fn.unordered_vars.count(id) > 0 ||
                       (fields != nullptr && fields->count(id) > 0);
      if (!unordered || !flagged.insert(id).second) continue;
      out->push_back(
          {fm.file.path, LineOfOffset(fn.body_start_line, fn.body, off),
           "unordered-serialization",
           "iteration over unordered container '" + id + "' in " + fn.name +
               " reaches a serialization sink; sort the keys first or use "
               "std::map so output is byte-identical (DESIGN.md §10)"});
    }
  }
}

// Flags std::string construction (declarations and temporaries) inside a
// loop whose header mentions tokens: the analysis front half runs one such
// loop per sentence, so a per-token allocation multiplies across the whole
// corpus. The sanctioned fixes are a hoisted buffer (declared before the
// loop), interned string_views, or LowerInto.
void CheckTokenLoopStrings(const FunctionModel& fn, const FileModel& fm,
                           std::vector<Violation>* out) {
  static const std::regex kStrDeclRe(
      R"(std\s*::\s*string\s+([A-Za-z_]\w*))");
  static const std::regex kStrTempRe(R"(std\s*::\s*string\s*\()");
  const std::string& body = fn.body;
  std::set<std::string> flagged;
  size_t p = 0;
  for (;;) {
    // Next for/while keyword with word boundaries.
    size_t loop = std::string::npos;
    for (const char* kw : {"for", "while"}) {
      size_t q = p;
      while ((q = body.find(kw, q)) != std::string::npos) {
        bool lb = q == 0 || !IsIdentChar(body[q - 1]);
        size_t e = q + std::strlen(kw);
        bool rb = e >= body.size() || !IsIdentChar(body[e]);
        if (lb && rb) break;
        q = e;
      }
      if (q != std::string::npos) loop = std::min(loop, q);
    }
    if (loop == std::string::npos) return;
    size_t open = body.find('(', loop);
    if (open == std::string::npos) return;
    int depth = 0;
    size_t close = open;
    while (close < body.size()) {
      if (body[close] == '(') ++depth;
      if (body[close] == ')' && --depth == 0) break;
      ++close;
    }
    if (close >= body.size()) return;
    p = close + 1;
    const std::string header = body.substr(open, close - open + 1);
    if (header.find("token") == std::string::npos &&
        header.find("Token") == std::string::npos) {
      continue;
    }
    size_t lb = close + 1;
    while (lb < body.size() && std::isspace(static_cast<unsigned char>(
                                   body[lb]))) {
      ++lb;
    }
    if (lb >= body.size() || body[lb] != '{') continue;  // braceless stmt
    depth = 0;
    size_t rb = lb;
    while (rb < body.size()) {
      if (body[rb] == '{') ++depth;
      if (body[rb] == '}' && --depth == 0) break;
      ++rb;
    }
    if (rb >= body.size()) return;
    const std::string inner = body.substr(lb, rb - lb);
    // Declarations: `std::string x` (the \s+ rejects `std::string&`,
    // `std::string*` and template arguments like vector<std::string>).
    auto db = std::sregex_iterator(inner.begin(), inner.end(), kStrDeclRe);
    for (auto it = db; it != std::sregex_iterator(); ++it) {
      const std::string var = (*it)[1].str();
      if (!flagged.insert(var).second) continue;
      out->push_back(
          {fm.file.path,
           LineOfOffset(fn.body_start_line, body,
                        lb + static_cast<size_t>(it->position(0))),
           "hot-path-alloc",
           "std::string '" + var + "' constructed inside a token loop in " +
               fn.name +
               "; hoist the buffer above the loop or intern the view "
               "(ROADMAP item 2)"});
    }
    // Temporaries: `std::string(...)` allocates every iteration too.
    auto tb = std::sregex_iterator(inner.begin(), inner.end(), kStrTempRe);
    for (auto it = tb; it != std::sregex_iterator(); ++it) {
      if (!flagged.insert("<temporary>").second) continue;
      out->push_back(
          {fm.file.path,
           LineOfOffset(fn.body_start_line, body,
                        lb + static_cast<size_t>(it->position(0))),
           "hot-path-alloc",
           "std::string temporary constructed inside a token loop in " +
               fn.name +
               "; hoist the buffer above the loop or intern the view "
               "(ROADMAP item 2)"});
    }
  }
}

void CheckHotPathAlloc(const FileModel& fm, std::vector<Violation>* out) {
  // Token-loop std::string construction also covers the parse/core back
  // half: MineContext consumers iterate the same token streams.
  if (fm.layer == "parse" || fm.layer == "core") {
    for (const FunctionModel& fn : fm.functions) {
      CheckTokenLoopStrings(fn, fm, out);
    }
  }
  if (fm.layer != "text" && fm.layer != "pos" && fm.layer != "parse") return;
  static const std::regex kByValRe(
      R"([(,]\s*(?:const\s+)?std\s*::\s*string\s+([A-Za-z_]\w*)\s*[,)=])");
  static const std::regex kSubstrRe(
      R"((?:([A-Za-z_]\w*)|(\)))\s*\.\s*substr\s*\()");
  static const std::regex kPushRe(
      R"(([A-Za-z_]\w*)\s*(?:\.|->)\s*(push_back|emplace_back)\s*\()");
  for (const FunctionModel& fn : fm.functions) {
    // By-value std::string parameters copy on every call.
    auto pb = std::sregex_iterator(fn.header.begin(), fn.header.end(),
                                   kByValRe);
    for (auto it = pb; it != std::sregex_iterator(); ++it) {
      out->push_back(
          {fm.file.path, fn.line, "hot-path-alloc",
           "parameter '" + (*it)[1].str() + "' of " + fn.name +
               " takes std::string by value; pass std::string_view (or "
               "const std::string&) on the tokenize/POS/parse front half "
               "(ROADMAP item 2)"});
    }
    // Allocating substr. string_view::substr is free and exempt.
    auto sb =
        std::sregex_iterator(fn.body.begin(), fn.body.end(), kSubstrRe);
    for (auto it = sb; it != std::sregex_iterator(); ++it) {
      size_t off = static_cast<size_t>(it->position(0));
      if ((*it)[1].matched) {
        if (fn.string_view_vars.count((*it)[1].str())) continue;
      } else {
        // `).substr(` — a temporary; exempt if it was a string_view cast.
        size_t close = off;
        while (close < fn.body.size() && fn.body[close] != ')') ++close;
        int depth = 0;
        size_t open = std::string::npos;
        for (size_t j = close; j != std::string::npos && j < fn.body.size();
             --j) {
          if (fn.body[j] == ')') ++depth;
          if (fn.body[j] == '(' && --depth == 0) {
            open = j;
            break;
          }
          if (j == 0) break;
        }
        if (open != std::string::npos) {
          size_t from = open > 24 ? open - 24 : 0;
          if (fn.body.substr(from, open - from).find("string_view") !=
              std::string::npos) {
            continue;
          }
        }
      }
      out->push_back(
          {fm.file.path, LineOfOffset(fn.body_start_line, fn.body, off),
           "hot-path-alloc",
           "allocating .substr() in " + fn.name +
               "; slice with std::string_view::substr instead "
               "(ROADMAP item 2)"});
    }
    // Per-element push_back inside a loop without a reserve().
    size_t first_loop = std::string::npos;
    for (const char* kw : {"for", "while"}) {
      size_t p = 0;
      while ((p = fn.body.find(kw, p)) != std::string::npos) {
        bool lb = p == 0 || !IsIdentChar(fn.body[p - 1]);
        size_t e = p + std::strlen(kw);
        bool rb = e >= fn.body.size() || !IsIdentChar(fn.body[e]);
        if (lb && rb) {
          first_loop = std::min(first_loop, p);
          break;
        }
        p = e;
      }
    }
    if (first_loop == std::string::npos) continue;
    std::set<std::string> flagged;
    auto qb = std::sregex_iterator(fn.body.begin(), fn.body.end(), kPushRe);
    for (auto it = qb; it != std::sregex_iterator(); ++it) {
      size_t off = static_cast<size_t>(it->position(0));
      if (off < first_loop) continue;
      std::string recv = (*it)[1].str();
      if (fn.body.find(recv + ".reserve(") != std::string::npos ||
          fn.body.find(recv + "->reserve(") != std::string::npos) {
        continue;
      }
      if (!flagged.insert(recv).second) continue;
      out->push_back(
          {fm.file.path, LineOfOffset(fn.body_start_line, fn.body, off),
           "hot-path-alloc",
           "per-element " + (*it)[2].str() + " into '" + recv + "' in " +
               fn.name +
               " without a reserve(); pre-size the container before the "
               "loop (ROADMAP item 2)"});
    }
  }
}

}  // namespace

std::vector<Violation> Engine::Run() const {
  CrossFileIndex idx = BuildIndex(files_);

  // Raw findings grouped by file path, so suppressions and the
  // unused-suppression rule can be applied per file no matter which file's
  // model produced the finding.
  std::map<std::string, std::vector<Violation>> by_file;
  for (const auto& fm : files_) {
    std::vector<Violation>& found = by_file[fm->file.path];
    if (fm->is_header) {
      CheckIncludeGuard(fm->file, fm->lines, &found);
      CheckUsingNamespace(fm->file, fm->lines, &found);
    }
    CheckRawNewDelete(fm->file, fm->lines, &found);
    CheckBannedRng(fm->file, fm->lines, &found);
    CheckFloatEquality(fm->file, fm->lines, &found);
    CheckDiscardedStatus(fm->file, fm->lines, fallible_, &found);
    CheckUncheckedRpc(fm->file, fm->lines, &found);
    CheckPlatformRawTiming(fm->file, fm->lines, &found);
    CheckPlatformRawThread(fm->file, fm->lines, &found);
    CheckPlatformRawFileIo(fm->file, fm->lines, &found);
    CheckServingUnboundedWait(*fm, &found);
    CheckServingUnclampedHedge(*fm, &found);
    CheckLayering(*fm, &found);
    CheckUnguardedFields(*fm, &found);
    CheckUnorderedSerialization(*fm, idx, &found);
    CheckHotPathAlloc(*fm, &found);
  }
  for (const auto& fm : files_) {
    CheckGuardedBy(*fm, idx, &by_file);
  }

  std::vector<Violation> out;
  for (const auto& fm : files_) {
    const Suppressions& sup = fm->suppressions;
    std::vector<Violation>& found = by_file[fm->file.path];
    std::map<std::string, size_t> hits;
    for (const Violation& v : found) ++hits[v.rule];
    for (Violation& v : found) {
      if (sup.allowed.count(v.rule) == 0) out.push_back(std::move(v));
    }
    for (const Violation& v : sup.unknown) out.push_back(v);
    for (const auto& [rule, line] : sup.allowed) {
      if (hits[rule] == 0) {
        out.push_back({fm->file.path, line, "unused-suppression",
                       "allow(" + rule +
                           ") suppresses nothing: the rule never fires in "
                           "this file; remove the stale suppression"});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return out;
}

std::string FormatReport(std::vector<Violation> violations) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::string out;
  for (const Violation& v : violations) {
    out += v.file;
    out += '\t';
    out += std::to_string(v.line);
    out += '\t';
    out += v.rule;
    out += '\t';
    out += v.message;
    out += '\n';
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatJsonReport(std::vector<Violation> violations,
                             size_t files_scanned) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::string out = "{\"version\":2,\"files_scanned\":";
  out += std::to_string(files_scanned);
  out += ",\"count\":";
  out += std::to_string(violations.size());
  out += ",\"violations\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i > 0) out += ',';
    out += "{\"file\":\"" + JsonEscape(v.file) + "\",\"line\":" +
           std::to_string(v.line) + ",\"rule\":\"" + JsonEscape(v.rule) +
           "\",\"message\":\"" + JsonEscape(v.message) + "\"}";
  }
  out += "]}\n";
  return out;
}

}  // namespace wf::tools::wflint
