#include "tools/wflint/wflint.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace wf::tools::wflint {

namespace {

// --- Source scrubbing -------------------------------------------------------
//
// Every rule except suppression parsing runs over a "scrubbed" copy of the
// file: comments and the contents of string/char literals are replaced by
// spaces, byte for byte, so line/column structure survives but banned
// tokens inside prose or test fixtures cannot fire rules.

enum class ScrubState {
  kCode,
  kLineComment,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

// `keep_comments` blanks only literals (used for suppression parsing, so an
// allow() directive quoted inside a string — e.g. in wflint's own tests —
// does not count as a real suppression).
std::string Scrub(const std::string& in, bool keep_comments = false) {
  std::string out = in;
  ScrubState state = ScrubState::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case ScrubState::kCode:
        if (c == '/' && next == '/') {
          state = ScrubState::kLineComment;
          if (!keep_comments) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = ScrubState::kBlockComment;
          if (!keep_comments) out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   in[i - 1])) &&
                               in[i - 1] != '_'))) {
          size_t paren = in.find('(', i + 2);
          if (paren == std::string::npos) break;  // malformed; give up
          raw_delim = ")" + in.substr(i + 2, paren - i - 2) + "\"";
          state = ScrubState::kRawString;
          i = paren;  // keep prefix; contents get blanked below
        } else if (c == '"') {
          state = ScrubState::kString;
        } else if (c == '\'') {
          state = ScrubState::kChar;
        }
        break;
      case ScrubState::kLineComment:
        if (c == '\n') {
          state = ScrubState::kCode;
        } else if (!keep_comments) {
          out[i] = ' ';
        }
        break;
      case ScrubState::kBlockComment:
        if (c == '*' && next == '/') {
          if (!keep_comments) out[i] = out[i + 1] = ' ';
          ++i;
          state = ScrubState::kCode;
        } else if (c != '\n' && !keep_comments) {
          out[i] = ' ';
        }
        break;
      case ScrubState::kString:
      case ScrubState::kChar: {
        char quote = state == ScrubState::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == quote) {
          state = ScrubState::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
      case ScrubState::kRawString:
        if (in.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = ScrubState::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

bool IsHeaderPath(const std::string& path) {
  auto ends_with = [&path](const char* suffix) {
    size_t n = std::char_traits<char>::length(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends_with(".h") || ends_with(".hpp");
}

// --- Suppressions -----------------------------------------------------------

// Parses `// wflint: allow(<rule>, <rule>)` comments from the raw source.
// Tokens that do not lex as rule ids ([a-z0-9-]+) are ignored (so docs can
// show placeholder syntax); tokens that lex but name no rule are reported.
struct Suppressions {
  std::set<std::string> allowed;
  std::vector<Violation> unknown;
};

Suppressions ParseSuppressions(const std::string& path,
                               const std::vector<std::string>& raw_lines) {
  static const std::regex kAllowRe(R"(//\s*wflint:\s*allow\(([^)]*)\))");
  static const std::regex kRuleTokenRe("^[a-z][a-z0-9-]*$");
  Suppressions out;
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch m;
    std::string rest = raw_lines[i];
    while (std::regex_search(rest, m, kAllowRe)) {
      std::stringstream list(m[1].str());
      std::string token;
      while (std::getline(list, token, ',')) {
        size_t b = token.find_first_not_of(" \t");
        size_t e = token.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        token = token.substr(b, e - b + 1);
        if (!std::regex_match(token, kRuleTokenRe)) continue;
        if (IsKnownRule(token)) {
          out.allowed.insert(token);
        } else {
          out.unknown.push_back({path, i + 1, "unknown-rule",
                                 "allow() names unknown rule '" + token +
                                     "'; see wflint --list-rules"});
        }
      }
      rest = m.suffix();
    }
  }
  return out;
}

// --- Statement scanning helpers ---------------------------------------------

// Accumulates one statement starting at scrubbed line `start`: text up to
// the first `;` at zero (){}[] depth, spanning at most `max_lines` lines.
// Returns empty string if no such terminator is found (not a statement we
// can reason about).
std::string AccumulateStatement(const std::vector<std::string>& lines,
                                size_t start, size_t max_lines = 12) {
  std::string text;
  int depth = 0;
  for (size_t i = start; i < lines.size() && i < start + max_lines; ++i) {
    for (char c : lines[i]) {
      text += c;
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ';' && depth == 0) return text;
    }
    text += ' ';
  }
  return "";
}

// True if `stmt` contains an assignment `=` at zero bracket depth (skipping
// ==, !=, <=, >=, and compound assignments, all of which still mean the
// value is consumed).
bool HasTopLevelAssignment(const std::string& stmt) {
  int depth = 0;
  for (size_t i = 0; i < stmt.size(); ++i) {
    char c = stmt[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (depth != 0 || c != '=') continue;
    char prev = i > 0 ? stmt[i - 1] : '\0';
    char next = i + 1 < stmt.size() ? stmt[i + 1] : '\0';
    if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
        prev == '>' || prev == '+' || prev == '-' || prev == '*' ||
        prev == '/' || prev == '%' || prev == '&' || prev == '|' ||
        prev == '^') {
      if (prev == '=') continue;  // second char of ==
      if (next == '=') {          // first char of a two-char operator
        ++i;
        continue;
      }
      continue;
    }
    return true;
  }
  return false;
}

// Splits the argument list of the first top-level macro/function call in
// `stmt` after position `open_paren` into top-level arguments.
std::vector<std::string> SplitTopLevelArgs(const std::string& stmt,
                                           size_t open_paren) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  for (size_t i = open_paren; i < stmt.size(); ++i) {
    char c = stmt[i];
    if (c == '(' || c == '[' || c == '{') {
      if (depth > 0) cur += c;
      ++depth;
      continue;
    }
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) break;
      cur += c;
      continue;
    }
    if (c == ',' && depth == 1) {
      args.push_back(cur);
      cur.clear();
      continue;
    }
    if (depth >= 1) cur += c;
  }
  if (!cur.empty()) args.push_back(cur);
  return args;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// --- Individual rules -------------------------------------------------------

void CheckIncludeGuard(const SourceFile& file,
                       const std::vector<std::string>& lines,
                       std::vector<Violation>* out) {
  static const std::regex kPragmaRe(R"(^\s*#\s*pragma\s+once\b)");
  static const std::regex kIfndefRe(R"(^\s*#\s*ifndef\s+([A-Za-z_]\w*))");
  std::string guard;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lines[i], m, kPragmaRe)) return;
    if (guard.empty() && std::regex_search(lines[i], m, kIfndefRe)) {
      guard = m[1].str();
      // The matching #define must follow within the next few lines.
      std::regex define_re(R"(^\s*#\s*define\s+)" + guard + R"(\b)");
      for (size_t j = i + 1; j < lines.size() && j < i + 4; ++j) {
        if (std::regex_search(lines[j], define_re)) return;
      }
    }
  }
  out->push_back({file.path, 1, "include-guard",
                  "header has neither #pragma once nor a matching "
                  "#ifndef/#define include guard"});
}

void CheckUsingNamespace(const SourceFile& file,
                         const std::vector<std::string>& lines,
                         std::vector<Violation>* out) {
  static const std::regex kUsingRe(R"(^\s*using\s+namespace\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i], kUsingRe)) {
      out->push_back({file.path, i + 1, "using-namespace-header",
                      "`using namespace` in a header leaks into every "
                      "includer; qualify names instead"});
    }
  }
}

void CheckRawNewDelete(const SourceFile& file,
                       const std::vector<std::string>& lines,
                       std::vector<Violation>* out) {
  static const std::regex kNewRe(R"(\bnew\b(?!\s*\()\s*[A-Za-z_<:])");
  static const std::regex kDeleteRe(R"((^|[^=\s])\s*\bdelete\b(\s*\[\s*\])?\s*[A-Za-z_*(])");
  static const std::regex kDeletedFnRe(R"(=\s*delete\b)");
  static const std::regex kStaticRe(R"(\bstatic\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (std::regex_search(line, kNewRe)) {
      // The static-local intentional-leak idiom (`static const X* k =
      // new X{...};`) is exempt: it exists to dodge destruction-order
      // issues, and the allocation provably happens once.
      bool static_ctx = std::regex_search(line, kStaticRe) ||
                        (i > 0 && std::regex_search(lines[i - 1], kStaticRe));
      if (!static_ctx) {
        out->push_back({file.path, i + 1, "raw-new",
                        "raw `new`; use std::make_unique / containers (the "
                        "static-leak idiom is exempt)"});
      }
    }
    if (std::regex_search(line, kDeleteRe) &&
        !std::regex_search(line, kDeletedFnRe)) {
      out->push_back({file.path, i + 1, "raw-delete",
                      "raw `delete`; ownership belongs in smart pointers "
                      "or containers"});
    }
  }
}

void CheckBannedRng(const SourceFile& file,
                    const std::vector<std::string>& lines,
                    std::vector<Violation>* out) {
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern>* kPatterns = new std::vector<Pattern>{
      {std::regex(R"(\brand\s*\()"), "rand()"},
      {std::regex(R"(\bsrand\s*\()"), "srand()"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
      {std::regex(R"(\bmt19937(_64)?\b)"), "a locally constructed engine"},
      {std::regex(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"),
       "a wall-clock seed"},
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    for (const Pattern& p : *kPatterns) {
      if (std::regex_search(lines[i], p.re)) {
        out->push_back(
            {file.path, i + 1, "banned-rng",
             std::string("non-deterministic randomness via ") + p.what +
                 "; use wf::common::Rng with an explicit seed "
                 "(determinism rule, DESIGN.md)"});
        break;  // one finding per line is enough
      }
    }
  }
}

void CheckFloatEquality(const SourceFile& file,
                        const std::vector<std::string>& lines,
                        std::vector<Violation>* out) {
  static const std::regex kEqMacroRe(R"(\b(EXPECT_EQ|ASSERT_EQ)\s*\()");
  static const std::regex kFloatLiteralRe(
      R"(^[-+]?(\d+\.\d*|\.\d+)([eE][-+]?\d+)?f?$|^[-+]?\d+[eE][-+]?\d+f?$)");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kEqMacroRe)) continue;
    std::string stmt = AccumulateStatement(lines, i);
    if (stmt.empty()) continue;
    size_t open = stmt.find('(', stmt.find(m[1].str()));
    if (open == std::string::npos) continue;
    for (const std::string& arg : SplitTopLevelArgs(stmt, open)) {
      if (std::regex_match(Trim(arg), kFloatLiteralRe)) {
        out->push_back({file.path, i + 1, "float-equality",
                        m[1].str() + " against the float literal " +
                            Trim(arg) +
                            "; use EXPECT_NEAR (or EXPECT_DOUBLE_EQ)"});
        break;
      }
    }
  }
}

void CheckDiscardedStatus(const SourceFile& file,
                          const std::vector<std::string>& lines,
                          const std::set<std::string>& fallible,
                          std::vector<Violation>* out) {
  // A bare expression-statement `receiver->Name(args);` whose callee is a
  // known Status/Result-returning function. Anything that consumes the
  // value — return, assignment, macro wrapper, (void) cast, if condition —
  // fails this shape and is skipped.
  static const std::regex kCallRe(
      R"(^\s*((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*)([A-Za-z_]\w*)\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kCallRe,
                           std::regex_constants::match_continuous)) {
      continue;
    }
    const std::string callee = m[2].str();
    if (fallible.count(callee) == 0) continue;
    std::string stmt = AccumulateStatement(lines, i);
    if (stmt.empty()) continue;
    if (HasTopLevelAssignment(stmt)) continue;
    // Must be a pure call statement: nothing after the closing paren of the
    // call but the terminating semicolon.
    std::string trimmed = Trim(stmt);
    if (trimmed.size() < 2 ||
        trimmed.compare(trimmed.size() - 2, 2, ");") != 0) {
      continue;
    }
    out->push_back({file.path, i + 1, "discarded-status",
                    "result of fallible call `" + callee +
                        "(...)` is discarded; handle it, propagate it, or "
                        "(void)-cast with a comment"});
  }
}

void CheckUncheckedRpc(const SourceFile& file,
                       const std::vector<std::string>& lines,
                       std::vector<Violation>* out) {
  // Query-path code only (scatter/gather and the sentiment query services):
  // there, a bus Call whose Result is never status-checked turns a transient
  // fault into a silently wrong answer instead of degraded coverage. Other
  // layers are covered by [[nodiscard]] + discarded-status.
  if (file.path.find("query") == std::string::npos &&
      file.path.find("cluster") == std::string::npos) {
    return;
  }
  // Matches the receiver spellings used for the bus: `bus->Call(`,
  // `bus.Call(`, `bus_.Call(`, `bus().Call(`. Deliberately not CallAll,
  // which returns per-service Results the gather loop inspects.
  static const std::regex kBusCallRe(
      R"(\bbus(_\b|\s*\(\s*\))?\s*(\.|->)\s*Call\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kBusCallRe)) continue;
    std::string stmt = AccumulateStatement(lines, i);
    if (stmt.empty()) continue;
    // Any status inspection (or explicit discard) in the statement is fine.
    if (stmt.find(".ok()") != std::string::npos ||
        stmt.find(".status(") != std::string::npos ||
        stmt.find("WF_RETURN_IF_ERROR") != std::string::npos ||
        stmt.find("WF_CHECK_OK") != std::string::npos ||
        stmt.find("(void)") != std::string::npos) {
      continue;
    }
    if (Trim(stmt).compare(0, 6, "return") == 0) continue;  // caller's job
    std::smatch sm;
    if (!std::regex_search(stmt, sm, kBusCallRe)) continue;
    size_t call_pos = static_cast<size_t>(sm.position(0));
    size_t open = stmt.find('(', call_pos + sm.length(0) - 1);
    if (open == std::string::npos) continue;
    int depth = 0;
    size_t close = std::string::npos;
    for (size_t j = open; j < stmt.size(); ++j) {
      if (stmt[j] == '(') ++depth;
      if (stmt[j] == ')' && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == std::string::npos) continue;

    // Deref without check, form 1: the temporary is member-accessed right
    // after the call (`bus->Call(...).value()`, `...Call(...)->empty()`).
    size_t after = stmt.find_first_not_of(" \t", close + 1);
    bool deref_suffix =
        after != std::string::npos &&
        (stmt[after] == '.' ||
         (stmt[after] == '-' && after + 1 < stmt.size() &&
          stmt[after + 1] == '>'));

    // Deref form 2: the whole receiver chain is star-dereferenced
    // (`*cluster_->bus().Call(...)`). Walk back over the chain to see what
    // precedes it.
    size_t j = call_pos;
    while (j > 0) {
      char c = stmt[j - 1];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == ':' || c == ' ') {
        --j;
      } else if (c == '>' && j >= 2 && stmt[j - 2] == '-') {
        j -= 2;
      } else if (c == ')' && j >= 2 && stmt[j - 2] == '(') {
        j -= 2;
      } else {
        break;
      }
    }
    bool deref_prefix = j > 0 && stmt[j - 1] == '*';

    // Bare discard: the call is the entire statement.
    bool bare_discard = !HasTopLevelAssignment(stmt) &&
                        after != std::string::npos && stmt[after] == ';';

    if (deref_suffix || deref_prefix || bare_discard) {
      out->push_back(
          {file.path, i + 1, "unchecked-rpc",
           "bus Call on the query path ignores the Result status; check "
           ".ok() and degrade coverage (CallOptions adds retries) instead "
           "of assuming the shard answered"});
    }
  }
}

void CheckPlatformRawTiming(const SourceFile& file,
                            const std::vector<std::string>& lines,
                            std::vector<Violation>* out) {
  // Platform code must time through wf_obs (obs::MonotonicNowUs or
  // obs::ScopedTimer): a raw clock read is either a duration that bypasses
  // the timing histograms or an unquarantined source of nondeterminism.
  // wf_obs itself (src/obs/) is the sanctioned home of the one raw read,
  // and is outside this rule's path scope by construction.
  if (file.path.find("platform/") == std::string::npos) return;
  static const std::regex kClockNowRe(
      R"(\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kClockNowRe)) continue;
    out->push_back({file.path, i + 1, "platform-raw-timing",
                    "raw " + m[1].str() +
                        "::now() in platform code; time through "
                        "obs::MonotonicNowUs()/obs::ScopedTimer so durations "
                        "land in wf_obs timing histograms (DESIGN.md §8)"});
  }
}

void CheckPlatformRawThread(const SourceFile& file,
                            const std::vector<std::string>& lines,
                            std::vector<Violation>* out) {
  // Platform and core code must schedule work through the shared pool
  // types (MineExecutor, VinciBus::ScatterPool): an ad-hoc std::thread or
  // std::async spawns unbounded concurrency that the executor's worker cap,
  // utilization gauges, and determinism contract never see. The pool
  // implementations themselves carry an allow() suppression.
  if (file.path.find("platform/") == std::string::npos &&
      file.path.find("core/") == std::string::npos) {
    return;
  }
  static const std::regex kRawThreadRe(R"(\bstd\s*::\s*(thread|async)\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kRawThreadRe)) continue;
    out->push_back({file.path, i + 1, "platform-raw-thread",
                    "raw std::" + m[1].str() +
                        " in platform/core code; schedule through the shared "
                        "pool types (MineExecutor, VinciBus::ScatterPool) so "
                        "concurrency stays bounded and observable "
                        "(DESIGN.md §10)"});
  }
}

void CheckPlatformRawFileIo(const SourceFile& file,
                            const std::vector<std::string>& lines,
                            std::vector<Violation>* out) {
  // Platform storage must write through the durable-file layer
  // (common::DurableFile / WriteFileAtomic / WriteSnapshotFile): a raw
  // output stream bypasses both the storage fault-injection point and the
  // write-temp-then-atomic-rename discipline, so a crash mid-write can
  // destroy the previous good file. wf_common owns the one sanctioned raw
  // stream and is outside this rule's path scope by construction. Reads
  // (std::ifstream) are unaffected.
  if (file.path.find("platform/") == std::string::npos) return;
  static const std::regex kRawWriteRe(
      R"(\b(?:std\s*::\s*)?(ofstream|fstream)\b|\b(fopen|freopen|fwrite)\s*\()");
  for (size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(lines[i], m, kRawWriteRe)) continue;
    std::string what = m[1].matched ? m[1].str() : m[2].str() + "()";
    out->push_back(
        {file.path, i + 1, "platform-raw-file-io",
         "raw " + what +
             " write path in platform code; go through common::DurableFile "
             "/ WriteFileAtomic / WriteSnapshotFile so every byte passes "
             "fault injection and atomic replacement (DESIGN.md §9)"});
  }
}

}  // namespace

// --- Public API -------------------------------------------------------------

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo>* kRules = new std::vector<RuleInfo>{
      {"discarded-status",
       "Status/Result<T> return value silently discarded"},
      {"raw-new", "raw `new` outside the static-leak idiom"},
      {"raw-delete", "raw `delete`"},
      {"banned-rng",
       "non-deterministic RNG (rand, random_device, local engines, "
       "wall-clock seeds)"},
      {"using-namespace-header", "`using namespace` in a header"},
      {"include-guard", "header missing #pragma once / include guard"},
      {"float-equality", "EXPECT_EQ/ASSERT_EQ against a float literal"},
      {"unchecked-rpc",
       "query-path bus Call whose Result status is never checked"},
      {"platform-raw-timing",
       "raw std::chrono clock read in platform code instead of wf_obs "
       "timers"},
      {"platform-raw-file-io",
       "raw file write (ofstream/fopen/fwrite) in platform code instead of "
       "the durable-file layer"},
      {"platform-raw-thread",
       "raw std::thread/std::async in platform or core code instead of the "
       "shared pool types"},
      {"unknown-rule", "wflint allow() comment names an unknown rule"},
  };
  return *kRules;
}

bool IsKnownRule(const std::string& id) {
  for (const RuleInfo& r : Rules()) {
    if (id == r.id) return true;
  }
  return false;
}

void Linter::CollectDeclarations(const SourceFile& file) {
  static const std::regex kFallibleRe(
      R"((?:^|[\s;{}(])(?:[A-Za-z_]\w*::)*(?:Status|Result\s*<[^;{}()]*>)\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\()");
  const std::string scrubbed = Scrub(file.content);
  auto begin =
      std::sregex_iterator(scrubbed.begin(), scrubbed.end(), kFallibleRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    fallible_.insert((*it)[1].str());
  }
}

std::vector<Violation> Linter::Lint(const SourceFile& file) const {
  // Comments stay visible for suppression parsing; literals are blanked in
  // both views so quoted directives and quoted banned tokens are inert.
  const std::vector<std::string> comment_lines =
      SplitLines(Scrub(file.content, /*keep_comments=*/true));
  const std::vector<std::string> lines = SplitLines(Scrub(file.content));

  Suppressions suppressions = ParseSuppressions(file.path, comment_lines);
  std::vector<Violation> found;

  const bool is_header = IsHeaderPath(file.path);
  if (is_header) {
    CheckIncludeGuard(file, lines, &found);
    CheckUsingNamespace(file, lines, &found);
  }
  CheckRawNewDelete(file, lines, &found);
  CheckBannedRng(file, lines, &found);
  CheckFloatEquality(file, lines, &found);
  CheckDiscardedStatus(file, lines, fallible_, &found);
  CheckUncheckedRpc(file, lines, &found);
  CheckPlatformRawTiming(file, lines, &found);
  CheckPlatformRawThread(file, lines, &found);
  CheckPlatformRawFileIo(file, lines, &found);

  std::vector<Violation> out;
  for (Violation& v : found) {
    if (suppressions.allowed.count(v.rule) == 0) {
      out.push_back(std::move(v));
    }
  }
  for (Violation& v : suppressions.unknown) out.push_back(std::move(v));
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return out;
}

std::string FormatReport(std::vector<Violation> violations) {
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  std::string out;
  for (const Violation& v : violations) {
    out += v.file;
    out += '\t';
    out += std::to_string(v.line);
    out += '\t';
    out += v.rule;
    out += '\t';
    out += v.message;
    out += '\n';
  }
  return out;
}

}  // namespace wf::tools::wflint
