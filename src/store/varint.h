#ifndef WF_STORE_VARINT_H_
#define WF_STORE_VARINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace wf::store {

// LEB128-style unsigned varint: 7 payload bits per byte, high bit set on
// every byte except the last. Small deltas (the common case in sorted
// posting lists) cost one byte; a full uint64 costs at most ten.

inline void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Decodes one varint at `*pos`, advancing it past the encoded bytes.
// Returns false on truncation or on an encoding longer than ten bytes
// (overflow) — the caller treats either as corruption.
inline bool GetVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  size_t p = *pos;
  while (p < data.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(data[p++]);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace wf::store

#endif  // WF_STORE_VARINT_H_
