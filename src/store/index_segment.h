#ifndef WF_STORE_INDEX_SEGMENT_H_
#define WF_STORE_INDEX_SEGMENT_H_

#include <cstdint>
#include <fstream>  // std::ifstream reads only; writes go through DurableFile
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace wf::common {
class StorageFaultInjector;
}  // namespace wf::common

namespace wf::store {

// An immutable frozen tier of an inverted index: the posting-list sibling
// of the key/value segment. On disk it is a `wfsnap indexseg 1` envelope
// whose payload holds a sorted doc table, a sorted term dictionary with
// varint delta-compressed posting blocks, and the numeric field entries:
//
//   wfpost 1 <ndocs> <nterms> <nfield-lines>\n
//   d <full> <escaped-doc-id>\n                  (ndocs, sorted by id)
//   t <escaped-term> <block-bytes>\n<block>\n    (nterms, sorted by term)
//   f <escaped-field> <value> <doc-ord>\n        (field lines, sorted)
//
// A posting block is varint-coded: doc count, then per doc its ordinal
// delta, position count, and position deltas — small and cheap to skip.
// Doc ordinals are positions in this segment's own sorted doc table.
//
// `full` records whether the segment holds the doc's complete postings
// (a real (re)index) or only incremental additions (concept tokens /
// field values added after the doc was last frozen). A full entry shadows
// every older tier for that doc; a partial one merges with them.
//
// The payload is a pure function of the logical content (docs sorted,
// terms sorted, postings in ordinal order), so equal logical tiers freeze
// to byte-identical files — the determinism contract of DESIGN.md §13.

struct IndexDocEntry {
  std::string id;
  bool full = true;
};

struct TermPostings {
  uint32_t doc_ord = 0;
  std::vector<uint32_t> positions;  // ascending; empty = concept token
};

struct FieldValueEntry {
  double value = 0.0;
  uint32_t doc_ord = 0;
};

// The logical content of one frozen tier, in canonical order.
struct IndexSegmentData {
  std::vector<IndexDocEntry> docs;  // sorted by id, unique
  std::map<std::string, std::vector<TermPostings>> terms;  // ords ascending
  std::map<std::string, std::vector<FieldValueEntry>> fields;
};

common::Status WriteIndexSegmentFile(const std::string& path,
                                     const IndexSegmentData& data,
                                     common::StorageFaultInjector* injector,
                                     uint64_t* bytes_out);

// Read handle: Open() verifies the envelope once and keeps the doc table,
// term dictionary (term + block offset) and field entries in memory;
// posting blocks are decoded lazily per term. Not thread-safe — the
// owning index serializes access.
class IndexSegmentReader {
 public:
  struct TermEntry {
    std::string term;
    uint64_t block_offset = 0;  // absolute file offset of the block
    uint32_t block_len = 0;
  };

  static common::Result<std::unique_ptr<IndexSegmentReader>> Open(
      const std::string& path);

  // Public only so Open can make_unique; use Open().
  IndexSegmentReader() = default;
  IndexSegmentReader(const IndexSegmentReader&) = delete;
  IndexSegmentReader& operator=(const IndexSegmentReader&) = delete;

  const std::vector<IndexDocEntry>& docs() const { return docs_; }
  // -1 when the doc is not in this segment, else its ordinal.
  int FindDoc(std::string_view id) const;

  const std::vector<TermEntry>& terms() const { return terms_; }
  const TermEntry* FindTerm(std::string_view term) const;
  // Decodes one term's postings (segment-local doc ordinals).
  common::Result<std::vector<TermPostings>> Postings(
      const TermEntry& entry) const;

  const std::map<std::string, std::vector<FieldValueEntry>>& fields() const {
    return fields_;
  }

  const std::string& path() const { return path_; }
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  std::string path_;
  uint64_t file_bytes_ = 0;
  std::vector<IndexDocEntry> docs_;
  std::vector<TermEntry> terms_;
  std::map<std::string, std::vector<FieldValueEntry>> fields_;
  mutable std::ifstream in_;
};

// Reads a whole segment back into its logical form (compaction input).
common::Result<IndexSegmentData> LoadIndexSegmentData(
    const IndexSegmentReader& reader);

// Merges tiers oldest → newest into one canonical tier. Per doc, versions
// are collected newest-first until (and including) the first full one:
// a full version shadows everything older, partial versions merge their
// postings and field values. Doc ordinals are remapped into the merged
// sorted doc table.
IndexSegmentData MergeIndexSegments(const std::vector<IndexSegmentData>& tiers);

// Percent-escaping shared by the index segment format (space, newline,
// '%' — keeps every token single-line and single-word).
std::string EscapeIndexToken(std::string_view raw);
std::string UnescapeIndexToken(std::string_view escaped);

}  // namespace wf::store

#endif  // WF_STORE_INDEX_SEGMENT_H_
