#ifndef WF_STORE_SEGMENT_H_
#define WF_STORE_SEGMENT_H_

#include <cstdint>
#include <fstream>  // std::ifstream reads only; writes go through DurableFile
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "store/bloom.h"

namespace wf::common {
class StorageFaultInjector;
}  // namespace wf::common

namespace wf::store {

// An immutable sorted segment run: the frozen tier of the LSM tree.
//
// On disk a segment is a `wfsnap segment 1` envelope (checksummed,
// written atomically via WriteSnapshotFile) whose payload is:
//
//   wfseg 1 <record-count>\n
//   r <keylen> <vallen> <tombstone>\n<key><value>\n     (record-count times)
//
// Records are strictly sorted by key with no duplicates — the writer
// refuses anything else, so every reader can binary-search. Tombstones are
// real records with an empty value: a deletion must stay visible until
// compaction can prove no older segment still holds the key.
//
// Determinism contract (DESIGN.md §13): the payload is a pure function of
// the logical record sequence — same records, same bytes — so two shards
// that flushed the same logical content produce byte-identical segments.

struct SegmentRecord {
  std::string_view key;
  std::string_view value;
  bool tombstone = false;
};

// Writes `records` (already sorted by key, unique) as a segment file.
// Returns the total file size (envelope + payload) through `bytes_out`
// when non-null, and the key Bloom filter through `bloom_out` when
// non-null (bit-identical to what SegmentReader::Open rebuilds).
// InvalidArgument on unsorted or duplicate keys.
common::Status WriteSegmentFile(const std::string& path,
                                const std::vector<SegmentRecord>& records,
                                common::StorageFaultInjector* injector,
                                uint64_t* bytes_out,
                                BloomFilter* bloom_out = nullptr);

// Read handle over one segment file. Open() verifies the whole envelope
// checksum once and keeps only the key index (key, offset, length,
// tombstone) in memory; values are read lazily by offset so a large
// segment does not occupy RAM. Not thread-safe: the owning LsmTree
// serializes reads under its own mutex.
class SegmentReader {
 public:
  struct Entry {
    std::string key;
    uint64_t value_offset = 0;  // absolute file offset of the value bytes
    uint32_t value_len = 0;
    bool tombstone = false;
  };

  static common::Result<std::unique_ptr<SegmentReader>> Open(
      const std::string& path);

  // Public only so Open can make_unique; use Open().
  SegmentReader() = default;
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;

  // Sorted by key; one entry per record including tombstones.
  const std::vector<Entry>& entries() const { return entries_; }
  // Bloom pre-check for Find(): false means no record (incl. tombstones)
  // for `key` exists in this segment.
  bool MayContain(std::string_view key) const {
    return bloom_.MayContain(key);
  }
  const BloomFilter& bloom() const { return bloom_; }
  // Null when the segment has no record for `key` (a tombstone entry is
  // still returned — absence and deletion are different answers).
  const Entry* Find(std::string_view key) const;

  common::Result<std::string> ReadValue(const Entry& entry) const;

  const std::string& path() const { return path_; }
  uint64_t file_bytes() const { return file_bytes_; }
  size_t record_count() const { return entries_.size(); }

 private:
  std::string path_;
  uint64_t file_bytes_ = 0;
  std::vector<Entry> entries_;
  BloomFilter bloom_;
  // One stream reused across lazy value reads; opened on first use.
  mutable std::ifstream in_;
};

}  // namespace wf::store

#endif  // WF_STORE_SEGMENT_H_
