#ifndef WF_STORE_BLOOM_H_
#define WF_STORE_BLOOM_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace wf::store {

// Blocked-free classic Bloom filter over segment keys. Sits in front of
// every segment key probe: a merged LSM read walks segments newest-first,
// and most segments do not hold the key, so a cheap definitely-absent
// answer skips the binary search (and keeps the segment's key index out of
// cache entirely).
//
// Deterministic by construction: double hashing over Fnv1a64/HashCombine
// (both fixed across platforms), so two replicas that flushed the same
// records build bit-identical filters. Sized at ~10 bits per key with
// k = 6 probes (~0.8% false-positive rate). The filter is rebuilt from the
// key index at SegmentReader::Open — it is derived state, never persisted,
// so the on-disk `wfseg 1` format (and its byte-determinism contract) is
// untouched.
class BloomFilter {
 public:
  static constexpr size_t kBitsPerKey = 10;
  static constexpr uint32_t kNumHashes = 6;

  BloomFilter() = default;
  explicit BloomFilter(size_t expected_keys) {
    size_t bits = expected_keys * kBitsPerKey;
    if (bits < 64) bits = 64;
    words_.assign((bits + 63) / 64, 0);
  }

  void Add(std::string_view key) {
    if (words_.empty()) return;
    uint64_t h1 = common::Fnv1a64(key);
    // Odd step so the probe sequence cycles through all bit positions.
    uint64_t h2 = common::HashCombine(h1, 0x9e3779b97f4a7c15ULL) | 1;
    for (uint32_t i = 0; i < kNumHashes; ++i) {
      SetBit((h1 + i * h2) % bit_count());
    }
  }

  // False means definitely absent; true means "possibly present" (the
  // caller still has to probe the key index). An unsized filter holds no
  // keys and answers false for everything.
  bool MayContain(std::string_view key) const {
    if (words_.empty()) return false;
    uint64_t h1 = common::Fnv1a64(key);
    uint64_t h2 = common::HashCombine(h1, 0x9e3779b97f4a7c15ULL) | 1;
    for (uint32_t i = 0; i < kNumHashes; ++i) {
      if (!TestBit((h1 + i * h2) % bit_count())) return false;
    }
    return true;
  }

  size_t bit_count() const { return words_.size() * 64; }
  bool empty() const { return words_.empty(); }

  friend bool operator==(const BloomFilter& a, const BloomFilter& b) {
    return a.words_ == b.words_;
  }

 private:
  void SetBit(uint64_t i) { words_[i >> 6] |= (1ull << (i & 63)); }
  bool TestBit(uint64_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  std::vector<uint64_t> words_;
};

}  // namespace wf::store

#endif  // WF_STORE_BLOOM_H_
