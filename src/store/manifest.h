#ifndef WF_STORE_MANIFEST_H_
#define WF_STORE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace wf::common {
class StorageFaultInjector;
}  // namespace wf::common

namespace wf::store {

// The manifest is the LSM tree's single durable source of truth: which
// segment files exist and in what precedence order. It is rewritten
// atomically (temp + rename under the `wfsnap manifest 1` envelope) as the
// last step of every flush and compaction — a segment file not named by
// the durable manifest is an orphan to be deleted at open, never data.
//
// Segment order in `segments` is oldest → newest; a newer segment's record
// for a key (value or tombstone) shadows every older one. Compaction
// replaces an age-contiguous run with one merged segment at the run's
// position, so precedence is positional and never inferred from ids.

struct SegmentMeta {
  uint64_t id = 0;       // monotonically increasing, never reused
  uint64_t records = 0;  // record count including tombstones
  uint64_t bytes = 0;    // whole-file size (envelope + payload)
};

struct ManifestData {
  uint64_t next_segment_id = 1;
  std::vector<SegmentMeta> segments;  // oldest → newest
};

common::Status SaveManifest(const std::string& path, const ManifestData& data,
                            common::StorageFaultInjector* injector);

common::Result<ManifestData> LoadManifest(const std::string& path);

}  // namespace wf::store

#endif  // WF_STORE_MANIFEST_H_
