#include "store/lsm.h"

#include <algorithm>
#include <filesystem>

#include "common/durable_file.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "obs/timer.h"

namespace wf::store {

namespace {
constexpr size_t kMaxTier = 16;
constexpr uint64_t kTierBaseBytes = 4096;
}  // namespace

void LsmTree::AttachMetrics(const obs::MetricsRegistry* metrics,
                            const std::string& prefix) {
  metrics_ = metrics;
  metric_prefix_ = prefix;
  m_ = MetricSet{};
  if (metrics_ == nullptr) return;
  const std::string& p = metric_prefix_;
  m_.memtable_bytes = metrics_->GetGauge(p + "/memtable_bytes");
  m_.memtable_entries = metrics_->GetGauge(p + "/memtable_entries");
  m_.segments = metrics_->GetGauge(p + "/segments");
  m_.live_keys = metrics_->GetGauge(p + "/live_keys");
  m_.flushes = metrics_->GetCounter(p + "/flushes_total");
  m_.compactions = metrics_->GetCounter(p + "/compactions_total");
  m_.compaction_bytes_rewritten =
      metrics_->GetCounter(p + "/compaction_bytes_rewritten_total");
  m_.gets = metrics_->GetCounter(p + "/gets_total");
  m_.read_tiers = metrics_->GetCounter(p + "/read_tiers_total");
  m_.bloom_hits = metrics_->GetCounter(p + "/bloom_hits_total");
  m_.bloom_misses = metrics_->GetCounter(p + "/bloom_misses_total");
  m_.flush_us = metrics_->GetHistogram(
      p + "/flush_us", obs::DefaultLatencyBoundsUs(), /*timing=*/true);
  m_.compaction_us = metrics_->GetHistogram(
      p + "/compaction_us", obs::DefaultLatencyBoundsUs(), /*timing=*/true);
}

common::Status LsmTree::OpenSegments(const std::string& dir,
                                     const std::string& base,
                                     const LsmOptions& options,
                                     common::StorageFaultInjector* injector) {
  common::MutexLock lock(mu_);
  if (segmented_) {
    return common::Status::FailedPrecondition("segments already open");
  }
  if (!mem_.empty()) {
    return common::Status::FailedPrecondition(
        "memtable must be empty when opening segments");
  }
  dir_ = dir;
  base_ = base;
  options_ = options;
  injector_ = injector;
  manifest_ = ManifestData{};
  segments_.clear();
  const std::string manifest_path = dir_ + "/" + base_ + ".manifest";
  if (common::FileExists(manifest_path)) {
    WF_ASSIGN_OR_RETURN(manifest_, LoadManifest(manifest_path));
    segments_.reserve(manifest_.segments.size());
    for (const SegmentMeta& meta : manifest_.segments) {
      WF_ASSIGN_OR_RETURN(
          std::unique_ptr<SegmentReader> reader,
          SegmentReader::Open(dir_ + "/" + base_ +
                              common::StrFormat("-%llu.wfseg",
                                                static_cast<unsigned long long>(
                                                    meta.id))));
      segments_.push_back(std::move(reader));
    }
  }
  // A crash between segment write and manifest swap leaves files the
  // manifest never adopted; they are garbage, not data — delete them so
  // ids can be reused safely. Stray .tmp files from an interrupted atomic
  // write go the same way.
  std::error_code ec;
  std::vector<std::string> orphans;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!common::StartsWith(name, base_ + "-") &&
        !common::StartsWith(name, base_ + ".")) {
      continue;
    }
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      orphans.push_back(entry.path().string());
      continue;
    }
    if (name.size() > 6 && name.substr(name.size() - 6) == ".wfseg") {
      bool adopted = false;
      for (const SegmentMeta& meta : manifest_.segments) {
        if (entry.path().string() == SegmentPathLocked(meta.id)) {
          adopted = true;
          break;
        }
      }
      if (!adopted) orphans.push_back(entry.path().string());
    }
  }
  for (const std::string& orphan : orphans) {
    std::filesystem::remove(orphan, ec);
  }
  segmented_ = true;
  live_count_ = CountLiveLocked();
  UpdateGaugesLocked();
  return common::Status::Ok();
}

bool LsmTree::segmented() const {
  common::MutexLock lock(mu_);
  return segmented_;
}

common::Status LsmTree::Put(std::string_view key, std::string_view value) {
  common::MutexLock lock(mu_);
  size_t tiers = 0;
  if (PresenceLocked(key, &tiers) != Presence::kLive) ++live_count_;
  mem_.Set(key, value);
  common::Status flushed = MaybeFlushLocked();
  UpdateGaugesLocked();
  return flushed;
}

common::Status LsmTree::Insert(std::string_view key, std::string_view value) {
  common::MutexLock lock(mu_);
  size_t tiers = 0;
  if (PresenceLocked(key, &tiers) == Presence::kLive) {
    return common::Status::AlreadyExists("key exists: " + std::string(key));
  }
  mem_.Set(key, value);
  ++live_count_;
  common::Status flushed = MaybeFlushLocked();
  UpdateGaugesLocked();
  return flushed;
}

common::Status LsmTree::Delete(std::string_view key) {
  common::MutexLock lock(mu_);
  size_t tiers = 0;
  if (PresenceLocked(key, &tiers) != Presence::kLive) {
    return common::Status::NotFound("no such key: " + std::string(key));
  }
  mem_.Remove(key);
  --live_count_;
  common::Status flushed = MaybeFlushLocked();
  UpdateGaugesLocked();
  return flushed;
}

common::Status LsmTree::Update(
    std::string_view key,
    const std::function<common::Status(std::string*)>& fn) {
  common::MutexLock lock(mu_);
  std::string value;
  const Memtable::Entry* mem_entry = mem_.Find(key);
  if (mem_entry != nullptr) {
    if (mem_entry->tombstone) {
      return common::Status::NotFound("no such key: " + std::string(key));
    }
    value = mem_entry->value;
  } else {
    bool found = false;
    for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
      if (!BloomPassLocked(**it, key)) continue;
      const SegmentReader::Entry* entry = (*it)->Find(key);
      if (entry == nullptr) continue;
      if (entry->tombstone) {
        return common::Status::NotFound("no such key: " + std::string(key));
      }
      WF_ASSIGN_OR_RETURN(value, (*it)->ReadValue(*entry));
      found = true;
      break;
    }
    if (!found) {
      return common::Status::NotFound("no such key: " + std::string(key));
    }
  }
  WF_RETURN_IF_ERROR(fn(&value));
  mem_.Set(key, value);
  common::Status flushed = MaybeFlushLocked();
  UpdateGaugesLocked();
  return flushed;
}

common::Result<std::string> LsmTree::Get(std::string_view key) const {
  common::MutexLock lock(mu_);
  if (m_.gets != nullptr) m_.gets->Add();
  size_t tiers = 0;
  const Memtable::Entry* mem_entry = mem_.Find(key);
  ++tiers;
  if (mem_entry != nullptr) {
    if (m_.read_tiers != nullptr) m_.read_tiers->Add(tiers);
    if (mem_entry->tombstone) {
      return common::Status::NotFound("no such key: " + std::string(key));
    }
    return mem_entry->value;
  }
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    ++tiers;
    if (!BloomPassLocked(**it, key)) continue;
    const SegmentReader::Entry* entry = (*it)->Find(key);
    if (entry == nullptr) continue;
    if (m_.read_tiers != nullptr) m_.read_tiers->Add(tiers);
    if (entry->tombstone) {
      return common::Status::NotFound("no such key: " + std::string(key));
    }
    return (*it)->ReadValue(*entry);
  }
  if (m_.read_tiers != nullptr) m_.read_tiers->Add(tiers);
  return common::Status::NotFound("no such key: " + std::string(key));
}

bool LsmTree::Contains(std::string_view key) const {
  common::MutexLock lock(mu_);
  size_t tiers = 0;
  return PresenceLocked(key, &tiers) == Presence::kLive;
}

common::Status LsmTree::ForEachSorted(
    const std::function<common::Status(const std::string&,
                                       const std::string&)>& fn) const {
  common::MutexLock lock(mu_);
  return ForEachMergedLocked(
      /*need_values=*/true,
      [&fn](const std::string& key, const std::string* value) {
        return fn(key, *value);
      });
}

void LsmTree::ForEachKey(
    const std::function<void(const std::string&)>& fn) const {
  common::MutexLock lock(mu_);
  // Key-only sweeps never read values, so they cannot fail.
  WF_CHECK_OK(ForEachMergedLocked(
      /*need_values=*/false,
      [&fn](const std::string& key, const std::string*) {
        fn(key);
        return common::Status::Ok();
      }));
}

size_t LsmTree::size() const {
  common::MutexLock lock(mu_);
  return live_count_;
}

common::Status LsmTree::Flush() {
  common::MutexLock lock(mu_);
  if (!segmented_) {
    return common::Status::FailedPrecondition(
        "ephemeral tree cannot flush (OpenSegments first)");
  }
  WF_RETURN_IF_ERROR(FlushLocked());
  common::Status compacted = MaybeCompactLocked();
  UpdateGaugesLocked();
  return compacted;
}

common::Status LsmTree::ClearEphemeral() {
  common::MutexLock lock(mu_);
  if (segmented_) {
    return common::Status::FailedPrecondition(
        "segment-mode tree cannot be cleared in memory");
  }
  mem_.Clear();
  live_count_ = 0;
  UpdateGaugesLocked();
  return common::Status::Ok();
}

uint64_t LsmTree::memtable_bytes() const {
  common::MutexLock lock(mu_);
  return mem_.approx_bytes();
}

size_t LsmTree::segment_count() const {
  common::MutexLock lock(mu_);
  return segments_.size();
}

uint64_t LsmTree::flushes() const {
  common::MutexLock lock(mu_);
  return flushes_;
}

uint64_t LsmTree::compactions() const {
  common::MutexLock lock(mu_);
  return compactions_;
}

// --- Locked internals -------------------------------------------------------

std::string LsmTree::SegmentPathLocked(uint64_t id) const {
  return dir_ + "/" + base_ +
         common::StrFormat("-%llu.wfseg", static_cast<unsigned long long>(id));
}

std::string LsmTree::ManifestPathLocked() const {
  return dir_ + "/" + base_ + ".manifest";
}

LsmTree::Presence LsmTree::PresenceLocked(std::string_view key,
                                          size_t* tiers_examined) const {
  *tiers_examined = 1;
  const Memtable::Entry* mem_entry = mem_.Find(key);
  if (mem_entry != nullptr) {
    return mem_entry->tombstone ? Presence::kTombstoned : Presence::kLive;
  }
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    ++*tiers_examined;
    if (!BloomPassLocked(**it, key)) continue;
    const SegmentReader::Entry* entry = (*it)->Find(key);
    if (entry == nullptr) continue;
    return entry->tombstone ? Presence::kTombstoned : Presence::kLive;
  }
  return Presence::kAbsent;
}

bool LsmTree::BloomPassLocked(const SegmentReader& segment,
                              std::string_view key) const {
  if (!segment.MayContain(key)) {
    if (m_.bloom_hits != nullptr) m_.bloom_hits->Add();
    return false;
  }
  if (m_.bloom_misses != nullptr) m_.bloom_misses->Add();
  return true;
}

common::Status LsmTree::MaybeFlushLocked() {
  if (!segmented_) return common::Status::Ok();
  if (mem_.approx_bytes() < options_.memtable_ceiling_bytes) {
    return common::Status::Ok();
  }
  WF_RETURN_IF_ERROR(FlushLocked());
  return MaybeCompactLocked();
}

common::Status LsmTree::FlushLocked() {
  if (mem_.empty()) return common::Status::Ok();
  obs::ScopedTimer timer(m_.flush_us);
  std::vector<SegmentRecord> records;
  records.reserve(mem_.entry_count());
  for (const auto& [key, entry] : mem_.entries()) {
    records.push_back({key, entry.value, entry.tombstone});
  }
  const uint64_t id = manifest_.next_segment_id;
  const std::string path = SegmentPathLocked(id);
  uint64_t bytes = 0;
  BloomFilter bloom;
  WF_RETURN_IF_ERROR(
      WriteSegmentFile(path, records, injector_, &bytes, &bloom));
  WF_ASSIGN_OR_RETURN(std::unique_ptr<SegmentReader> reader,
                      SegmentReader::Open(path));
  // The filter built at write time and the one rebuilt at open must agree,
  // or reads through the reopened reader could skip a live key.
  WF_CHECK(bloom == reader->bloom()) << "bloom mismatch after reopen";
  ManifestData next = manifest_;
  next.next_segment_id = id + 1;
  next.segments.push_back(SegmentMeta{id, records.size(), bytes});
  // The manifest swap is the commit point: fail here and the new segment
  // is an orphan the next open deletes, while the acked records stay in
  // the memtable (and in the WAL above us) — nothing is lost.
  WF_RETURN_IF_ERROR(SaveManifest(ManifestPathLocked(), next, injector_));
  manifest_ = std::move(next);
  segments_.push_back(std::move(reader));
  mem_.Clear();
  ++flushes_;
  if (m_.flushes != nullptr) m_.flushes->Add();
  return common::Status::Ok();
}

size_t LsmTree::TierOfLocked(uint64_t bytes) const {
  size_t tier = 0;
  double ceiling = static_cast<double>(kTierBaseBytes);
  while (static_cast<double>(bytes) > ceiling && tier < kMaxTier) {
    ceiling *= options_.size_tier_factor;
    ++tier;
  }
  return tier;
}

common::Status LsmTree::MaybeCompactLocked() {
  if (!segmented_ || options_.compaction_fanout < 2) {
    return common::Status::Ok();
  }
  // Keep merging while any age-contiguous run of >= fanout segments sits
  // in one size tier. Only adjacent-age segments may merge: the merged
  // run replaces them at the same position, so the manifest's oldest →
  // newest precedence survives compaction untouched.
  for (;;) {
    size_t begin = segments_.size();
    size_t end = begin;
    for (size_t i = 0; i < segments_.size();) {
      size_t tier = TierOfLocked(manifest_.segments[i].bytes);
      size_t j = i + 1;
      while (j < segments_.size() &&
             TierOfLocked(manifest_.segments[j].bytes) == tier) {
        ++j;
      }
      if (j - i >= options_.compaction_fanout) {
        begin = i;
        end = j;
        break;
      }
      i = j;
    }
    if (begin == end) return common::Status::Ok();
    WF_RETURN_IF_ERROR(CompactRunLocked(begin, end));
  }
}

common::Status LsmTree::CompactRunLocked(size_t begin, size_t end) {
  obs::ScopedTimer timer(m_.compaction_us);
  // K-way merge across the run, newest (highest index) winning each key.
  // Tombstones are dropped only when the run includes the oldest segment:
  // otherwise a yet-older segment may still hold the key, and dropping
  // the tombstone would resurrect it.
  const bool drop_tombstones = begin == 0;
  struct Cursor {
    const SegmentReader* reader;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    cursors.push_back(Cursor{segments_[i].get(), 0});
  }
  struct MergedRecord {
    std::string key;
    std::string value;
    bool tombstone;
  };
  std::vector<MergedRecord> merged;
  for (;;) {
    const std::string* min_key = nullptr;
    for (const Cursor& c : cursors) {
      if (c.pos >= c.reader->entries().size()) continue;
      const std::string& key = c.reader->entries()[c.pos].key;
      if (min_key == nullptr || key < *min_key) min_key = &key;
    }
    if (min_key == nullptr) break;
    const std::string key = *min_key;
    // Highest cursor index in the run = newest = winner.
    const SegmentReader* win_reader = nullptr;
    const SegmentReader::Entry* win_entry = nullptr;
    for (Cursor& c : cursors) {
      if (c.pos >= c.reader->entries().size()) continue;
      const SegmentReader::Entry& entry = c.reader->entries()[c.pos];
      if (entry.key != key) continue;
      win_reader = c.reader;
      win_entry = &entry;
      ++c.pos;
    }
    if (win_entry->tombstone) {
      if (!drop_tombstones) merged.push_back({key, std::string(), true});
      continue;
    }
    WF_ASSIGN_OR_RETURN(std::string value, win_reader->ReadValue(*win_entry));
    merged.push_back({key, std::move(value), false});
  }

  std::vector<SegmentRecord> records;
  records.reserve(merged.size());
  for (const MergedRecord& rec : merged) {
    records.push_back({rec.key, rec.value, rec.tombstone});
  }
  const uint64_t id = manifest_.next_segment_id;
  const std::string path = SegmentPathLocked(id);
  uint64_t bytes = 0;
  WF_RETURN_IF_ERROR(WriteSegmentFile(path, records, injector_, &bytes));
  WF_ASSIGN_OR_RETURN(std::unique_ptr<SegmentReader> reader,
                      SegmentReader::Open(path));

  ManifestData next;
  next.next_segment_id = id + 1;
  uint64_t rewritten = 0;
  for (size_t i = 0; i < begin; ++i) {
    next.segments.push_back(manifest_.segments[i]);
  }
  next.segments.push_back(SegmentMeta{id, records.size(), bytes});
  for (size_t i = end; i < segments_.size(); ++i) {
    next.segments.push_back(manifest_.segments[i]);
  }
  for (size_t i = begin; i < end; ++i) {
    rewritten += manifest_.segments[i].bytes;
  }
  // Commit point: the old segments may be deleted only once the new
  // manifest is durable. A crash before the swap leaves the old manifest
  // + old segments (merged file is an orphan); a crash after it leaves
  // the new manifest + stale files the next open garbage-collects.
  WF_RETURN_IF_ERROR(SaveManifest(ManifestPathLocked(), next, injector_));
  std::vector<std::string> stale;
  for (size_t i = begin; i < end; ++i) {
    stale.push_back(segments_[i]->path());
  }
  segments_.erase(segments_.begin() + static_cast<long>(begin),
                  segments_.begin() + static_cast<long>(end));
  segments_.insert(segments_.begin() + static_cast<long>(begin),
                   std::move(reader));
  manifest_ = std::move(next);
  std::error_code ec;
  for (const std::string& path_to_remove : stale) {
    std::filesystem::remove(path_to_remove, ec);
  }
  ++compactions_;
  if (m_.compactions != nullptr) m_.compactions->Add();
  if (m_.compaction_bytes_rewritten != nullptr) {
    m_.compaction_bytes_rewritten->Add(rewritten);
  }
  return common::Status::Ok();
}

common::Status LsmTree::ForEachMergedLocked(
    bool need_values,
    const std::function<common::Status(const std::string& key,
                                       const std::string* value)>& fn) const {
  // One cursor per tier; precedence is memtable first, then segments
  // newest → oldest. Every cursor holding the minimum key advances, and
  // the highest-precedence one supplies the record.
  auto mem_it = mem_.entries().begin();
  std::vector<size_t> seg_pos(segments_.size(), 0);
  for (;;) {
    const std::string* min_key = nullptr;
    if (mem_it != mem_.entries().end()) min_key = &mem_it->first;
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (seg_pos[i] >= segments_[i]->entries().size()) continue;
      const std::string& key = segments_[i]->entries()[seg_pos[i]].key;
      if (min_key == nullptr || key < *min_key) min_key = &key;
    }
    if (min_key == nullptr) return common::Status::Ok();
    const std::string key = *min_key;

    bool tombstone = false;
    bool from_mem = false;
    const SegmentReader* win_reader = nullptr;
    const SegmentReader::Entry* win_entry = nullptr;
    if (mem_it != mem_.entries().end() && mem_it->first == key) {
      from_mem = true;
      tombstone = mem_it->second.tombstone;
    }
    // Advance all matching segment cursors; remember the newest match.
    for (size_t i = 0; i < segments_.size(); ++i) {
      if (seg_pos[i] >= segments_[i]->entries().size()) continue;
      const SegmentReader::Entry& entry =
          segments_[i]->entries()[seg_pos[i]];
      if (entry.key != key) continue;
      if (!from_mem) {
        win_reader = segments_[i].get();
        win_entry = &entry;
      }
      ++seg_pos[i];
    }
    if (!from_mem && win_entry != nullptr) tombstone = win_entry->tombstone;

    if (!tombstone) {
      if (!need_values) {
        WF_RETURN_IF_ERROR(fn(key, nullptr));
      } else if (from_mem) {
        WF_RETURN_IF_ERROR(fn(key, &mem_it->second.value));
      } else {
        WF_ASSIGN_OR_RETURN(std::string value,
                            win_reader->ReadValue(*win_entry));
        WF_RETURN_IF_ERROR(fn(key, &value));
      }
    }
    if (from_mem) ++mem_it;
  }
}

size_t LsmTree::CountLiveLocked() const {
  size_t live = 0;
  WF_CHECK_OK(ForEachMergedLocked(
      /*need_values=*/false,
      [&live](const std::string&, const std::string*) {
        ++live;
        return common::Status::Ok();
      }));
  return live;
}

void LsmTree::UpdateGaugesLocked() const {
  if (metrics_ == nullptr) return;
  m_.memtable_bytes->Set(static_cast<int64_t>(mem_.approx_bytes()));
  m_.memtable_entries->Set(static_cast<int64_t>(mem_.entry_count()));
  m_.segments->Set(static_cast<int64_t>(segments_.size()));
  m_.live_keys->Set(static_cast<int64_t>(live_count_));
  // Per-tier gauges: set every occupied tier, zero the rest we ever
  // exported so a merged-away tier does not keep reporting stale counts.
  std::map<size_t, int64_t> counts;
  for (const SegmentMeta& meta : manifest_.segments) {
    ++counts[TierOfLocked(meta.bytes)];
  }
  for (const auto& [tier, count] : counts) {
    auto it = tier_gauges_.find(tier);
    if (it == tier_gauges_.end()) {
      obs::Gauge* gauge = metrics_->GetGauge(
          metric_prefix_ + common::StrFormat("/tier%zu/segments", tier));
      it = tier_gauges_.emplace(tier, gauge).first;
    }
    it->second->Set(count);
  }
  for (const auto& [tier, gauge] : tier_gauges_) {
    if (counts.find(tier) == counts.end()) gauge->Set(0);
  }
}

}  // namespace wf::store
