#ifndef WF_STORE_LSM_H_
#define WF_STORE_LSM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "store/manifest.h"
#include "store/memtable.h"
#include "store/segment.h"

namespace wf::common {
class StorageFaultInjector;
}  // namespace wf::common

namespace wf::store {

struct LsmOptions {
  // Approximate memtable size that triggers an automatic flush to a
  // segment. Only meaningful in segment mode; an ephemeral tree grows
  // unbounded (the pre-LSM behavior, kept for tests and ad-hoc tooling).
  uint64_t memtable_ceiling_bytes = 8ull << 20;
  // Minimum number of adjacent same-size-tier segments that compaction
  // merges into one.
  size_t compaction_fanout = 4;
  // Geometric growth factor between size tiers.
  double size_tier_factor = 4.0;
};

// An LSM-style key/value tree: one mutable memtable (delta tier) over a
// stack of immutable sorted segment files (frozen tiers). Reads merge the
// tiers newest-first; deletes are tombstones that shadow older segments
// until compaction proves no older record survives. All durable writes go
// through the envelope discipline (WriteSnapshotFile → WriteFileAtomic),
// and the manifest swap is the single commit point for flushes and
// compactions — a crash at any byte leaves either the old manifest (new
// segment is an orphan, deleted at next open) or the new one (fully
// consistent), never a half state.
//
// Without OpenSegments the tree is ephemeral: a plain sorted in-memory
// map, no files ever touched.
//
// Thread-safe; every operation takes the one internal mutex, so callbacks
// passed to ForEach* must not reenter the tree.
class LsmTree {
 public:
  LsmTree() = default;
  LsmTree(const LsmTree&) = delete;
  LsmTree& operator=(const LsmTree&) = delete;

  // Registers gauges/counters/histograms under `prefix` (e.g. "store").
  // Call before concurrent use; null detaches.
  void AttachMetrics(const obs::MetricsRegistry* metrics,
                     const std::string& prefix);

  // Switches to segment mode rooted at `dir`: loads the manifest and its
  // segment runs if present (Corruption when any file fails its
  // checksum), deletes orphaned segment files a crash may have left
  // behind, and enables ceiling-triggered flushes. The memtable must be
  // empty. `injector` may be null and must outlive the tree.
  common::Status OpenSegments(const std::string& dir, const std::string& base,
                              const LsmOptions& options,
                              common::StorageFaultInjector* injector);
  bool segmented() const;

  // Upsert. In segment mode a full memtable flushes before the write is
  // acknowledged, so the error surface includes flush failures.
  common::Status Put(std::string_view key, std::string_view value);
  // Insert-only: AlreadyExists when `key` is live.
  common::Status Insert(std::string_view key, std::string_view value);
  // Tombstones `key`; NotFound when it is not live.
  common::Status Delete(std::string_view key);
  // Read-modify-write of a live key under the tree lock. `fn` edits the
  // serialized value in place; returning non-Ok abandons the write.
  common::Status Update(std::string_view key,
                        const std::function<common::Status(std::string*)>& fn);

  // NotFound when absent or tombstoned; IOError on a failed segment read.
  common::Result<std::string> Get(std::string_view key) const;
  bool Contains(std::string_view key) const;

  // Merged sorted sweeps over live records. ForEachKey never touches
  // values (segment key indexes are in RAM, so this is cheap at any
  // store size); ForEachSorted streams values one at a time.
  common::Status ForEachSorted(
      const std::function<common::Status(const std::string& key,
                                         const std::string& value)>& fn) const;
  void ForEachKey(const std::function<void(const std::string&)>& fn) const;

  // Live key count (tombstoned keys excluded).
  size_t size() const;

  // Flushes the memtable to a new segment and runs compaction. A no-op
  // when the memtable is empty. FailedPrecondition in ephemeral mode.
  common::Status Flush();

  // Drops all in-memory state. Ephemeral mode only (segment mode would
  // silently diverge from disk).
  common::Status ClearEphemeral();

  uint64_t memtable_bytes() const;
  size_t segment_count() const;
  uint64_t flushes() const;
  uint64_t compactions() const;

 private:
  // Where a key currently resolves, merged across tiers.
  enum class Presence { kAbsent, kLive, kTombstoned };

  struct MetricSet {
    obs::Gauge* memtable_bytes = nullptr;
    obs::Gauge* memtable_entries = nullptr;
    obs::Gauge* segments = nullptr;
    obs::Gauge* live_keys = nullptr;
    obs::Counter* flushes = nullptr;
    obs::Counter* compactions = nullptr;
    obs::Counter* compaction_bytes_rewritten = nullptr;
    obs::Counter* gets = nullptr;
    obs::Counter* read_tiers = nullptr;
    // Bloom pre-checks on segment probes: hits = the filter ruled the
    // segment out (binary search skipped), misses = the probe fell
    // through to the key index (incl. ~0.8% false positives).
    obs::Counter* bloom_hits = nullptr;
    obs::Counter* bloom_misses = nullptr;
    obs::Histogram* flush_us = nullptr;
    obs::Histogram* compaction_us = nullptr;
  };

  std::string SegmentPathLocked(uint64_t id) const WF_REQUIRES(mu_);
  std::string ManifestPathLocked() const WF_REQUIRES(mu_);
  Presence PresenceLocked(std::string_view key,
                          size_t* tiers_examined) const WF_REQUIRES(mu_);
  // Consults `segment`'s Bloom filter and bumps the hit/miss counters;
  // false means the segment cannot contain `key` and Find() may be skipped.
  bool BloomPassLocked(const SegmentReader& segment,
                       std::string_view key) const WF_REQUIRES(mu_);
  common::Status MaybeFlushLocked() WF_REQUIRES(mu_);
  common::Status FlushLocked() WF_REQUIRES(mu_);
  common::Status MaybeCompactLocked() WF_REQUIRES(mu_);
  common::Status CompactRunLocked(size_t begin, size_t end) WF_REQUIRES(mu_);
  size_t TierOfLocked(uint64_t bytes) const WF_REQUIRES(mu_);
  common::Status ForEachMergedLocked(
      bool need_values,
      const std::function<common::Status(const std::string& key,
                                         const std::string* value)>& fn) const
      WF_REQUIRES(mu_);
  size_t CountLiveLocked() const WF_REQUIRES(mu_);
  void UpdateGaugesLocked() const WF_REQUIRES(mu_);

  // Configuration, set before concurrent use (AttachMetrics/OpenSegments).
  const obs::MetricsRegistry* metrics_ = nullptr;
  std::string metric_prefix_;
  MetricSet m_;
  std::string dir_;
  std::string base_;
  LsmOptions options_;
  common::StorageFaultInjector* injector_ = nullptr;

  mutable common::Mutex mu_;
  bool segmented_ WF_GUARDED_BY(mu_) = false;
  Memtable mem_ WF_GUARDED_BY(mu_);
  // Parallel to manifest_.segments, oldest → newest.
  std::vector<std::unique_ptr<SegmentReader>> segments_ WF_GUARDED_BY(mu_);
  ManifestData manifest_ WF_GUARDED_BY(mu_);
  size_t live_count_ WF_GUARDED_BY(mu_) = 0;
  uint64_t flushes_ WF_GUARDED_BY(mu_) = 0;
  uint64_t compactions_ WF_GUARDED_BY(mu_) = 0;
  // Size-tier gauges created on first use so only occupied tiers export.
  mutable std::map<size_t, obs::Gauge*> tier_gauges_ WF_GUARDED_BY(mu_);
};

}  // namespace wf::store

#endif  // WF_STORE_LSM_H_
