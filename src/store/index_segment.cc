#include "store/index_segment.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <set>

#include "common/durable_file.h"
#include "common/string_util.h"
#include "store/varint.h"

namespace wf::store {

namespace {

constexpr uint32_t kIndexSegmentVersion = 1;

common::Status CorruptIndexSegment(const std::string& path,
                                   const std::string& detail) {
  return common::Status::Corruption("index segment " + path + ": " + detail);
}

std::string EncodePostingBlock(const std::vector<TermPostings>& postings) {
  std::string block;
  PutVarint(postings.size(), &block);
  uint32_t prev_ord = 0;
  for (size_t i = 0; i < postings.size(); ++i) {
    const TermPostings& p = postings[i];
    PutVarint(i == 0 ? p.doc_ord : p.doc_ord - prev_ord, &block);
    prev_ord = p.doc_ord;
    PutVarint(p.positions.size(), &block);
    uint32_t prev_pos = 0;
    for (size_t j = 0; j < p.positions.size(); ++j) {
      PutVarint(j == 0 ? p.positions[j] : p.positions[j] - prev_pos, &block);
      prev_pos = p.positions[j];
    }
  }
  return block;
}

common::Result<std::vector<TermPostings>> DecodePostingBlock(
    std::string_view block, const std::string& path) {
  std::vector<TermPostings> postings;
  size_t pos = 0;
  uint64_t ndocs = 0;
  if (!GetVarint(block, &pos, &ndocs)) {
    return CorruptIndexSegment(path, "bad posting block doc count");
  }
  postings.reserve(ndocs);
  uint64_t ord = 0;
  for (uint64_t i = 0; i < ndocs; ++i) {
    uint64_t delta = 0;
    if (!GetVarint(block, &pos, &delta)) {
      return CorruptIndexSegment(path, "bad posting block ord delta");
    }
    ord = i == 0 ? delta : ord + delta;
    TermPostings p;
    p.doc_ord = static_cast<uint32_t>(ord);
    uint64_t npos = 0;
    if (!GetVarint(block, &pos, &npos)) {
      return CorruptIndexSegment(path, "bad posting block position count");
    }
    p.positions.reserve(npos);
    uint64_t position = 0;
    for (uint64_t j = 0; j < npos; ++j) {
      uint64_t pdelta = 0;
      if (!GetVarint(block, &pos, &pdelta)) {
        return CorruptIndexSegment(path, "bad posting block position delta");
      }
      position = j == 0 ? pdelta : position + pdelta;
      p.positions.push_back(static_cast<uint32_t>(position));
    }
    postings.push_back(std::move(p));
  }
  if (pos != block.size()) {
    return CorruptIndexSegment(path, "trailing bytes in posting block");
  }
  return postings;
}

}  // namespace

std::string EscapeIndexToken(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '%':
        out += "%25";
        break;
      case ' ':
        out += "%20";
        break;
      case '\n':
        out += "%0A";
        break;
      case '\r':
        out += "%0D";
        break;
      case '\t':
        out += "%09";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeIndexToken(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%' && i + 2 < escaped.size()) {
      const std::string hex(escaped.substr(i + 1, 2));
      char* end = nullptr;
      long value = std::strtol(hex.c_str(), &end, 16);
      if (end != nullptr && *end == '\0') {
        out.push_back(static_cast<char>(value));
        i += 2;
        continue;
      }
    }
    out.push_back(escaped[i]);
  }
  return out;
}

common::Status WriteIndexSegmentFile(const std::string& path,
                                     const IndexSegmentData& data,
                                     common::StorageFaultInjector* injector,
                                     uint64_t* bytes_out) {
  size_t field_lines = 0;
  for (const auto& [field, entries] : data.fields) {
    field_lines += entries.size();
  }
  std::string payload =
      common::StrFormat("wfpost 1 %zu %zu %zu\n", data.docs.size(),
                        data.terms.size(), field_lines);
  std::string_view prev_doc;
  for (size_t i = 0; i < data.docs.size(); ++i) {
    const IndexDocEntry& doc = data.docs[i];
    if (i > 0 && !(prev_doc < doc.id)) {
      return common::Status::InvalidArgument(
          "index segment docs not strictly sorted at '" + doc.id + "'");
    }
    prev_doc = doc.id;
    payload += common::StrFormat("d %d %s\n", doc.full ? 1 : 0,
                                 EscapeIndexToken(doc.id).c_str());
  }
  for (const auto& [term, postings] : data.terms) {
    const std::string block = EncodePostingBlock(postings);
    payload += common::StrFormat("t %s %zu\n",
                                 EscapeIndexToken(term).c_str(), block.size());
    payload += block;
    payload.push_back('\n');
  }
  for (const auto& [field, entries] : data.fields) {
    for (const FieldValueEntry& entry : entries) {
      payload += common::StrFormat("f %s %.17g %u\n",
                                   EscapeIndexToken(field).c_str(),
                                   entry.value, entry.doc_ord);
    }
  }
  WF_RETURN_IF_ERROR(common::WriteSnapshotFile(path,
                                               common::kSnapKindIndexSegment,
                                               kIndexSegmentVersion, payload,
                                               injector));
  if (bytes_out != nullptr) {
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    *bytes_out = ec ? payload.size() : size;
  }
  return common::Status::Ok();
}

common::Result<std::unique_ptr<IndexSegmentReader>> IndexSegmentReader::Open(
    const std::string& path) {
  WF_ASSIGN_OR_RETURN(std::string payload, common::ReadSnapshotFile(
                                               path,
                                               common::kSnapKindIndexSegment,
                                               kIndexSegmentVersion));
  std::error_code ec;
  uint64_t file_bytes = std::filesystem::file_size(path, ec);
  if (ec) {
    return common::Status::IOError("cannot stat index segment: " + path);
  }
  const uint64_t payload_base = file_bytes - payload.size();

  auto reader = std::make_unique<IndexSegmentReader>();
  reader->path_ = path;
  reader->file_bytes_ = file_bytes;

  size_t pos = payload.find('\n');
  if (pos == std::string::npos) {
    return CorruptIndexSegment(path, "missing header line");
  }
  std::vector<std::string> head = common::Split(payload.substr(0, pos), " ");
  if (head.size() != 5 || head[0] != "wfpost" || head[1] != "1") {
    return CorruptIndexSegment(path, "bad header");
  }
  char* end = nullptr;
  unsigned long long ndocs = std::strtoull(head[2].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return CorruptIndexSegment(path, "bad doc count");
  }
  unsigned long long nterms = std::strtoull(head[3].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return CorruptIndexSegment(path, "bad term count");
  }
  unsigned long long nfields = std::strtoull(head[4].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return CorruptIndexSegment(path, "bad field count");
  }
  ++pos;

  reader->docs_.reserve(ndocs);
  std::string prev_doc;
  for (unsigned long long i = 0; i < ndocs; ++i) {
    size_t eol = payload.find('\n', pos);
    if (eol == std::string::npos) {
      return CorruptIndexSegment(path, "truncated doc line");
    }
    std::vector<std::string> parts =
        common::Split(payload.substr(pos, eol - pos), " ");
    if (parts.size() != 3 || parts[0] != "d") {
      return CorruptIndexSegment(path, "bad doc line");
    }
    IndexDocEntry doc;
    doc.full = parts[1] == "1";
    doc.id = UnescapeIndexToken(parts[2]);
    if (i > 0 && !(prev_doc < doc.id)) {
      return CorruptIndexSegment(path, "docs out of order");
    }
    prev_doc = doc.id;
    reader->docs_.push_back(std::move(doc));
    pos = eol + 1;
  }

  reader->terms_.reserve(nterms);
  std::string prev_term;
  for (unsigned long long i = 0; i < nterms; ++i) {
    size_t eol = payload.find('\n', pos);
    if (eol == std::string::npos) {
      return CorruptIndexSegment(path, "truncated term line");
    }
    std::vector<std::string> parts =
        common::Split(payload.substr(pos, eol - pos), " ");
    if (parts.size() != 3 || parts[0] != "t") {
      return CorruptIndexSegment(path, "bad term line");
    }
    TermEntry entry;
    entry.term = UnescapeIndexToken(parts[1]);
    unsigned long long block_len = std::strtoull(parts[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return CorruptIndexSegment(path, "bad term block length");
    }
    pos = eol + 1;
    if (pos + block_len + 1 > payload.size()) {
      return CorruptIndexSegment(path, "truncated term block");
    }
    entry.block_offset = payload_base + pos;
    entry.block_len = static_cast<uint32_t>(block_len);
    if (i > 0 && !(prev_term < entry.term)) {
      return CorruptIndexSegment(path, "terms out of order");
    }
    prev_term = entry.term;
    pos += block_len;
    if (payload[pos] != '\n') {
      return CorruptIndexSegment(path, "missing term block terminator");
    }
    ++pos;
    reader->terms_.push_back(std::move(entry));
  }

  for (unsigned long long i = 0; i < nfields; ++i) {
    size_t eol = payload.find('\n', pos);
    if (eol == std::string::npos) {
      return CorruptIndexSegment(path, "truncated field line");
    }
    std::vector<std::string> parts =
        common::Split(payload.substr(pos, eol - pos), " ");
    if (parts.size() != 4 || parts[0] != "f") {
      return CorruptIndexSegment(path, "bad field line");
    }
    FieldValueEntry entry;
    entry.value = std::strtod(parts[2].c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return CorruptIndexSegment(path, "bad field value");
    }
    unsigned long long ord = std::strtoull(parts[3].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || ord >= reader->docs_.size()) {
      return CorruptIndexSegment(path, "bad field doc ordinal");
    }
    entry.doc_ord = static_cast<uint32_t>(ord);
    reader->fields_[UnescapeIndexToken(parts[1])].push_back(entry);
    pos = eol + 1;
  }
  if (pos != payload.size()) {
    return CorruptIndexSegment(path, "trailing bytes after last field");
  }
  return reader;
}

int IndexSegmentReader::FindDoc(std::string_view id) const {
  auto it = std::lower_bound(
      docs_.begin(), docs_.end(), id,
      [](const IndexDocEntry& d, std::string_view key) { return d.id < key; });
  if (it == docs_.end() || it->id != id) return -1;
  return static_cast<int>(it - docs_.begin());
}

const IndexSegmentReader::TermEntry* IndexSegmentReader::FindTerm(
    std::string_view term) const {
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), term,
      [](const TermEntry& e, std::string_view key) { return e.term < key; });
  if (it == terms_.end() || it->term != term) return nullptr;
  return &*it;
}

common::Result<std::vector<TermPostings>> IndexSegmentReader::Postings(
    const TermEntry& entry) const {
  if (!in_.is_open()) {
    in_.open(path_, std::ios::binary);
    if (!in_) {
      return common::Status::IOError("cannot open index segment: " + path_);
    }
  }
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(entry.block_offset));
  std::string block(entry.block_len, '\0');
  in_.read(block.data(), static_cast<std::streamsize>(entry.block_len));
  if (!in_) {
    return common::Status::IOError("short read from index segment: " + path_);
  }
  return DecodePostingBlock(block, path_);
}

common::Result<IndexSegmentData> LoadIndexSegmentData(
    const IndexSegmentReader& reader) {
  IndexSegmentData data;
  data.docs = reader.docs();
  for (const IndexSegmentReader::TermEntry& entry : reader.terms()) {
    WF_ASSIGN_OR_RETURN(std::vector<TermPostings> postings,
                        reader.Postings(entry));
    data.terms[entry.term] = std::move(postings);
  }
  data.fields = reader.fields();
  return data;
}

IndexSegmentData MergeIndexSegments(
    const std::vector<IndexSegmentData>& tiers) {
  // seal[doc] = index of the newest tier holding a full version: tiers
  // older than the seal are shadowed for that doc; -1 = no full version,
  // every tier holding the doc contributes.
  std::map<std::string, int> seal;
  std::map<std::string, bool> merged_full;
  for (int t = static_cast<int>(tiers.size()) - 1; t >= 0; --t) {
    for (const IndexDocEntry& doc : tiers[static_cast<size_t>(t)].docs) {
      auto it = seal.find(doc.id);
      if (it == seal.end()) {
        seal[doc.id] = doc.full ? t : -1;
        merged_full[doc.id] = doc.full;
      } else if (it->second == -1 && doc.full) {
        it->second = t;
        merged_full[doc.id] = true;
      }
    }
  }

  auto contributes = [&seal](int t, const std::string& doc) {
    auto it = seal.find(doc);
    return it != seal.end() && (it->second == -1 || t >= it->second);
  };

  IndexSegmentData merged;
  merged.docs.reserve(seal.size());
  std::map<std::string, uint32_t> ord_of;
  for (const auto& [id, full] : merged_full) {
    ord_of[id] = static_cast<uint32_t>(merged.docs.size());
    merged.docs.push_back(IndexDocEntry{id, full});
  }

  // term -> doc -> merged position set (map keys keep everything sorted,
  // so rebuilt postings come out in canonical ordinal order).
  std::map<std::string, std::map<std::string, std::set<uint32_t>>> acc;
  for (size_t t = 0; t < tiers.size(); ++t) {
    const IndexSegmentData& tier = tiers[t];
    for (const auto& [term, postings] : tier.terms) {
      for (const TermPostings& p : postings) {
        const std::string& doc = tier.docs[p.doc_ord].id;
        if (!contributes(static_cast<int>(t), doc)) continue;
        std::set<uint32_t>& positions = acc[term][doc];
        positions.insert(p.positions.begin(), p.positions.end());
      }
    }
  }
  for (const auto& [term, by_doc] : acc) {
    std::vector<TermPostings>& postings = merged.terms[term];
    postings.reserve(by_doc.size());
    for (const auto& [doc, positions] : by_doc) {
      TermPostings p;
      p.doc_ord = ord_of[doc];
      p.positions.assign(positions.begin(), positions.end());
      postings.push_back(std::move(p));
    }
  }

  // field -> set of (doc id, value): dedupes repeats across partial tiers
  // and orders entries canonically by (doc, value).
  std::map<std::string, std::set<std::pair<std::string, double>>> facc;
  for (size_t t = 0; t < tiers.size(); ++t) {
    const IndexSegmentData& tier = tiers[t];
    for (const auto& [field, entries] : tier.fields) {
      for (const FieldValueEntry& entry : entries) {
        const std::string& doc = tier.docs[entry.doc_ord].id;
        if (!contributes(static_cast<int>(t), doc)) continue;
        facc[field].insert({doc, entry.value});
      }
    }
  }
  for (const auto& [field, entries] : facc) {
    std::vector<FieldValueEntry>& out = merged.fields[field];
    out.reserve(entries.size());
    for (const auto& [doc, value] : entries) {
      out.push_back(FieldValueEntry{value, ord_of[doc]});
    }
  }
  return merged;
}

}  // namespace wf::store
