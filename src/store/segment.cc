#include "store/segment.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "common/durable_file.h"
#include "common/string_util.h"

namespace wf::store {

namespace {

constexpr uint32_t kSegmentVersion = 1;

common::Status CorruptSegment(const std::string& path,
                              const std::string& detail) {
  return common::Status::Corruption("segment " + path + ": " + detail);
}

}  // namespace

common::Status WriteSegmentFile(const std::string& path,
                                const std::vector<SegmentRecord>& records,
                                common::StorageFaultInjector* injector,
                                uint64_t* bytes_out,
                                BloomFilter* bloom_out) {
  std::string payload =
      common::StrFormat("wfseg 1 %zu\n", records.size());
  // Built alongside the payload so the flush path gets its filter for free
  // (the reopened reader rebuilds a bit-identical one from the key index).
  BloomFilter bloom(records.size());
  std::string_view prev;
  for (size_t i = 0; i < records.size(); ++i) {
    const SegmentRecord& rec = records[i];
    if (i > 0 && !(prev < rec.key)) {
      return common::Status::InvalidArgument(
          "segment records not strictly sorted at key '" +
          std::string(rec.key) + "'");
    }
    prev = rec.key;
    bloom.Add(rec.key);
    payload += common::StrFormat("r %zu %zu %d\n", rec.key.size(),
                                 rec.value.size(), rec.tombstone ? 1 : 0);
    payload.append(rec.key.data(), rec.key.size());
    payload.append(rec.value.data(), rec.value.size());
    payload.push_back('\n');
  }
  WF_RETURN_IF_ERROR(common::WriteSnapshotFile(
      path, common::kSnapKindSegment, kSegmentVersion, payload, injector));
  if (bytes_out != nullptr) {
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    *bytes_out = ec ? payload.size() : size;
  }
  if (bloom_out != nullptr) *bloom_out = std::move(bloom);
  return common::Status::Ok();
}

common::Result<std::unique_ptr<SegmentReader>> SegmentReader::Open(
    const std::string& path) {
  WF_ASSIGN_OR_RETURN(
      std::string payload,
      common::ReadSnapshotFile(path, common::kSnapKindSegment,
                               kSegmentVersion));
  std::error_code ec;
  uint64_t file_bytes = std::filesystem::file_size(path, ec);
  if (ec) return common::Status::IOError("cannot stat segment: " + path);
  // Envelope header + payload is the whole file, so the payload starts at
  // file_bytes - payload_bytes; every in-payload offset shifts by that.
  const uint64_t payload_base = file_bytes - payload.size();

  auto reader = std::make_unique<SegmentReader>();
  reader->path_ = path;
  reader->file_bytes_ = file_bytes;

  size_t pos = payload.find('\n');
  if (pos == std::string::npos) {
    return CorruptSegment(path, "missing header line");
  }
  std::vector<std::string> head = common::Split(payload.substr(0, pos), " ");
  if (head.size() != 3 || head[0] != "wfseg" || head[1] != "1") {
    return CorruptSegment(path, "bad header");
  }
  char* end = nullptr;
  unsigned long long count = std::strtoull(head[2].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return CorruptSegment(path, "bad record count");
  }
  ++pos;  // past the header newline

  reader->entries_.reserve(count);
  std::string prev_key;
  for (unsigned long long i = 0; i < count; ++i) {
    size_t eol = payload.find('\n', pos);
    if (eol == std::string::npos) {
      return CorruptSegment(path, "truncated record header");
    }
    std::vector<std::string> parts =
        common::Split(payload.substr(pos, eol - pos), " ");
    if (parts.size() != 4 || parts[0] != "r") {
      return CorruptSegment(path, "bad record header");
    }
    unsigned long long keylen = std::strtoull(parts[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return CorruptSegment(path, "bad key length");
    }
    unsigned long long vallen = std::strtoull(parts[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return CorruptSegment(path, "bad value length");
    }
    bool tombstone = parts[3] == "1";
    pos = eol + 1;
    if (pos + keylen + vallen + 1 > payload.size()) {
      return CorruptSegment(path, "truncated record body");
    }
    Entry entry;
    entry.key = payload.substr(pos, keylen);
    entry.value_offset = payload_base + pos + keylen;
    entry.value_len = static_cast<uint32_t>(vallen);
    entry.tombstone = tombstone;
    if (i > 0 && !(prev_key < entry.key)) {
      return CorruptSegment(path, "records out of order");
    }
    prev_key = entry.key;
    pos += keylen + vallen;
    if (payload[pos] != '\n') {
      return CorruptSegment(path, "missing record terminator");
    }
    ++pos;
    reader->entries_.push_back(std::move(entry));
  }
  if (pos != payload.size()) {
    return CorruptSegment(path, "trailing bytes after last record");
  }
  reader->bloom_ = BloomFilter(reader->entries_.size());
  for (const Entry& e : reader->entries_) reader->bloom_.Add(e.key);
  return reader;
}

const SegmentReader::Entry* SegmentReader::Find(std::string_view key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return nullptr;
  return &*it;
}

common::Result<std::string> SegmentReader::ReadValue(
    const Entry& entry) const {
  if (entry.value_len == 0) return std::string();
  if (!in_.is_open()) {
    in_.open(path_, std::ios::binary);
    if (!in_) {
      return common::Status::IOError("cannot open segment: " + path_);
    }
  }
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(entry.value_offset));
  std::string value(entry.value_len, '\0');
  in_.read(value.data(), static_cast<std::streamsize>(entry.value_len));
  if (!in_) {
    return common::Status::IOError("short read from segment: " + path_);
  }
  return value;
}

}  // namespace wf::store
