#include "store/manifest.h"

#include <cstdlib>

#include "common/durable_file.h"
#include "common/string_util.h"

namespace wf::store {

namespace {

constexpr uint32_t kManifestVersion = 1;

common::Status CorruptManifest(const std::string& path,
                               const std::string& detail) {
  return common::Status::Corruption("manifest " + path + ": " + detail);
}

}  // namespace

common::Status SaveManifest(const std::string& path, const ManifestData& data,
                            common::StorageFaultInjector* injector) {
  std::string payload = common::StrFormat(
      "wfman 1\nnext %llu\n",
      static_cast<unsigned long long>(data.next_segment_id));
  for (const SegmentMeta& seg : data.segments) {
    payload += common::StrFormat(
        "seg %llu %llu %llu\n", static_cast<unsigned long long>(seg.id),
        static_cast<unsigned long long>(seg.records),
        static_cast<unsigned long long>(seg.bytes));
  }
  return common::WriteSnapshotFile(path, common::kSnapKindManifest,
                                   kManifestVersion, payload, injector);
}

common::Result<ManifestData> LoadManifest(const std::string& path) {
  WF_ASSIGN_OR_RETURN(std::string payload, common::ReadSnapshotFile(
                                               path, common::kSnapKindManifest,
                                               kManifestVersion));
  std::vector<std::string> lines = common::Split(payload, "\n");
  if (lines.size() < 2 || lines[0] != "wfman 1") {
    return CorruptManifest(path, "bad header");
  }
  ManifestData data;
  char* end = nullptr;
  {
    std::vector<std::string> parts = common::Split(lines[1], " ");
    if (parts.size() != 2 || parts[0] != "next") {
      return CorruptManifest(path, "bad next-id line");
    }
    data.next_segment_id = std::strtoull(parts[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return CorruptManifest(path, "bad next id");
    }
  }
  for (size_t i = 2; i < lines.size(); ++i) {
    std::vector<std::string> parts = common::Split(lines[i], " ");
    if (parts.size() != 4 || parts[0] != "seg") {
      return CorruptManifest(path, "bad segment line");
    }
    SegmentMeta meta;
    meta.id = std::strtoull(parts[1].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return CorruptManifest(path, "bad segment id");
    }
    meta.records = std::strtoull(parts[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return CorruptManifest(path, "bad segment record count");
    }
    meta.bytes = std::strtoull(parts[3].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return CorruptManifest(path, "bad segment byte count");
    }
    if (meta.id >= data.next_segment_id) {
      return CorruptManifest(path, "segment id not below next id");
    }
    data.segments.push_back(meta);
  }
  return data;
}

}  // namespace wf::store
