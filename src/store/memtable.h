#ifndef WF_STORE_MEMTABLE_H_
#define WF_STORE_MEMTABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace wf::store {

// The mutable delta tier of the LSM tree: a sorted map from key to the
// newest value (or a tombstone marking deletion). Not thread-safe — the
// owning LsmTree serializes access under its own mutex. Byte accounting is
// approximate (key + value payload plus a fixed per-entry overhead) and
// only drives the flush ceiling, not any durability decision.
class Memtable {
 public:
  struct Entry {
    std::string value;
    bool tombstone = false;
  };

  // Upserts `key`. A tombstoned key written again comes back to life.
  void Set(std::string_view key, std::string_view value) {
    auto [it, inserted] = entries_.try_emplace(std::string(key));
    if (!inserted) {
      approx_bytes_ -= it->second.value.size();
    } else {
      approx_bytes_ += key.size() + kEntryOverhead;
    }
    it->second.value.assign(value.data(), value.size());
    it->second.tombstone = false;
    approx_bytes_ += value.size();
  }

  // Records a deletion. The tombstone must survive until compaction can
  // prove no older segment still holds the key, so it occupies an entry.
  void Remove(std::string_view key) {
    auto [it, inserted] = entries_.try_emplace(std::string(key));
    if (!inserted) {
      approx_bytes_ -= it->second.value.size();
    } else {
      approx_bytes_ += key.size() + kEntryOverhead;
    }
    it->second.value.clear();
    it->second.tombstone = true;
  }

  // Null when the key has no memtable entry at all; a returned entry may
  // still be a tombstone (the caller must treat that as "deleted here",
  // shadowing any older segment).
  const Entry* Find(std::string_view key) const {
    auto it = entries_.find(std::string(key));
    return it == entries_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, Entry>& entries() const { return entries_; }
  size_t entry_count() const { return entries_.size(); }
  uint64_t approx_bytes() const { return approx_bytes_; }
  bool empty() const { return entries_.empty(); }

  void Clear() {
    entries_.clear();
    approx_bytes_ = 0;
  }

 private:
  static constexpr uint64_t kEntryOverhead = 64;

  std::map<std::string, Entry> entries_;
  uint64_t approx_bytes_ = 0;
};

}  // namespace wf::store

#endif  // WF_STORE_MEMTABLE_H_
