#include "feature/likelihood_ratio.h"

#include <cmath>

namespace wf::feature {
namespace {

// x * log(p) with the 0 * log(0) = 0 convention.
double XLogP(double x, double p) {
  if (x == 0.0) return 0.0;
  return x * std::log(p);
}

}  // namespace

double LogLikelihoodRatio(const ContingencyCounts& counts) {
  const double c11 = static_cast<double>(counts.c11);
  const double c12 = static_cast<double>(counts.c12);
  const double c21 = static_cast<double>(counts.c21);
  const double c22 = static_cast<double>(counts.c22);

  const double n1 = c11 + c12;  // docs containing the term
  const double n2 = c21 + c22;  // docs not containing the term
  if (n1 == 0.0 || n2 == 0.0) return 0.0;

  const double r1 = c11 / n1;
  const double r2 = c21 / n2;
  // One-sided zero: the term must be over-represented among D+ documents
  // relative to its absence (Eq. 1: 0 if r2 >= r1).
  if (r2 >= r1) return 0.0;

  const double r = (c11 + c21) / (n1 + n2);

  // log(lambda) = L(r) - L(r1, r2); -2 log(lambda) >= 0.
  double log_lambda = XLogP(c11 + c21, r) + XLogP(c12 + c22, 1.0 - r) -
                      XLogP(c11, r1) - XLogP(c12, 1.0 - r1) -
                      XLogP(c21, r2) - XLogP(c22, 1.0 - r2);
  double stat = -2.0 * log_lambda;
  return stat < 0.0 ? 0.0 : stat;
}

}  // namespace wf::feature
