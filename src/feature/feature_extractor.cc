#include "feature/feature_extractor.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/inflection.h"

namespace wf::feature {
namespace {

using ::wf::common::ToLower;

// Collects the distinct normalized word n-grams (n = 1..3) of a document —
// the space candidate phrases live in. The last word is singularized so
// "the batteries" and "the battery" share counts.
std::unordered_set<std::string> DocumentNgrams(
    const text::TokenStream& tokens) {
  std::unordered_set<std::string> out;
  std::vector<std::string> words;
  words.reserve(tokens.size());
  for (const text::Token& t : tokens) {
    if (t.kind == text::TokenKind::kWord) {
      words.push_back(ToLower(t.text));
    } else {
      words.push_back("");  // n-grams never cross non-word tokens
    }
  }
  for (size_t i = 0; i < words.size(); ++i) {
    if (words[i].empty()) continue;
    std::string gram;
    for (size_t n = 0; n < 3 && i + n < words.size(); ++n) {
      if (words[i + n].empty()) break;
      std::string head = text::SingularizeNoun(words[i + n]);
      std::string full = gram.empty() ? head : gram + " " + head;
      out.insert(full);
      if (!gram.empty()) gram += " ";
      gram += words[i + n];
    }
  }
  return out;
}

}  // namespace

FeatureExtractor::FeatureExtractor(const Options& options)
    : options_(options) {}

void FeatureExtractor::AddDocument(const std::string& body, bool on_topic) {
  text::TokenStream tokens = tokenizer_.Tokenize(body);

  // Document frequencies over the n-gram space.
  std::unordered_set<std::string> grams = DocumentNgrams(tokens);
  auto& df = on_topic ? df_on_ : df_off_;
  for (const std::string& g : grams) ++df[g];
  if (on_topic) {
    ++on_docs_;
  } else {
    ++off_docs_;
  }

  // Candidates come from D+ only.
  if (!on_topic) return;
  std::vector<text::SentenceSpan> spans = splitter_.Split(tokens);
  for (const text::SentenceSpan& span : spans) {
    std::vector<pos::PosTag> tags = tagger_.TagSentence(tokens, span);
    for (const BbnpExtractor::Candidate& c : bbnp_.ExtractWithHeuristic(
             tokens, span, tags, options_.heuristic)) {
      candidates_.insert(c.phrase);
    }
  }
}

std::vector<FeatureTerm> FeatureExtractor::Extract() const {
  std::vector<FeatureTerm> out;
  const uint64_t n_on = on_docs_;
  const uint64_t n_off = off_docs_;
  for (const std::string& phrase : candidates_) {
    auto it_on = df_on_.find(phrase);
    uint64_t c11 = it_on == df_on_.end() ? 0 : it_on->second;
    auto it_off = df_off_.find(phrase);
    uint64_t c12 = it_off == df_off_.end() ? 0 : it_off->second;
    if (c11 < options_.min_df) continue;

    ContingencyCounts counts;
    counts.c11 = c11;
    counts.c12 = c12;
    counts.c21 = n_on - c11;
    counts.c22 = n_off - c12;
    double score = SelectionScore(options_.selection, counts);
    double threshold =
        options_.selection == SelectionMethod::kMutualInformation
            ? 1e-9  // MI has no chi-square scale; rely on top_n/min_df
            : options_.min_score;
    if (score < threshold) continue;
    out.push_back(FeatureTerm{phrase, score, c11, c12});
  }
  std::sort(out.begin(), out.end(), [](const FeatureTerm& a,
                                       const FeatureTerm& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.phrase < b.phrase;  // deterministic tie-break
  });
  if (options_.top_n > 0 && out.size() > options_.top_n) {
    out.resize(options_.top_n);
  }
  return out;
}

}  // namespace wf::feature
