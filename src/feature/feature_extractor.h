#ifndef WF_FEATURE_FEATURE_EXTRACTOR_H_
#define WF_FEATURE_FEATURE_EXTRACTOR_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "feature/bbnp.h"
#include "feature/likelihood_ratio.h"
#include "feature/selection.h"
#include "pos/tagger.h"
#include "text/sentence_splitter.h"
#include "text/tokenizer.h"

namespace wf::feature {

// A ranked feature term.
struct FeatureTerm {
  std::string phrase;
  double score = 0.0;         // -2 log(lambda)
  uint64_t df_on_topic = 0;   // C11
  uint64_t df_off_topic = 0;  // C12
};

// The feature-term extraction pipeline of §4.1 (the "bBNP-L" combination):
// run the bBNP heuristic over a topic-focused collection D+ to get
// candidates, count candidate document frequencies in D+ and an off-topic
// collection D-, score by Dunning's likelihood ratio, and keep candidates
// above the confidence threshold (or the top N).
class FeatureExtractor {
 public:
  struct Options {
    // chi^2(1 dof) critical value; 10.83 = 99.9% confidence. Ignored by
    // kMutualInformation, whose scale differs — use top_n there.
    double min_score = 10.83;
    // When > 0, keep at most this many terms (after thresholding).
    size_t top_n = 0;
    // A candidate must appear in at least this many D+ documents.
    uint64_t min_df = 2;
    // Candidate heuristic and ranking statistic; the defaults are the
    // paper's winning "bBNP-L" combination.
    CandidateHeuristic heuristic = CandidateHeuristic::kBBNP;
    SelectionMethod selection = SelectionMethod::kLikelihoodRatio;
  };

  FeatureExtractor() : FeatureExtractor(Options{}) {}
  explicit FeatureExtractor(const Options& options);

  // Feeds one document into the on-topic (D+) or off-topic (D-) side.
  // Candidates are mined from D+ only; D- contributes frequencies.
  void AddDocument(const std::string& body, bool on_topic);

  // Ranks accumulated candidates, best first.
  std::vector<FeatureTerm> Extract() const;

  size_t on_topic_docs() const { return on_docs_; }
  size_t off_topic_docs() const { return off_docs_; }

 private:
  Options options_;
  text::Tokenizer tokenizer_;
  text::SentenceSplitter splitter_;
  pos::PosTagger tagger_;
  BbnpExtractor bbnp_;

  std::unordered_map<std::string, uint64_t> df_on_;   // candidate -> C11
  std::unordered_map<std::string, uint64_t> df_off_;  // candidate -> C12
  std::unordered_set<std::string> candidates_;        // mined from D+
  size_t on_docs_ = 0;
  size_t off_docs_ = 0;
};

}  // namespace wf::feature

#endif  // WF_FEATURE_FEATURE_EXTRACTOR_H_
