#ifndef WF_FEATURE_LIKELIHOOD_RATIO_H_
#define WF_FEATURE_LIKELIHOOD_RATIO_H_

#include <cstdint>

namespace wf::feature {

// Document counts for one candidate term (Table 1 of the paper):
//   c11 = docs containing the term in D+ (on-topic collection)
//   c12 = docs containing the term in D- (off-topic collection)
//   c21 = docs NOT containing the term in D+
//   c22 = docs NOT containing the term in D-
struct ContingencyCounts {
  uint64_t c11 = 0;
  uint64_t c12 = 0;
  uint64_t c21 = 0;
  uint64_t c22 = 0;
};

// Dunning's log-likelihood ratio statistic, -2 log(lambda), for the
// hypothesis that the term is independent of the collection split. Per the
// paper (Eq. 1) the score is zeroed when r2 >= r1, i.e. when the term is
// *not* positively associated with D+; otherwise the statistic is
// asymptotically chi-squared with 1 dof — larger means more topical.
double LogLikelihoodRatio(const ContingencyCounts& counts);

}  // namespace wf::feature

#endif  // WF_FEATURE_LIKELIHOOD_RATIO_H_
