#ifndef WF_FEATURE_SELECTION_H_
#define WF_FEATURE_SELECTION_H_

#include <cstdint>
#include <string_view>

#include "feature/likelihood_ratio.h"

namespace wf::feature {

// Feature-term selection statistics compared in §4.1's companion work
// (Yi et al. 2003): the likelihood-ratio test plus two classic
// alternatives. All are one-sided like the paper's Eq. 1 — a candidate
// under-represented in D+ scores 0.
enum class SelectionMethod : uint8_t {
  kLikelihoodRatio,      // Dunning -2 log(lambda) — the paper's choice
  kMutualInformation,    // pointwise MI of (term, D+)
  kChiSquare,            // Pearson chi-square on the 2x2 table
};

std::string_view SelectionMethodName(SelectionMethod m);

// Pointwise mutual information log( P(t,D+) / (P(t)P(D+)) ); 0 when the
// association is non-positive or degenerate.
double MutualInformation(const ContingencyCounts& counts);

// Pearson chi-square statistic for the 2x2 table; 0 when the term is not
// positively associated with D+.
double ChiSquare(const ContingencyCounts& counts);

// Dispatch over the three statistics.
double SelectionScore(SelectionMethod method,
                      const ContingencyCounts& counts);

}  // namespace wf::feature

#endif  // WF_FEATURE_SELECTION_H_
