#ifndef WF_FEATURE_BBNP_H_
#define WF_FEATURE_BBNP_H_

#include <string>
#include <vector>

#include "pos/tagset.h"
#include "text/token.h"

namespace wf::feature {

// Candidate feature-term extraction heuristics (§4.1 / Yi et al. 2003):
//   kBNP  — every base noun phrase anywhere in the sentence,
//   kDBNP — definite base noun phrases ("the" + bNP) anywhere,
//   kBBNP — definite base noun phrases at the beginning of a sentence
//           followed by a verb phrase (the paper's winning heuristic).
enum class CandidateHeuristic : uint8_t {
  kBNP,
  kDBNP,
  kBBNP,
};

std::string_view CandidateHeuristicName(CandidateHeuristic h);

// Extracts candidate feature terms with the paper's bBNP heuristic
// ("beginning definite Base Noun Phrases", §4.1): a definite base noun
// phrase at the beginning of a sentence followed by a verb phrase. A
// definite base noun phrase is "the" followed by one of:
//   NN | NN NN | JJ NN | NN NN NN | JJ NN NN | JJ JJ NN
// (NNS accepted wherever NN is, and the phrase is normalized to lowercase
// with plural head singularized, so "the batteries" and "the battery"
// count together).
class BbnpExtractor {
 public:
  struct Candidate {
    std::string phrase;  // normalized ("battery life", "picture quality")
    size_t begin_token = 0;
    size_t end_token = 0;
  };

  // Scans one tagged sentence. Returns at most one candidate (the heuristic
  // only looks at the sentence start).
  std::vector<Candidate> ExtractSentence(
      const text::TokenStream& tokens, const text::SentenceSpan& span,
      const std::vector<pos::PosTag>& tags) const;

  // Generalized extraction under any of the three heuristics. kBBNP
  // matches ExtractSentence(); kBNP/kDBNP may return several candidates
  // per sentence.
  std::vector<Candidate> ExtractWithHeuristic(
      const text::TokenStream& tokens, const text::SentenceSpan& span,
      const std::vector<pos::PosTag>& tags,
      CandidateHeuristic heuristic) const;
};

}  // namespace wf::feature

#endif  // WF_FEATURE_BBNP_H_
