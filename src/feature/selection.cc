#include "feature/selection.h"

#include <cmath>

namespace wf::feature {

std::string_view SelectionMethodName(SelectionMethod m) {
  switch (m) {
    case SelectionMethod::kLikelihoodRatio:
      return "likelihood-ratio";
    case SelectionMethod::kMutualInformation:
      return "mutual-information";
    case SelectionMethod::kChiSquare:
      return "chi-square";
  }
  return "?";
}

namespace {

// True when the candidate is positively associated with D+ (the paper's
// one-sided condition: r1 > r2 with r1 = P(D+|term), r2 = P(D+|no term)).
bool PositivelyAssociated(const ContingencyCounts& c) {
  double n1 = static_cast<double>(c.c11 + c.c12);
  double n2 = static_cast<double>(c.c21 + c.c22);
  if (n1 == 0.0 || n2 == 0.0) return false;
  return static_cast<double>(c.c11) / n1 > static_cast<double>(c.c21) / n2;
}

}  // namespace

double MutualInformation(const ContingencyCounts& c) {
  if (!PositivelyAssociated(c)) return 0.0;
  double n = static_cast<double>(c.c11 + c.c12 + c.c21 + c.c22);
  double p_joint = static_cast<double>(c.c11) / n;
  double p_term = static_cast<double>(c.c11 + c.c12) / n;
  double p_dplus = static_cast<double>(c.c11 + c.c21) / n;
  if (p_joint == 0.0 || p_term == 0.0 || p_dplus == 0.0) return 0.0;
  return std::log(p_joint / (p_term * p_dplus));
}

double ChiSquare(const ContingencyCounts& c) {
  if (!PositivelyAssociated(c)) return 0.0;
  double a = static_cast<double>(c.c11);
  double b = static_cast<double>(c.c12);
  double d = static_cast<double>(c.c21);
  double e = static_cast<double>(c.c22);
  double n = a + b + d + e;
  double denom = (a + b) * (d + e) * (a + d) * (b + e);
  if (denom == 0.0) return 0.0;
  double diff = a * e - b * d;
  return n * diff * diff / denom;
}

double SelectionScore(SelectionMethod method,
                      const ContingencyCounts& counts) {
  switch (method) {
    case SelectionMethod::kLikelihoodRatio:
      return LogLikelihoodRatio(counts);
    case SelectionMethod::kMutualInformation:
      return MutualInformation(counts);
    case SelectionMethod::kChiSquare:
      return ChiSquare(counts);
  }
  return 0.0;
}

}  // namespace wf::feature
