#include "feature/bbnp.h"

#include "common/string_util.h"
#include "text/inflection.h"

namespace wf::feature {
namespace {

using ::wf::common::ToLower;
using ::wf::pos::PosTag;

// The six POS patterns of the bBNP heuristic. 'N' = NN/NNS, 'J' = JJ.
constexpr const char* kPatterns[] = {"N", "NN", "JN", "NNN", "JNN", "JJN"};

char Classify(PosTag t) {
  if (t == PosTag::kNN || t == PosTag::kNNS) return 'N';
  if (t == PosTag::kJJ) return 'J';
  return '?';
}

}  // namespace

std::string_view CandidateHeuristicName(CandidateHeuristic h) {
  switch (h) {
    case CandidateHeuristic::kBNP:
      return "BNP";
    case CandidateHeuristic::kDBNP:
      return "dBNP";
    case CandidateHeuristic::kBBNP:
      return "bBNP";
  }
  return "?";
}

std::vector<BbnpExtractor::Candidate> BbnpExtractor::ExtractWithHeuristic(
    const text::TokenStream& tokens, const text::SentenceSpan& span,
    const std::vector<pos::PosTag>& tags,
    CandidateHeuristic heuristic) const {
  if (heuristic == CandidateHeuristic::kBBNP) {
    return ExtractSentence(tokens, span, tags);
  }
  std::vector<Candidate> out;
  const size_t n = tags.size();
  size_t i = 0;
  while (i < n) {
    // For dBNP, the phrase must be introduced by the definite article.
    size_t start = i;
    if (heuristic == CandidateHeuristic::kDBNP) {
      if (tags[i] != pos::PosTag::kDT ||
          !common::EqualsIgnoreCase(tokens[span.begin_token + i].text,
                                    "the")) {
        ++i;
        continue;
      }
      start = i + 1;
    }
    // Longest matching bNP shape (up to 3 tokens) at `start`.
    size_t matched = 0;
    for (int len = 3; len >= 1; --len) {
      if (start + static_cast<size_t>(len) > n) continue;
      std::string shape;
      for (int k = 0; k < len; ++k) {
        shape += Classify(tags[start + static_cast<size_t>(k)]);
      }
      bool ok = false;
      for (const char* p : kPatterns) {
        if (shape == p) ok = true;
      }
      if (ok) {
        matched = static_cast<size_t>(len);
        break;
      }
    }
    if (matched == 0) {
      ++i;
      continue;
    }
    Candidate c;
    c.begin_token = span.begin_token + start;
    c.end_token = span.begin_token + start + matched;
    std::string phrase;
    for (size_t t = c.begin_token; t < c.end_token; ++t) {
      std::string w = ToLower(tokens[t].text);
      if (t + 1 == c.end_token) w = text::SingularizeNoun(w);
      if (!phrase.empty()) phrase += ' ';
      phrase += w;
    }
    c.phrase = std::move(phrase);
    out.push_back(std::move(c));
    i = start + matched;
  }
  return out;
}

std::vector<BbnpExtractor::Candidate> BbnpExtractor::ExtractSentence(
    const text::TokenStream& tokens, const text::SentenceSpan& span,
    const std::vector<pos::PosTag>& tags) const {
  std::vector<Candidate> out;
  const size_t n = tags.size();
  if (n < 3) return out;

  // Must start with the definite article "the".
  if (tags[0] != PosTag::kDT) return out;
  if (!common::EqualsIgnoreCase(tokens[span.begin_token].text, "the")) {
    return out;
  }

  // Greedily take the longest matching pattern (up to 3 content tokens)
  // that is followed by a verb phrase (verb or modal/adverb then verb).
  for (int len = 3; len >= 1; --len) {
    if (static_cast<size_t>(len) + 1 > n) continue;
    std::string shape;
    for (int k = 0; k < len; ++k) {
      shape += Classify(tags[1 + static_cast<size_t>(k)]);
    }
    bool shape_ok = false;
    for (const char* p : kPatterns) {
      if (shape == p) shape_ok = true;
    }
    if (!shape_ok) continue;

    // Followed by a verb phrase: next tag is a verb/modal, optionally after
    // one adverb.
    size_t after = 1 + static_cast<size_t>(len);
    size_t probe = after;
    if (probe < n && pos::IsAdverbTag(tags[probe])) ++probe;
    if (probe >= n) continue;
    PosTag t = tags[probe];
    if (!(pos::IsVerbTag(t) || t == PosTag::kMD)) continue;

    Candidate c;
    c.begin_token = span.begin_token + 1;
    c.end_token = span.begin_token + after;
    std::string phrase;
    for (size_t i = c.begin_token; i < c.end_token; ++i) {
      std::string w = ToLower(tokens[i].text);
      if (i + 1 == c.end_token) w = text::SingularizeNoun(w);
      if (!phrase.empty()) phrase += ' ';
      phrase += w;
    }
    c.phrase = std::move(phrase);
    out.push_back(std::move(c));
    break;
  }
  return out;
}

}  // namespace wf::feature
