#ifndef WF_PARSE_CHUNKER_H_
#define WF_PARSE_CHUNKER_H_

#include <vector>

#include "parse/chunk.h"
#include "pos/tagset.h"
#include "text/token.h"

namespace wf::parse {

// Finite-state phrase chunker over POS tags (the first half of our Talent
// shallow-parser replacement). Grammar, longest match first:
//   NP   := (PDT)? (DT|PRP$)? (RB? (JJ|JJR|JJS|VBG|VBN|CD))* (NN|NNS|NNP|NNPS)+
//         | PRP | (DT|PRP$)? CD+
//   VP   := (MD|RB)* V (RB|RP|V)*           where V is any verb tag; the
//                                           chunk absorbs auxiliary chains
//                                           and interleaved adverbs
//   PP   := IN                              (object NP is the next NP chunk)
//   ADJP := (RB)* (JJ|JJR|JJS)+             when not immediately followed by
//                                           a noun (predicative position)
//   ADVP := RB+                             otherwise-unattached adverbs
// Everything else becomes a kO chunk of one token.
class Chunker {
 public:
  // Chunks one sentence. `tags` is aligned with the sentence: tags[i]
  // corresponds to tokens[span.begin_token + i]. Returned chunk offsets are
  // absolute token indices.
  std::vector<Chunk> ChunkSentence(const text::TokenStream& tokens,
                                   const text::SentenceSpan& span,
                                   const std::vector<pos::PosTag>& tags) const;
};

}  // namespace wf::parse

#endif  // WF_PARSE_CHUNKER_H_
