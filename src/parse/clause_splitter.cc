#include "parse/clause_splitter.h"

#include "common/string_util.h"

namespace wf::parse {

namespace {

bool IsCoordinator(const text::Token& token, pos::PosTag tag) {
  if (tag == pos::PosTag::kPunct && token.text == ";") return true;
  if (tag != pos::PosTag::kCC) return false;
  return common::EqualsIgnoreCase(token.text, "but") ||
         common::EqualsIgnoreCase(token.text, "and") ||
         common::EqualsIgnoreCase(token.text, "or") ||
         common::EqualsIgnoreCase(token.text, "yet") ||
         common::EqualsIgnoreCase(token.text, "so");
}

}  // namespace

std::vector<text::SentenceSpan> SplitClauses(
    const text::TokenStream& tokens, const text::SentenceSpan& span,
    const std::vector<pos::PosTag>& tags) {
  const size_t n = tags.size();

  // Verb presence prefix counts, for O(1) both-sides checks.
  std::vector<size_t> verbs_before(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    verbs_before[i + 1] =
        verbs_before[i] + (pos::IsVerbTag(tags[i]) ? 1 : 0);
  }
  const size_t total_verbs = verbs_before[n];

  std::vector<text::SentenceSpan> out;
  // Every split consumes a verb on each side, so clauses <= verbs.
  out.reserve(total_verbs + 1);
  size_t clause_begin = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!IsCoordinator(tokens[span.begin_token + i], tags[i])) continue;
    // Verb in the current clause and in the remainder — plus, to avoid
    // splitting VP-part coordination ("improved and refined"), the next
    // clause must start a fresh subject: the token right after the
    // coordinator begins a noun phrase (determiner/possessive/pronoun/
    // noun/adjective) rather than a verb.
    size_t before = verbs_before[i] - verbs_before[clause_begin];
    size_t after = total_verbs - verbs_before[i + 1];
    if (before == 0 || after == 0) continue;
    if (i + 1 >= n) continue;
    pos::PosTag next = tags[i + 1];
    bool starts_np = next == pos::PosTag::kDT || next == pos::PosTag::kPRPS ||
                     next == pos::PosTag::kPRP || pos::IsNounTag(next) ||
                     next == pos::PosTag::kEX ||
                     pos::IsAdjectiveTag(next);
    if (!starts_np) continue;
    out.push_back(text::SentenceSpan{span.begin_token + clause_begin,
                                     span.begin_token + i});
    clause_begin = i;  // the coordinator leads the next clause (kO chunk)
  }
  out.push_back(
      text::SentenceSpan{span.begin_token + clause_begin, span.end_token});
  return out;
}

}  // namespace wf::parse
