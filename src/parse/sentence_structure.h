#ifndef WF_PARSE_SENTENCE_STRUCTURE_H_
#define WF_PARSE_SENTENCE_STRUCTURE_H_

#include <string_view>
#include <vector>

#include "common/arena.h"
#include "parse/chunk.h"
#include "parse/chunker.h"
#include "pos/tagset.h"
#include "text/token.h"

namespace wf::parse {

// A preposition and its object NP, e.g. "by [the picture quality]".
// `preposition` is interned into the analysis arena (see SentenceParse).
struct PpAttachment {
  std::string_view preposition;  // lowercase, interner-owned
  int np_chunk = -1;             // index into SentenceParse::chunks
};

// The shallow clause analysis the sentiment analyzer consumes: the main
// predicate and the sentence components (SP, OP, CP, PP) that sentiment
// patterns may name as source or target.
//
// String members are views interned via the StringInterner the analyzer was
// handed, so a SentenceParse is only valid while that interner's arena
// lives. LinguisticAnalysis roots both; transient callers scope a local
// arena around their use of the parse.
struct SentenceParse {
  text::SentenceSpan span;
  std::vector<Chunk> chunks;
  std::vector<pos::PosTag> tags;  // aligned with the sentence's tokens

  int predicate_chunk = -1;           // main VP, -1 when the sentence has none
  std::string_view predicate_lemma;   // base form of the head verb ("impress")
  int subject_chunk = -1;         // SP: subject NP
  int object_chunk = -1;          // OP: object NP (not inside a PP)
  int complement_chunk = -1;      // CP: predicative ADJP or post-copula NP
  std::vector<PpAttachment> pps;  // PPs following the predicate
  bool vp_negated = false;        // negative adverb inside the main VP

  // Tag for the token at absolute index `abs` (must lie in `span`).
  pos::PosTag TagAt(size_t abs) const {
    return tags[abs - span.begin_token];
  }
};

// Builds SentenceParse from chunker output (the second half of the
// Talent-parser replacement). Deterministic heuristics:
//   - predicate: the first VP preceded by an NP; else the first VP
//   - SP: the NP nearest before the predicate
//   - OP: the first NP after the predicate not owned by a PP
//   - CP: the first ADJP after the predicate, or the post-copula NP when the
//     head verb is a copula ("The colors are vibrant", "X is a great camera")
//   - PPs: every PP chunk after the predicate with its object NP
//   - negation: any negative adverb token inside the main VP
class SentenceAnalyzer {
 public:
  SentenceAnalyzer() = default;

  // `interner` owns the parse's lemma/preposition strings; it must outlive
  // every use of the returned SentenceParse.
  SentenceParse Analyze(const text::TokenStream& tokens,
                        const text::SentenceSpan& span,
                        const std::vector<pos::PosTag>& tags,
                        common::StringInterner* interner) const;

  // Clause-aware analysis: splits the sentence at clause-level coordinators
  // (see clause_splitter.h) and analyzes each clause independently, so
  // "X works but Y is terrible" yields two predicates. Callers pick the
  // clause whose span contains their subject.
  std::vector<SentenceParse> AnalyzeClauses(
      const text::TokenStream& tokens, const text::SentenceSpan& span,
      const std::vector<pos::PosTag>& tags,
      common::StringInterner* interner) const;

  // True for verbs that link subject and complement ("be", "seem", "look",
  // "feel", "sound", "appear", "remain", "stay", "become", "get").
  static bool IsCopula(std::string_view lemma);
};

}  // namespace wf::parse

#endif  // WF_PARSE_SENTENCE_STRUCTURE_H_
