#ifndef WF_PARSE_CLAUSE_SPLITTER_H_
#define WF_PARSE_CLAUSE_SPLITTER_H_

#include <vector>

#include "pos/tagset.h"
#include "text/token.h"

namespace wf::parse {

// Splits a sentence into coordinated clauses so each gets its own clause
// analysis: "The camera takes excellent pictures but the battery is
// terrible" analyzes as two independent predicates. A split happens at a
// coordinating conjunction (or semicolon) only when a verb exists on both
// sides — noun coordination ("picture and sound") and predicate-part
// coordination ("implemented and functional") stay intact.
//
// `tags` is aligned with the sentence (tags[i] corresponds to
// tokens[span.begin_token + i]). Returned spans are absolute, contiguous,
// and cover the input span.
std::vector<text::SentenceSpan> SplitClauses(
    const text::TokenStream& tokens, const text::SentenceSpan& span,
    const std::vector<pos::PosTag>& tags);

}  // namespace wf::parse

#endif  // WF_PARSE_CLAUSE_SPLITTER_H_
