#ifndef WF_PARSE_CHUNK_H_
#define WF_PARSE_CHUNK_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wf::parse {

enum class ChunkType : uint8_t {
  kNP,    // noun phrase
  kVP,    // verb phrase (auxiliaries + adverbs + head verb + particles)
  kPP,    // preposition (object NP is the following kNP chunk)
  kADJP,  // predicative adjective phrase
  kADVP,  // adverb phrase not attached to a VP
  kO,     // anything else (punctuation, conjunctions, ...)
};

std::string_view ChunkTypeName(ChunkType type);

// A chunk covers tokens [begin, end) — absolute indices into the document's
// TokenStream, so chunks from different sentences are comparable.
struct Chunk {
  ChunkType type = ChunkType::kO;
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }

  friend bool operator==(const Chunk& a, const Chunk& b) {
    return a.type == b.type && a.begin == b.begin && a.end == b.end;
  }
};

}  // namespace wf::parse

#endif  // WF_PARSE_CHUNK_H_
