#include "parse/chunker.h"

#include "parse/chunk.h"

namespace wf::parse {

std::string_view ChunkTypeName(ChunkType type) {
  switch (type) {
    case ChunkType::kNP:
      return "NP";
    case ChunkType::kVP:
      return "VP";
    case ChunkType::kPP:
      return "PP";
    case ChunkType::kADJP:
      return "ADJP";
    case ChunkType::kADVP:
      return "ADVP";
    case ChunkType::kO:
      return "O";
  }
  return "?";
}

namespace {

using pos::IsAdjectiveTag;
using pos::IsAdverbTag;
using pos::IsNounTag;
using pos::IsVerbTag;
using pos::PosTag;

bool IsNpModifier(PosTag t) {
  return IsAdjectiveTag(t) || t == PosTag::kVBG || t == PosTag::kVBN ||
         t == PosTag::kCD;
}

bool IsNpStarter(PosTag t) {
  return t == PosTag::kDT || t == PosTag::kPRPS || t == PosTag::kPDT ||
         IsNpModifier(t) || IsNounTag(t) || t == PosTag::kPRP;
}

}  // namespace

std::vector<Chunk> Chunker::ChunkSentence(
    const text::TokenStream& tokens, const text::SentenceSpan& span,
    const std::vector<pos::PosTag>& tags) const {
  std::vector<Chunk> chunks;
  const size_t n = tags.size();
  chunks.reserve(n / 2 + 1);  // a chunk spans >= 1 token; kO chunks are 1
  size_t i = 0;
  auto abs = [&](size_t rel) { return span.begin_token + rel; };
  (void)tokens;

  while (i < n) {
    PosTag t = tags[i];

    // Pronoun: a one-token NP.
    if (t == PosTag::kPRP) {
      chunks.push_back(Chunk{ChunkType::kNP, abs(i), abs(i + 1)});
      ++i;
      continue;
    }

    // NP attempt: starter must lead to at least one noun (or be a bare
    // CD sequence with a determiner).
    if (IsNpStarter(t) && t != PosTag::kPRP) {
      size_t j = i;
      if (tags[j] == PosTag::kPDT) ++j;
      if (j < n && (tags[j] == PosTag::kDT || tags[j] == PosTag::kPRPS)) ++j;
      // Modifier run, with optional adverb before an adjective
      // ("a very sharp lens").
      size_t mods_end = j;
      while (mods_end < n) {
        if (IsNpModifier(tags[mods_end])) {
          ++mods_end;
        } else if (IsAdverbTag(tags[mods_end]) && mods_end + 1 < n &&
                   IsAdjectiveTag(tags[mods_end + 1])) {
          mods_end += 2;
        } else {
          break;
        }
      }
      size_t nouns_end = mods_end;
      while (nouns_end < n && (IsNounTag(tags[nouns_end]) ||
                               tags[nouns_end] == PosTag::kPOS)) {
        ++nouns_end;
      }
      if (nouns_end > mods_end) {
        // Got a real NP ending in a noun run.
        chunks.push_back(Chunk{ChunkType::kNP, abs(i), abs(nouns_end)});
        i = nouns_end;
        continue;
      }
      // Determiner + cardinal with no noun ("the 5") — rare; NP anyway.
      if (j > i && mods_end > j) {
        bool all_cd = true;
        for (size_t k = j; k < mods_end; ++k) {
          if (tags[k] != PosTag::kCD) all_cd = false;
        }
        if (all_cd) {
          chunks.push_back(Chunk{ChunkType::kNP, abs(i), abs(mods_end)});
          i = mods_end;
          continue;
        }
      }
      // Fall through: not an NP after all.
    }

    // VP: optional modal/adverb lead-in, then verbs with interleaved
    // adverbs/particles. The lead-in is only consumed when a verb follows.
    if (IsVerbTag(t) || t == PosTag::kMD ||
        (IsAdverbTag(t) && i + 1 < n &&
         (IsVerbTag(tags[i + 1]) || tags[i + 1] == PosTag::kMD))) {
      size_t j = i;
      bool saw_verb = false;
      size_t last_verb_rel = i;
      while (j < n) {
        PosTag tj = tags[j];
        if (IsVerbTag(tj)) {
          saw_verb = true;
          last_verb_rel = j;
          ++j;
        } else if (tj == PosTag::kMD || tj == PosTag::kRP ||
                   IsAdverbTag(tj)) {
          // Note: TO is deliberately excluded — "fails to meet" keeps
          // "fails" as the main predicate; "to meet ..." is its own VP.
          // Absorb only if more verb material follows (keeps trailing
          // adverbs like "works well" inside, since "well" is last — we do
          // include one trailing RB/RP run after the head verb).
          ++j;
        } else {
          break;
        }
      }
      if (saw_verb) {
        // Trim trailing TO/MD that weren't followed by a verb.
        size_t end = last_verb_rel + 1;
        // Re-extend over trailing particles/adverbs ("works well", "turned
        // off"), but not over negations-only (they belong to the VP anyway).
        while (end < n && (tags[end] == PosTag::kRP || IsAdverbTag(tags[end]))) {
          ++end;
        }
        chunks.push_back(Chunk{ChunkType::kVP, abs(i), abs(end)});
        i = end;
        continue;
      }
    }

    // PP: the preposition token alone; its object NP chunk follows.
    if (t == PosTag::kIN || t == PosTag::kTO) {
      chunks.push_back(Chunk{ChunkType::kPP, abs(i), abs(i + 1)});
      ++i;
      continue;
    }

    // ADJP: adverb* adjective+ in predicative position.
    if (IsAdjectiveTag(t) ||
        (IsAdverbTag(t) && i + 1 < n && IsAdjectiveTag(tags[i + 1]))) {
      size_t j = i;
      while (j < n && IsAdverbTag(tags[j])) ++j;
      size_t adj_begin = j;
      while (j < n && (IsAdjectiveTag(tags[j]) ||
                       (tags[j] == PosTag::kCC && j + 1 < n &&
                        IsAdjectiveTag(tags[j + 1])))) {
        ++j;
      }
      if (j > adj_begin && (j >= n || !IsNounTag(tags[j]))) {
        chunks.push_back(Chunk{ChunkType::kADJP, abs(i), abs(j)});
        i = j;
        continue;
      }
    }

    // ADVP: leftover adverb run.
    if (IsAdverbTag(t)) {
      size_t j = i;
      while (j < n && IsAdverbTag(tags[j])) ++j;
      chunks.push_back(Chunk{ChunkType::kADVP, abs(i), abs(j)});
      i = j;
      continue;
    }

    chunks.push_back(Chunk{ChunkType::kO, abs(i), abs(i + 1)});
    ++i;
  }
  return chunks;
}

}  // namespace wf::parse
