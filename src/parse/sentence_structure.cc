#include "parse/sentence_structure.h"

#include "common/string_util.h"
#include "parse/clause_splitter.h"
#include "text/inflection.h"

namespace wf::parse {
namespace {

using ::wf::pos::IsVerbTag;
using ::wf::pos::PosTag;

// The head verb of a VP chunk: the last verb-tagged token.
int HeadVerbToken(const text::TokenStream& tokens, const Chunk& vp,
                  const SentenceParse& parse) {
  (void)tokens;
  int head = -1;
  for (size_t i = vp.begin; i < vp.end; ++i) {
    if (IsVerbTag(parse.TagAt(i))) head = static_cast<int>(i);
  }
  return head;
}

}  // namespace

std::vector<SentenceParse> SentenceAnalyzer::AnalyzeClauses(
    const text::TokenStream& tokens, const text::SentenceSpan& span,
    const std::vector<pos::PosTag>& tags,
    common::StringInterner* interner) const {
  const std::vector<text::SentenceSpan> clauses =
      SplitClauses(tokens, span, tags);
  std::vector<SentenceParse> out;
  out.reserve(clauses.size());
  for (const text::SentenceSpan& clause : clauses) {
    std::vector<pos::PosTag> clause_tags(
        tags.begin() +
            static_cast<long>(clause.begin_token - span.begin_token),
        tags.begin() +
            static_cast<long>(clause.end_token - span.begin_token));
    out.push_back(Analyze(tokens, clause, clause_tags, interner));
  }
  return out;
}

bool SentenceAnalyzer::IsCopula(std::string_view lemma) {
  return lemma == "be" || lemma == "seem" || lemma == "look" ||
         lemma == "feel" || lemma == "sound" || lemma == "appear" ||
         lemma == "remain" || lemma == "stay" || lemma == "become" ||
         lemma == "get" || lemma == "taste" || lemma == "smell";
}

SentenceParse SentenceAnalyzer::Analyze(
    const text::TokenStream& tokens, const text::SentenceSpan& span,
    const std::vector<pos::PosTag>& tags,
    common::StringInterner* interner) const {
  SentenceParse parse;
  parse.span = span;
  parse.tags = tags;
  Chunker chunker;
  parse.chunks = chunker.ChunkSentence(tokens, span, tags);

  // Predicate: first VP preceded by an NP; else first VP at all.
  int first_vp = -1;
  for (size_t c = 0; c < parse.chunks.size(); ++c) {
    if (parse.chunks[c].type != ChunkType::kVP) continue;
    if (first_vp < 0) first_vp = static_cast<int>(c);
    bool np_before = false;
    for (size_t b = 0; b < c; ++b) {
      if (parse.chunks[b].type == ChunkType::kNP) np_before = true;
    }
    if (np_before) {
      parse.predicate_chunk = static_cast<int>(c);
      break;
    }
  }
  if (parse.predicate_chunk < 0) parse.predicate_chunk = first_vp;
  if (parse.predicate_chunk < 0) return parse;  // verbless sentence

  const Chunk& vp = parse.chunks[parse.predicate_chunk];
  int head = HeadVerbToken(tokens, vp, parse);
  if (head >= 0) {
    parse.predicate_lemma = text::VerbLemma(
        interner->InternLower(tokens[static_cast<size_t>(head)].text),
        interner);
  }

  // Negation inside the VP.
  for (size_t i = vp.begin; i < vp.end; ++i) {
    if (text::IsNegationWord(tokens[i].text)) {
      parse.vp_negated = true;
      break;
    }
  }

  // Leading PPs ("Unlike the T series CLIEs, ...", "As with every Sony
  // PDA, ...") — needed so subjects inside them can receive contrastive
  // sentiment. An NP right after a leading PP belongs to that PP.
  {
    int pending_pp = -1;
    parse.pps.reserve(static_cast<size_t>(parse.predicate_chunk) / 2 + 1);
    for (int c = 0; c < parse.predicate_chunk; ++c) {
      const Chunk& ch = parse.chunks[c];
      if (ch.type == ChunkType::kPP) {
        parse.pps.push_back(
            PpAttachment{interner->InternLower(tokens[ch.begin].text), -1});
        pending_pp = static_cast<int>(parse.pps.size()) - 1;
      } else if (ch.type == ChunkType::kNP) {
        if (pending_pp >= 0) {
          parse.pps[pending_pp].np_chunk = c;
          pending_pp = -1;
        }
      } else if (ch.type == ChunkType::kO) {
        // Commas end a leading PP attachment window.
        pending_pp = -1;
      }
    }
  }

  // SP: nearest NP before the predicate that is not the object of a PP.
  for (int c = parse.predicate_chunk - 1; c >= 0; --c) {
    if (parse.chunks[c].type != ChunkType::kNP) continue;
    bool owned_by_pp = false;
    for (const PpAttachment& pp : parse.pps) {
      if (pp.np_chunk == c) owned_by_pp = true;
    }
    if (owned_by_pp) continue;
    parse.subject_chunk = c;
    break;
  }

  // OP / CP / PPs after the predicate. An NP right after a PP chunk is the
  // PP's object, not the clause object.
  bool copula = IsCopula(parse.predicate_lemma);
  int pending_pp = -1;
  for (size_t c = static_cast<size_t>(parse.predicate_chunk) + 1;
       c < parse.chunks.size(); ++c) {
    const Chunk& ch = parse.chunks[c];
    switch (ch.type) {
      case ChunkType::kPP:
        parse.pps.push_back(
            PpAttachment{interner->InternLower(tokens[ch.begin].text), -1});
        pending_pp = static_cast<int>(parse.pps.size()) - 1;
        break;
      case ChunkType::kNP:
        if (pending_pp >= 0) {
          parse.pps[pending_pp].np_chunk = static_cast<int>(c);
          pending_pp = -1;
        } else if (copula && parse.complement_chunk < 0) {
          // Post-copula NP is a complement ("X is a great camera").
          parse.complement_chunk = static_cast<int>(c);
        } else if (parse.object_chunk < 0) {
          parse.object_chunk = static_cast<int>(c);
        }
        break;
      case ChunkType::kADJP:
        if (parse.complement_chunk < 0 && pending_pp < 0) {
          parse.complement_chunk = static_cast<int>(c);
        }
        pending_pp = -1;
        break;
      case ChunkType::kVP:
        // Secondary clause; stop scanning to keep the analysis local to the
        // main clause ("..., which is a welcome change" keeps its own VP).
        return parse;
      default:
        break;
    }
  }
  return parse;
}

}  // namespace wf::parse
