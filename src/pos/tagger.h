#ifndef WF_POS_TAGGER_H_
#define WF_POS_TAGGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "pos/tagset.h"
#include "text/token.h"

namespace wf::pos {

// Rule-based English POS tagger — the stand-in for the Ratnaparkhi MaxEnt
// tagger the paper used. Three stages:
//   1. lexical lookup (embedded lexicon, most-likely tag first),
//   2. morphological guessing for unknown words (suffixes, capitalization,
//      digits),
//   3. Brill-style contextual patch rules that repair the most damaging
//      ambiguities for the downstream chunker (noun/verb after determiner,
//      base verb after modal/to, VBD vs VBN after auxiliaries, NNS vs VBZ).
class PosTagger {
 public:
  PosTagger();

  // Tags one sentence. Returns one tag per token in
  // [span.begin_token, span.end_token).
  std::vector<PosTag> TagSentence(const text::TokenStream& tokens,
                                  const text::SentenceSpan& span) const;

  // Tags a whole stream given its sentence segmentation; the result is
  // aligned with `tokens` (tokens outside every span get kUnknown — there
  // are none if the spans partition the stream).
  std::vector<PosTag> Tag(const text::TokenStream& tokens,
                          const std::vector<text::SentenceSpan>& spans) const;

  // Candidate tags for a word form (lowercase), lexicon only; empty when
  // the word is unknown.
  const std::vector<PosTag>* Lookup(const std::string& lower) const;

  size_t lexicon_size() const { return lexicon_.size(); }

 private:
  PosTag GuessUnknown(const text::Token& token, bool sentence_initial) const;
  void ApplyContextRules(const text::TokenStream& tokens,
                         const text::SentenceSpan& span,
                         std::vector<PosTag>& tags) const;

  std::unordered_map<std::string, std::vector<PosTag>> lexicon_;
};

}  // namespace wf::pos

#endif  // WF_POS_TAGGER_H_
