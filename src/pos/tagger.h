#ifndef WF_POS_TAGGER_H_
#define WF_POS_TAGGER_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "pos/tagset.h"
#include "text/token.h"

namespace wf::pos {

// Rule-based English POS tagger — the stand-in for the Ratnaparkhi MaxEnt
// tagger the paper used. Three stages:
//   1. lexical lookup (embedded lexicon, most-likely tag first),
//   2. morphological guessing for unknown words (suffixes, capitalization,
//      digits),
//   3. Brill-style contextual patch rules that repair the most damaging
//      ambiguities for the downstream chunker (noun/verb after determiner,
//      base verb after modal/to, VBD vs VBN after auxiliaries, NNS vs VBZ).
class PosTagger {
 public:
  PosTagger();

  // Tags one sentence. Returns one tag per token in
  // [span.begin_token, span.end_token).
  std::vector<PosTag> TagSentence(const text::TokenStream& tokens,
                                  const text::SentenceSpan& span) const;

  // Tags a whole stream given its sentence segmentation; the result is
  // aligned with `tokens` (tokens outside every span get kUnknown — there
  // are none if the spans partition the stream).
  std::vector<PosTag> Tag(const text::TokenStream& tokens,
                          const std::vector<text::SentenceSpan>& spans) const;

  // Candidate tags for a word form (lowercase), lexicon only; empty when
  // the word is unknown. Allocation-free.
  const std::vector<PosTag>* Lookup(std::string_view lower) const;

  size_t lexicon_size() const { return lexicon_.size(); }

 private:
  // Per-token work the first pass already paid, reused by the context
  // rules: lexicon candidates plus the lowercase form as a slice of one
  // shared buffer (offset/length, not a view — the buffer reallocates
  // while it grows).
  struct TokenInfo {
    const std::vector<PosTag>* cands = nullptr;
    uint32_t lower_off = 0;
    uint32_t lower_len = 0;
  };

  PosTag GuessUnknown(const text::Token& token, std::string_view lower,
                      bool sentence_initial) const;
  void ApplyContextRules(const std::vector<TokenInfo>& infos,
                         const std::string& lowers,
                         std::vector<PosTag>& tags) const;

  // Keys view the embedded lexicon's static storage, so lookups take any
  // string_view without materializing a std::string.
  std::unordered_map<std::string_view, std::vector<PosTag>> lexicon_;
};

}  // namespace wf::pos

#endif  // WF_POS_TAGGER_H_
