#ifndef WF_POS_TAGSET_H_
#define WF_POS_TAGSET_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace wf::pos {

// Penn Treebank part-of-speech tags (Marcus et al. 1993), the tagset the
// paper's bBNP patterns are defined over, plus punctuation tags.
enum class PosTag : uint8_t {
  kCC,    // coordinating conjunction
  kCD,    // cardinal number
  kDT,    // determiner
  kEX,    // existential there
  kFW,    // foreign word
  kIN,    // preposition / subordinating conjunction
  kJJ,    // adjective
  kJJR,   // adjective, comparative
  kJJS,   // adjective, superlative
  kMD,    // modal
  kNN,    // noun, singular
  kNNS,   // noun, plural
  kNNP,   // proper noun, singular
  kNNPS,  // proper noun, plural
  kPDT,   // predeterminer
  kPOS,   // possessive ending ('s)
  kPRP,   // personal pronoun
  kPRPS,  // possessive pronoun (PRP$)
  kRB,    // adverb
  kRBR,   // adverb, comparative
  kRBS,   // adverb, superlative
  kRP,    // particle
  kSYM,   // symbol
  kTO,    // to
  kUH,    // interjection
  kVB,    // verb, base form
  kVBD,   // verb, past tense
  kVBG,   // verb, gerund
  kVBN,   // verb, past participle
  kVBP,   // verb, non-3rd person singular present
  kVBZ,   // verb, 3rd person singular present
  kWDT,   // wh-determiner
  kWP,    // wh-pronoun
  kWPS,   // possessive wh-pronoun (WP$)
  kWRB,   // wh-adverb
  kPunct, // any punctuation token
  kUnknown,
};

inline constexpr int kNumPosTags = static_cast<int>(PosTag::kUnknown) + 1;

// Treebank string for a tag ("NN", "PRP$", ...).
std::string_view PosTagName(PosTag tag);

// Parses a Treebank tag name; returns kUnknown for unrecognized strings.
PosTag ParsePosTag(std::string_view name);

// Coarse class predicates used by the chunker and the bBNP patterns.
inline bool IsNounTag(PosTag t) {
  return t == PosTag::kNN || t == PosTag::kNNS || t == PosTag::kNNP ||
         t == PosTag::kNNPS;
}
inline bool IsCommonNounTag(PosTag t) {
  return t == PosTag::kNN || t == PosTag::kNNS;
}
inline bool IsProperNounTag(PosTag t) {
  return t == PosTag::kNNP || t == PosTag::kNNPS;
}
inline bool IsVerbTag(PosTag t) {
  return t == PosTag::kVB || t == PosTag::kVBD || t == PosTag::kVBG ||
         t == PosTag::kVBN || t == PosTag::kVBP || t == PosTag::kVBZ;
}
inline bool IsAdjectiveTag(PosTag t) {
  return t == PosTag::kJJ || t == PosTag::kJJR || t == PosTag::kJJS;
}
inline bool IsAdverbTag(PosTag t) {
  return t == PosTag::kRB || t == PosTag::kRBR || t == PosTag::kRBS;
}

}  // namespace wf::pos

#endif  // WF_POS_TAGSET_H_
