#include "pos/tagger.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "pos/tag_lexicon.h"
#include "text/inflection.h"

namespace wf::pos {
namespace {

using ::wf::common::EndsWith;
using ::wf::common::IsAllUpper;
using ::wf::common::IsCapitalized;
using ::wf::common::Split;
using ::wf::text::Token;
using ::wf::text::TokenKind;
using ::wf::text::TokenStream;

bool HasTag(const std::vector<PosTag>& tags, PosTag t) {
  for (PosTag tag : tags) {
    if (tag == t) return true;
  }
  return false;
}

bool IsBeOrHaveAux(std::string_view lower) {
  return lower == "is" || lower == "are" || lower == "was" ||
         lower == "were" || lower == "be" || lower == "been" ||
         lower == "being" || lower == "am" || lower == "has" ||
         lower == "have" || lower == "had" || lower == "having" ||
         lower == "'s" || lower == "'re" || lower == "'ve" || lower == "'m";
}

}  // namespace

PosTagger::PosTagger() {
  size_t count = 0;
  const TagLexiconEntry* entries = EmbeddedTagLexicon(&count);
  lexicon_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const std::vector<std::string> names = Split(entries[i].tags, ",");
    std::vector<PosTag> tags;
    tags.reserve(names.size());
    for (const std::string& name : names) {
      PosTag t = ParsePosTag(name);
      WF_CHECK(t != PosTag::kUnknown)
          << "bad tag '" << name << "' for lexicon word '" << entries[i].word
          << "'";
      tags.push_back(t);
    }
    WF_CHECK(!tags.empty()) << entries[i].word;
    auto [it, inserted] = lexicon_.emplace(entries[i].word, std::move(tags));
    WF_CHECK(inserted) << "duplicate lexicon word '" << entries[i].word << "'";
  }
}

const std::vector<PosTag>* PosTagger::Lookup(std::string_view lower) const {
  auto it = lexicon_.find(lower);
  return it == lexicon_.end() ? nullptr : &it->second;
}

PosTag PosTagger::GuessUnknown(const Token& token, std::string_view lower,
                               bool sentence_initial) const {
  std::string_view w = token.text;
  if (token.kind == TokenKind::kNumber) return PosTag::kCD;
  if (token.kind == TokenKind::kPunct) return PosTag::kPunct;
  if (token.kind == TokenKind::kSymbol) return PosTag::kSYM;

  // Capitalized unknown word (not merely sentence-initial): proper noun.
  // All-caps product codes ("NR70") and mixed alphanumerics too.
  bool has_digit = false;
  for (char c : w) {
    if (common::IsAsciiDigit(c)) has_digit = true;
  }
  if (IsCapitalized(w) && !sentence_initial) return PosTag::kNNP;
  if (IsAllUpper(w) || has_digit) return PosTag::kNNP;
  // Derivational suffixes, checked longest-first.
  struct SuffixRule {
    const char* suffix;
    PosTag tag;
  };
  static constexpr SuffixRule kRules[] = {
      {"ly", PosTag::kRB},      {"ing", PosTag::kVBG},
      {"ed", PosTag::kVBN},     {"able", PosTag::kJJ},
      {"ible", PosTag::kJJ},    {"ous", PosTag::kJJ},
      {"ful", PosTag::kJJ},     {"less", PosTag::kJJ},
      {"ive", PosTag::kJJ},     {"ish", PosTag::kJJ},
      {"ic", PosTag::kJJ},      {"al", PosTag::kJJ},
      {"ary", PosTag::kJJ},     {"tion", PosTag::kNN},
      {"sion", PosTag::kNN},    {"ment", PosTag::kNN},
      {"ness", PosTag::kNN},    {"ity", PosTag::kNN},
      {"ship", PosTag::kNN},    {"hood", PosTag::kNN},
      {"ism", PosTag::kNN},     {"ist", PosTag::kNN},
      {"ance", PosTag::kNN},    {"ence", PosTag::kNN},
      {"er", PosTag::kNN},      {"or", PosTag::kNN},
  };
  // Longest-match first.
  const SuffixRule* best = nullptr;
  size_t best_len = 0;
  for (const SuffixRule& r : kRules) {
    size_t len = std::char_traits<char>::length(r.suffix);
    if (lower.size() > len + 2 && EndsWith(lower, r.suffix) &&
        len > best_len) {
      best = &r;
      best_len = len;
    }
  }
  if (best != nullptr) return best->tag;

  if (EndsWith(lower, "s") && !EndsWith(lower, "ss") && lower.size() > 3) {
    return PosTag::kNNS;
  }
  return PosTag::kNN;
}

std::vector<PosTag> PosTagger::TagSentence(
    const TokenStream& tokens, const text::SentenceSpan& span) const {
  std::vector<PosTag> tags(span.size(), PosTag::kUnknown);
  // One lowercase pass and one lexicon probe per token: the context rules
  // reuse both instead of re-deriving them (they used to re-lower and
  // re-probe up to three times per token).
  std::vector<TokenInfo> infos(span.size());
  std::string lowers;
  lowers.reserve(span.size() * 8);
  for (size_t i = span.begin_token; i < span.end_token; ++i) {
    const Token& tok = tokens[i];
    size_t rel = i - span.begin_token;
    if (tok.kind == TokenKind::kPunct) {
      tags[rel] = PosTag::kPunct;
      continue;
    }
    if (tok.kind == TokenKind::kNumber) {
      tags[rel] = PosTag::kCD;
      continue;
    }
    if (tok.kind == TokenKind::kSymbol) {
      tags[rel] = PosTag::kSYM;
      continue;
    }
    bool sentence_initial = (i == span.begin_token);
    infos[rel].lower_off = static_cast<uint32_t>(lowers.size());
    infos[rel].lower_len = static_cast<uint32_t>(tok.text.size());
    for (char c : tok.text) lowers.push_back(common::ToLowerAscii(c));
    std::string_view lower = std::string_view(lowers).substr(
        infos[rel].lower_off, infos[rel].lower_len);
    const std::vector<PosTag>* cands = Lookup(lower);
    infos[rel].cands = cands;
    if (cands != nullptr) {
      // Capitalized mid-sentence word known only as open-class: prefer NNP
      // (e.g. "Flash" as a brand) — but keep closed-class words ("The" in
      // titles are rare mid-sentence, skip the complication).
      if (IsCapitalized(tok.text) && !sentence_initial &&
          IsCommonNounTag((*cands)[0])) {
        tags[rel] = PosTag::kNNP;
      } else {
        tags[rel] = (*cands)[0];
      }
      continue;
    }
    tags[rel] = GuessUnknown(tok, lower, sentence_initial);
  }
  ApplyContextRules(infos, lowers, tags);
  return tags;
}

void PosTagger::ApplyContextRules(const std::vector<TokenInfo>& infos,
                                  const std::string& lowers,
                                  std::vector<PosTag>& tags) const {
  const size_t n = tags.size();
  auto lower_at = [&](size_t rel) {
    return std::string_view(lowers).substr(infos[rel].lower_off,
                                           infos[rel].lower_len);
  };

  for (size_t i = 0; i < n; ++i) {
    const std::vector<PosTag>* cands = infos[i].cands;
    PosTag prev = (i > 0) ? tags[i - 1] : PosTag::kUnknown;
    PosTag next = (i + 1 < n) ? tags[i + 1] : PosTag::kUnknown;

    // Rule 1: verb reading after determiner/adjective/possessive becomes a
    // noun when the lexicon allows it ("the zoom", "a take"). Also after a
    // proper noun, for compounds like "Memory Stick support".
    if ((prev == PosTag::kDT || prev == PosTag::kPRPS ||
         IsAdjectiveTag(prev) || IsProperNounTag(prev)) &&
        (tags[i] == PosTag::kVB || tags[i] == PosTag::kVBP)) {
      if (cands != nullptr && HasTag(*cands, PosTag::kNN)) {
        tags[i] = PosTag::kNN;
      }
    }
    // Rule 2: noun after modal or "to" becomes base verb when possible
    // ("will zoom", "to focus").
    if ((prev == PosTag::kMD || prev == PosTag::kTO) &&
        (tags[i] == PosTag::kNN || tags[i] == PosTag::kVBP)) {
      if (cands != nullptr && HasTag(*cands, PosTag::kVB)) {
        tags[i] = PosTag::kVB;
      } else if (prev == PosTag::kMD && tags[i] == PosTag::kVBP) {
        tags[i] = PosTag::kVB;
      }
    }
    // Rule 3: VBD/VBN disambiguation — past participle after be/have
    // auxiliary, past tense otherwise.
    if (tags[i] == PosTag::kVBD || tags[i] == PosTag::kVBN) {
      bool after_aux = false;
      // Look back up to 3 tokens, skipping adverbs ("was really impressed").
      for (size_t back = 1; back <= 3 && back <= i; ++back) {
        PosTag bt = tags[i - back];
        if (IsAdverbTag(bt)) continue;
        if (IsVerbTag(bt) && IsBeOrHaveAux(lower_at(i - back))) {
          after_aux = true;
        }
        break;
      }
      if (cands != nullptr && HasTag(*cands, PosTag::kVBD) &&
          HasTag(*cands, PosTag::kVBN)) {
        tags[i] = after_aux ? PosTag::kVBN : PosTag::kVBD;
      } else if (cands == nullptr) {
        tags[i] = after_aux ? PosTag::kVBN : PosTag::kVBD;
      }
    }
    // Rule 4: NNS vs VBZ for ambiguous -s forms: after determiner/adjective
    // prefer NNS; after a noun or pronoun prefer VBZ ("the camera works").
    if (cands != nullptr && HasTag(*cands, PosTag::kNNS) &&
        HasTag(*cands, PosTag::kVBZ)) {
      if (prev == PosTag::kDT || prev == PosTag::kPRPS ||
          IsAdjectiveTag(prev) || prev == PosTag::kCD) {
        tags[i] = PosTag::kNNS;
      } else if (IsNounTag(prev) || prev == PosTag::kPRP) {
        tags[i] = PosTag::kVBZ;
      }
    }
    // Rule 5: "that" — DT before a noun/adjective, WDT right after a noun
    // when followed by a verb, IN otherwise.
    if (lower_at(i) == "that") {
      if (IsNounTag(next) || IsAdjectiveTag(next) || next == PosTag::kCD) {
        tags[i] = PosTag::kDT;
      } else if (i > 0 && IsNounTag(prev) && IsVerbTag(next)) {
        tags[i] = PosTag::kWDT;
      } else {
        tags[i] = PosTag::kIN;
      }
    }
    // Rule 6: sentence-initial ambiguous VB/NN with a following noun phrase
    // start is usually an imperative only in reviews; prefer the lexicon's
    // first tag — no action. But a VBN at position 0 followed by IN stays
    // VBN ("Disappointed by...").
    // Rule 7: adjective before verb is usually a noun misread; if a JJ-first
    // word also has an NN reading and the next tag is VBZ/VBD/VBP, make it NN
    // ("the manual explains").
    if (IsAdjectiveTag(tags[i]) && cands != nullptr &&
        HasTag(*cands, PosTag::kNN) &&
        (next == PosTag::kVBZ || next == PosTag::kVBD ||
         next == PosTag::kVBP || next == PosTag::kMD)) {
      tags[i] = PosTag::kNN;
    }
  }
}

std::vector<PosTag> PosTagger::Tag(
    const TokenStream& tokens,
    const std::vector<text::SentenceSpan>& spans) const {
  std::vector<PosTag> out(tokens.size(), PosTag::kUnknown);
  for (const text::SentenceSpan& span : spans) {
    std::vector<PosTag> tags = TagSentence(tokens, span);
    for (size_t i = 0; i < tags.size(); ++i) {
      out[span.begin_token + i] = tags[i];
    }
  }
  return out;
}

}  // namespace wf::pos
