#include "pos/tagset.h"

#include <array>

namespace wf::pos {
namespace {

struct TagName {
  PosTag tag;
  std::string_view name;
};

constexpr std::array<TagName, kNumPosTags> kTagNames = {{
    {PosTag::kCC, "CC"},     {PosTag::kCD, "CD"},     {PosTag::kDT, "DT"},
    {PosTag::kEX, "EX"},     {PosTag::kFW, "FW"},     {PosTag::kIN, "IN"},
    {PosTag::kJJ, "JJ"},     {PosTag::kJJR, "JJR"},   {PosTag::kJJS, "JJS"},
    {PosTag::kMD, "MD"},     {PosTag::kNN, "NN"},     {PosTag::kNNS, "NNS"},
    {PosTag::kNNP, "NNP"},   {PosTag::kNNPS, "NNPS"}, {PosTag::kPDT, "PDT"},
    {PosTag::kPOS, "POS"},   {PosTag::kPRP, "PRP"},   {PosTag::kPRPS, "PRP$"},
    {PosTag::kRB, "RB"},     {PosTag::kRBR, "RBR"},   {PosTag::kRBS, "RBS"},
    {PosTag::kRP, "RP"},     {PosTag::kSYM, "SYM"},   {PosTag::kTO, "TO"},
    {PosTag::kUH, "UH"},     {PosTag::kVB, "VB"},     {PosTag::kVBD, "VBD"},
    {PosTag::kVBG, "VBG"},   {PosTag::kVBN, "VBN"},   {PosTag::kVBP, "VBP"},
    {PosTag::kVBZ, "VBZ"},   {PosTag::kWDT, "WDT"},   {PosTag::kWP, "WP"},
    {PosTag::kWPS, "WP$"},   {PosTag::kWRB, "WRB"},   {PosTag::kPunct, "."},
    {PosTag::kUnknown, "UNK"},
}};

}  // namespace

std::string_view PosTagName(PosTag tag) {
  return kTagNames[static_cast<size_t>(tag)].name;
}

PosTag ParsePosTag(std::string_view name) {
  for (const TagName& tn : kTagNames) {
    if (tn.name == name) return tn.tag;
  }
  return PosTag::kUnknown;
}

}  // namespace wf::pos
