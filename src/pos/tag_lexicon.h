#ifndef WF_POS_TAG_LEXICON_H_
#define WF_POS_TAG_LEXICON_H_

#include <cstddef>

namespace wf::pos {

// One embedded-lexicon row: a lowercase word form mapped to its possible
// Treebank tags in priority order (most likely first), comma-separated,
// e.g. {"take", "VB,VBP,NN"}.
struct TagLexiconEntry {
  const char* word;
  const char* tags;
};

// The built-in English lexicon: complete closed classes plus the open-class
// vocabulary of the evaluation domains. ~900 forms.
const TagLexiconEntry* EmbeddedTagLexicon(size_t* count);

}  // namespace wf::pos

#endif  // WF_POS_TAG_LEXICON_H_
