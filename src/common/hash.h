#ifndef WF_COMMON_HASH_H_
#define WF_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace wf::common {

// 64-bit FNV-1a. Stable across platforms/runs; used for data partitioning,
// so its value must never change (persisted shards depend on it).
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Mixes two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

// Transparent hash for heterogeneous unordered-container lookup: maps keyed
// by std::string can be probed with a std::string_view without
// materializing a key. Pair with std::equal_to<>.
struct StringViewHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return static_cast<size_t>(Fnv1a64(s));
  }
};

}  // namespace wf::common

#endif  // WF_COMMON_HASH_H_
