#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace wf::common {

char ToLowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char ToUpperAscii(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ToLowerAscii(c);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ToUpperAscii(c);
  return out;
}

std::string_view LowerInto(std::string_view s, std::string* buf) {
  buf->assign(s);
  for (char& c : *buf) c = ToLowerAscii(c);
  return *buf;
}

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

bool IsAsciiAlnum(char c) { return IsAsciiAlpha(c) || IsAsciiDigit(c); }

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool IsAsciiUpper(char c) { return c >= 'A' && c <= 'Z'; }

bool IsAsciiLower(char c) { return c >= 'a' && c <= 'z'; }

bool IsAsciiPunct(char c) {
  return c > ' ' && c < 0x7f && !IsAsciiAlnum(c);
}

bool IsAllUpper(std::string_view s) {
  bool saw_alpha = false;
  for (char c : s) {
    if (IsAsciiAlpha(c)) {
      if (!IsAsciiUpper(c)) return false;
      saw_alpha = true;
    }
  }
  return saw_alpha;
}

bool IsCapitalized(std::string_view s) {
  return !s.empty() && IsAsciiUpper(s[0]);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerAscii(a[i]) != ToLowerAscii(b[i])) return false;
  }
  return true;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsAsciiSpace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsAsciiSpace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitExact(std::string_view s, std::string_view sep) {
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(s);
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace wf::common
