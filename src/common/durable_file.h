#ifndef WF_COMMON_DURABLE_FILE_H_
#define WF_COMMON_DURABLE_FILE_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wf::common {

// The durable-file layer: the one sanctioned write path for platform
// storage (wflint's platform-raw-file-io rule forbids raw std::ofstream /
// fopen writes in src/platform). Centralizing writes here buys two things:
// every byte headed for disk passes a single fault-injection point, and
// whole-file replacement is always write-temp-then-atomic-rename, so a
// crashed writer can never leave a half-written snapshot behind.

// Deterministic chaos source for the storage layer — the disk-side sibling
// of platform's RPC-level FaultInjector. Two axes:
//
//  * Probabilistic policies, keyed by path prefix (longest match wins):
//    an append may be refused outright (crash before the write), land as a
//    torn strict prefix of the record (crash mid-write), or land with one
//    bit flipped (media corruption — the writer is told Ok and only a
//    checksummed reader ever finds out). Verdicts are a pure function of
//    (seed, path, per-path append sequence), so a chaos run replays
//    exactly from its seed regardless of thread interleaving.
//
//  * A scheduled one-shot crash: ArmCrash makes the Nth append to a
//    matching path tear after a fixed byte count, after which the prefix
//    is "crashed" — every later durable op on it fails IOError until
//    ClearCrashes (the power comes back). This is what deterministic
//    kill-a-node-mid-ingest tests use.
class StorageFaultInjector {
 public:
  explicit StorageFaultInjector(uint64_t seed) : seed_(seed) {}
  StorageFaultInjector(const StorageFaultInjector&) = delete;
  StorageFaultInjector& operator=(const StorageFaultInjector&) = delete;

  struct Policy {
    // Append refused before any byte lands: the caller sees IOError and
    // must not ack the write.
    double fail_probability = 0.0;
    // A strict prefix of the record lands, then IOError — the torn tail a
    // checksummed log must stop at cleanly.
    double torn_probability = 0.0;
    // The record lands whole with one bit flipped and the writer is told
    // Ok: silent corruption only a checksummed reader detects.
    double bitflip_probability = 0.0;
  };
  void SetPolicy(const std::string& path_prefix, Policy policy);
  void ClearPolicy(const std::string& path_prefix);
  void ClearAllPolicies();

  // Schedules a crash on paths matching `path_prefix`: appends 0..n-1 go
  // through, append n writes only `torn_bytes` of its record and fails,
  // and the prefix is crashed from then on. One crash per prefix; arming
  // again replaces the previous schedule.
  void ArmCrash(const std::string& path_prefix, uint64_t after_appends,
                size_t torn_bytes);
  // Like ArmCrash, but counts whole-file durable ops (the CheckWritable
  // gate in front of WriteFileAtomic / WriteSnapshotFile and DurableFile::
  // Open) instead of appends: ops 0..n-1 succeed, op n fails and the
  // prefix is crashed from then on. This is how crash-at-every-step fuzz
  // walks a multi-file protocol (segment flush, compaction manifest swap)
  // through every possible power-loss point.
  void ArmOpCrash(const std::string& path_prefix, uint64_t after_ops);
  // Restores power: crashed prefixes accept writes again (and pending
  // armed crashes are discarded).
  void ClearCrashes();
  bool IsCrashed(const std::string& path) const;

  struct Decision {
    enum class Action { kWrite, kFail, kTorn, kBitFlip };
    Action action = Action::kWrite;
    size_t torn_bytes = 0;   // for kTorn: bytes of the record that land
    size_t flip_offset = 0;  // for kBitFlip: byte whose low bit flips
  };
  // Verdict for one append of `record_size` bytes to `path`.
  Decision DecideAppend(const std::string& path, size_t record_size);

  // Gate for non-append durable ops (atomic whole-file replacement): only
  // the crashed state blocks them.
  common::Status CheckWritable(const std::string& path);

  struct Counters {
    size_t written = 0;
    size_t failed = 0;
    size_t torn = 0;
    size_t bitflipped = 0;
    size_t crashed = 0;  // ops refused because the prefix is crashed
  };
  Counters counters() const;

 private:
  struct ArmedCrash {
    uint64_t after_appends = 0;
    size_t torn_bytes = 0;
    uint64_t seen_appends = 0;
    bool fired = false;
  };
  struct ArmedOpCrash {
    uint64_t after_ops = 0;
    uint64_t seen_ops = 0;
    bool fired = false;
  };

  bool IsCrashedLocked(const std::string& path) const;
  const Policy* MatchPolicyLocked(const std::string& path) const;

  mutable std::mutex mu_;
  const uint64_t seed_;
  std::map<std::string, Policy> policies_;
  std::map<std::string, ArmedCrash> armed_;
  std::map<std::string, ArmedOpCrash> armed_ops_;
  // Per-path append sequence; a path's verdict stream depends only on how
  // many appends that path has seen, not on global order.
  std::map<std::string, uint64_t> append_seq_;
  Counters counters_;
};

// An append-only durable file handle. Append() flushes before returning
// Ok — the contract callers rely on is "Ok means the bytes are on disk",
// so a write-ahead log may ack only after Append succeeds.
class DurableFile {
 public:
  DurableFile() = default;
  ~DurableFile() { Close(); }
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;

  // Opens `path` for appending, creating it if absent. `injector` may be
  // null (no storage faults); it must outlive the file.
  common::Status Open(const std::string& path,
                      StorageFaultInjector* injector = nullptr);
  bool is_open() const { return out_.is_open(); }
  const std::string& path() const { return path_; }

  // Appends `record` and flushes. On injected faults the record may be
  // refused (nothing lands) or torn (a strict prefix lands) — both return
  // IOError and the caller must not ack. An injected bit flip returns Ok:
  // the writer cannot see media corruption; readers catch it by checksum.
  common::Status Append(std::string_view record);

  // Bytes this handle believes are durably on disk (file size including
  // torn prefixes, since those bytes did land).
  uint64_t size() const { return size_; }

  void Close();

 private:
  std::string path_;
  StorageFaultInjector* injector_ = nullptr;
  // The durable-file layer is the sanctioned home of the raw stream.
  std::ofstream out_;
  uint64_t size_ = 0;
};

// Replaces `path` atomically: writes `path`.tmp, flushes, renames. A
// crash (real or injected) mid-write leaves the previous file intact;
// readers see the old complete file or the new one, never a prefix.
common::Status WriteFileAtomic(const std::string& path,
                               std::string_view content,
                               StorageFaultInjector* injector = nullptr);

// Whole file as bytes; IOError when unreadable.
common::Result<std::string> ReadFileToString(const std::string& path);

bool FileExists(const std::string& path);

// --- Checksummed snapshot envelope ------------------------------------------
//
// Every platform snapshot (data-store image, index image) is wrapped in a
// one-line header:
//
//   wfsnap <kind> <version> <payload-bytes> <fnv64-hex>\n<payload>
//
// and written atomically. A reader rejects anything that does not verify —
// wrong magic or kind, short payload, checksum mismatch — with
// Status::Corruption, so a flipped bit or truncated copy can never load as
// silently wrong data.
//
// The registered envelope kinds. Every durable artifact in the system
// names its kind here so a file renamed across roles (a segment posing as
// a manifest, say) is rejected by kind mismatch, not parsed as garbage.
inline constexpr char kSnapKindStore[] = "store";        // DataStore image
inline constexpr char kSnapKindIndex[] = "index";        // InvertedIndex image
inline constexpr char kSnapKindSegment[] = "segment";    // LSM store segment
inline constexpr char kSnapKindIndexSegment[] = "indexseg";  // posting segment
inline constexpr char kSnapKindManifest[] = "manifest";  // segment manifest

// Writes `payload` under the envelope via WriteFileAtomic.
common::Status WriteSnapshotFile(const std::string& path,
                                 const std::string& kind, uint32_t version,
                                 std::string_view payload,
                                 StorageFaultInjector* injector = nullptr);

// Reads and verifies; returns the payload. IOError when the file cannot
// be read, Corruption when the envelope does not verify or `kind` /
// `version` do not match.
common::Result<std::string> ReadSnapshotFile(const std::string& path,
                                             const std::string& kind,
                                             uint32_t version);

}  // namespace wf::common

#endif  // WF_COMMON_DURABLE_FILE_H_
