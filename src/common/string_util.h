#ifndef WF_COMMON_STRING_UTIL_H_
#define WF_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace wf::common {

// ASCII-only case conversion (the corpora are English ASCII text).
char ToLowerAscii(char c);
char ToUpperAscii(char c);
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

// Lowercases `s` into *buf (reusing its capacity) and returns a view of
// buf's contents. The hot-path alternative to ToLower: callers hoist one
// buffer out of their token loop and lowercase with zero steady-state
// allocations. The view is valid until buf is next modified.
std::string_view LowerInto(std::string_view s, std::string* buf);

bool IsAsciiAlpha(char c);
bool IsAsciiDigit(char c);
bool IsAsciiAlnum(char c);
bool IsAsciiSpace(char c);
bool IsAsciiUpper(char c);
bool IsAsciiLower(char c);
bool IsAsciiPunct(char c);

// True when every alphabetic character is uppercase and there is at least one.
bool IsAllUpper(std::string_view s);
// True when the first character is an uppercase letter.
bool IsCapitalized(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

std::string_view StripWhitespace(std::string_view s);

// Splits on any character in `delims`; empty pieces are dropped.
std::vector<std::string> Split(std::string_view s, std::string_view delims);
// Splits on the exact separator string; empty pieces are kept.
std::vector<std::string> SplitExact(std::string_view s, std::string_view sep);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Replaces all occurrences of `from` (must be non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace wf::common

#endif  // WF_COMMON_STRING_UTIL_H_
