#include "common/arena.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/string_util.h"

namespace wf::common {

Arena::Block* Arena::NewBlock(size_t min_bytes) {
  size_t capacity = blocks_.empty()
                        ? kMinBlockBytes
                        : std::min(blocks_.back().capacity * 2, kMaxBlockBytes);
  capacity = std::max(capacity, min_bytes);
  Block block;
  block.data = std::make_unique<char[]>(capacity);
  block.capacity = capacity;
  bytes_reserved_ += capacity;
  blocks_.push_back(std::move(block));
  return &blocks_.back();
}

void* Arena::Alloc(size_t size, size_t align) {
  // Align the returned *address*, not just the block offset: new char[]
  // only guarantees the default new-alignment, so an aligned offset off an
  // odd base would under-align anything stricter.
  auto aligned_offset = [align](const Block& block) {
    uintptr_t base = reinterpret_cast<uintptr_t>(block.data.get());
    uintptr_t aligned = (base + block.used + align - 1) &
                        ~static_cast<uintptr_t>(align - 1);
    return static_cast<size_t>(aligned - base);
  };
  Block* block = blocks_.empty() ? nullptr : &blocks_.back();
  size_t offset = 0;
  if (block != nullptr) {
    offset = aligned_offset(*block);
  }
  if (block == nullptr || offset + size > block->capacity) {
    block = NewBlock(size + align);
    offset = aligned_offset(*block);
  }
  block->used = offset + size;
  bytes_used_ += size;
  return block->data.get() + offset;
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) return std::string_view();
  char* dst = static_cast<char*>(Alloc(s.size(), 1));
  std::memcpy(dst, s.data(), s.size());
  return std::string_view(dst, s.size());
}

void Arena::Reset() {
  if (blocks_.size() > 1) {
    auto largest = std::max_element(
        blocks_.begin(), blocks_.end(),
        [](const Block& a, const Block& b) { return a.capacity < b.capacity; });
    Block keep = std::move(*largest);
    blocks_.clear();
    blocks_.push_back(std::move(keep));
  }
  if (!blocks_.empty()) blocks_.front().used = 0;
  bytes_used_ = 0;
  bytes_reserved_ = blocks_.empty() ? 0 : blocks_.front().capacity;
}

std::string_view StringInterner::Intern(std::string_view s) {
  auto it = set_.find(s);
  if (it != set_.end()) return *it;
  std::string_view stable = arena_->CopyString(s);
  set_.insert(stable);
  return stable;
}

std::string_view StringInterner::InternLower(std::string_view s) {
  char stack[256];
  if (s.size() <= sizeof(stack)) {
    for (size_t i = 0; i < s.size(); ++i) stack[i] = ToLowerAscii(s[i]);
    return Intern(std::string_view(stack, s.size()));
  }
  std::string lower = ToLower(s);  // absurdly long token: rare, correct
  return Intern(lower);
}

}  // namespace wf::common
