#include "common/rng.h"

namespace wf::common {

size_t Rng::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    WF_CHECK(w >= 0.0);
    total += w;
  }
  WF_CHECK(total > 0.0) << "Weighted() requires at least one positive weight";
  double r = Double() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace wf::common
