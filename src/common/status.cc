#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace wf::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessing value of errored Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

void DieOkStatusInResult() {
  std::fprintf(stderr, "FATAL: Result constructed from OK status\n");
  std::abort();
}

}  // namespace internal
}  // namespace wf::common
