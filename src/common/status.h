#ifndef WF_COMMON_STATUS_H_
#define WF_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace wf::common {

// Canonical error codes, modeled after the usual database-library set.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  kIOError,
  kCorruption,
  kUnimplemented,
};

// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// Status carries the outcome of an operation that can fail. The library does
// not use exceptions; every fallible API returns Status or Result<T>.
//
// [[nodiscard]] on the class makes silently dropping any returned Status a
// compile error under -Werror; use WF_CHECK_OK / WF_RETURN_IF_ERROR, or
// (void)-cast with a comment when ignoring the outcome is genuinely correct.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  [[nodiscard]] static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T> holds either a value or an error Status. Accessing the value of
// an errored Result aborts the process (programming error). [[nodiscard]]
// for the same reason as Status: a dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : value_(std::move(status)) { AbortIfOkStatus(); }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(value_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(value_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(value_));
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;
  void AbortIfOkStatus() const;

  std::variant<T, Status> value_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
[[noreturn]] void DieOkStatusInResult();
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieBadResultAccess(std::get<Status>(value_));
}

template <typename T>
void Result<T>::AbortIfOkStatus() const {
  if (std::holds_alternative<Status>(value_) &&
      std::get<Status>(value_).ok()) {
    internal::DieOkStatusInResult();
  }
}

}  // namespace wf::common

// Propagates a non-OK status to the caller.
#define WF_RETURN_IF_ERROR(expr)                       \
  do {                                                 \
    ::wf::common::Status wf_status_ = (expr);          \
    if (!wf_status_.ok()) return wf_status_;           \
  } while (0)

// Evaluates a Result<T> expression; on error returns the status, otherwise
// assigns the value to `lhs` (which must be a declaration or lvalue).
#define WF_ASSIGN_OR_RETURN(lhs, expr)               \
  WF_ASSIGN_OR_RETURN_IMPL_(                         \
      WF_STATUS_CONCAT_(wf_result_, __LINE__), lhs, expr)

#define WF_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).value()

#define WF_STATUS_CONCAT_(a, b) WF_STATUS_CONCAT_IMPL_(a, b)
#define WF_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // WF_COMMON_STATUS_H_
