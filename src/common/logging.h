#ifndef WF_COMMON_LOGGING_H_
#define WF_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace wf::common {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Process-wide minimum level; messages below it are dropped.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal {

// Accumulates one log line and emits it (to stderr) on destruction.
// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace wf::common

#define WF_LOG_ENABLED_(level)                       \
  (::wf::common::LogLevel::level >= ::wf::common::MinLogLevel())

#define WF_LOG(severity)                                                   \
  if (!WF_LOG_ENABLED_(k##severity))                                       \
    ;                                                                      \
  else                                                                     \
    ::wf::common::internal::LogMessage(::wf::common::LogLevel::k##severity, \
                                       __FILE__, __LINE__)                 \
        .stream()

// Always-on invariant check; aborts with a message when `cond` is false.
#define WF_CHECK(cond)                                                      \
  if (cond)                                                                 \
    ;                                                                       \
  else                                                                      \
    ::wf::common::internal::LogMessage(::wf::common::LogLevel::kFatal,      \
                                       __FILE__, __LINE__)                  \
            .stream()                                                       \
        << "Check failed: " #cond " "

#define WF_CHECK_OK(expr)                                              \
  do {                                                                 \
    ::wf::common::Status wf_check_status_ = (expr);                    \
    WF_CHECK(wf_check_status_.ok()) << wf_check_status_.ToString();    \
  } while (0)

#endif  // WF_COMMON_LOGGING_H_
