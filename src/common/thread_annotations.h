#ifndef WF_COMMON_THREAD_ANNOTATIONS_H_
#define WF_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotation macros (DESIGN.md §11). Under Clang they
// expand to the attributes `-Wthread-safety` analyzes; under every other
// compiler they expand to nothing, so the annotations are pure
// documentation there. wflint's guarded-by rule reads the same spellings
// textually, which is what makes the discipline enforceable even on
// toolchains without the Clang analysis (the `clang-tsafety` preset is the
// precise backstop where clang++ is available).
//
// Conventions:
//   - Every field a mutex protects carries WF_GUARDED_BY(that_mutex).
//   - Fields declared after a mutex member belong to it; immutable
//     configuration set before threads exist is declared above the mutex.
//   - A private helper that expects the lock held is annotated
//     WF_REQUIRES(mu) instead of re-locking.
//   - Code the analysis cannot follow (condition-variable wait loops that
//     pass a unique_lock around) is annotated
//     WF_NO_THREAD_SAFETY_ANALYSIS, with the fields still annotated so
//     every other access keeps being checked.

#if defined(__clang__) && (!defined(SWIG))
#define WF_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define WF_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// A type that models a capability (e.g. a mutex). `x` names the capability
// kind in diagnostics: WF_CAPABILITY("mutex").
#define WF_CAPABILITY(x) WF_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor.
#define WF_SCOPED_CAPABILITY WF_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// The annotated field may only be read or written while holding `x`.
#define WF_GUARDED_BY(x) WF_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// The annotated pointer field may be dereferenced only while holding `x`
// (the pointer itself is unguarded).
#define WF_PT_GUARDED_BY(x) WF_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// The annotated function must be called with `...` held (a lock-held
// helper). The caller keeps ownership of the lock.
#define WF_REQUIRES(...) \
  WF_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// The annotated function must be called with `...` NOT held (it will take
// the lock itself; calling it under the lock would deadlock).
#define WF_EXCLUDES(...) \
  WF_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// The annotated function acquires / releases the capability.
#define WF_ACQUIRE(...) \
  WF_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define WF_RELEASE(...) \
  WF_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define WF_TRY_ACQUIRE(...) \
  WF_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// Returns a reference to the capability guarding the annotated function's
// result (rarely needed; provided for completeness).
#define WF_RETURN_CAPABILITY(x) \
  WF_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Opts one function out of the analysis. Use sparingly and say why.
#define WF_NO_THREAD_SAFETY_ANALYSIS \
  WF_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // WF_COMMON_THREAD_ANNOTATIONS_H_
