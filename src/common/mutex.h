#ifndef WF_COMMON_MUTEX_H_
#define WF_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace wf::common {

// A std::mutex annotated as a Clang thread-safety capability, so
// WF_GUARDED_BY(mu_) on fields is actually checkable: libstdc++'s
// std::mutex carries no capability attributes, which would make every
// guarded access a false warning under `-Wthread-safety`. The lowercase
// lock/unlock/try_lock surface keeps it a standard Lockable, so
// std::unique_lock<Mutex> and std::condition_variable_any still work where
// a scoped MutexLock cannot (the mining pool's wait loops).
class WF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WF_ACQUIRE() { mu_.lock(); }
  void unlock() WF_RELEASE() { mu_.unlock(); }
  bool try_lock() WF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock over common::Mutex, annotated as a scoped capability — the
// analysis knows the mutex is held for the MutexLock's whole scope.
// std::lock_guard would work at runtime but is invisible to the analysis
// (its constructor is not annotated), so guarded code uses this instead.
class WF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() WF_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace wf::common

#endif  // WF_COMMON_MUTEX_H_
