#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace wf::common {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace wf::common
