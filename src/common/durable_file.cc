#include "common/durable_file.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/hash.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace wf::common {

// --- StorageFaultInjector ---------------------------------------------------

void StorageFaultInjector::SetPolicy(const std::string& path_prefix,
                                     Policy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policies_[path_prefix] = policy;
}

void StorageFaultInjector::ClearPolicy(const std::string& path_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  policies_.erase(path_prefix);
}

void StorageFaultInjector::ClearAllPolicies() {
  std::lock_guard<std::mutex> lock(mu_);
  policies_.clear();
}

void StorageFaultInjector::ArmCrash(const std::string& path_prefix,
                                    uint64_t after_appends,
                                    size_t torn_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[path_prefix] =
      ArmedCrash{after_appends, torn_bytes, /*seen_appends=*/0,
                 /*fired=*/false};
}

void StorageFaultInjector::ArmOpCrash(const std::string& path_prefix,
                                      uint64_t after_ops) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ops_[path_prefix] = ArmedOpCrash{after_ops, /*seen_ops=*/0,
                                         /*fired=*/false};
}

void StorageFaultInjector::ClearCrashes() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  armed_ops_.clear();
}

bool StorageFaultInjector::IsCrashedLocked(const std::string& path) const {
  for (const auto& [prefix, crash] : armed_) {
    if (crash.fired && StartsWith(path, prefix)) return true;
  }
  for (const auto& [prefix, crash] : armed_ops_) {
    if (crash.fired && StartsWith(path, prefix)) return true;
  }
  return false;
}

bool StorageFaultInjector::IsCrashed(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return IsCrashedLocked(path);
}

const StorageFaultInjector::Policy* StorageFaultInjector::MatchPolicyLocked(
    const std::string& path) const {
  const Policy* best = nullptr;
  size_t best_len = 0;
  for (const auto& [prefix, policy] : policies_) {
    if (!StartsWith(path, prefix)) continue;
    if (best == nullptr || prefix.size() >= best_len) {
      best = &policy;
      best_len = prefix.size();
    }
  }
  return best;
}

StorageFaultInjector::Decision StorageFaultInjector::DecideAppend(
    const std::string& path, size_t record_size) {
  std::lock_guard<std::mutex> lock(mu_);
  Decision decision;
  if (IsCrashedLocked(path)) {
    decision.action = Decision::Action::kFail;
    ++counters_.crashed;
    return decision;
  }
  // Scheduled crash first: it is an explicit script, not a dice roll.
  for (auto& [prefix, crash] : armed_) {
    if (crash.fired || !StartsWith(path, prefix)) continue;
    if (crash.seen_appends++ == crash.after_appends) {
      crash.fired = true;
      decision.action = Decision::Action::kTorn;
      decision.torn_bytes =
          record_size > 0 ? crash.torn_bytes % record_size : 0;
      ++counters_.torn;
      return decision;
    }
  }
  const Policy* policy = MatchPolicyLocked(path);
  if (policy == nullptr) {
    ++counters_.written;
    return decision;
  }
  // As with the RPC injector: the verdict for "the k-th append to path P"
  // is a pure function of (seed, P, k), whatever thread gets there first.
  uint64_t seq = append_seq_[path]++;
  uint64_t mix =
      HashCombine(HashCombine(seed_, Fnv1a64(path)), seq);
  Rng rng(mix);
  if (rng.Bernoulli(policy->fail_probability)) {
    decision.action = Decision::Action::kFail;
    ++counters_.failed;
  } else if (rng.Bernoulli(policy->torn_probability)) {
    decision.action = Decision::Action::kTorn;
    decision.torn_bytes =
        record_size > 1
            ? static_cast<size_t>(
                  rng.Uniform(1, static_cast<int64_t>(record_size) - 1))
            : 0;
    ++counters_.torn;
  } else if (rng.Bernoulli(policy->bitflip_probability)) {
    decision.action = Decision::Action::kBitFlip;
    decision.flip_offset =
        record_size > 0
            ? static_cast<size_t>(
                  rng.Uniform(0, static_cast<int64_t>(record_size) - 1))
            : 0;
    ++counters_.bitflipped;
  } else {
    ++counters_.written;
  }
  return decision;
}

common::Status StorageFaultInjector::CheckWritable(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (IsCrashedLocked(path)) {
    ++counters_.crashed;
    return Status::IOError("simulated storage crash: " + path);
  }
  // A scheduled op crash fires on the Nth gated durable op, then leaves
  // the prefix crashed — the same one-shot power-loss contract as
  // ArmCrash, but stepping whole-file ops instead of appends.
  for (auto& [prefix, crash] : armed_ops_) {
    if (crash.fired || !StartsWith(path, prefix)) continue;
    if (crash.seen_ops++ == crash.after_ops) {
      crash.fired = true;
      ++counters_.crashed;
      return Status::IOError("simulated storage crash (op): " + path);
    }
  }
  return Status::Ok();
}

StorageFaultInjector::Counters StorageFaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

// --- DurableFile ------------------------------------------------------------

common::Status DurableFile::Open(const std::string& path,
                                 StorageFaultInjector* injector) {
  if (is_open()) return Status::FailedPrecondition("already open: " + path_);
  if (injector != nullptr) {
    WF_RETURN_IF_ERROR(injector->CheckWritable(path));
  }
  out_.open(path, std::ios::app | std::ios::binary);
  if (!out_) return Status::IOError("cannot open for append: " + path);
  path_ = path;
  injector_ = injector;
  std::error_code ec;
  uint64_t existing = std::filesystem::file_size(path, ec);
  size_ = ec ? 0 : existing;
  return Status::Ok();
}

common::Status DurableFile::Append(std::string_view record) {
  if (!is_open()) return Status::FailedPrecondition("file not open");
  StorageFaultInjector::Decision decision;
  if (injector_ != nullptr) {
    decision = injector_->DecideAppend(path_, record.size());
  }
  using Action = StorageFaultInjector::Decision::Action;
  switch (decision.action) {
    case Action::kFail:
      return Status::IOError("simulated append failure: " + path_);
    case Action::kTorn: {
      // The crash hit mid-write: a strict prefix lands and is flushed (it
      // really is on disk — that is the torn tail recovery must detect).
      out_.write(record.data(),
                 static_cast<std::streamsize>(decision.torn_bytes));
      out_.flush();
      size_ += decision.torn_bytes;
      return Status::IOError("simulated torn write: " + path_);
    }
    case Action::kBitFlip: {
      std::string mangled(record);
      mangled[decision.flip_offset % mangled.size()] ^= 0x01;
      out_.write(mangled.data(),
                 static_cast<std::streamsize>(mangled.size()));
      out_.flush();
      size_ += mangled.size();
      // The writer cannot see media corruption; Ok by design.
      return out_ ? Status::Ok()
                  : Status::IOError("write failed: " + path_);
    }
    case Action::kWrite:
      break;
  }
  out_.write(record.data(), static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_) return Status::IOError("write failed: " + path_);
  size_ += record.size();
  return Status::Ok();
}

void DurableFile::Close() {
  if (out_.is_open()) out_.close();
  path_.clear();
  injector_ = nullptr;
  size_ = 0;
}

// --- Whole-file helpers -----------------------------------------------------

common::Status WriteFileAtomic(const std::string& path,
                               std::string_view content,
                               StorageFaultInjector* injector) {
  if (injector != nullptr) {
    WF_RETURN_IF_ERROR(injector->CheckWritable(path));
  }
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc | std::ios::binary);
    if (!out) return Status::IOError("cannot open for write: " + tmp_path);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp_path.c_str());
      return Status::IOError("write failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename " + tmp_path + " to " + path);
  }
  return Status::Ok();
}

common::Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);
  return content;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

// --- Snapshot envelope ------------------------------------------------------

namespace {
constexpr char kSnapshotMagic[] = "wfsnap";
}  // namespace

common::Status WriteSnapshotFile(const std::string& path,
                                 const std::string& kind, uint32_t version,
                                 std::string_view payload,
                                 StorageFaultInjector* injector) {
  std::string file = StrFormat("%s %s %u %zu %016llx\n", kSnapshotMagic,
                               kind.c_str(), version, payload.size(),
                               static_cast<unsigned long long>(
                                   Fnv1a64(payload)));
  file.append(payload.data(), payload.size());
  return WriteFileAtomic(path, file, injector);
}

common::Result<std::string> ReadSnapshotFile(const std::string& path,
                                             const std::string& kind,
                                             uint32_t version) {
  WF_ASSIGN_OR_RETURN(std::string file, ReadFileToString(path));
  size_t newline = file.find('\n');
  if (newline == std::string::npos) {
    return Status::Corruption("snapshot missing header: " + path);
  }
  std::vector<std::string> parts = Split(file.substr(0, newline), " ");
  if (parts.size() != 5 || parts[0] != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic in " + path);
  }
  if (parts[1] != kind) {
    return Status::Corruption("snapshot kind mismatch in " + path +
                              ": got '" + parts[1] + "', want '" + kind +
                              "'");
  }
  char* end = nullptr;
  unsigned long parsed_version = std::strtoul(parts[2].c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || parsed_version != version) {
    return Status::Corruption("snapshot version mismatch in " + path);
  }
  unsigned long long payload_size =
      std::strtoull(parts[3].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::Corruption("bad snapshot size in " + path);
  }
  unsigned long long checksum = std::strtoull(parts[4].c_str(), &end, 16);
  if (end == nullptr || *end != '\0' || parts[4].size() != 16) {
    return Status::Corruption("bad snapshot checksum in " + path);
  }
  std::string payload = file.substr(newline + 1);
  if (payload.size() != payload_size) {
    return Status::Corruption(
        StrFormat("snapshot truncated: %s has %zu payload bytes, header "
                  "says %llu",
                  path.c_str(), payload.size(), payload_size));
  }
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("snapshot checksum mismatch in " + path);
  }
  return payload;
}

}  // namespace wf::common
