#ifndef WF_COMMON_ARENA_H_
#define WF_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace wf::common {

// Bump allocator for the per-document analysis front half (DESIGN.md §15):
// everything a LinguisticAnalysis needs — the body copy its token views
// slice, interned lemmas, clitic forms — is carved out of a handful of
// geometrically growing blocks and released in O(1) when the artifact dies.
// Not thread-safe: one arena belongs to one analysis, which is built by one
// worker and immutable afterwards (concurrent *reads* of arena-owned bytes
// are safe because nothing mutates after construction).
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `size` bytes aligned to `align` (a power of two). Zero-size
  // allocations return a unique, valid, unusable pointer.
  void* Alloc(size_t size, size_t align = alignof(std::max_align_t));

  // Copies `s` into the arena and returns a view of the stable copy.
  std::string_view CopyString(std::string_view s);

  // Drops every allocation but keeps the largest block for reuse, so a
  // reused arena reaches steady-state with zero mallocs per document.
  void Reset();

  // Bytes handed out since construction/Reset (what callers asked for).
  size_t bytes_used() const { return bytes_used_; }
  // Bytes held in blocks (what the arena asked malloc for).
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  // First block is one page; doubles until kMaxBlockBytes. Oversized
  // requests get a dedicated block of exactly the requested size.
  static constexpr size_t kMinBlockBytes = 4096;
  static constexpr size_t kMaxBlockBytes = 256 * 1024;

  Block* NewBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  size_t bytes_used_ = 0;
  size_t bytes_reserved_ = 0;
};

// Deduplicating string store over an Arena: Intern returns a stable view
// that compares equal to the input, and two equal inputs share one copy.
// The hash set's nodes live on the normal heap (bounded by the number of
// distinct strings, typically tiny per document); the bytes live in the
// arena. Same thread-safety story as Arena: build single-threaded, read
// from anywhere.
class StringInterner {
 public:
  explicit StringInterner(Arena* arena) : arena_(arena) {}
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  // Stable view of `s` (arena-backed unless already interned).
  std::string_view Intern(std::string_view s);

  // Stable lowercase view of `s` — the hot-path replacement for
  // `ToLower(token.text)` temporaries: lowercases into a stack buffer and
  // interns, so repeated tokens ("the", "battery") cost one copy per
  // document, not one malloc per occurrence.
  std::string_view InternLower(std::string_view s);

  size_t size() const { return set_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  Arena* arena_;
  std::unordered_set<std::string_view, Hash, std::equal_to<>> set_;
};

}  // namespace wf::common

#endif  // WF_COMMON_ARENA_H_
