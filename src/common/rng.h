#ifndef WF_COMMON_RNG_H_
#define WF_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace wf::common {

// Deterministic pseudo-random generator. Every stochastic component in the
// library (corpus generation, sampling, shuffles) takes an explicit Rng so
// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    WF_CHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform index in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    WF_CHECK(n > 0);
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  }

  // Uniform double in [0, 1).
  double Double() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return Double() < p;
  }

  // Picks a uniformly random element. Requires non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    WF_CHECK(!v.empty());
    return v[Index(v.size())];
  }

  // Samples an index according to non-negative weights (at least one > 0).
  size_t Weighted(const std::vector<double>& weights);

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Index(i)]);
    }
  }

  // Derives an independent child generator; useful to give each document its
  // own stream so insertion order does not perturb other documents.
  Rng Fork() { return Rng(engine_() * 0x9e3779b97f4a7c15ULL + engine_()); }

 private:
  // This class is the one sanctioned home for an RNG engine; everything
  // else must take an Rng (wflint's banned-rng rule enforces it).
  // wflint: allow(banned-rng)
  std::mt19937_64 engine_;
};

}  // namespace wf::common

#endif  // WF_COMMON_RNG_H_
