#include "corpus/review_gen.h"

#include "common/rng.h"
#include "common/string_util.h"
#include "corpus/sentence_templates.h"

namespace wf::corpus {

using ::wf::common::Rng;
using ::wf::lexicon::Polarity;

std::vector<GeneratedDoc> GenerateReviews(const DomainVocab& domain,
                                          size_t n_docs, uint64_t seed,
                                          const ReviewGenOptions& options) {
  Rng master(seed);
  // Reviews draw from a truncated sentiment-vocabulary view (see
  // TruncatedPools): the held-out words appear only in general-web text.
  const WordPools review_pools = TruncatedPools(SharedWordPools(), 0.6);
  SentenceFactory factory(&domain, &review_pools);
  std::vector<GeneratedDoc> docs;
  docs.reserve(n_docs);

  for (size_t d = 0; d < n_docs; ++d) {
    Rng rng = master.Fork();
    GeneratedDoc doc;
    doc.id = common::StrFormat("%s-review-%zu", domain.name.c_str(), d);
    doc.domain = domain.name;
    doc.on_topic = true;
    doc.doc_polarity =
        rng.Bernoulli(0.5) ? Polarity::kPositive : Polarity::kNegative;

    const Product& product = rng.Pick(domain.products);
    size_t n_sentences = static_cast<size_t>(rng.Uniform(
        static_cast<int64_t>(options.min_sentences),
        static_cast<int64_t>(options.max_sentences)));

    std::vector<std::string> sentences;
    size_t sentence_index = 0;
    auto append = [&](GenSentence s) {
      for (SpotGold& g : s.golds) {
        g.sentence_index = sentence_index;
        doc.golds.push_back(std::move(g));
      }
      sentences.push_back(std::move(s.text));
      ++sentence_index;
    };
    auto append_plain = [&](std::string text) {
      sentences.push_back(std::move(text));
      ++sentence_index;
    };

    // Opening: a neutral product mention anchoring the review.
    append(factory.Neutral(rng, product.name, /*with_distractor=*/false));

    // One comparison/contrastive sentence per review, sometimes.
    if (rng.Bernoulli(options.comparison_prob) &&
        domain.products.size() >= 2) {
      const Product* other = &rng.Pick(domain.products);
      while (other->name == product.name) other = &rng.Pick(domain.products);
      bool win = doc.doc_polarity == Polarity::kPositive;
      append(factory.Comparison(rng, win ? product.name : other->name,
                                win ? other->name : product.name));
    } else if (rng.Bernoulli(options.contrastive_prob) &&
               domain.products.size() >= 2) {
      const Product* other = &rng.Pick(domain.products);
      while (other->name == product.name) other = &rng.Pick(domain.products);
      bool win = doc.doc_polarity == Polarity::kPositive;
      append(factory.Contrastive(rng, win ? product.name : other->name,
                                 win ? other->name : product.name));
    }

    while (sentence_index < n_sentences) {
      // Occasional filler with no subject.
      if (rng.Bernoulli(0.08)) {
        append_plain(factory.Filler(rng));
        continue;
      }
      std::string subject = rng.Bernoulli(options.product_subject_prob)
                                ? product.name
                                : rng.Pick(domain.features);
      // Occasional compound sentence carrying two opposite-polarity golds.
      if (rng.Bernoulli(0.015) && domain.features.size() >= 2) {
        const std::string* other = &rng.Pick(domain.features);
        while (*other == subject) other = &rng.Pick(domain.features);
        if (rng.Bernoulli(0.5)) {
          append(factory.Compound(rng, subject, *other));
        } else {
          append(factory.Compound(rng, *other, subject));
        }
        continue;
      }
      if (!rng.Bernoulli(options.polar_prob)) {
        double bias =
            doc.doc_polarity == Polarity::kPositive ? 0.72 : 0.28;
        append(factory.Neutral(
            rng, subject, rng.Bernoulli(options.neutral_distractor_prob),
            bias));
        continue;
      }
      Polarity target = doc.doc_polarity;
      if (rng.Bernoulli(options.off_lean_prob)) {
        target = lexicon::Flip(target);
      }
      double roll = rng.Double();
      if (roll < options.a_frac) {
        append(factory.PolarExtractable(rng, subject, target));
      } else if (roll < options.a_frac + options.b_frac) {
        append(factory.PolarMissed(rng, subject, target,
                                   rng.Bernoulli(options.b_lexicon_frac)));
      } else {
        append(factory.PolarTrap(rng, subject, target));
      }
    }

    doc.body = common::Join(sentences, " ");
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace wf::corpus
