#ifndef WF_CORPUS_REVIEW_GEN_H_
#define WF_CORPUS_REVIEW_GEN_H_

#include <cstdint>
#include <vector>

#include "corpus/domain.h"
#include "corpus/generated.h"

namespace wf::corpus {

// Knobs controlling the composition of generated product reviews. Defaults
// are calibrated so the evaluation harness reproduces the *shape* of the
// paper's Table 4 (see EXPERIMENTS.md).
struct ReviewGenOptions {
  size_t min_sentences = 8;
  size_t max_sentences = 14;
  // Probability a mention sentence is about the product itself rather than
  // a feature (drives the Table 3 reference-count ratio).
  double product_subject_prob = 0.05;
  // Probability a mention is sentiment-bearing (the rest are neutral).
  double polar_prob = 0.30;
  // Split of polar mentions: extractable / missed; the remainder are traps.
  double a_frac = 0.50;
  double b_frac = 0.42;
  // Fraction of missed-class sentences that still contain lexicon words.
  double b_lexicon_frac = 0.70;
  // Fraction of neutral mentions planted with an off-target sentiment word.
  double neutral_distractor_prob = 0.80;
  // Chance a review carries one comparison / contrastive sentence.
  double comparison_prob = 0.10;
  double contrastive_prob = 0.08;
  // Probability a polar sentence leans against the review's star rating —
  // mixed reviews are what keeps document classifiers below 100%.
  double off_lean_prob = 0.15;
};

// Generates `n_docs` reviews for the domain (digital cameras, music
// albums), each with gold (subject, sentence, polarity) annotations and a
// document-level rating usable as ReviewSeer training/eval labels.
// Deterministic in `seed`; ids are "<domain>-review-<i>".
std::vector<GeneratedDoc> GenerateReviews(const DomainVocab& domain,
                                          size_t n_docs, uint64_t seed,
                                          const ReviewGenOptions& options);

inline std::vector<GeneratedDoc> GenerateReviews(const DomainVocab& domain,
                                                 size_t n_docs,
                                                 uint64_t seed) {
  return GenerateReviews(domain, n_docs, seed, ReviewGenOptions{});
}

}  // namespace wf::corpus

#endif  // WF_CORPUS_REVIEW_GEN_H_
