#ifndef WF_CORPUS_DOMAIN_H_
#define WF_CORPUS_DOMAIN_H_

#include <string>
#include <vector>

namespace wf::corpus {

// A product (or company/drug) in an evaluation domain.
struct Product {
  std::string name;    // "PowerLine S45"
  std::string brand;   // "Canon"
  std::vector<std::string> variants;  // extra spotter surface forms
};

// The vocabulary of one evaluation domain: digital cameras, music albums,
// petroleum, pharmaceutical. Generators draw subjects and aspect terms from
// here; the same lists seed the spotter and the gold answer keys.
struct DomainVocab {
  std::string name;  // "camera", "music", "petroleum", "pharma"
  std::vector<Product> products;
  // Aspect/feature terms ("battery", "picture quality"). The first word
  // pools double as the gold feature list for the Table 2 experiment.
  std::vector<std::string> features;
  // Domain-topical filler nouns for neutral sentences ("tripod", "memo").
  std::vector<std::string> topical_nouns;
  // Context words used by the disambiguator's on-topic sets.
  std::vector<std::string> context_terms;
};

// Built-in domains (definitions in domain_data.cc).
const DomainVocab& CameraDomain();
const DomainVocab& MusicDomain();
const DomainVocab& PetroleumDomain();
const DomainVocab& PharmaDomain();

// Shared sentiment word pools, split by whether the embedded sentiment
// lexicon knows them (A-class templates need lexicon hits; some B-class
// templates need none).
struct WordPools {
  std::vector<std::string> pos_adjectives;    // in lexicon
  std::vector<std::string> neg_adjectives;    // in lexicon
  std::vector<std::string> pos_nouns;         // in lexicon
  std::vector<std::string> neg_nouns;         // in lexicon
  std::vector<std::string> pos_adverbs;       // in lexicon
  std::vector<std::string> neg_adverbs;       // in lexicon
  std::vector<std::string> neutral_adjectives;  // NOT in lexicon
};

const WordPools& SharedWordPools();

// A copy of `pools` keeping only the first `fraction` of each sentiment
// pool. Review generation uses a truncated view so that general-web text
// contains sentiment vocabulary a review-trained classifier never saw —
// the domain-transfer gap behind ReviewSeer's Table 5 collapse.
WordPools TruncatedPools(const WordPools& pools, double fraction);

}  // namespace wf::corpus

#endif  // WF_CORPUS_DOMAIN_H_
