#ifndef WF_CORPUS_WEB_GEN_H_
#define WF_CORPUS_WEB_GEN_H_

#include <cstdint>
#include <vector>

#include "corpus/domain.h"
#include "corpus/generated.h"

namespace wf::corpus {

// Composition knobs for general web pages and news articles — sentiment is
// sparse and "difficult" (I-class) mentions dominate, per §4.2's
// observation that 60–90% of sentiment-bearing sentences on the open web
// are ambiguous, off-target, or sentiment-free.
struct WebGenOptions {
  size_t min_sentences = 6;
  size_t max_sentences = 12;
  double polar_prob = 0.22;
  double a_frac = 0.62;
  double b_frac = 0.33;  // remainder are traps
  double b_lexicon_frac = 0.40;
  double neutral_distractor_prob = 0.50;
  bool news_style = false;  // denser company mentions, more filler
};

// Generates web pages / news articles about the domain's companies or
// products with gold annotations. Ids are "<domain>-<web|news>-<i>".
std::vector<GeneratedDoc> GenerateWebDocs(const DomainVocab& domain,
                                          size_t n_docs, uint64_t seed,
                                          const WebGenOptions& options);

// Off-topic documents (the D- collections and disambiguation negatives):
// everyday-topic pages (weather, travel, cooking, sports) that still
// contain definite-NP sentence openers (so bBNP candidates occur off topic)
// and surface collisions like "sun"/"Sunday" for the disambiguator.
std::vector<GeneratedDoc> GenerateOffTopicDocs(size_t n_docs, uint64_t seed);

}  // namespace wf::corpus

#endif  // WF_CORPUS_WEB_GEN_H_
