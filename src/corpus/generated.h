#ifndef WF_CORPUS_GENERATED_H_
#define WF_CORPUS_GENERATED_H_

#include <string>
#include <vector>

#include "lexicon/sentiment_lexicon.h"

namespace wf::corpus {

// Expected-behaviour class of a generated test case, used for calibration
// diagnostics (never consumed by the miners):
//   'A' — sentiment expressed through a construction the pattern database
//         covers (the miner should extract it),
//   'B' — genuine sentiment the NLP approach misses (unknown predicate,
//         verbless exclamation, cross-sentence), the recall ceiling,
//   'C' — gold-neutral mention (possibly with off-target sentiment words
//         nearby, the collocation killer),
//   'D' — adversarial trap where relationship analysis assigns the wrong
//         polarity (concessives, "until it breaks").
// One gold answer: subject `subject` in sentence `sentence_index` carries
// `polarity`.
struct SpotGold {
  std::string subject;       // surface form as embedded in the sentence
  size_t sentence_index = 0;
  lexicon::Polarity polarity = lexicon::Polarity::kNeutral;
  bool i_class = false;  // paper's "I class": ambiguous / off-target / no sentiment
  char template_class = 'C';
};

// One synthetic document with its gold annotations.
struct GeneratedDoc {
  std::string id;
  std::string domain;  // "camera", "music", "petroleum", "pharma", "offtopic"
  std::string body;
  std::vector<SpotGold> golds;
  // Overall review rating (document-level label for the ReviewSeer
  // baseline); neutral for non-review documents.
  lexicon::Polarity doc_polarity = lexicon::Polarity::kNeutral;
  bool on_topic = true;  // D+ vs D- membership
};

}  // namespace wf::corpus

#endif  // WF_CORPUS_GENERATED_H_
