#include "corpus/datasets.h"

#include "corpus/review_gen.h"
#include "corpus/web_gen.h"

namespace wf::corpus {

namespace {

ReviewDataset BuildReviewDataset(const DomainVocab& domain, size_t n_plus,
                                 size_t n_minus, size_t n_train,
                                 uint64_t seed) {
  ReviewDataset ds;
  ds.domain = &domain;
  ds.d_plus = GenerateReviews(domain, n_plus, seed);
  ds.d_minus = GenerateOffTopicDocs(n_minus, seed + 1);
  ds.train = GenerateReviews(domain, n_train, seed + 2);
  // Training docs get distinct ids.
  for (size_t i = 0; i < ds.train.size(); ++i) {
    ds.train[i].id += "-train";
  }
  return ds;
}

}  // namespace

ReviewDataset BuildCameraDataset(uint64_t seed) {
  return BuildReviewDataset(CameraDomain(), 485, 1838, 400, seed);
}

ReviewDataset BuildMusicDataset(uint64_t seed) {
  return BuildReviewDataset(MusicDomain(), 250, 2389, 300, seed);
}

WebDataset BuildPetroleumWebDataset(uint64_t seed) {
  WebDataset ds;
  ds.domain = &PetroleumDomain();
  ds.docs = GenerateWebDocs(PetroleumDomain(), 300, seed, WebGenOptions{});
  return ds;
}

WebDataset BuildPharmaWebDataset(uint64_t seed) {
  WebDataset ds;
  ds.domain = &PharmaDomain();
  ds.docs = GenerateWebDocs(PharmaDomain(), 300, seed, WebGenOptions{});
  return ds;
}

WebDataset BuildPetroleumNewsDataset(uint64_t seed) {
  WebDataset ds;
  ds.domain = &PetroleumDomain();
  WebGenOptions options;
  options.news_style = true;
  ds.docs = GenerateWebDocs(PetroleumDomain(), 250, seed, options);
  return ds;
}

}  // namespace wf::corpus
