#include "corpus/sentence_templates.h"

#include "common/string_util.h"

namespace wf::corpus {

using ::wf::common::Rng;
using ::wf::common::StrFormat;
using ::wf::lexicon::Polarity;

namespace {

std::string Capitalize(std::string s) {
  if (!s.empty()) s[0] = common::ToUpperAscii(s[0]);
  return s;
}

// "a" / "an" by the first letter of the following word.
const char* Art(const std::string& word) {
  if (word.empty()) return "a";
  switch (common::ToLowerAscii(word[0])) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
      return "an";
    default:
      return "a";
  }
}

SpotGold MakeGold(const std::string& subject, Polarity polarity, char clazz,
                  bool i_class = false) {
  SpotGold g;
  g.subject = subject;
  g.polarity = polarity;
  g.template_class = clazz;
  g.i_class = i_class;
  return g;
}

}  // namespace

std::string SentenceFactory::Np(const std::string& subject) const {
  if (!subject.empty() && common::IsAsciiUpper(subject[0])) return subject;
  return "the " + subject;
}

bool SentenceFactory::IsPlural(const std::string& subject) const {
  static const char* kPlural[] = {"lyrics",    "vocals",       "emissions",
                                  "reserves",  "side effects", "trial results"};
  for (const char* p : kPlural) {
    if (subject == p) return true;
  }
  return false;
}

GenSentence SentenceFactory::PolarExtractableWeb(Rng& rng,
                                                 const std::string& subject,
                                                 Polarity target) const {
  const bool pos = (target == Polarity::kPositive);
  const auto& adj = pos ? pools_->pos_adjectives : pools_->neg_adjectives;
  const std::string np = Np(subject);
  const bool plural = IsPlural(subject);
  auto v = [&](const char* sing, const char* plur) {
    return plural ? plur : sing;
  };
  const std::string& feature = rng.Pick(domain_->features);

  std::string text;
  if (pos) {
    switch (rng.Index(6)) {
      case 0:
        text = StrFormat("Analysts admire %s.", np.c_str());
        break;
      case 1:
      {
        const std::string& a = rng.Pick(adj);
        text = StrFormat("%s %s %s %s %s.", np.c_str(),
                         v("boasts", "boast"), Art(a), a.c_str(),
                         feature.c_str());
      }
        break;
      case 2:
        text = StrFormat("Independent reviewers endorse %s.", np.c_str());
        break;
      case 3:
        text = StrFormat("%s %s in independent tests.", np.c_str(),
                         v("shines", "shine"));
        break;
      case 4:
        text = StrFormat("The report calls %s %s.", np.c_str(),
                         rng.Pick(adj).c_str());
        break;
      default:
        text = StrFormat("%s %s the competition this quarter.", np.c_str(),
                         v("outperforms", "outperform"));
        break;
    }
  } else {
    switch (rng.Index(6)) {
      case 0:
        text = StrFormat("Lawsuits plague %s.", np.c_str());
        break;
      case 1:
        text = StrFormat("Regulators condemn %s.", np.c_str());
        break;
      case 2:
        text = StrFormat("%s %s under scrutiny.", np.c_str(),
                         v("falters", "falter"));
        break;
      case 3:
        text = StrFormat("The report calls %s %s.", np.c_str(),
                         rng.Pick(adj).c_str());
        break;
      case 4:
        text = StrFormat("%s %s investors.", np.c_str(),
                         v("disappoints", "disappoint"));
        break;
      default:
        text = StrFormat("Watchdog groups criticize %s.", np.c_str());
        break;
    }
  }
  GenSentence out;
  out.text = Capitalize(text);
  out.golds.push_back(MakeGold(subject, target, 'A'));
  return out;
}

GenSentence SentenceFactory::PolarExtractable(Rng& rng,
                                              const std::string& subject,
                                              Polarity target) const {
  if (register_ == Register::kWeb) {
    return PolarExtractableWeb(rng, subject, target);
  }
  const bool pos = (target == Polarity::kPositive);
  const auto& adj = pos ? pools_->pos_adjectives : pools_->neg_adjectives;
  const auto& noun = pos ? pools_->pos_nouns : pools_->neg_nouns;
  const auto& adv = pos ? pools_->pos_adverbs : pools_->neg_adverbs;
  const std::string np = Np(subject);
  const bool plural = IsPlural(subject);
  const char* be = plural ? "are" : "is";
  auto v = [&](const char* sing, const char* plur) {
    return plural ? plur : sing;
  };

  std::string text;
  switch (rng.Index(12)) {
    case 0:
      text = StrFormat("%s %s %s.", np.c_str(), be, rng.Pick(adj).c_str());
      break;
    case 1:
      text = StrFormat("%s %s %s.", np.c_str(), v("works", "work"),
                       rng.Pick(adv).c_str());
      break;
    case 2:
      text = StrFormat("I %s %s by %s.",
                       pos ? "was impressed" : "was disappointed", "",
                       np.c_str());
      text = common::ReplaceAll(text, "  ", " ");
      break;
    case 3:
      text = StrFormat("I %s %s.", pos ? "love" : "hate", np.c_str());
      break;
    case 4:
      text = StrFormat("%s %s %s results.", np.c_str(),
                       v("delivers", "deliver"), rng.Pick(adj).c_str());
      break;
    case 5:
      {
        const std::string& n = rng.Pick(noun);
        text = StrFormat("%s %s %s %s.", np.c_str(), plural ? "are" : "is",
                         Art(n), n.c_str());
      }
      break;
    case 6:
      text = StrFormat("%s %s about %s.",
                       pos ? "Everyone raves" : "Everyone complains", "",
                       np.c_str());
      text = common::ReplaceAll(text, "  ", " ");
      break;
    case 7:
      text = pos ? StrFormat("%s exceeded my expectations.", np.c_str())
                 : StrFormat("%s failed my expectations completely.",
                             np.c_str());
      break;
    case 8:
      text = pos ? StrFormat("We were amazed by %s.", np.c_str())
                 : StrFormat("We were frustrated by %s.", np.c_str());
      break;
    case 9:
      text = pos ? StrFormat("%s never %s.", np.c_str(),
                             v("disappoints", "disappoint"))
                 : StrFormat("%s never %s properly.", np.c_str(),
                             v("works", "work"));
      break;
    case 10:
      text = pos ? StrFormat("%s %s everyone who tried it.", np.c_str(),
                             v("impresses", "impress"))
                 : StrFormat("%s %s everyone who tried it.", np.c_str(),
                             v("annoys", "annoy"));
      break;
    default:
      if (pos) {
        const std::string& a = rng.Pick(adj);
        text = StrFormat("%s %s with %s %s feel.", np.c_str(),
                         v("comes", "come"), Art(a), a.c_str());
      } else {
        text = StrFormat("%s %s from constant glitches.", np.c_str(),
                         v("suffers", "suffer"));
      }
      break;
  }
  GenSentence out;
  out.text = Capitalize(text);
  out.golds.push_back(MakeGold(subject, target, 'A'));
  return out;
}

GenSentence SentenceFactory::PolarMissed(Rng& rng, const std::string& subject,
                                         Polarity target,
                                         bool with_lexicon_word) const {
  const bool pos = (target == Polarity::kPositive);
  const auto& noun = pos ? pools_->pos_nouns : pools_->neg_nouns;
  const std::string np = Np(subject);
  const bool plural = IsPlural(subject);
  auto v = [&](const char* sing, const char* plur) {
    return plural ? plur : sing;
  };

  std::string text;
  if (with_lexicon_word) {
    // Sentiment vocabulary present, but in a construction outside the
    // pattern grammar — the collocation baseline still catches these.
    switch (rng.Index(3)) {
      case 0:
        text = StrFormat("%s %s on %s.", np.c_str(),
                         v("borders", "border"), rng.Pick(noun).c_str());
        break;
      case 1:
      {
        const std::string& n = rng.Pick(noun);
        text = StrFormat("%s %s of a %s, through and through.", Art(n),
                         n.c_str(), subject.c_str());
      }
        break;
      default:
        text = StrFormat("%s %s of %s.", np.c_str(), v("reeks", "reek"),
                         rng.Pick(noun).c_str());
        break;
    }
  } else if (pos) {
    switch (rng.Index(4)) {
      case 0:
        text = StrFormat("%s pays for itself within a week.", np.c_str());
        break;
      case 1:
        text = StrFormat("I keep coming back to %s.", np.c_str());
        break;
      case 2:
        text = StrFormat("%s %s again and again.", np.c_str(),
                         v("sings", "sing"));
        break;
      default:
        text = StrFormat("My friends all ordered %s after one afternoon "
                         "with mine.",
                         np.c_str());
        break;
    }
  } else {
    switch (rng.Index(4)) {
      case 0:
        text = StrFormat("My %s went back to the store after two days.",
                         subject.c_str());
        break;
      case 1:
        text = StrFormat("%s %s my patience daily.", np.c_str(),
                         v("tests", "test"));
        break;
      case 2:
        text = StrFormat("I expected more from %s.", np.c_str());
        break;
      default:
        text = StrFormat("Two weeks in, %s stays in the drawer.", np.c_str());
        break;
    }
  }
  GenSentence out;
  out.text = Capitalize(text);
  out.golds.push_back(MakeGold(subject, target, 'B'));
  return out;
}

GenSentence SentenceFactory::PolarTrap(Rng& rng, const std::string& subject,
                                       Polarity target) const {
  // Surface polarity is the flip of the gold.
  const bool gold_neg = (target == Polarity::kNegative);
  const auto& surface_adj =
      gold_neg ? pools_->pos_adjectives : pools_->neg_adjectives;
  const std::string np = Np(subject);
  const bool plural = IsPlural(subject);
  const char* be = plural ? "are" : "is";

  std::string text;
  if (gold_neg) {
    switch (rng.Index(2)) {
      case 0:
        text = StrFormat("%s %s %s until it breaks.", np.c_str(), be,
                         rng.Pick(surface_adj).c_str());
        break;
      default:
        text = StrFormat("Sure, %s looks %s, if you have all day.",
                         np.c_str(), rng.Pick(surface_adj).c_str());
        break;
    }
  } else {
    text = StrFormat("%s %s %s only on paper.", np.c_str(), be,
                     rng.Pick(surface_adj).c_str());
  }
  GenSentence out;
  out.text = Capitalize(text);
  out.golds.push_back(MakeGold(subject, target, 'D'));
  return out;
}

GenSentence SentenceFactory::Neutral(Rng& rng, const std::string& subject,
                                     bool with_distractor,
                                     double distractor_positive_prob) const {
  const std::string np = Np(subject);
  const bool plural = IsPlural(subject);
  auto v = [&](const char* sing, const char* plur) {
    return plural ? plur : sing;
  };
  const std::string& other =
      rng.Pick(domain_->features.empty() ? domain_->topical_nouns
                                         : domain_->features);
  std::string text;
  bool i_class = false;
  if (with_distractor) {
    const bool pos_distractor = rng.Bernoulli(distractor_positive_prob);
    const std::string& adj = pos_distractor
                                 ? rng.Pick(pools_->pos_adjectives)
                                 : rng.Pick(pools_->neg_adjectives);
    switch (rng.Index(4)) {
      case 0:
        text = StrFormat("Page two praises the %s %s before covering the "
                         "%s.",
                         adj.c_str(), other.c_str(), subject.c_str());
        break;
      case 1:
        text = StrFormat("%s %s next to a section about the %s %s.",
                         np.c_str(), v("appears", "appear"), adj.c_str(),
                         other.c_str());
        i_class = true;  // sentiment directed at something else
        break;
      case 2:
        text = StrFormat(
            "Reviewers who love the %s rarely mention %s at all.",
            other.c_str(), np.c_str());
        i_class = true;
        break;
      default:
        text = StrFormat("While the %s is %s, %s remains untested.",
                         other.c_str(), adj.c_str(), np.c_str());
        i_class = true;  // ambiguous out of context
        break;
    }
  } else {
    const std::string& filler = rng.Pick(domain_->topical_nouns);
    switch (rng.Index(6)) {
      case 0:
        text = StrFormat("I bought %s in %s.", np.c_str(),
                         rng.Bernoulli(0.5) ? "March" : "October");
        break;
      case 1:
        text = StrFormat("%s arrived on Tuesday with a %s.", np.c_str(),
                         filler.c_str());
        break;
      case 2:
      {
        const std::string& a = rng.Pick(pools_->neutral_adjectives);
        text = StrFormat("%s %s %s %s body.", np.c_str(), v("has", "have"),
                         Art(a), a.c_str());
      }
        break;
      case 3:
        text = StrFormat("The manual describes the %s settings.",
                         subject.c_str());
        break;
      case 4:
        text = StrFormat("%s %s two standard batteries.", np.c_str(),
                         v("uses", "use"));
        break;
      default:
        text = StrFormat("%s shipped with the %s update.", np.c_str(),
                         filler.c_str());
        break;
    }
  }
  GenSentence out;
  out.text = Capitalize(text);
  // Every neutral mention is an I-class case: it either carries no
  // sentiment about the subject (case iii), points the sentiment elsewhere
  // (case ii), or is ambiguous out of context (case i).
  (void)i_class;
  out.golds.push_back(MakeGold(subject, Polarity::kNeutral, 'C', true));
  return out;
}

GenSentence SentenceFactory::Compound(Rng& rng, const std::string& good,
                                      const std::string& bad) const {
  const std::string np_g = Np(good);
  const std::string np_b = Np(bad);
  const std::string& pos_adj = rng.Pick(pools_->pos_adjectives);
  const std::string& neg_adj = rng.Pick(pools_->neg_adjectives);
  const bool plural_g = IsPlural(good);
  const bool plural_b = IsPlural(bad);
  std::string text;
  switch (rng.Index(3)) {
    case 0:
      text = StrFormat("%s %s %s but %s %s %s.", np_g.c_str(),
                       plural_g ? "are" : "is", pos_adj.c_str(),
                       np_b.c_str(), plural_b ? "are" : "is",
                       neg_adj.c_str());
      break;
    case 1:
      text = StrFormat("%s %s %s; %s %s %s.", np_g.c_str(),
                       plural_g ? "are" : "is", pos_adj.c_str(),
                       np_b.c_str(), plural_b ? "are" : "is",
                       neg_adj.c_str());
      break;
    default:
      text = StrFormat("I love %s but I hate %s.", np_g.c_str(),
                       np_b.c_str());
      break;
  }
  GenSentence out;
  out.text = Capitalize(text);
  out.golds.push_back(MakeGold(good, Polarity::kPositive, 'A'));
  out.golds.push_back(MakeGold(bad, Polarity::kNegative, 'A'));
  return out;
}

GenSentence SentenceFactory::Comparison(Rng& rng, const std::string& winner,
                                        const std::string& loser) const {
  const std::string np_w = Np(winner);
  const std::string np_l = Np(loser);
  std::string text;
  switch (rng.Index(2)) {
    case 0:
      text = StrFormat("%s outperforms %s.", np_w.c_str(), np_l.c_str());
      break;
    default:
      text = StrFormat("%s beats %s easily.", np_w.c_str(), np_l.c_str());
      break;
  }
  GenSentence out;
  out.text = Capitalize(text);
  out.golds.push_back(MakeGold(winner, Polarity::kPositive, 'A'));
  out.golds.push_back(MakeGold(loser, Polarity::kNegative, 'A'));
  return out;
}

GenSentence SentenceFactory::Contrastive(Rng& rng, const std::string& winner,
                                         const std::string& loser) const {
  const std::string np_w = Np(winner);
  const std::string np_l = Np(loser);
  std::string text;
  switch (rng.Index(2)) {
    case 0:
      text = StrFormat("Unlike %s, %s does not require an extra adapter.",
                       np_l.c_str(), np_w.c_str());
      break;
    default:
      text = StrFormat("Unlike %s, %s never needs a second charger.",
                       np_l.c_str(), np_w.c_str());
      break;
  }
  GenSentence out;
  out.text = Capitalize(text);
  out.golds.push_back(MakeGold(winner, Polarity::kPositive, 'A'));
  out.golds.push_back(MakeGold(loser, Polarity::kNegative, 'A'));
  return out;
}

std::string SentenceFactory::Filler(Rng& rng) const {
  const std::string& noun = rng.Pick(domain_->topical_nouns);
  switch (rng.Index(4)) {
    case 0:
      return StrFormat("This review covers several weeks of daily use.");
    case 1:
      return StrFormat("A %s came in the box as well.", noun.c_str());
    case 2:
      return StrFormat("More notes will follow after the next %s.",
                       noun.c_str());
    default:
      return StrFormat("Your mileage may vary.");
  }
}

}  // namespace wf::corpus
