#include "corpus/web_gen.h"

#include "common/rng.h"
#include "common/string_util.h"
#include "corpus/sentence_templates.h"

namespace wf::corpus {

using ::wf::common::Rng;
using ::wf::common::StrFormat;
using ::wf::lexicon::Polarity;

std::vector<GeneratedDoc> GenerateWebDocs(const DomainVocab& domain,
                                          size_t n_docs, uint64_t seed,
                                          const WebGenOptions& options) {
  Rng master(seed);
  SentenceFactory factory(&domain, &SharedWordPools(), Register::kWeb);
  std::vector<GeneratedDoc> docs;
  docs.reserve(n_docs);
  const char* kind = options.news_style ? "news" : "web";

  for (size_t d = 0; d < n_docs; ++d) {
    Rng rng = master.Fork();
    GeneratedDoc doc;
    doc.id = StrFormat("%s-%s-%zu", domain.name.c_str(), kind, d);
    doc.domain = domain.name;
    doc.on_topic = true;

    size_t n_sentences = static_cast<size_t>(rng.Uniform(
        static_cast<int64_t>(options.min_sentences),
        static_cast<int64_t>(options.max_sentences)));
    std::vector<std::string> sentences;
    size_t sentence_index = 0;
    auto append = [&](GenSentence s) {
      for (SpotGold& g : s.golds) {
        g.sentence_index = sentence_index;
        doc.golds.push_back(std::move(g));
      }
      sentences.push_back(std::move(s.text));
      ++sentence_index;
    };

    while (sentence_index < n_sentences) {
      if (rng.Bernoulli(options.news_style ? 0.20 : 0.12)) {
        sentences.push_back(factory.Filler(rng));
        ++sentence_index;
        continue;
      }
      // Web subjects are the companies/products themselves; features come
      // up occasionally.
      std::string subject = rng.Bernoulli(0.75)
                                ? rng.Pick(domain.products).name
                                : rng.Pick(domain.features);
      if (!rng.Bernoulli(options.polar_prob)) {
        append(factory.Neutral(
            rng, subject, rng.Bernoulli(options.neutral_distractor_prob)));
        continue;
      }
      Polarity target =
          rng.Bernoulli(0.5) ? Polarity::kPositive : Polarity::kNegative;
      double roll = rng.Double();
      if (roll < options.a_frac) {
        append(factory.PolarExtractable(rng, subject, target));
      } else if (roll < options.a_frac + options.b_frac) {
        append(factory.PolarMissed(rng, subject, target,
                                   rng.Bernoulli(options.b_lexicon_frac)));
      } else {
        append(factory.PolarTrap(rng, subject, target));
      }
    }
    doc.body = common::Join(sentences, " ");
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<GeneratedDoc> GenerateOffTopicDocs(size_t n_docs,
                                               uint64_t seed) {
  Rng master(seed);
  std::vector<GeneratedDoc> docs;
  docs.reserve(n_docs);

  static const char* kOpeners[] = {
      "The weather was pleasant for most of the weekend.",
      "The trail leads past an old stone bridge.",
      "The recipe calls for two cups of flour.",
      "The match ended after extra time.",
      "The garden needs watering twice a week.",
      "The train departs from platform nine.",
      "The museum opens at ten on weekdays.",
      "The lecture covered the history of navigation.",
  };
  static const char* kMiddles[] = {
      "We spent Sunday afternoon by the lake.",
      "The sun was bright and the sky stayed clear.",
      "Dinner was ready before the guests arrived.",
      "The children played outside until dark.",
      "A light rain started around noon.",
      "The bakery on the corner sells fresh bread.",
      "Our neighbors joined us for the hike.",
      "The road winds through three small villages.",
      "The coach praised the young goalkeeper.",
      "The soup turned out wonderful.",
      "The hotel room was terrible.",
      "The sunset painted the harbor orange.",
      "Sunday traffic was lighter than expected.",
  };
  static const char* kClosers[] = {
      "We plan to return next spring.",
      "Everyone slept well that night.",
      "More photos are posted on the second page.",
      "The season continues through September.",
  };

  for (size_t d = 0; d < n_docs; ++d) {
    Rng rng = master.Fork();
    GeneratedDoc doc;
    doc.id = StrFormat("offtopic-%zu", d);
    doc.domain = "offtopic";
    doc.on_topic = false;
    size_t n = static_cast<size_t>(rng.Uniform(4, 9));
    std::vector<std::string> sentences;
    sentences.push_back(kOpeners[rng.Index(sizeof(kOpeners) /
                                           sizeof(kOpeners[0]))]);
    for (size_t i = 1; i + 1 < n; ++i) {
      sentences.push_back(
          kMiddles[rng.Index(sizeof(kMiddles) / sizeof(kMiddles[0]))]);
    }
    sentences.push_back(
        kClosers[rng.Index(sizeof(kClosers) / sizeof(kClosers[0]))]);
    doc.body = common::Join(sentences, " ");
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace wf::corpus
