#include "corpus/domain.h"

namespace wf::corpus {

// Product and brand names are synthetic (the paper masks real product names
// in its own figures); brands echo the composition of the paper's Table 3.

const DomainVocab& CameraDomain() {
  static const DomainVocab* kDomain = new DomainVocab{
      "camera",
      {
          {"PowerLine S45", "Canon", {"S45"}},
          {"PowerLine G3", "Canon", {"G3"}},
          {"Vistar 4500", "Nikon", {"Vistar"}},
          {"Vistar 5700", "Nikon", {}},
          {"CyberSnap P9", "Sony", {"CyberSnap"}},
          {"CyberSnap F717", "Sony", {"F717"}},
          {"Stylus C50", "Olympus", {"C50"}},
          {"Stylus E20", "Olympus", {"E20"}},
          {"EasyPix DX4900", "Kodak", {"EasyPix"}},
          {"FinePix F601", "Fuji", {"FinePix"}},
          {"Dimage F100", "Minolta", {"Dimage"}},
          {"Dimage X7", "Minolta", {"X7"}},
          {"PhotoMax Z3", "Kodak", {"PhotoMax"}},
      },
      {
          "camera", "picture", "flash", "lens", "picture quality",
          "battery", "software", "price", "battery life", "viewfinder",
          "color", "image", "menu", "manual", "photo", "movie",
          "resolution", "quality", "zoom", "autofocus", "shutter",
          "memory card", "screen", "grip", "sensor", "playback",
          "charger", "strap", "interface", "body",
      },
      {
          "tripod", "bag", "cable", "box", "receipt", "store", "firmware",
          "megapixel", "adapter", "filter",
      },
      {
          "camera", "photo", "picture", "lens", "zoom", "megapixel",
          "shutter", "photography", "digital",
      },
  };
  return *kDomain;
}

const DomainVocab& MusicDomain() {
  static const DomainVocab* kDomain = new DomainVocab{
      "music",
      {
          {"Midnight Parade", "Arcline", {}},
          {"Glass Harbor", "Arcline", {}},
          {"Northern Lights", "The Veldt Brothers", {}},
          {"Paper Lanterns", "Mira Solen", {}},
          {"Iron Lullaby", "Mira Solen", {}},
          {"Second Sunrise", "The Copper Owls", {}},
          {"Silent Meridian", "Kessler Quartet", {}},
          {"Velvet Engine", "The Copper Owls", {}},
      },
      {
          "song", "album", "track", "music", "piece", "band", "lyrics",
          "first movement", "second movement", "orchestra", "guitar",
          "final movement", "beat", "production", "chorus", "first track",
          "mix", "third movement", "piano", "work", "melody", "rhythm",
          "vocals", "arrangement",
      },
      {
          "concert", "studio", "label", "tour", "stage", "audience",
          "record", "radio",
      },
      {
          "album", "song", "band", "music", "track", "concert", "guitar",
          "listen",
      },
  };
  return *kDomain;
}

const DomainVocab& PetroleumDomain() {
  static const DomainVocab* kDomain = new DomainVocab{
      "petroleum",
      {
          {"Altona Petroleum", "Altona", {"Altona"}},
          {"Grover Energy", "Grover", {"Grover"}},
          {"Sunrise Oil", "Sunrise", {"SUN"}},
          {"Caspian Basin Resources", "CBR", {"CBR"}},
          {"Meridian Fuels", "Meridian", {}},
          {"Northfield Gas", "Northfield", {}},
          {"Pacific Crown Oil", "Pacific Crown", {}},
      },
      {
          "pipeline", "refinery", "drilling", "exploration", "production",
          "reserves", "safety record", "emissions", "cleanup",
          "environmental record", "dividend", "output",
      },
      {
          "barrel", "rig", "crude", "platform", "terminal", "tanker",
          "quarter", "contract",
      },
      {
          "oil", "petroleum", "barrel", "drilling", "refinery", "crude",
          "pipeline", "energy", "gas",
      },
  };
  return *kDomain;
}

const DomainVocab& PharmaDomain() {
  static const DomainVocab* kDomain = new DomainVocab{
      "pharma",
      {
          {"Veraxin", "Corvant Labs", {}},
          {"Cordanol", "Corvant Labs", {}},
          {"Lumetra", "Halden Pharma", {}},
          {"Aprivex", "Halden Pharma", {}},
          {"Neurofen Plus", "Bexley", {"Neurofen"}},
          {"Somnarest", "Bexley", {}},
          {"Claritox", "Meridian Health", {}},
      },
      {
          "treatment", "dosage", "side effects", "efficacy",
          "trial results", "safety profile", "price", "availability",
          "label", "formulation",
      },
      {
          "patient", "doctor", "pharmacy", "prescription", "dose",
          "symptom", "study", "placebo",
      },
      {
          "drug", "patient", "treatment", "clinical", "trial", "dose",
          "medication", "therapy",
      },
  };
  return *kDomain;
}

WordPools TruncatedPools(const WordPools& pools, double fraction) {
  auto cut = [fraction](const std::vector<std::string>& v) {
    size_t keep = static_cast<size_t>(v.size() * fraction);
    if (keep == 0) keep = 1;
    return std::vector<std::string>(v.begin(),
                                    v.begin() + static_cast<long>(keep));
  };
  WordPools out;
  out.pos_adjectives = cut(pools.pos_adjectives);
  out.neg_adjectives = cut(pools.neg_adjectives);
  out.pos_nouns = cut(pools.pos_nouns);
  out.neg_nouns = cut(pools.neg_nouns);
  out.pos_adverbs = cut(pools.pos_adverbs);
  out.neg_adverbs = cut(pools.neg_adverbs);
  out.neutral_adjectives = pools.neutral_adjectives;
  return out;
}

const WordPools& SharedWordPools() {
  static const WordPools* kPools = new WordPools{
      // pos_adjectives (all present in the embedded sentiment lexicon)
      {"excellent", "great", "superb", "outstanding", "impressive",
       "fantastic", "wonderful", "sharp", "crisp", "vibrant", "accurate",
       "fast", "responsive", "sturdy", "reliable", "durable", "compact",
       "intuitive", "comfortable", "smooth", "powerful", "versatile",
       "generous", "affordable", "enjoyable", "delightful", "elegant",
       "flawless", "catchy", "memorable", "lively", "solid"},
      // neg_adjectives
      {"terrible", "awful", "horrible", "disappointing", "mediocre",
       "blurry", "grainy", "noisy", "slow", "sluggish", "flimsy", "cheap",
       "bulky", "clunky", "confusing", "unreliable", "defective", "faulty",
       "dim", "weak", "useless", "overpriced", "bland", "boring",
       "annoying", "frustrating", "harsh", "lifeless", "forgettable",
       "repetitive", "dangerous", "poor"},
      // pos_nouns
      {"masterpiece", "gem", "delight", "bargain", "winner", "triumph",
       "breakthrough", "improvement"},
      // neg_nouns
      {"disaster", "nightmare", "mess", "failure", "letdown", "ripoff",
       "disappointment", "hassle", "junk", "lemon"},
      // pos_adverbs
      {"flawlessly", "beautifully", "perfectly", "nicely", "superbly",
       "smoothly", "reliably"},
      // neg_adverbs
      {"poorly", "badly", "terribly", "horribly", "erratically",
       "miserably"},
      // neutral_adjectives (deliberately absent from the sentiment lexicon)
      {"silver", "black", "compacted", "rectangular", "standard",
       "quarterly", "routine", "regional", "mid-range", "updated"},
  };
  return *kPools;
}

}  // namespace wf::corpus
