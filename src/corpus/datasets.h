#ifndef WF_CORPUS_DATASETS_H_
#define WF_CORPUS_DATASETS_H_

#include <cstdint>
#include <vector>

#include "corpus/domain.h"
#include "corpus/generated.h"

namespace wf::corpus {

// A review-domain dataset mirroring §4.1's setup: a topic-focused
// collection D+ with gold sentiment/feature annotations, an off-topic
// collection D-, and a disjoint labeled training set for the ReviewSeer
// baseline.
struct ReviewDataset {
  const DomainVocab* domain = nullptr;
  std::vector<GeneratedDoc> d_plus;
  std::vector<GeneratedDoc> d_minus;
  std::vector<GeneratedDoc> train;  // document-labeled reviews
};

// Paper sizes: camera D+ = 485, D- = 1838; music D+ = 250, D- = 2389.
ReviewDataset BuildCameraDataset(uint64_t seed);
ReviewDataset BuildMusicDataset(uint64_t seed);

// A general-web / news dataset for one Table 5 row.
struct WebDataset {
  const DomainVocab* domain = nullptr;
  std::vector<GeneratedDoc> docs;
};

WebDataset BuildPetroleumWebDataset(uint64_t seed);
WebDataset BuildPharmaWebDataset(uint64_t seed);
WebDataset BuildPetroleumNewsDataset(uint64_t seed);

}  // namespace wf::corpus

#endif  // WF_CORPUS_DATASETS_H_
