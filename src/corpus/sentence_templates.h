#ifndef WF_CORPUS_SENTENCE_TEMPLATES_H_
#define WF_CORPUS_SENTENCE_TEMPLATES_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "corpus/domain.h"
#include "corpus/generated.h"
#include "lexicon/sentiment_lexicon.h"

namespace wf::corpus {

// One generated sentence plus its gold annotations. `golds` holds the gold
// for every subject the sentence mentions (usually one; comparison
// sentences have two). The sentence text is complete (capitalized,
// terminated).
struct GenSentence {
  std::string text;
  // Subject surface + polarity + class for each annotated subject; the
  // sentence_index field is filled in by the document assembler.
  std::vector<SpotGold> golds;
};

// Writing register: consumer reviews and web/news prose phrase sentiment
// through different constructions (first-person experiencer vs third-party
// attribution). Keeping the registers disjoint reproduces the domain gap
// that breaks review-trained statistical classifiers on general web text.
enum class Register {
  kReview,
  kWeb,
};

// Produces gold-annotated sentences about a subject. Template texts are
// intentionally decoupled from the analyzer: they share no code with the
// pattern database or the lexicon beyond the English language itself.
class SentenceFactory {
 public:
  // Pointers must outlive the factory.
  SentenceFactory(const DomainVocab* domain, const WordPools* pools)
      : SentenceFactory(domain, pools, Register::kReview) {}
  SentenceFactory(const DomainVocab* domain, const WordPools* pools,
                  Register reg)
      : domain_(domain), pools_(pools), register_(reg) {}

  // Class-A polar sentence (extractable construction).
  GenSentence PolarExtractable(common::Rng& rng, const std::string& subject,
                               lexicon::Polarity target) const;

  // Class-B polar sentence (construction outside the pattern grammar).
  // `with_lexicon_word` controls whether a sentiment word co-occurs (these
  // are the cases the collocation baseline still catches).
  GenSentence PolarMissed(common::Rng& rng, const std::string& subject,
                          lexicon::Polarity target,
                          bool with_lexicon_word) const;

  // Class-D adversarial trap: the construction reads opposite to its
  // surface pattern (gold is `target`, surface suggests the flip).
  GenSentence PolarTrap(common::Rng& rng, const std::string& subject,
                        lexicon::Polarity target) const;

  // Class-C neutral mention. `with_distractor` plants an off-target
  // sentiment word in the same sentence; `distractor_positive_prob` biases
  // its polarity (review pages lean with their star rating even in
  // off-target vocabulary).
  GenSentence Neutral(common::Rng& rng, const std::string& subject,
                      bool with_distractor,
                      double distractor_positive_prob = 0.5) const;

  // Compound sentence: two coordinated clauses with opposite polarity
  // ("The X is great but the Y is terrible"); both class A.
  GenSentence Compound(common::Rng& rng, const std::string& good,
                       const std::string& bad) const;

  // Two-subject comparison ("X outperforms Y"): first subject positive,
  // second negative (class A for both).
  GenSentence Comparison(common::Rng& rng, const std::string& winner,
                         const std::string& loser) const;

  // The NR70-style contrastive sentence: "Unlike the <loser>, the <winner>
  // does not require ..." (winner +, loser -).
  GenSentence Contrastive(common::Rng& rng, const std::string& winner,
                          const std::string& loser) const;

  // Opening/closing filler with no subject mention at all.
  std::string Filler(common::Rng& rng) const;

 private:
  // "the battery" / "Veraxin": features get a determiner, names do not.
  std::string Np(const std::string& subject) const;
  bool IsPlural(const std::string& subject) const;

  GenSentence PolarExtractableWeb(common::Rng& rng,
                                  const std::string& subject,
                                  lexicon::Polarity target) const;

  const DomainVocab* domain_;
  const WordPools* pools_;
  Register register_ = Register::kReview;
};

}  // namespace wf::corpus

#endif  // WF_CORPUS_SENTENCE_TEMPLATES_H_
