#ifndef WF_SPOT_DISAMBIGUATOR_H_
#define WF_SPOT_DISAMBIGUATOR_H_

#include <string>
#include <vector>

#include "spot/spotter.h"
#include "spot/tfidf.h"
#include "text/token.h"

namespace wf::spot {

// Per-subject disambiguation context: terms positively (on-topic) or
// negatively (off-topic) related to the intended subject. A term may be a
// single word or a two-word "lexical affinity" ("operating system"), which
// scores double per the multi-resolution scheme of Amitay et al. that the
// paper's disambiguator builds on.
struct TopicTermSet {
  int synset_id = 0;
  std::vector<std::string> on_topic;   // lowercase terms
  std::vector<std::string> off_topic;  // lowercase terms
};

// Verdict for one spot.
struct DisambiguationResult {
  SubjectSpot spot;
  bool on_topic = false;
  double global_score = 0.0;
  double local_score = 0.0;
};

// The disambiguator of §3: for each spot of a subject term, decide whether
// the occurrence refers to the intended subject ("SUN" the company vs
// "Sunday"). It computes a TF·IDF-weighted score of on-topic minus
// off-topic terms over the whole document (global context) and over a
// window around the spot (local context). If the global score passes
// `global_threshold`, all spots in the document are on-topic; otherwise a
// spot is on-topic iff global + local passes `combined_threshold`.
class Disambiguator {
 public:
  struct Options {
    double global_threshold = 3.0;
    double combined_threshold = 2.0;
    int local_window = 12;  // tokens on each side of the spot
  };

  Disambiguator() : Disambiguator(Options{}) {}
  explicit Disambiguator(const Options& options);

  void AddTopic(const TopicTermSet& topic);

  // Evaluates every spot of a document. Spots whose synset has no
  // registered topic terms pass through as on-topic (nothing to check).
  std::vector<DisambiguationResult> Evaluate(
      const text::TokenStream& tokens, const std::vector<SubjectSpot>& spots,
      const CorpusStats& stats) const;

 private:
  // Scores tokens [begin, end): sum of tf*idf*weight for on-topic terms
  // minus the same for off-topic terms; bigram affinities weigh double.
  double ScoreRange(const std::vector<std::string>& lower_tokens, size_t begin,
                    size_t end, const TopicTermSet& topic,
                    const CorpusStats& stats) const;

  Options options_;
  std::vector<TopicTermSet> topics_;
};

}  // namespace wf::spot

#endif  // WF_SPOT_DISAMBIGUATOR_H_
