#include "spot/disambiguator.h"

#include <algorithm>

#include "common/string_util.h"

namespace wf::spot {

using ::wf::common::ToLower;

Disambiguator::Disambiguator(const Options& options) : options_(options) {}

void Disambiguator::AddTopic(const TopicTermSet& topic) {
  topics_.push_back(topic);
}

double Disambiguator::ScoreRange(const std::vector<std::string>& lower_tokens,
                                 size_t begin, size_t end,
                                 const TopicTermSet& topic,
                                 const CorpusStats& stats) const {
  auto term_score = [&](const std::string& term) -> double {
    // Single word or two-word lexical affinity.
    size_t space = term.find(' ');
    double tf = 0.0;
    double weight = 1.0;
    if (space == std::string::npos) {
      for (size_t i = begin; i < end; ++i) {
        if (lower_tokens[i] == term) tf += 1.0;
      }
    } else {
      weight = 2.0;  // lexical affinities are stronger evidence
      std::string first = term.substr(0, space);
      std::string second = term.substr(space + 1);
      for (size_t i = begin; i + 1 < end; ++i) {
        if (lower_tokens[i] == first && lower_tokens[i + 1] == second) {
          tf += 1.0;
        }
      }
    }
    if (tf == 0.0) return 0.0;
    return tf * stats.Idf(term) * weight;
  };

  double score = 0.0;
  for (const std::string& t : topic.on_topic) score += term_score(t);
  for (const std::string& t : topic.off_topic) score -= term_score(t);
  return score;
}

std::vector<DisambiguationResult> Disambiguator::Evaluate(
    const text::TokenStream& tokens, const std::vector<SubjectSpot>& spots,
    const CorpusStats& stats) const {
  std::vector<std::string> lower;
  lower.reserve(tokens.size());
  for (const text::Token& t : tokens) lower.push_back(ToLower(t.text));

  std::vector<DisambiguationResult> out;
  out.reserve(spots.size());
  for (const SubjectSpot& spot : spots) {
    const TopicTermSet* topic = nullptr;
    for (const TopicTermSet& t : topics_) {
      if (t.synset_id == spot.synset_id) {
        topic = &t;
        break;
      }
    }
    DisambiguationResult r;
    r.spot = spot;
    if (topic == nullptr ||
        (topic->on_topic.empty() && topic->off_topic.empty())) {
      r.on_topic = true;  // nothing registered: accept
      out.push_back(r);
      continue;
    }
    r.global_score = ScoreRange(lower, 0, lower.size(), *topic, stats);
    size_t win = static_cast<size_t>(std::max(0, options_.local_window));
    size_t lo = spot.begin_token > win ? spot.begin_token - win : 0;
    size_t hi = std::min(lower.size(), spot.end_token + win);
    r.local_score = ScoreRange(lower, lo, hi, *topic, stats);

    if (r.global_score >= options_.global_threshold) {
      r.on_topic = true;
    } else {
      r.on_topic =
          (r.global_score + r.local_score) >= options_.combined_threshold;
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace wf::spot
