#include "spot/tfidf.h"

namespace wf::spot {

void CorpusStats::AddDocument(const std::vector<std::string>& lower_tokens) {
  std::unordered_set<std::string> distinct(lower_tokens.begin(),
                                           lower_tokens.end());
  for (const std::string& t : distinct) ++df_[t];
  ++num_docs_;
}

size_t CorpusStats::DocumentFrequency(const std::string& term) const {
  auto it = df_.find(term);
  return it == df_.end() ? 0 : it->second;
}

}  // namespace wf::spot
