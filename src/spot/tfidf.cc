#include "spot/tfidf.h"

#include "common/string_util.h"

namespace wf::spot {

void CorpusStats::AddDocument(const std::vector<std::string>& lower_tokens) {
  std::unordered_set<std::string_view> distinct(lower_tokens.begin(),
                                                lower_tokens.end());
  for (std::string_view t : distinct) {
    auto it = df_.find(t);
    if (it != df_.end()) {
      ++it->second;
    } else {
      df_.emplace(std::string(t), 1);
    }
  }
  ++num_docs_;
}

void CorpusStats::AddDocument(const text::TokenStream& tokens) {
  // Distinct terms of this document, viewed into df_ keys — node-based map,
  // so the key storage is stable across rehash.
  std::unordered_set<std::string_view> distinct;
  std::string lower_buf;
  for (const text::Token& tok : tokens) {
    std::string_view lower = common::LowerInto(tok.text, &lower_buf);
    if (distinct.count(lower) > 0) continue;
    auto it = df_.find(lower);
    if (it == df_.end()) {
      it = df_.emplace(std::string(lower), 0).first;
    }
    ++it->second;
    distinct.insert(it->first);
  }
  ++num_docs_;
}

size_t CorpusStats::DocumentFrequency(std::string_view term) const {
  auto it = df_.find(term);
  return it == df_.end() ? 0 : it->second;
}

}  // namespace wf::spot
