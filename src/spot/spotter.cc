#include "spot/spotter.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace wf::spot {

using ::wf::common::ToLower;

void Spotter::InsertPhrase(const std::string& phrase, int synset_id) {
  text::Tokenizer tokenizer;
  text::TokenStream toks = tokenizer.Tokenize(phrase);
  WF_CHECK(!toks.empty()) << "empty spotter phrase";
  int node = 0;
  for (const text::Token& t : toks) {
    std::string key = ToLower(t.text);
    auto it = trie_[node].next.find(key);
    if (it == trie_[node].next.end()) {
      trie_.push_back(TrieNode{});
      int fresh = static_cast<int>(trie_.size()) - 1;
      trie_[node].next.emplace(key, fresh);
      node = fresh;
    } else {
      node = it->second;
    }
  }
  trie_[node].synset_id = synset_id;
}

void Spotter::AddSynonymSet(const SynonymSet& set) {
  auto [it, inserted] = sets_.emplace(set.id, set);
  WF_CHECK(inserted) << "duplicate synonym set id " << set.id;
  InsertPhrase(set.canonical, set.id);
  for (const std::string& v : set.variants) InsertPhrase(v, set.id);
}

const SynonymSet* Spotter::FindSet(int id) const {
  auto it = sets_.find(id);
  return it == sets_.end() ? nullptr : &it->second;
}

std::vector<SubjectSpot> Spotter::Spot(const text::TokenStream& tokens) const {
  std::vector<SubjectSpot> out;
  std::string lower_buf;  // hoisted probe buffer; one per Spot call
  size_t i = 0;
  while (i < tokens.size()) {
    // Walk the trie from position i, remembering the longest terminal.
    int node = 0;
    size_t best_end = 0;
    int best_set = -1;
    for (size_t j = i; j < tokens.size(); ++j) {
      auto it = trie_[node].next.find(
          common::LowerInto(tokens[j].text, &lower_buf));
      if (it == trie_[node].next.end()) break;
      node = it->second;
      if (trie_[node].synset_id >= 0) {
        best_end = j + 1;
        best_set = trie_[node].synset_id;
      }
    }
    if (best_set >= 0) {
      out.push_back(SubjectSpot{best_set, i, best_end});
      i = best_end;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace wf::spot
