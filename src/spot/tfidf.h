#ifndef WF_SPOT_TFIDF_H_
#define WF_SPOT_TFIDF_H_

#include <cmath>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "text/token.h"

namespace wf::spot {

// Corpus-level document-frequency statistics (a corpus-level miner in
// WebFountain terms). Feeds the disambiguator's TF·IDF context scores.
class CorpusStats {
 public:
  CorpusStats() = default;

  // Registers one document's tokens (lowercased by the caller). Each
  // distinct term counts once toward document frequency.
  void AddDocument(const std::vector<std::string>& lower_tokens);

  // Token-stream form for the mining hot path: lowercases internally into a
  // reused buffer and allocates only one owned string per *distinct* term,
  // instead of materializing every token.
  void AddDocument(const text::TokenStream& tokens);

  size_t document_count() const { return num_docs_; }
  size_t DocumentFrequency(std::string_view term) const;

  // Smoothed inverse document frequency: log((N + 1) / (df + 1)) + 1.
  // Defined (and maximal) for unseen terms; never negative.
  double Idf(std::string_view term) const {
    double n = static_cast<double>(num_docs_);
    double df = static_cast<double>(DocumentFrequency(term));
    return std::log((n + 1.0) / (df + 1.0)) + 1.0;
  }

 private:
  std::unordered_map<std::string, size_t, common::StringViewHash,
                     std::equal_to<>>
      df_;
  size_t num_docs_ = 0;
};

}  // namespace wf::spot

#endif  // WF_SPOT_TFIDF_H_
