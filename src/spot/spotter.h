#ifndef WF_SPOT_SPOTTER_H_
#define WF_SPOT_SPOTTER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "text/token.h"

namespace wf::spot {

// A synonym set groups the surface variants of one subject ("Sony",
// "Sony Corporation", "Sony Corp.") under a single id so analytics count
// them together (§3, "The Spotter").
struct SynonymSet {
  int id = 0;
  std::string canonical;
  std::vector<std::string> variants;  // includes multi-word phrases
};

// One subject occurrence: tokens [begin, end) matched a variant of the
// synonym set `synset_id`.
struct SubjectSpot {
  int synset_id = 0;
  size_t begin_token = 0;
  size_t end_token = 0;

  friend bool operator==(const SubjectSpot& a, const SubjectSpot& b) {
    return a.synset_id == b.synset_id && a.begin_token == b.begin_token &&
           a.end_token == b.end_token;
  }
};

// General-purpose multi-term spotter: given synonym sets, tags every
// occurrence of any variant in a token stream. Matching is case-insensitive
// over tokenized phrases via a token-level trie; overlapping matches resolve
// longest-first (leftmost-longest).
class Spotter {
 public:
  Spotter() = default;

  // Registers a synonym set. Variants are tokenized internally; the
  // canonical name is matched too. Must be called before Spot().
  void AddSynonymSet(const SynonymSet& set);

  // Finds all spots. Leftmost-longest, non-overlapping.
  std::vector<SubjectSpot> Spot(const text::TokenStream& tokens) const;

  const SynonymSet* FindSet(int id) const;
  size_t set_count() const { return sets_.size(); }

 private:
  struct TrieNode {
    // Lowercase token -> node. Transparent hash: Spot() probes with a
    // reused lowercase buffer instead of a fresh std::string per token.
    std::unordered_map<std::string, int, common::StringViewHash,
                       std::equal_to<>>
        next;
    int synset_id = -1;  // terminal: matched set
  };

  void InsertPhrase(const std::string& phrase, int synset_id);

  std::vector<TrieNode> trie_{TrieNode{}};  // node 0 is the root
  std::unordered_map<int, SynonymSet> sets_;
};

}  // namespace wf::spot

#endif  // WF_SPOT_SPOTTER_H_
