#include "lexicon/pattern_db.h"

namespace wf::lexicon {

// The built-in sentiment pattern database, in the paper's
// `<predicate> <sent_category> <target>` format (plus an optional voice
// constraint, see pattern_db.h). Grouped by predicate family.
const char* EmbeddedPatternDatabaseText() {
  return R"pat(
# ================= Copulas / trans verbs: complement -> subject ============
be CP SP
seem CP SP
look CP SP
feel CP SP
sound CP SP
appear CP SP
remain CP SP
stay CP SP
become CP SP
get CP SP
taste CP SP
smell CP SP
prove CP SP
turn CP SP

# ================= Object-transfer verbs: object sentiment -> subject ======
take OP SP active
offer OP SP active
provide OP SP active
deliver OP SP active
produce OP SP active
give OP SP active
have OP SP active
feature OP SP active
include OP SP active
boast OP SP active
make OP SP active
sport OP SP active
pack OP SP active
show OP SP active
display OP SP active
yield OP SP active
generate OP SP active
achieve OP SP active
bring OP SP active
add OP SP active
combine OP SP active
capture OP SP active
render OP SP active
shoot OP SP active
record OP SP active

# come/ship with X: the with-PP's sentiment describes the subject
come PP(with) SP
ship PP(with) SP
arrive PP(with) SP

# ================= Adverbial-manner verbs: VP adverbs -> subject ===========
perform VP SP
work VP SP
run VP SP
operate VP SP
function VP SP
handle VP SP
play VP SP
respond VP SP
behave VP SP
hold VP SP
do VP SP
focus VP SP
start VP SP

# ================= Subject-experiencer positives: sentiment -> object ======
love + OP active
love + SP passive
adore + OP active
enjoy + OP active
enjoy + SP passive
like + OP active
appreciate + OP active
appreciate + SP passive
admire + OP active
admire + SP passive
praise + OP active
praise + SP passive
recommend + OP active
recommend + SP passive
prefer + OP active
favor + OP active
treasure + OP active
applaud + OP active
endorse + OP active
endorse + SP passive

# ================= Subject-experiencer negatives: sentiment -> object ======
hate - OP active
hate - SP passive
dislike - OP active
loathe - OP active
despise - OP active
regret - OP active
criticize - OP active
criticize - SP passive
condemn - OP active
condemn - SP passive
blame - OP active
blame - SP passive
return - OP active
avoid - OP active
dread - OP active
distrust - OP active

# ================= Object-experiencer verbs (stimulus carries sentiment) ===
# Active: "The camera impresses (everyone)" -> + to subject.
# Passive: "I am impressed by/with the camera" -> + to the by/with PP.
impress + SP active
impress + PP(by;with) passive
amaze + SP active
amaze + PP(by;with) passive
astonish + SP active
astonish + PP(by;with) passive
delight + SP active
delight + PP(by;with) passive
please + SP active
please + PP(by;with) passive
satisfy + SP active
satisfy + PP(by;with) passive
wow + SP active
wow + PP(by;with) passive
stun + PP(by;with) passive
captivate + SP active
captivate + PP(by;with) passive
disappoint - SP active
disappoint - PP(by;with;in) passive
annoy - SP active
annoy - PP(by;with) passive
irritate - SP active
irritate - PP(by;with) passive
frustrate - SP active
frustrate - PP(by;with) passive
disgust - SP active
disgust - PP(by;with) passive
aggravate - SP active
underwhelm - SP active
underwhelm - PP(by;with) passive
bother - SP active
bother - PP(by;with) passive

# ================= Intransitive quality verbs: sentiment -> subject ========
excel + SP
shine + SP
rock + SP
impress + SP
thrive + SP
succeed + SP
win + SP active
triumph + SP
improve + SP
fail - SP
flop - SP
struggle - SP
suffer - SP
lag - SP
crash - SP
freeze - SP
malfunction - SP
overheat - SP
break - SP
die - SP
stall - SP
falter - SP
disappoint - SP
deteriorate - SP
degrade - SP
worsen - SP
leak - SP
spill - SP
pollute - SP
stink - SP

# ================= Lack / requirement verbs =================================
lack - SP active
miss - SP active
require - SP active
need - SP active
want - OP active
demand - SP active

# ================= Comparison verbs ==========================================
# "X outperforms Y": + to subject, - to object.
outperform + SP active
outperform - OP active
outperform + PP(by) passive
beat + SP active
beat - OP active
beat + PP(by) passive
surpass + SP active
surpass - OP active
exceed + SP active
outclass + SP active
outclass - OP active
outshine + SP active
outshine - OP active
trail - SP active
trail + OP active

# ================= Meet/exceed expectation idioms ============================
meet OP SP active
satisfy OP SP active

# ================= Talk-about verbs ==========================================
rave + PP(about;over)
complain - PP(about;over)
gripe - PP(about)
moan - PP(about)
gush + PP(about;over)
grumble - PP(about)

# ================= Problem verbs directed at objects =========================
ruin - OP active
ruin - SP passive
destroy - OP active
spoil - OP active
spoil - SP passive
plague - OP active
plague - SP passive
hamper - OP active
hamper - SP passive
hurt - OP active
harm - OP active
damage - OP active
damage - SP passive
degrade - OP active
waste - OP active
botch - OP active
botch - SP passive
cripple - OP active
cripple - SP passive

# ================= Improvement verbs directed at objects =====================
enhance + OP active
enhance + SP passive
improve + OP active
improve + SP passive
boost + OP active
boost + SP passive
enrich + OP active
strengthen + OP active
refine + OP active
refine + SP passive
perfect + OP active
polish + OP active
polish + SP passive
fix + OP active
upgrade + OP active
upgrade + SP passive

# ================= Equipment / fitting verbs =================================
equip + SP passive
outfit + SP passive
load PP(with) SP passive
fit PP(with) SP passive

# ================= Additional experiencer verbs ==============================
relish + OP active
savor + OP active
covet + OP active
worship + OP active
detest - OP active
dread - OP active
bemoan - OP active
mourn - OP active
resent - OP active
envy + OP active
trust + OP active
trust + SP passive
distrust - SP passive
respect + OP active
respect + SP passive
value + OP active
value + SP passive
salute + OP active
applaud + SP passive
welcome + OP active
welcome + SP passive
tolerate - OP active
endure - OP active

# ================= Additional trans verbs ====================================
display OP SP active
exhibit OP SP active
demonstrate OP SP active
combine OP SP active
carry OP SP active
hold OP SP active
contain OP SP active
house OP SP active
reveal OP SP active
promise OP SP active
guarantee OP SP active
brim PP(with) SP
teem PP(with) SP
bristle PP(with) SP
overflow PP(with) SP
burst PP(with) SP

# ================= Additional quality verbs ===================================
dazzle + SP active
dazzle + PP(by;with) passive
sparkle + SP
soar + SP
flourish + SP
prosper + SP
blossom + SP
dominate + SP active
plummet - SP
collapse - SP
crumble - SP
sink - SP
tank - SP
languish - SP
stagnate - SP
wilt - SP
flop - SP
backfire - SP
misfire - SP
jam - SP
glitch - SP
sputter - SP

# ================= Additional object-directed verbs ===========================
elevate + OP active
transform + OP active
streamline + OP active
simplify + OP active
accelerate + OP active
complicate - OP active
clutter - OP active
slow - OP active
bloat - OP active
undermine - OP active
undermine - SP passive
compromise - OP active
compromise - SP passive
erode - OP active
diminish - OP active
cheapen - OP active
tarnish - OP active
tarnish - SP passive
mar - OP active
mar - SP passive
wreck - OP active
wreck - SP passive
sabotage - OP active
sabotage - SP passive
jeopardize - OP active
threaten - OP active
endanger - OP active

# ================= Recommendation / verdict verbs ============================
rate VP SP passive
rank VP SP passive
consider CP OP active
find CP OP active
call CP OP active
deem CP OP active
judge CP OP active
)pat";
}

}  // namespace wf::lexicon
