#ifndef WF_LEXICON_PATTERN_DB_H_
#define WF_LEXICON_PATTERN_DB_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "lexicon/sentiment_lexicon.h"

namespace wf::lexicon {

// Sentence components a sentiment pattern can name as source or target,
// exactly the paper's SP/OP/CP/PP vocabulary plus VP for adverbial sources
// ("performs admirably").
enum class SentenceComponent : uint8_t {
  kSP,  // subject phrase
  kOP,  // object phrase
  kCP,  // complement (predicative adjective or post-copula NP)
  kPP,  // prepositional phrase
  kVP,  // the verb phrase itself (trailing adverbs)
};

std::string_view SentenceComponentName(SentenceComponent c);

// A component reference with optional preposition constraints:
// "PP(by;with)" accepts only by-/with-PPs.
struct ComponentSpec {
  SentenceComponent component = SentenceComponent::kSP;
  std::vector<std::string> prepositions;  // lowercase; empty = any

  bool AllowsPreposition(std::string_view prep) const {
    if (prepositions.empty()) return true;
    for (const std::string& p : prepositions) {
      if (p == prep) return true;
    }
    return false;
  }
};

// Voice constraint on a pattern — our one extension over the paper's
// format, needed to separate "Everyone loves the camera" (sentiment to OP)
// from "The camera is loved" (sentiment to the surface subject).
enum class VoiceConstraint : uint8_t {
  kAny,
  kActive,
  kPassive,
};

// One predicate pattern: `<predicate> <sent_category> <target> [voice]`
// where sent_category is '+', '-' (the verb itself carries sentiment) or a
// source component whose phrasal sentiment transfers to the target,
// optionally reversed by '~' ("trans verbs" in the paper's terms).
struct SentimentPattern {
  std::string predicate;  // verb lemma ("impress", "be", "offer")
  bool direct = false;    // true: fixed polarity; false: transfer
  Polarity polarity = Polarity::kNeutral;  // when direct
  ComponentSpec source;                    // when !direct
  bool flip_source = false;                // '~' prefix
  ComponentSpec target;
  VoiceConstraint voice = VoiceConstraint::kAny;
};

// The sentiment pattern database. Entries load from text with one pattern
// per line:
//     impress + PP(by;with)
//     be CP SP
//     offer OP SP
//     lack ~OP SP        # sentiment of object, reversed, goes to subject
// '#' starts a comment. Multiple patterns per predicate are allowed; the
// analyzer scores them against the parse and applies the best match.
class PatternDatabase {
 public:
  PatternDatabase() = default;

  // Database preloaded with the built-in pattern set (~190 patterns over
  // ~130 predicates).
  static PatternDatabase Embedded();

  common::Status LoadText(std::string_view text);
  common::Status LoadFile(const std::string& path);

  void Add(const SentimentPattern& pattern);

  // All patterns for a verb lemma; empty when the predicate is unknown.
  // Heterogeneous lookup: string_view probes allocate nothing.
  const std::vector<SentimentPattern>* Lookup(std::string_view lemma) const;

  // Every predicate lemma in the database (unspecified order).
  std::vector<std::string> Predicates() const;

  size_t size() const { return count_; }
  size_t predicate_count() const { return patterns_.size(); }

  // Parses a single pattern line (exposed for tests/tools).
  static common::Result<SentimentPattern> ParseLine(std::string_view line);

 private:
  std::unordered_map<std::string, std::vector<SentimentPattern>,
                     common::StringViewHash, std::equal_to<>>
      patterns_;
  size_t count_ = 0;
};

// The raw text of the built-in pattern database (exposed for ablation
// sweeps that load truncated subsets).
const char* EmbeddedPatternDatabaseText();

}  // namespace wf::lexicon

#endif  // WF_LEXICON_PATTERN_DB_H_
