#include "lexicon/sentiment_lexicon.h"

#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "text/inflection.h"

namespace wf::lexicon {

namespace {
using ::wf::common::Status;
using ::wf::common::StripWhitespace;
using ::wf::common::ToLower;

// Declared in sentiment_lexicon_data.cc.
}  // namespace

// Embedded lexicon data (defined in sentiment_lexicon_data.cc).
const char* EmbeddedSentimentLexiconText();

std::string_view PolarityName(Polarity p) {
  switch (p) {
    case Polarity::kNegative:
      return "negative";
    case Polarity::kNeutral:
      return "neutral";
    case Polarity::kPositive:
      return "positive";
  }
  return "?";
}

std::string_view LexPosName(LexPos pos) {
  switch (pos) {
    case LexPos::kAdjective:
      return "JJ";
    case LexPos::kNoun:
      return "NN";
    case LexPos::kVerb:
      return "VB";
    case LexPos::kAdverb:
      return "RB";
    case LexPos::kAny:
      return "*";
  }
  return "?";
}

bool LexPosMatches(LexPos required, pos::PosTag tag) {
  switch (required) {
    case LexPos::kAdjective:
      return pos::IsAdjectiveTag(tag) || tag == pos::PosTag::kVBN ||
             tag == pos::PosTag::kVBG;
    case LexPos::kNoun:
      return pos::IsNounTag(tag);
    case LexPos::kVerb:
      return pos::IsVerbTag(tag);
    case LexPos::kAdverb:
      return pos::IsAdverbTag(tag);
    case LexPos::kAny:
      return true;
  }
  return false;
}

size_t SentimentLexicon::KeyHash::operator()(const Key& k) const {
  return common::HashCombine(common::Fnv1a64(k.lemma),
                             static_cast<uint64_t>(k.pos));
}

size_t SentimentLexicon::KeyHash::operator()(const KeyView& k) const {
  return common::HashCombine(common::Fnv1a64(k.lemma),
                             static_cast<uint64_t>(k.pos));
}

SentimentLexicon SentimentLexicon::Embedded() {
  SentimentLexicon lex;
  Status s = lex.LoadText(EmbeddedSentimentLexiconText());
  // The embedded data is compiled in; a parse failure is a build defect.
  WF_CHECK_OK(s);
  return lex;
}

void SentimentLexicon::Add(const SentimentEntry& entry) {
  entries_[Key{ToLower(entry.term), entry.pos}] = entry.polarity;
}

common::Status SentimentLexicon::LoadText(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    // Format: <term...> <POS> <+|->   (term may contain spaces; the last
    // two fields are POS and polarity).
    std::vector<std::string> fields = common::Split(sv, " \t");
    if (fields.size() < 3) {
      return Status::InvalidArgument(common::StrFormat(
          "lexicon line %d: expected '<term> <POS> <+|->', got '%s'", lineno,
          std::string(sv).c_str()));
    }
    const std::string& pol_str = fields.back();
    const std::string& pos_str = fields[fields.size() - 2];
    Polarity pol;
    if (pol_str == "+") {
      pol = Polarity::kPositive;
    } else if (pol_str == "-") {
      pol = Polarity::kNegative;
    } else {
      return Status::InvalidArgument(common::StrFormat(
          "lexicon line %d: bad polarity '%s'", lineno, pol_str.c_str()));
    }
    LexPos pos;
    if (pos_str == "JJ") {
      pos = LexPos::kAdjective;
    } else if (pos_str == "NN") {
      pos = LexPos::kNoun;
    } else if (pos_str == "VB") {
      pos = LexPos::kVerb;
    } else if (pos_str == "RB") {
      pos = LexPos::kAdverb;
    } else if (pos_str == "*") {
      pos = LexPos::kAny;
    } else {
      return Status::InvalidArgument(common::StrFormat(
          "lexicon line %d: bad POS '%s'", lineno, pos_str.c_str()));
    }
    std::vector<std::string> term_words(fields.begin(), fields.end() - 2);
    Add(SentimentEntry{common::Join(term_words, " "), pos, pol});
  }
  return Status::Ok();
}

common::Status SentimentLexicon::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open lexicon file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadText(buf.str());
}

std::optional<Polarity> SentimentLexicon::LookupLemma(std::string_view lemma,
                                                      LexPos pos) const {
  auto it = entries_.find(KeyView{lemma, pos});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<Polarity> SentimentLexicon::Lookup(std::string_view surface,
                                                 pos::PosTag tag) const {
  // Probe order is unchanged from the candidate-vector version: lemmatized
  // form, surface form, (participle adjective reading,) wildcard. Both
  // scratch buffers stay on the stack for typical words (SSO).
  std::string lower_buf, lemma_buf;
  std::string_view lower = common::LowerInto(surface, &lower_buf);

  if (pos::IsAdjectiveTag(tag)) {
    auto hit = LookupLemma(text::AdjectiveBase(lower, &lemma_buf),
                           LexPos::kAdjective);
    if (!hit.has_value()) hit = LookupLemma(lower, LexPos::kAdjective);
    if (hit.has_value()) return hit;
  } else if (pos::IsNounTag(tag)) {
    auto hit =
        LookupLemma(text::SingularizeNoun(lower, &lemma_buf), LexPos::kNoun);
    if (!hit.has_value()) hit = LookupLemma(lower, LexPos::kNoun);
    if (hit.has_value()) return hit;
  } else if (pos::IsVerbTag(tag)) {
    auto hit = LookupLemma(text::VerbLemma(lower, &lemma_buf), LexPos::kVerb);
    if (!hit.has_value()) hit = LookupLemma(lower, LexPos::kVerb);
    // Participles frequently function adjectivally ("impressed", "amazing");
    // fall back to the adjective table.
    if (!hit.has_value() &&
        (tag == pos::PosTag::kVBN || tag == pos::PosTag::kVBG)) {
      hit = LookupLemma(lower, LexPos::kAdjective);
    }
    if (hit.has_value()) return hit;
  } else if (pos::IsAdverbTag(tag)) {
    auto hit = LookupLemma(lower, LexPos::kAdverb);
    if (hit.has_value()) return hit;
  }
  return LookupLemma(lower, LexPos::kAny);
}

std::vector<SentimentEntry> SentimentLexicon::Entries() const {
  std::vector<SentimentEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, pol] : entries_) {
    out.push_back(SentimentEntry{key.lemma, key.pos, pol});
  }
  return out;
}

}  // namespace wf::lexicon
