#ifndef WF_LEXICON_SENTIMENT_LEXICON_H_
#define WF_LEXICON_SENTIMENT_LEXICON_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "pos/tagset.h"

namespace wf::lexicon {

enum class Polarity : int8_t {
  kNegative = -1,
  kNeutral = 0,
  kPositive = 1,
};

// Reverses a polarity (negation); neutral stays neutral.
inline Polarity Flip(Polarity p) {
  return static_cast<Polarity>(-static_cast<int8_t>(p));
}

std::string_view PolarityName(Polarity p);

// Coarse POS class of a lexicon entry, matching the paper's
// `<lexical_entry> <POS> <sent_category>` schema (entries carry the
// *required* POS of the term; "JJ" covers JJ/JJR/JJS etc.).
enum class LexPos : uint8_t {
  kAdjective,  // JJ
  kNoun,       // NN
  kVerb,       // VB
  kAdverb,     // RB
  kAny,        // wildcard (multi-word entries)
};

std::string_view LexPosName(LexPos pos);

// True when the fine-grained Treebank tag satisfies the entry's class.
bool LexPosMatches(LexPos required, pos::PosTag tag);

struct SentimentEntry {
  std::string term;  // lowercase lemma; may be multi-word ("battery life")
  LexPos pos = LexPos::kAdjective;
  Polarity polarity = Polarity::kNeutral;
};

// The sentiment lexicon of §4.2: term -> polarity, keyed by (lemma, POS
// class). Lookup is inflection-aware: "pictures" finds "picture"-keyed
// entries, "impressed" finds "impress".
//
// Ships with an embedded lexicon (derived from the same public sources the
// paper used — General Inquirer / DAL-style vocabulary); additional entries
// load from text files with one `<term> <POS> <+|->` definition per line
// ('#' starts a comment).
class SentimentLexicon {
 public:
  // Empty lexicon; call LoadEmbedded() or LoadFile()/Add().
  SentimentLexicon() = default;

  // Returns a lexicon populated with the built-in entries.
  static SentimentLexicon Embedded();

  // Adds one entry; later duplicates of (term, pos) win (callers can
  // override the embedded defaults).
  void Add(const SentimentEntry& entry);

  // Parses `text` in the file format above and adds every entry.
  common::Status LoadText(std::string_view text);
  common::Status LoadFile(const std::string& path);

  // Polarity of `surface` (any inflection, any case) used with `tag`.
  // nullopt when the word is not sentiment-bearing. Allocation-free for
  // typical words (lowercasing and lemmatization use SSO scratch buffers).
  std::optional<Polarity> Lookup(std::string_view surface,
                                 pos::PosTag tag) const;

  // Lookup by exact lowercase lemma and entry class. Heterogeneous probe:
  // no key materialization.
  std::optional<Polarity> LookupLemma(std::string_view lemma,
                                      LexPos pos) const;

  size_t size() const { return entries_.size(); }

  // All entries, for inspection/serialization (unspecified order).
  std::vector<SentimentEntry> Entries() const;

 private:
  struct Key {
    std::string lemma;
    LexPos pos;
  };
  // View-typed probe key so Lookup never copies the lemma.
  struct KeyView {
    std::string_view lemma;
    LexPos pos;
  };
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(const Key& k) const;
    size_t operator()(const KeyView& k) const;
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const {
      return a.pos == b.pos && a.lemma == b.lemma;
    }
    bool operator()(const Key& a, const KeyView& b) const {
      return a.pos == b.pos && a.lemma == b.lemma;
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return a.pos == b.pos && a.lemma == b.lemma;
    }
  };

  std::unordered_map<Key, Polarity, KeyHash, KeyEq> entries_;
};

// The raw text of the built-in sentiment lexicon (exposed for ablation
// sweeps that load truncated subsets).
const char* EmbeddedSentimentLexiconText();

}  // namespace wf::lexicon

#endif  // WF_LEXICON_SENTIMENT_LEXICON_H_
