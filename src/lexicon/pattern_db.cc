#include "lexicon/pattern_db.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace wf::lexicon {

// Defined in pattern_db_data.cc.
const char* EmbeddedPatternDatabaseText();

namespace {

using ::wf::common::Result;
using ::wf::common::Split;
using ::wf::common::Status;
using ::wf::common::StripWhitespace;

Result<ComponentSpec> ParseComponent(std::string_view spec) {
  ComponentSpec out;
  std::string_view name = spec;
  std::string_view args;
  size_t paren = spec.find('(');
  if (paren != std::string_view::npos) {
    if (spec.back() != ')') {
      return Status::InvalidArgument("unterminated '(' in component spec: " +
                                     std::string(spec));
    }
    name = spec.substr(0, paren);
    args = spec.substr(paren + 1, spec.size() - paren - 2);
  }
  if (name == "SP") {
    out.component = SentenceComponent::kSP;
  } else if (name == "OP") {
    out.component = SentenceComponent::kOP;
  } else if (name == "CP") {
    out.component = SentenceComponent::kCP;
  } else if (name == "PP") {
    out.component = SentenceComponent::kPP;
  } else if (name == "VP") {
    out.component = SentenceComponent::kVP;
  } else {
    return Status::InvalidArgument("unknown sentence component: " +
                                   std::string(name));
  }
  if (!args.empty()) {
    if (out.component != SentenceComponent::kPP) {
      return Status::InvalidArgument(
          "preposition list is only valid on PP: " + std::string(spec));
    }
    for (const std::string& p : Split(args, ";,")) {
      out.prepositions.push_back(common::ToLower(p));
    }
  }
  return out;
}

}  // namespace

std::string_view SentenceComponentName(SentenceComponent c) {
  switch (c) {
    case SentenceComponent::kSP:
      return "SP";
    case SentenceComponent::kOP:
      return "OP";
    case SentenceComponent::kCP:
      return "CP";
    case SentenceComponent::kPP:
      return "PP";
    case SentenceComponent::kVP:
      return "VP";
  }
  return "?";
}

common::Result<SentimentPattern> PatternDatabase::ParseLine(
    std::string_view line) {
  std::vector<std::string> fields = Split(line, " \t");
  if (fields.size() != 3 && fields.size() != 4) {
    return Status::InvalidArgument(
        "expected '<predicate> <sent_category> <target> [voice]': " +
        std::string(line));
  }
  SentimentPattern p;
  p.predicate = common::ToLower(fields[0]);
  if (fields.size() == 4) {
    if (fields[3] == "active") {
      p.voice = VoiceConstraint::kActive;
    } else if (fields[3] == "passive") {
      p.voice = VoiceConstraint::kPassive;
    } else {
      return Status::InvalidArgument("bad voice constraint: " + fields[3]);
    }
  }

  std::string_view cat = fields[1];
  if (cat == "+") {
    p.direct = true;
    p.polarity = Polarity::kPositive;
  } else if (cat == "-") {
    p.direct = true;
    p.polarity = Polarity::kNegative;
  } else {
    p.direct = false;
    if (!cat.empty() && cat[0] == '~') {
      p.flip_source = true;
      cat.remove_prefix(1);
    }
    WF_ASSIGN_OR_RETURN(p.source, ParseComponent(cat));
  }
  WF_ASSIGN_OR_RETURN(p.target, ParseComponent(fields[2]));
  if (p.target.component == SentenceComponent::kCP ||
      p.target.component == SentenceComponent::kVP) {
    return Status::InvalidArgument(
        "target must be SP, OP, or PP: " + std::string(line));
  }
  return p;
}

common::Status PatternDatabase::LoadText(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view sv = StripWhitespace(line);
    size_t hash = sv.find('#');
    if (hash != std::string_view::npos) {
      sv = StripWhitespace(sv.substr(0, hash));
    }
    if (sv.empty()) continue;
    auto parsed = ParseLine(sv);
    if (!parsed.ok()) {
      return Status::InvalidArgument(common::StrFormat(
          "pattern line %d: %s", lineno, parsed.status().message().c_str()));
    }
    Add(std::move(parsed).value());
  }
  return Status::Ok();
}

common::Status PatternDatabase::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open pattern file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadText(buf.str());
}

void PatternDatabase::Add(const SentimentPattern& pattern) {
  patterns_[pattern.predicate].push_back(pattern);
  ++count_;
}

const std::vector<SentimentPattern>* PatternDatabase::Lookup(
    std::string_view lemma) const {
  auto it = patterns_.find(lemma);
  return it == patterns_.end() ? nullptr : &it->second;
}

std::vector<std::string> PatternDatabase::Predicates() const {
  std::vector<std::string> out;
  out.reserve(patterns_.size());
  for (const auto& [predicate, list] : patterns_) out.push_back(predicate);
  return out;
}

PatternDatabase PatternDatabase::Embedded() {
  PatternDatabase db;
  WF_CHECK_OK(db.LoadText(EmbeddedPatternDatabaseText()));
  return db;
}

}  // namespace wf::lexicon
